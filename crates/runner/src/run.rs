//! The batch scheduler: expands a spec into cells and fans them out
//! across `std::thread::scope` workers.
//!
//! Each worker owns one [`SimWorkspace`], so after its first cell the
//! zero-allocation solver path is exercised in parallel across the whole
//! batch. Results land in a slot vector indexed by cell position, which
//! makes the report — and its JSON — byte-identical at any worker count.
//!
//! The scheduler is fault-tolerant end to end: a panicking cell is
//! caught and becomes a structured error record (its worker continues
//! on a fresh workspace), cooperative per-cell deadlines turn runaway
//! solves into `timeout` records, transient failures are retried on a
//! bounded budget, and an optional append-only checkpoint journal lets
//! a killed run resume without recomputing finished cells — emitting
//! byte-identical reports at any kill point and worker count.

use crate::checkpoint::{load_journal, CheckpointJournal, JournalHeader};
use crate::fault::{CellError, CellErrorKind, FaultKind, FaultPlan};
use crate::report::{Field, Record, RunReport};
use crate::spec::{Cell, ExperimentSpec, RunKind, SolverKind};
use choco_core::{plan_elimination, ChocoQConfig, ChocoQSolver, CommuteDriver};
use choco_device::LatencyModel;
use choco_model::{solve_exact, Optimum, Problem, SolveOutcome};
use choco_optim::OptimizerKind;
use choco_qsim::{EngineKind, SimConfig, SimWorkspace};
use choco_solvers::{CyclicQaoaSolver, HeaSolver, PenaltyQaoaSolver, QaoaConfig};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Execution options orthogonal to the spec (how to run, not what).
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Worker threads for the cell scheduler (0 = one per host core).
    pub workers: usize,
    /// Trim the axes to the spec's quick subset.
    pub quick: bool,
    /// State-vector engine configuration for every worker's workspace.
    /// Defaults to serial: with cell-level parallelism outer × inner
    /// thread fan-out oversubscribes the host.
    pub sim: SimConfig,
    /// Engine override from the CLI (`--engine`). `None` defers to the
    /// spec's `[grid] engine` key, which in turn defers to `sim.engine`.
    pub engine: Option<EngineKind>,
    /// Batched-replay width override from the CLI (`--batch`). `None`
    /// defers to the spec's `[grid] batch` key, which in turn defers to
    /// `sim.batch_size`. Like the engine, a pure performance knob:
    /// batched replays are bit-identical to serial ones at any width.
    pub batch: Option<usize>,
    /// Classical-optimizer override from the CLI (`--optimizer`). `None`
    /// defers to the spec's `[grid] optimizer` key, which in turn defers
    /// to the solver default (COBYLA).
    pub optimizer: Option<OptimizerKind>,
    /// Restart-scheduler workers per Choco-Q solve
    /// (`--restart-workers`). Defaults to 1 (serial): cell-level
    /// parallelism already fills the host, and solve results are
    /// byte-identical at any setting — raise it for grids with few
    /// expensive cells.
    pub restart_workers: usize,
    /// Checkpoint journal path (`--checkpoint`). Grid runs append every
    /// completed cell; pair with [`RunOptions::resume`] to skip cells an
    /// earlier (possibly killed) run already finished.
    pub checkpoint: Option<String>,
    /// Resume from an existing checkpoint journal (`--resume`). Requires
    /// `checkpoint`; a missing journal file starts fresh with a warning.
    pub resume: bool,
    /// Per-cell wall-clock budget (`--cell-timeout`). Cooperative: the
    /// deadline is checked at every objective evaluation, so an expired
    /// cell finishes its current simulation step, then fails with a
    /// `timeout` error record instead of running away.
    pub cell_timeout: Option<Duration>,
    /// Retry budget for transient per-cell failures — panics and
    /// timeouts (`--retries`). Deterministic failures (solver
    /// rejections, size gates) are never retried. The retries a cell
    /// consumed are reported in its `retries` field.
    pub retries: u32,
    /// Deterministic fault injection (`CHOCO_FAULT_INJECT`), exercised
    /// by CI to prove the isolation and resume paths. `None` in normal
    /// operation.
    pub faults: Option<Arc<FaultPlan>>,
    /// Cooperative cancellation flag shared by every cell of the run
    /// (the serve daemon's `cancel` op). Once set, queued cells are
    /// skipped and in-flight solves drain through the deadline hook,
    /// landing as `cancelled` error records. `None` in plain batch runs.
    pub cancel: Option<Arc<std::sync::atomic::AtomicBool>>,
    /// Whole-run wall-clock deadline (the serve daemon's per-job
    /// `deadline_secs` knob). Each cell's effective deadline is the
    /// earlier of this and its `cell_timeout`; cells starting after it
    /// has passed fail immediately as `timeout` records, and transient
    /// failures stop retrying once it expires.
    pub job_deadline: Option<Instant>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            workers: 0,
            quick: false,
            sim: SimConfig::serial(),
            engine: None,
            batch: None,
            optimizer: None,
            restart_workers: 1,
            checkpoint: None,
            resume: false,
            cell_timeout: None,
            retries: 0,
            faults: None,
            cancel: None,
            job_deadline: None,
        }
    }
}

impl RunOptions {
    /// The effective worker count for `n_cells` cells.
    pub fn effective_workers(&self, n_cells: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.workers
        };
        requested.clamp(1, n_cells.max(1))
    }

    /// The engine configuration a run of `spec` uses, resolved in
    /// priority order: CLI `--engine` override, then the spec's
    /// `[grid] engine`, then these options' base `sim` configuration.
    /// Because the engines are bit-identical, the resolution changes
    /// wall-clock, never report bytes (asserted by CI's engine matrix).
    pub fn effective_sim(&self, spec: &ExperimentSpec) -> SimConfig {
        let engine = self.engine.or(spec.engine).unwrap_or(self.sim.engine);
        let batch = self.batch.or(spec.batch).unwrap_or(self.sim.batch_size);
        self.sim.with_engine(engine).with_batch(batch)
    }

    /// The classical optimizer a run of `spec` uses, resolved in the same
    /// priority order as the engine: CLI `--optimizer` override, then the
    /// spec's `[grid] optimizer`, then the solver default (COBYLA).
    pub fn effective_optimizer(&self, spec: &ExperimentSpec) -> OptimizerKind {
        self.optimizer.or(spec.optimizer).unwrap_or_default()
    }
}

/// Budget-scaled Choco-Q configuration: big registers get fewer restarts
/// and iterations so a full-suite sweep stays CPU-feasible.
pub fn scaled_choco(n_vars: usize) -> ChocoQConfig {
    let base = ChocoQConfig::default();
    match n_vars {
        0..=12 => ChocoQConfig {
            max_iters: 100,
            ..base
        },
        13..=16 => ChocoQConfig {
            max_iters: 120,
            restarts: 6,
            ..base
        },
        17..=19 => ChocoQConfig {
            max_iters: 60,
            restarts: 4,
            shots: 4_096,
            ..base
        },
        _ => ChocoQConfig {
            max_iters: 25,
            restarts: 1,
            shots: 2_048,
            transpiled_stats: true,
            ..base
        },
    }
}

/// Budget-scaled baseline configuration (the paper runs the baselines
/// with 7 layers; iteration budget shrinks with register size).
pub fn scaled_qaoa(n_vars: usize) -> QaoaConfig {
    let base = QaoaConfig::default();
    match n_vars {
        0..=12 => base,
        13..=16 => QaoaConfig {
            max_iters: 60,
            ..base
        },
        17..=19 => QaoaConfig {
            max_iters: 40,
            shots: 4_096,
            ..base
        },
        _ => QaoaConfig {
            max_iters: 15,
            shots: 2_048,
            ..base
        },
    }
}

/// One resolved problem instance shared by all its cells.
pub struct Instance {
    /// The generated problem.
    pub problem: Problem,
    /// The exact optimum, or why it could not be computed.
    pub optimum: Result<Optimum, String>,
}

/// Resolves every distinct `(problem, seed)` instance a cell list needs.
///
/// # Errors
///
/// Returns generator failures (malformed or oversized families).
pub fn build_instances(cells: &[Cell]) -> Result<BTreeMap<(String, u64), Instance>, String> {
    let mut instances = BTreeMap::new();
    for cell in cells {
        let key = (cell.problem.as_str().to_string(), cell.instance_seed);
        if instances.contains_key(&key) {
            continue;
        }
        let problem = cell.problem.build(cell.instance_seed)?;
        let optimum = solve_exact(&problem).map_err(|e| e.to_string());
        instances.insert(key, Instance { problem, optimum });
    }
    Ok(instances)
}

/// Executes a spec and assembles its report.
///
/// # Errors
///
/// Returns an error for unresolvable specs (bad problem family, failed
/// generators) and for unusable checkpoint journals; per-cell solver
/// failures, panics, and timeouts are recorded in the report instead of
/// aborting the batch.
pub fn execute(spec: &ExperimentSpec, opts: &RunOptions) -> Result<RunReport, String> {
    if !matches!(spec.kind, RunKind::Grid) && (opts.checkpoint.is_some() || opts.resume) {
        return Err(format!(
            "--checkpoint/--resume support only grid runs (this spec is `{}`)",
            spec.kind.label()
        ));
    }
    match spec.kind {
        RunKind::Grid => execute_grid(spec, opts),
        RunKind::Decomposition => crate::special::execute_decomposition(spec, opts),
        RunKind::Ablation => crate::special::execute_ablation(spec, opts),
        RunKind::Support => crate::special::execute_support(spec, opts),
    }
}

/// Expands a grid spec's cells, applying the `--quick` variable cap
/// (dropping oversized instances and reindexing) exactly like the grid
/// executor — shared with `choco-serve`, so a daemon job expands to the
/// same cell list as a plain `choco-cli run` of the same spec.
pub(crate) fn expand_grid_cells(spec: &ExperimentSpec, quick: bool) -> Result<Vec<Cell>, String> {
    let mut cells = spec.expand_cells(quick);

    // `--quick` additionally drops cells above the spec's variable cap —
    // before any exact solve, since generating a Problem is microseconds
    // but the exact optimum of precisely the oversized classes the cap
    // exists to skip is the expensive part.
    if let (true, Some(cap)) = (quick, spec.quick_max_vars) {
        let mut sizes: BTreeMap<(String, u64), usize> = BTreeMap::new();
        for cell in &cells {
            let key = (cell.problem.as_str().to_string(), cell.instance_seed);
            if let std::collections::btree_map::Entry::Vacant(slot) = sizes.entry(key) {
                let n = cell.problem.build(cell.instance_seed)?.n_vars();
                if n > cap {
                    eprintln!(
                        "skip {} seed={} (--quick: {n} vars > {cap})",
                        cell.problem.as_str(),
                        cell.instance_seed
                    );
                }
                slot.insert(n);
            }
        }
        cells.retain(|cell| sizes[&(cell.problem.as_str().to_string(), cell.instance_seed)] <= cap);
        for (index, cell) in cells.iter_mut().enumerate() {
            cell.index = index;
        }
    }
    Ok(cells)
}

fn execute_grid(spec: &ExperimentSpec, opts: &RunOptions) -> Result<RunReport, String> {
    let cells = expand_grid_cells(spec, opts.quick)?;

    // Checkpoint setup: load completed cells from an existing journal
    // (resume) or open a fresh one. The header binds the journal to the
    // spec and to every report-shaping option, so a stale or mismatched
    // journal fails loudly instead of producing a franken-report.
    let header = JournalHeader::for_run(spec, opts, cells.len());
    let (journal, mut completed) = match (&opts.checkpoint, opts.resume) {
        (None, false) => (None, BTreeMap::new()),
        (None, true) => return Err("--resume requires --checkpoint <path>".to_string()),
        (Some(path), resume) => {
            let path = Path::new(path);
            if resume && path.exists() {
                let loaded = load_journal(path, &header)?;
                (Some(CheckpointJournal::append_to(path)?), loaded.completed)
            } else {
                if resume {
                    eprintln!(
                        "checkpoint {}: no journal found; starting fresh",
                        path.display()
                    );
                }
                (
                    Some(CheckpointJournal::create(path, &header)?),
                    BTreeMap::new(),
                )
            }
        }
    };
    let n_resumed = completed.len();
    if n_resumed > 0 {
        eprintln!(
            "checkpoint: resuming — {n_resumed}/{} cells already complete",
            cells.len()
        );
    }
    let pending: Vec<usize> = (0..cells.len())
        .filter(|i| !completed.contains_key(i))
        .collect();
    let pending_cells: Vec<Cell> = pending.iter().map(|&i| cells[i].clone()).collect();
    let instances = build_instances(&pending_cells)?;

    let n_workers = opts.effective_workers(pending.len());
    let sim = opts.effective_sim(spec);
    let done = AtomicUsize::new(0);
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Record>>> = Mutex::new(vec![None; cells.len()]);
    // First journal-append failure; stops all workers (results already
    // computed stay in their slots, but the run fails — a checkpoint
    // that silently stopped recording would defeat its purpose).
    let journal_error: Mutex<Option<String>> = Mutex::new(None);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| {
                let mut workspace = SimWorkspace::new(sim);
                loop {
                    if journal_error
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .is_some()
                    {
                        break;
                    }
                    let p = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = pending.get(p) else { break };
                    let cell = &cells[i];
                    let key = (cell.problem.as_str().to_string(), cell.instance_seed);
                    let cell_started = Instant::now();
                    let record =
                        run_grid_cell(spec, opts, cell, &instances[&key], &mut workspace, sim);
                    if let Some(journal) = &journal {
                        if let Err(e) = journal.append_cell(i, cell_started.elapsed(), &record) {
                            *journal_error.lock().unwrap_or_else(PoisonError::into_inner) = Some(e);
                        }
                    }
                    slots.lock().unwrap_or_else(PoisonError::into_inner)[i] = Some(record);
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    eprintln!(
                        "[{}/{}] {} seed={} {} ({:.1}s elapsed)",
                        finished + n_resumed,
                        cells.len(),
                        cell.problem.as_str(),
                        cell.instance_seed,
                        cell.solver.label(),
                        started.elapsed().as_secs_f64()
                    );
                }
            });
        }
    });
    if let Some(e) = journal_error
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        return Err(e);
    }
    let mut slot_vec = slots.into_inner().unwrap_or_else(PoisonError::into_inner);
    let records: Vec<Record> = (0..cells.len())
        .map(|i| {
            completed
                .remove(&i)
                .or_else(|| slot_vec[i].take())
                .ok_or_else(|| format!("internal: cell {i} produced no record"))
        })
        .collect::<Result<_, String>>()?;
    let summary = summarize(&records);
    Ok(RunReport {
        name: spec.name.clone(),
        description: spec.description.clone(),
        kind: spec.kind.label(),
        spec_seed: spec.seed,
        quick: opts.quick,
        records,
        summary,
    })
}

/// A cell attempt that ran to completion, plus what the engine selection
/// resolved to.
pub(crate) struct CellSuccess {
    outcome: SolveOutcome,
    engine: Option<String>,
    occupancy: Option<u64>,
}

/// Runs one cell under the retry policy and renders its record. Retries
/// apply only to transient failure kinds (panic, timeout) and are
/// bounded by `opts.retries`; the count a cell consumed is reported in
/// its `retries` field either way.
pub(crate) fn run_grid_cell(
    spec: &ExperimentSpec,
    opts: &RunOptions,
    cell: &Cell,
    instance: &Instance,
    workspace: &mut SimWorkspace,
    sim: SimConfig,
) -> Record {
    let mut retries = 0u32;
    let result = loop {
        let attempt = run_cell_attempt(spec, opts, cell, instance, workspace, sim);
        // Sampled *after* the attempt: a cancellation mid-solve surfaces
        // as a timeout (it drains through the same deadline hook), so
        // relabel it — and never retry, the flag is sticky.
        let cancelled = opts
            .cancel
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::SeqCst));
        match attempt {
            Ok(success) => break Ok(success),
            Err(e) if cancelled && e.kind == CellErrorKind::Timeout => {
                let mut e = CellError::new(CellErrorKind::Cancelled, "job cancelled");
                e.retries = retries;
                break Err(e);
            }
            Err(e)
                if e.kind.retryable()
                    && retries < opts.retries
                    && opts.job_deadline.is_none_or(|d| Instant::now() < d) =>
            {
                retries += 1;
                eprintln!(
                    "cell {} ({} seed={} {}): attempt failed ({e}); retry {retries}/{}",
                    cell.index,
                    cell.problem.as_str(),
                    cell.instance_seed,
                    cell.solver.label(),
                    opts.retries
                );
            }
            Err(mut e) => {
                e.retries = retries;
                break Err(e);
            }
        }
    };
    grid_record(spec, opts, cell, instance, result, retries)
}

/// One isolated attempt at a cell: injects any scheduled fault, arms the
/// cooperative deadline, and catches panics. After a caught panic the
/// worker's workspace is replaced wholesale — a panic mid-simulation can
/// leave engine caches in an inconsistent state, and a fresh workspace
/// is cheap next to a cell solve.
fn run_cell_attempt(
    spec: &ExperimentSpec,
    opts: &RunOptions,
    cell: &Cell,
    instance: &Instance,
    workspace: &mut SimWorkspace,
    sim: SimConfig,
) -> Result<CellSuccess, CellError> {
    let fault = opts.faults.as_ref().and_then(|plan| plan.draw(cell.index));
    if let Some(FaultKind::Delay(pause)) = fault {
        std::thread::sleep(pause);
    }
    // An injected timeout is an already-expired deadline: it exercises
    // the exact production path (the first objective evaluation trips it)
    // without depending on host speed. Otherwise the effective deadline
    // is the earlier of the per-cell budget and the whole-run deadline.
    let deadline = match fault {
        Some(FaultKind::Timeout) => Some(Instant::now()),
        _ => {
            let cell = opts.cell_timeout.map(|budget| Instant::now() + budget);
            match (cell, opts.job_deadline) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        }
    };
    // The workspace is not unwind-safe (see `SimWorkspace`'s docs); the
    // assertion is sound because the panic arm below discards it.
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        if matches!(fault, Some(FaultKind::Panic)) {
            panic!("injected fault: forced panic (CHOCO_FAULT_INJECT)");
        }
        // Re-resolve the engine representation per cell: auto/compact
        // fallbacks are sticky within a workspace, so without this the
        // reported engine would depend on which cells shared a worker —
        // and the report would stop being byte-identical across worker
        // counts.
        workspace.reset_engine();
        solve_cell(spec, opts, cell, instance, workspace, deadline)
    }));
    match attempt {
        Ok(Ok(outcome)) => Ok(CellSuccess {
            outcome,
            // What the engine selection actually resolved to, plus the
            // final state's |F| occupancy. The occupancy is
            // engine-invariant (amplitudes are bit-identical across
            // engines); the resolved label is the one field that
            // legitimately differs between engine selections, and the CI
            // engine matrix masks exactly it.
            engine: workspace
                .state()
                .map(|e| e.representation_label().to_string()),
            occupancy: workspace.state().map(|e| e.occupancy() as u64),
        }),
        Ok(Err(error)) => Err(error),
        Err(payload) => {
            // The replacement workspace keeps the (possibly shared) plan
            // cache: it heals its own lock poisoning, and dropping it
            // here would silently cut a daemon worker off from the
            // cross-request cache after one panicking cell.
            *workspace = SimWorkspace::with_plan_cache(sim, workspace.plan_cache());
            Err(CellError::from_panic(payload.as_ref()))
        }
    }
}

/// Dispatches a cell to its solver with the per-cell configuration
/// (budget-scaled, spec-overridden, deadline-armed).
fn solve_cell(
    spec: &ExperimentSpec,
    opts: &RunOptions,
    cell: &Cell,
    instance: &Instance,
    workspace: &mut SimWorkspace,
    deadline: Option<Instant>,
) -> Result<SolveOutcome, CellError> {
    // Fold an unsolvable exact reference into the error channel up
    // front: metrics need the optimum, so solving without one is wasted
    // work.
    if let Err(e) = &instance.optimum {
        return Err(CellError::new(
            CellErrorKind::Solver,
            format!("exact reference unavailable: {e}"),
        ));
    }
    let problem = &instance.problem;
    let cell_seed = spec.cell_seed(cell);
    let optimizer = opts.effective_optimizer(spec);
    let noise = match (spec.noisy, cell.device) {
        (true, Some(device)) => Some(device.model().noise()),
        _ => None,
    };
    match cell.solver {
        SolverKind::ChocoQ => {
            let base = scaled_choco(problem.n_vars());
            let config = ChocoQConfig {
                layers: cell.layers.unwrap_or(base.layers),
                shots: spec.config.shots.unwrap_or(base.shots),
                max_iters: spec.config.max_iters.unwrap_or(base.max_iters),
                restarts: spec.config.restarts.unwrap_or(base.restarts),
                restart_workers: opts.restart_workers,
                optimizer,
                noise_trajectories: spec
                    .config
                    .noise_trajectories
                    .unwrap_or(base.noise_trajectories),
                transpiled_stats: spec
                    .config
                    .transpiled_stats
                    .unwrap_or(base.transpiled_stats),
                eliminate: cell.eliminate,
                seed: cell_seed,
                noise,
                deadline,
                cancel: opts.cancel.clone(),
                ..base
            };
            ChocoQSolver::new(config)
                .solve_with_workspace(problem, workspace)
                .map_err(|e| CellError::from_solver(&e))
        }
        baseline => {
            let base = scaled_qaoa(problem.n_vars());
            let config = QaoaConfig {
                layers: cell.layers.unwrap_or(base.layers),
                shots: spec.config.shots.unwrap_or(base.shots),
                max_iters: spec.config.max_iters.unwrap_or(base.max_iters),
                optimizer,
                noise_trajectories: spec
                    .config
                    .noise_trajectories
                    .unwrap_or(base.noise_trajectories),
                transpiled_stats: spec
                    .config
                    .transpiled_stats
                    .unwrap_or(base.transpiled_stats),
                seed: cell_seed,
                noise,
                deadline,
                cancel: opts.cancel.clone(),
                ..base
            };
            match baseline {
                SolverKind::Penalty => PenaltyQaoaSolver::new(config)
                    .solve_with_workspace(problem, workspace)
                    .map_err(|e| CellError::from_solver(&e)),
                SolverKind::Cyclic => CyclicQaoaSolver::new(config)
                    .solve_with_workspace(problem, workspace)
                    .map_err(|e| CellError::from_solver(&e)),
                SolverKind::Hea => HeaSolver::new(config)
                    .solve_with_workspace(problem, workspace)
                    .map_err(|e| CellError::from_solver(&e)),
                SolverKind::ChocoQ => unreachable!("handled above"),
            }
        }
    }
}

/// Renders one cell result — success or structured failure — as a
/// record. Field order is fixed and shared by both branches (nulls on
/// failure), so every record of a run keeps one schema. Exposed to the
/// serve scheduler for records it produces without a solve attempt
/// (cancelled/expired fast paths, supervisor give-ups).
pub(crate) fn grid_record(
    spec: &ExperimentSpec,
    opts: &RunOptions,
    cell: &Cell,
    instance: &Instance,
    result: Result<CellSuccess, CellError>,
    retries: u32,
) -> Record {
    let problem = &instance.problem;
    let cell_seed = spec.cell_seed(cell);
    let optimizer = opts.effective_optimizer(spec);
    let noisy = spec.noisy && cell.device.is_some();

    let mut record = Record::new();
    record
        .push("index", Field::UInt(cell.index as u64))
        .push("problem", Field::Str(cell.problem.as_str().to_string()))
        .push("instance", Field::Str(problem.name().to_string()))
        .push("instance_seed", Field::UInt(cell.instance_seed))
        .push("cell_seed", Field::UInt(cell_seed))
        .push("solver", Field::Str(cell.solver.label().to_string()))
        .push("optimizer", Field::Str(optimizer.label().to_string()))
        .push("layers", Field::opt_uint(cell.layers.map(|l| l as u64)))
        .push("eliminate", Field::UInt(cell.eliminate as u64))
        .push(
            "device",
            Field::opt_str(cell.device.map(|d| d.model().name.to_string())),
        )
        .push("noisy", Field::Bool(noisy))
        .push("n_vars", Field::UInt(problem.n_vars() as u64))
        .push(
            "n_constraints",
            Field::UInt(problem.constraints().len() as u64),
        );

    // Outcome-dependent fields follow in a fixed order.
    let (status, error, success) = match result {
        Err(e) => ("error", Some(e), None),
        Ok(s) => ("ok", None, Some(s)),
    };
    let outcome = success.as_ref().map(|s| &s.outcome);
    let metrics = outcome.map(|o| {
        let optimum = instance
            .optimum
            .as_ref()
            .expect("solve_cell fails cells without an exact reference");
        o.metrics_with(problem, optimum)
    });
    record
        .push("status", Field::Str(status.into()))
        .push(
            "error",
            Field::opt_str(error.as_ref().map(|e| e.detail.clone())),
        )
        .push(
            "error_kind",
            Field::opt_str(error.as_ref().map(|e| e.kind.label().to_string())),
        )
        .push("retries", Field::UInt(retries as u64))
        .push(
            "engine",
            Field::opt_str(success.as_ref().and_then(|s| s.engine.clone())),
        )
        .push(
            "occupancy",
            Field::opt_uint(success.as_ref().and_then(|s| s.occupancy)),
        )
        .push(
            "optimal_value",
            Field::opt_float(instance.optimum.as_ref().ok().map(|o| o.value)),
        )
        .push(
            "success_rate",
            Field::opt_float(metrics.as_ref().map(|m| m.success_rate)),
        )
        .push(
            "in_constraints_rate",
            Field::opt_float(metrics.as_ref().map(|m| m.in_constraints_rate)),
        )
        .push("arg", Field::opt_float(metrics.as_ref().map(|m| m.arg)))
        .push(
            "expected_objective",
            Field::opt_float(metrics.as_ref().map(|m| m.expected_objective)),
        )
        .push(
            "best_value",
            Field::opt_float(metrics.as_ref().and_then(|m| m.best_found.map(|(_, v)| v))),
        )
        .push(
            "iterations",
            Field::opt_uint(outcome.map(|o| o.iterations as u64)),
        )
        .push(
            "logical_depth",
            Field::opt_uint(outcome.map(|o| o.circuit.logical_depth as u64)),
        )
        .push(
            "transpiled_depth",
            Field::opt_uint(outcome.and_then(|o| o.circuit.transpiled_depth.map(|d| d as u64))),
        )
        .push(
            "transpiled_gates",
            Field::opt_uint(outcome.and_then(|o| o.circuit.transpiled_gates.map(|d| d as u64))),
        )
        .push(
            "two_qubit_gates",
            Field::opt_uint(outcome.and_then(|o| o.circuit.two_qubit_gates.map(|d| d as u64))),
        );

    // Modeled quantum-execution latency on the cell's device. Only the
    // *modeled* component is recorded: the compile/classical parts of the
    // estimate are host-measured wall-clock and would break report
    // determinism.
    let latency = match (cell.device, outcome) {
        (Some(device), Some(o)) => Some(
            LatencyModel::default()
                .estimate_from_outcome(&device.model(), o, o.counts.shots())
                .quantum
                .as_secs_f64(),
        ),
        _ => None,
    };
    record.push("latency_quantum_s", Field::opt_float(latency));

    // Elimination-plan structure for Choco-Q cells (Fig. 13's x-axis).
    let (branches, nonzeros) = if cell.solver == SolverKind::ChocoQ && outcome.is_some() {
        match plan_elimination(problem, cell.eliminate) {
            Ok(plan) => {
                let nonzeros = plan.branches.first().map(|b| {
                    CommuteDriver::build(b.problem.constraints())
                        .map(|d| d.total_nonzeros() as u64)
                        .unwrap_or(0)
                });
                (Some(plan.branches.len() as u64), nonzeros)
            }
            Err(_) => (None, None),
        }
    } else {
        (None, None)
    };
    record
        .push("branches", Field::opt_uint(branches))
        .push("delta_nonzeros", Field::opt_uint(nonzeros));

    if spec.history {
        record.push(
            "cost_history",
            Field::Floats(outcome.map(|o| o.cost_history.clone()).unwrap_or_default()),
        );
    }
    record
}

/// Aggregates a finished grid into the report summary: per-solver mean
/// metrics plus the paper's headline improvement factors. Non-finite
/// metric values (a NaN success rate from a degenerate cell) are
/// excluded from every aggregate rather than poisoning it.
pub(crate) fn summarize(records: &[Record]) -> Record {
    let mut summary = Record::new();
    let errors = records
        .iter()
        .filter(|r| r.get("status").and_then(as_str) == Some("error"))
        .count();
    let retried = records
        .iter()
        .filter_map(|r| match r.get("retries") {
            Some(Field::UInt(n)) => Some(*n),
            _ => None,
        })
        .sum::<u64>();
    summary
        .push("cells", Field::UInt(records.len() as u64))
        .push("errors", Field::UInt(errors as u64))
        .push("retries", Field::UInt(retried));

    for solver in SolverKind::ALL {
        let rows: Vec<&Record> = records
            .iter()
            .filter(|r| r.get("solver").and_then(as_str) == Some(solver.label()))
            .filter(|r| r.get("status").and_then(as_str) == Some("ok"))
            .collect();
        if rows.is_empty() {
            continue;
        }
        let mean = |key: &str| {
            let values: Vec<f64> = rows
                .iter()
                .filter_map(|r| r.get(key).and_then(as_float))
                .filter(|v| v.is_finite())
                .collect();
            values.iter().sum::<f64>() / values.len().max(1) as f64
        };
        match solver {
            SolverKind::Penalty => summary
                .push("penalty_mean_success", Field::Float(mean("success_rate")))
                .push(
                    "penalty_mean_in_constraints",
                    Field::Float(mean("in_constraints_rate")),
                ),
            SolverKind::Cyclic => summary
                .push("cyclic_mean_success", Field::Float(mean("success_rate")))
                .push(
                    "cyclic_mean_in_constraints",
                    Field::Float(mean("in_constraints_rate")),
                ),
            SolverKind::Hea => summary
                .push("hea_mean_success", Field::Float(mean("success_rate")))
                .push(
                    "hea_mean_in_constraints",
                    Field::Float(mean("in_constraints_rate")),
                ),
            SolverKind::ChocoQ => summary
                .push("choco_q_mean_success", Field::Float(mean("success_rate")))
                .push(
                    "choco_q_mean_in_constraints",
                    Field::Float(mean("in_constraints_rate")),
                ),
        };
    }

    // Choco-Q vs the best baseline of the *same cell coordinates* —
    // geometric mean over coordinates where both found the optimum
    // (Table II / Fig. 10 report this factor).
    let mut groups: BTreeMap<String, (Option<f64>, f64)> = BTreeMap::new();
    for r in records {
        let Some(success) = r.get("success_rate").and_then(as_float) else {
            continue;
        };
        if !success.is_finite() {
            continue;
        }
        let key = format!(
            "{}|{}|{}|{}|{}",
            r.get("problem").and_then(as_str).unwrap_or(""),
            r.get("instance_seed").map(field_text).unwrap_or_default(),
            r.get("layers").map(field_text).unwrap_or_default(),
            r.get("eliminate").map(field_text).unwrap_or_default(),
            r.get("device").and_then(as_str).unwrap_or("ideal"),
        );
        let entry = groups.entry(key).or_insert((None, 0.0));
        if r.get("solver").and_then(as_str) == Some(SolverKind::ChocoQ.label()) {
            entry.0 = Some(success);
        } else {
            entry.1 = entry.1.max(success);
        }
    }
    let ratios: Vec<f64> = groups
        .values()
        .filter_map(|&(choco, best_baseline)| match choco {
            Some(c) if c > 0.0 && best_baseline > 0.0 => Some(c / best_baseline),
            _ => None,
        })
        .collect();
    if !ratios.is_empty() {
        summary.push(
            "choco_vs_best_baseline_success_gmean",
            Field::Float(choco_mathkit::geometric_mean(&ratios)),
        );
    }
    summary
}

fn as_str(field: &Field) -> Option<&str> {
    match field {
        Field::Str(s) => Some(s),
        _ => None,
    }
}

fn as_float(field: &Field) -> Option<f64> {
    match field {
        Field::Float(f) => Some(*f),
        Field::UInt(u) => Some(*u as f64),
        _ => None,
    }
}

fn field_text(field: &Field) -> String {
    match field {
        Field::Null => "-".into(),
        Field::Bool(b) => b.to_string(),
        Field::UInt(u) => u.to_string(),
        Field::Float(f) => format!("{f}"),
        Field::Str(s) => s.clone(),
        Field::Floats(_) => "[..]".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExperimentSpec;

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec::parse_str(
            r#"
name = "tiny"
description = "unit-test grid"
[grid]
problems = ["F1"]
solvers = ["choco-q", "cyclic"]
[config]
shots = 1000
max_iters = 10
restarts = 1
transpiled_stats = false
"#,
        )
        .expect("valid spec")
    }

    #[test]
    fn grid_runs_and_orders_records() {
        let report = execute(&tiny_spec(), &RunOptions::default()).unwrap();
        assert_eq!(report.records.len(), 2);
        assert_eq!(
            report.records[0].get("solver").and_then(as_str),
            Some("choco-q")
        );
        assert_eq!(report.records[0].get("status").and_then(as_str), Some("ok"));
        let success = report.records[0]
            .get("success_rate")
            .and_then(as_float)
            .unwrap();
        assert!(success > 0.0, "choco-q should solve F1 sometimes");
        let incons = report.records[0]
            .get("in_constraints_rate")
            .and_then(as_float)
            .unwrap();
        assert!((incons - 1.0).abs() < 1e-9, "hard constraints");
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let spec = tiny_spec();
        let one = execute(
            &spec,
            &RunOptions {
                workers: 1,
                ..RunOptions::default()
            },
        )
        .unwrap();
        let two = execute(
            &spec,
            &RunOptions {
                workers: 2,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(one.to_json(), two.to_json());
        assert_eq!(one.to_csv(), two.to_csv());
    }

    #[test]
    fn solver_failures_become_error_records() {
        // Knapsack's budget row is not summation format: cyclic cannot
        // encode it and must fail gracefully, not abort the batch.
        let spec = ExperimentSpec::parse_str(
            r#"
name = "err"
[grid]
problems = ["B1"]
solvers = ["cyclic"]
[config]
shots = 500
max_iters = 5
"#,
        )
        .unwrap();
        let report = execute(&spec, &RunOptions::default()).unwrap();
        assert_eq!(
            report.records[0].get("status").and_then(as_str),
            Some("error")
        );
        assert_eq!(
            report.records[0].get("error_kind").and_then(as_str),
            Some("solver"),
            "deterministic rejection classifies as a solver error"
        );
        assert_eq!(report.records[0].get("retries"), Some(&Field::UInt(0)));
        assert_eq!(report.summary.get("errors"), Some(&Field::UInt(1)));
    }

    #[test]
    fn resume_without_checkpoint_is_rejected() {
        let err = execute(
            &tiny_spec(),
            &RunOptions {
                resume: true,
                ..RunOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("--checkpoint"), "{err}");
    }

    #[test]
    fn quick_cap_drops_cells_and_reindexes() {
        let spec = ExperimentSpec::parse_str(
            r#"
name = "cap"
[grid]
problems = ["F1", "F2"]
solvers = ["hea"]
quick_max_vars = 8
[config]
shots = 200
max_iters = 3
"#,
        )
        .unwrap();
        // F2 has 10 vars: dropped under --quick, kept otherwise.
        let full = execute(&spec, &RunOptions::default()).unwrap();
        assert_eq!(full.records.len(), 2);
        let quick = execute(
            &spec,
            &RunOptions {
                quick: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(quick.records.len(), 1);
        assert_eq!(quick.records[0].get("index"), Some(&Field::UInt(0)));
    }

    #[test]
    fn scaled_configs_shrink_with_size() {
        assert!(scaled_choco(8).max_iters > scaled_choco(20).max_iters);
        assert!(scaled_qaoa(8).max_iters > scaled_qaoa(20).max_iters);
    }

    #[test]
    fn engine_resolution_prefers_cli_then_spec_then_default() {
        let mut spec = tiny_spec();
        let opts = RunOptions::default();
        assert_eq!(opts.effective_sim(&spec).engine, EngineKind::Dense);
        spec.engine = Some(EngineKind::Sparse);
        assert_eq!(opts.effective_sim(&spec).engine, EngineKind::Sparse);
        let cli = RunOptions {
            engine: Some(EngineKind::Auto),
            ..RunOptions::default()
        };
        assert_eq!(cli.effective_sim(&spec).engine, EngineKind::Auto);
        // Non-engine fields pass through untouched.
        assert_eq!(cli.effective_sim(&spec).threads, cli.sim.threads);
    }

    #[test]
    fn batch_resolution_prefers_cli_then_spec_then_default() {
        let mut spec = tiny_spec();
        let opts = RunOptions::default();
        assert_eq!(opts.effective_sim(&spec).batch_size, 1);
        spec.batch = Some(4);
        assert_eq!(opts.effective_sim(&spec).batch_size, 4);
        let cli = RunOptions {
            batch: Some(8),
            ..RunOptions::default()
        };
        assert_eq!(cli.effective_sim(&spec).batch_size, 8);
        // Batch and engine resolve independently from their own sources.
        spec.engine = Some(EngineKind::Compact);
        let sim = cli.effective_sim(&spec);
        assert_eq!((sim.engine, sim.batch_size), (EngineKind::Compact, 8));
    }

    #[test]
    fn batched_grid_report_is_byte_identical_to_serial() {
        // The runner-level determinism contract the CI step byte-compares:
        // the compact engine at any batch width produces the same report
        // bytes as batch 1 (and as any other engine, modulo the engine
        // label the matrix masks).
        let spec = tiny_spec();
        let base = RunOptions {
            engine: Some(EngineKind::Compact),
            ..RunOptions::default()
        };
        let serial = execute(&spec, &base).unwrap().to_json();
        for k in [4usize, 8] {
            let batched = execute(
                &spec,
                &RunOptions {
                    batch: Some(k),
                    ..base.clone()
                },
            )
            .unwrap()
            .to_json();
            assert_eq!(serial, batched, "batch {k}");
        }
    }

    #[test]
    fn summaries_exclude_non_finite_metrics() {
        let ok_row = |solver: &str, success: f64| {
            let mut r = Record::new();
            r.push("problem", Field::Str("F1".into()))
                .push("instance_seed", Field::UInt(1))
                .push("layers", Field::Null)
                .push("eliminate", Field::UInt(0))
                .push("device", Field::Null)
                .push("solver", Field::Str(solver.into()))
                .push("status", Field::Str("ok".into()))
                .push("retries", Field::UInt(0))
                .push("success_rate", Field::Float(success))
                .push("in_constraints_rate", Field::Float(success));
            r
        };
        let records = vec![
            ok_row("choco-q", 0.8),
            ok_row("choco-q", f64::NAN),
            ok_row("hea", 0.4),
            ok_row("hea", f64::INFINITY),
        ];
        let summary = summarize(&records);
        match summary.get("choco_q_mean_success") {
            Some(Field::Float(m)) => assert!((m - 0.8).abs() < 1e-12, "NaN excluded: {m}"),
            other => panic!("missing mean: {other:?}"),
        }
        match summary.get("hea_mean_success") {
            Some(Field::Float(m)) => assert!((m - 0.4).abs() < 1e-12, "inf excluded: {m}"),
            other => panic!("missing mean: {other:?}"),
        }
        match summary.get("choco_vs_best_baseline_success_gmean") {
            Some(Field::Float(g)) => {
                assert!(g.is_finite(), "gmean stays finite: {g}");
                assert!((g - 2.0).abs() < 1e-12, "0.8 / 0.4: {g}");
            }
            other => panic!("missing gmean: {other:?}"),
        }
    }

    /// Drops the `"engine"` annotation — the one per-record field that
    /// legitimately differs between engine selections (it reports what
    /// the selection *resolved to*). Everything else, including the
    /// engine-invariant `occupancy`, must stay byte-identical.
    fn mask_engine_field(json: &str) -> String {
        json.lines()
            .filter(|line| !line.trim_start().starts_with("\"engine\":"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn grid_reports_are_byte_identical_across_engines() {
        // The whole point of the engine abstraction: selection is a
        // performance decision, not a numerical one. choco-q cells stay
        // subspace-confined (sparse / compact-plan executed); the
        // penalty-style baseline forces the dense fallback mid-run — all
        // paths must reproduce the dense report byte-for-byte, up to the
        // resolved-engine annotation itself.
        let spec = ExperimentSpec::parse_str(
            r#"
name = "engines"
[grid]
problems = ["F1"]
solvers = ["choco-q", "hea"]
[config]
shots = 600
max_iters = 6
restarts = 1
transpiled_stats = false
"#,
        )
        .unwrap();
        let run = |engine: EngineKind| {
            let opts = RunOptions {
                engine: Some(engine),
                ..RunOptions::default()
            };
            execute(&spec, &opts).unwrap().to_json()
        };
        let dense = mask_engine_field(&run(EngineKind::Dense));
        for kind in [EngineKind::Sparse, EngineKind::Compact, EngineKind::Auto] {
            assert_eq!(dense, mask_engine_field(&run(kind)), "{kind} diverged");
        }
    }

    #[test]
    fn records_report_the_resolved_engine_and_occupancy() {
        // You can now tell from a report which engine a selection
        // actually resolved to: a confined choco-q cell executes on the
        // compact plan, while the register-filling HEA baseline falls
        // back to dense — under one `--engine compact` run. (F2's 10
        // variables put the mixer above the compile floor; registers of
        // ≤ 6 qubits compile even when full.)
        let spec = ExperimentSpec::parse_str(
            r#"
name = "resolved"
[grid]
problems = ["F2"]
solvers = ["choco-q", "hea"]
[config]
shots = 400
max_iters = 5
restarts = 1
transpiled_stats = false
"#,
        )
        .unwrap();
        let opts = RunOptions {
            engine: Some(EngineKind::Compact),
            ..RunOptions::default()
        };
        let report = execute(&spec, &opts).unwrap();
        let engine_of = |i: usize| report.records[i].get("engine").and_then(as_str);
        assert_eq!(engine_of(0), Some("compact"), "confined cell");
        assert_eq!(engine_of(1), Some("dense"), "mixer cell falls back");
        for record in &report.records {
            let occupancy = match record.get("occupancy") {
                Some(Field::UInt(u)) => *u,
                other => panic!("occupancy missing: {other:?}"),
            };
            assert!(occupancy >= 1, "final state has support");
        }
        // The CSV schema carries both columns.
        let csv = report.to_csv();
        let header = csv.lines().next().unwrap();
        assert!(header.contains("engine") && header.contains("occupancy"));
    }
}
