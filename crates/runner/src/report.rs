//! Run reports: typed records with deterministic JSON / CSV emission.
//!
//! Records hold only *deterministic* quantities — metrics, modeled
//! latency, circuit statistics, seeds — never host wall-clock times, so a
//! report is byte-identical across repeated runs and across any worker
//! count (wall-clock progress goes to stderr instead). Field order is the
//! insertion order of the producing harness, identical for every record
//! of a run, which keeps the JSON stable and lets CSV share one header.

use std::borrow::Cow;
use std::fmt::Write as _;

/// One value in a record.
#[derive(Clone, Debug, PartialEq)]
pub enum Field {
    /// Absent / not applicable (JSON `null`, empty CSV cell).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A float (non-finite values emit as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array of floats (e.g. a cost history); skipped in CSV.
    Floats(Vec<f64>),
}

impl Field {
    /// Optional unsigned value → field.
    pub fn opt_uint<T: Into<u64>>(v: Option<T>) -> Field {
        v.map_or(Field::Null, |x| Field::UInt(x.into()))
    }

    /// Optional float value → field.
    pub fn opt_float(v: Option<f64>) -> Field {
        v.map_or(Field::Null, Field::Float)
    }

    /// Optional string value → field.
    pub fn opt_str(v: Option<String>) -> Field {
        v.map_or(Field::Null, Field::Str)
    }

    pub(crate) fn write_json(&self, out: &mut String) {
        match self {
            Field::Null => out.push_str("null"),
            Field::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Field::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Field::Float(f) => write_json_f64(out, *f),
            Field::Str(s) => write_json_str(out, s),
            Field::Floats(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_json_f64(out, *x);
                }
                out.push(']');
            }
        }
    }

    fn csv_cell(&self) -> String {
        match self {
            Field::Null | Field::Floats(_) => String::new(),
            Field::Bool(b) => b.to_string(),
            Field::UInt(u) => u.to_string(),
            Field::Float(f) if f.is_finite() => format!("{f}"),
            Field::Float(_) => String::new(),
            Field::Str(s) => {
                if s.contains(',') || s.contains('"') || s.contains('\n') {
                    format!("\"{}\"", s.replace('"', "\"\""))
                } else {
                    s.clone()
                }
            }
        }
    }

    /// Short cell text for the human table (`Floats` summarized).
    fn table_cell(&self) -> String {
        match self {
            Field::Null => "-".into(),
            Field::Bool(b) => b.to_string(),
            Field::UInt(u) => u.to_string(),
            Field::Float(f) if f.is_finite() => format!("{f:.4}"),
            Field::Float(_) => "-".into(),
            Field::Str(s) => s.clone(),
            Field::Floats(xs) => format!("[{} pts]", xs.len()),
        }
    }
}

fn write_json_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        let _ = write!(out, "{f}");
    } else {
        out.push_str("null");
    }
}

pub(crate) fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One report row: ordered `(key, value)` pairs. Keys are usually
/// `'static` literals from the producing harness; records reloaded from
/// a checkpoint journal carry owned keys — emission is identical either
/// way.
#[derive(Clone, Debug, Default)]
pub struct Record {
    fields: Vec<(Cow<'static, str>, Field)>,
}

impl Record {
    /// An empty record.
    pub fn new() -> Record {
        Record::default()
    }

    /// Appends a field (keys must be unique per record).
    pub fn push(&mut self, key: impl Into<Cow<'static, str>>, value: Field) -> &mut Self {
        let key = key.into();
        debug_assert!(
            self.fields.iter().all(|(k, _)| *k != key),
            "duplicate record key {key}"
        );
        self.fields.push((key, value));
        self
    }

    /// Looks a field up by key.
    pub fn get(&self, key: &str) -> Option<&Field> {
        self.fields
            .iter()
            .find(|(k, _)| k.as_ref() == key)
            .map(|(_, v)| v)
    }

    /// The fields in insertion order.
    pub fn fields(&self) -> &[(Cow<'static, str>, Field)] {
        &self.fields
    }

    /// Writes the record as one compact JSON line (the checkpoint
    /// journal's cell format). Values serialize exactly as in
    /// [`RunReport::to_json`], so a reloaded record re-emits the same
    /// bytes.
    pub(crate) fn write_json_line(&self, out: &mut String) {
        out.push('{');
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_json_str(out, key);
            out.push_str(": ");
            value.write_json(out);
        }
        out.push('}');
    }

    fn write_json(&self, out: &mut String, indent: &str) {
        out.push('{');
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n{indent}  ");
            write_json_str(out, key);
            out.push_str(": ");
            value.write_json(out);
        }
        let _ = write!(out, "\n{indent}}}");
    }
}

/// A complete experiment report.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Experiment name (from the spec).
    pub name: String,
    /// Spec description.
    pub description: String,
    /// Harness kind label (`"grid"` …).
    pub kind: &'static str,
    /// The spec's master seed.
    pub spec_seed: u64,
    /// Whether `--quick` trimmed the axes.
    pub quick: bool,
    /// One record per grid cell / special-kind row.
    pub records: Vec<Record>,
    /// Aggregates over the records (means, improvement factors).
    pub summary: Record,
}

impl RunReport {
    /// Serializes the full report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"experiment\": ");
        write_json_str(&mut out, &self.name);
        out.push_str(",\n  \"description\": ");
        write_json_str(&mut out, &self.description);
        let _ = write!(
            out,
            ",\n  \"kind\": \"{}\",\n  \"spec_seed\": {},\n  \"quick\": {},\n  \"cells\": [",
            self.kind, self.spec_seed, self.quick
        );
        for (i, record) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            record.write_json(&mut out, "    ");
        }
        if self.records.is_empty() {
            out.push_str("],");
        } else {
            out.push_str("\n  ],");
        }
        out.push_str("\n  \"summary\": ");
        self.summary.write_json(&mut out, "  ");
        out.push_str("\n}\n");
        out
    }

    /// Serializes the records as CSV (header from the first record;
    /// `Floats` fields are omitted).
    pub fn to_csv(&self) -> String {
        let Some(first) = self.records.first() else {
            return String::new();
        };
        let keys: Vec<&str> = first
            .fields()
            .iter()
            .filter(|(_, v)| !matches!(v, Field::Floats(_)))
            .map(|(k, _)| k.as_ref())
            .collect();
        let mut out = keys.join(",");
        out.push('\n');
        for record in &self.records {
            let row: Vec<String> = keys
                .iter()
                .map(|k| record.get(k).map_or(String::new(), Field::csv_cell))
                .collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders an aligned text table of the records plus the summary, for
    /// terminal consumption.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.name, self.description);
        let Some(first) = self.records.first() else {
            let _ = writeln!(out, "(no cells)");
            return out;
        };
        let keys: Vec<&str> = first
            .fields()
            .iter()
            .filter(|(k, _)| k.as_ref() != "index")
            .map(|(k, _)| k.as_ref())
            .collect();
        let mut rows: Vec<Vec<String>> = vec![keys.iter().map(|k| k.to_string()).collect()];
        for record in &self.records {
            rows.push(
                keys.iter()
                    .map(|k| record.get(k).map_or("-".into(), Field::table_cell))
                    .collect(),
            );
        }
        let widths: Vec<usize> = (0..keys.len())
            .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        for (i, row) in rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  ").trim_end());
            if i == 0 {
                let total = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
                let _ = writeln!(out, "{}", "-".repeat(total));
            }
        }
        if !self.summary.fields().is_empty() {
            let _ = writeln!(out, "\nsummary:");
            for (key, value) in self.summary.fields() {
                let _ = writeln!(out, "  {key} = {}", value.table_cell());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let mut a = Record::new();
        a.push("index", Field::UInt(0))
            .push("case", Field::Str("F1".into()))
            .push("success_rate", Field::Float(0.5))
            .push("depth", Field::Null)
            .push("history", Field::Floats(vec![1.0, 0.5]));
        let mut b = Record::new();
        b.push("index", Field::UInt(1))
            .push("case", Field::Str("with,comma".into()))
            .push("success_rate", Field::Float(f64::NAN))
            .push("depth", Field::UInt(12))
            .push("history", Field::Floats(vec![]));
        let mut summary = Record::new();
        summary.push("cells", Field::UInt(2));
        RunReport {
            name: "t".into(),
            description: "d \"quoted\"".into(),
            kind: "grid",
            spec_seed: 1,
            quick: false,
            records: vec![a, b],
            summary,
        }
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let json = sample_report().to_json();
        assert_eq!(json, sample_report().to_json());
        assert!(json.contains("\"d \\\"quoted\\\"\""));
        assert!(json.contains("\"success_rate\": 0.5"));
        assert!(json.contains("\"success_rate\": null"), "NaN → null");
        assert!(json.contains("\"history\": [1, 0.5]"));
        assert!(json.contains("\"summary\""));
    }

    #[test]
    fn csv_shares_header_and_quotes_commas() {
        let csv = sample_report().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "index,case,success_rate,depth");
        assert_eq!(lines.next().unwrap(), "0,F1,0.5,");
        assert_eq!(lines.next().unwrap(), "1,\"with,comma\",,12");
    }

    #[test]
    fn table_renders_all_records() {
        let table = sample_report().to_table();
        assert!(table.contains("success_rate"));
        assert!(table.contains("F1"));
        assert!(table.contains("cells = 2"));
        assert!(!table.contains("index  "), "index column dropped");
    }

    #[test]
    fn empty_report_serializes() {
        let report = RunReport {
            name: "e".into(),
            description: String::new(),
            kind: "grid",
            spec_seed: 0,
            quick: true,
            records: vec![],
            summary: Record::new(),
        };
        assert!(report.to_json().contains("\"cells\": []"));
        assert_eq!(report.to_csv(), "");
        assert!(report.to_table().contains("no cells"));
    }
}
