//! The non-grid experiment kinds: decomposition scaling (Fig. 12), the
//! optimization-pass ablation (Fig. 14), and circuit support growth
//! (Fig. 9b).
//!
//! These harnesses run serially — their cell counts are tiny and the
//! Trotter baseline's timeout handling wants one case at a time. Measured
//! wall-clock goes to stderr; the report keeps only deterministic
//! quantities (depths, memory, support counts, metrics).

use crate::report::{Field, Record, RunReport};
use crate::run::{build_instances, scaled_choco, RunOptions};
use crate::spec::{ExperimentSpec, SolverKind};
use choco_core::{
    lemma2_stats, plan_elimination, support_profile_with, trotter_decompose, ChocoQConfig,
    ChocoQSolver, CommuteDriver, TrotterConfig,
};
use choco_mathkit::{expm, Complex64, LinEq, LinSystem};
use choco_model::Problem;
use choco_qsim::two_level_decompose;
use std::sync::Arc;
use std::time::Duration;

/// One summation constraint over `n` variables: the driver every
/// decomposition method has to implement (Fig. 12's scaling axis).
fn ring_driver(n: usize) -> CommuteDriver {
    let mut sys = LinSystem::new(n);
    sys.push(LinEq::new((0..n).map(|i| (i, 1i64)), 1));
    CommuteDriver::build(&sys).expect("ring driver")
}

/// Fig. 12: Trotter + exact synthesis vs the Lemma-2 lowering, as the
/// register grows.
pub(crate) fn execute_decomposition(
    spec: &ExperimentSpec,
    opts: &RunOptions,
) -> Result<RunReport, String> {
    let d = &spec.decomposition;
    let (trotter_max, lemma2_max) = if opts.quick {
        (d.quick_trotter_max, d.quick_lemma2_max)
    } else {
        (d.trotter_max, d.lemma2_max)
    };
    let timeout = Duration::from_secs(d.timeout_secs);
    let mut records = Vec::new();
    let mut index = 0u64;
    for n in 2..=lemma2_max {
        let driver = ring_driver(n);
        if n <= trotter_max {
            let report = trotter_decompose(
                &driver,
                d.angle,
                &TrotterConfig {
                    slices: d.slices,
                    timeout,
                },
            );
            eprintln!(
                "trotter n={n}: {:.3}s{}",
                report.total_time().as_secs_f64(),
                if report.timed_out { " (TIMEOUT)" } else { "" }
            );
            let mut record = Record::new();
            record
                .push("index", Field::UInt(index))
                .push("method", Field::Str("trotter".into()))
                .push("n_qubits", Field::UInt(n as u64))
                .push(
                    "depth",
                    if report.timed_out {
                        Field::Null
                    } else {
                        Field::Float(report.depth as f64)
                    },
                )
                .push("memory_bytes", Field::UInt(report.memory_bytes as u64))
                .push("timed_out", Field::Bool(report.timed_out));
            records.push(record);
            index += 1;
        }
        let l2 = lemma2_stats(&driver, d.angle);
        eprintln!("choco-q n={n}: {:.4}s", l2.time.as_secs_f64());
        let mut record = Record::new();
        record
            .push("index", Field::UInt(index))
            .push("method", Field::Str("choco-q".into()))
            .push("n_qubits", Field::UInt(n as u64))
            .push("depth", Field::Float(l2.depth as f64))
            .push("memory_bytes", Field::UInt(l2.memory_bytes as u64))
            .push("timed_out", Field::Bool(false));
        records.push(record);
        index += 1;
    }
    let mut summary = Record::new();
    summary
        .push("cells", Field::UInt(records.len() as u64))
        .push("trotter_max", Field::UInt(trotter_max as u64))
        .push("lemma2_max", Field::UInt(lemma2_max as u64));
    Ok(RunReport {
        name: spec.name.clone(),
        description: spec.description.clone(),
        kind: spec.kind.label(),
        spec_seed: spec.seed,
        quick: opts.quick,
        records,
        summary,
    })
}

/// Depth of the serialized driver when each block is lowered by *generic*
/// two-level synthesis instead of Lemma 2 (the Opt2 ablation). Blocks are
/// independent, so depths add.
fn generic_block_depth(problem: &Problem) -> Option<f64> {
    let driver = CommuteDriver::build(problem.constraints()).ok()?;
    let mut total = 0f64;
    for t in driver.terms() {
        let u = &t.u;
        let support: Vec<usize> = (0..u.len()).filter(|&i| u[i] != 0).collect();
        let k = support.len();
        // Dense e^{-iβ Hc} on the support qubits only.
        let compressed: Vec<i8> = support.iter().map(|&i| u[i]).collect();
        let h = CommuteDriver::term_matrix(&compressed);
        let unitary = expm(&h.scale(Complex64::new(0.0, -0.8)));
        let cost = two_level_decompose(&unitary).cost_estimate(k);
        total += cost.depth_estimate as f64;
    }
    Some(total)
}

/// Fig. 14: the Opt1/Opt2/Opt3 ablation under the spec's device noise.
pub(crate) fn execute_ablation(
    spec: &ExperimentSpec,
    opts: &RunOptions,
) -> Result<RunReport, String> {
    let device = spec.devices.iter().flatten().next().copied();
    let eliminate = spec.eliminate.iter().copied().max().unwrap_or(2);
    let cells = spec.expand_cells(opts.quick);
    let instances = build_instances(&cells)?;
    let mut workspace = choco_qsim::SimWorkspace::new(opts.effective_sim(spec));
    let mut records = Vec::new();
    let mut index = 0u64;
    for problem_ref in spec.effective_problems(opts.quick) {
        for &instance_seed in &spec.seeds {
            let key = (problem_ref.as_str().to_string(), instance_seed);
            let instance = &instances[&key];
            let problem = &instance.problem;

            // Opt1 (serialization + generic synthesis): depth analytically;
            // success is not simulatable at that depth on NISQ hardware —
            // the paper's point.
            let mut push_analytic = |label: &str, depth: Option<f64>, idx: &mut u64| {
                let mut record = Record::new();
                record
                    .push("index", Field::UInt(*idx))
                    .push("problem", Field::Str(problem_ref.as_str().to_string()))
                    .push("instance_seed", Field::UInt(instance_seed))
                    .push("config", Field::Str(label.to_string()))
                    .push("depth", Field::opt_float(depth))
                    .push("success_rate", Field::Null)
                    .push("deployable", Field::Bool(false));
                records.push(record);
                *idx += 1;
            };
            push_analytic("Opt1", generic_block_depth(problem), &mut index);
            let opt13 = plan_elimination(problem, eliminate).ok().and_then(|plan| {
                plan.branches
                    .first()
                    .and_then(|b| generic_block_depth(&b.problem))
            });
            push_analytic("Opt1+3", opt13, &mut index);

            // Opt1+2 and Opt1+2+3: the real solver under noise.
            for (label, elim) in [("Opt1+2", 0usize), ("Opt1+2+3", eliminate)] {
                let base = scaled_choco(problem.n_vars());
                let config = ChocoQConfig {
                    eliminate: elim,
                    optimizer: opts.effective_optimizer(spec),
                    restart_workers: opts.restart_workers,
                    max_iters: spec.config.max_iters.unwrap_or(60),
                    restarts: spec.config.restarts.unwrap_or(2),
                    shots: spec.config.shots.unwrap_or(4_000),
                    noise: device.map(|dev| dev.model().noise()),
                    noise_trajectories: spec.config.noise_trajectories.unwrap_or(12),
                    transpiled_stats: true,
                    seed: spec.cell_seed(&crate::spec::Cell {
                        index: 0,
                        problem: problem_ref.clone(),
                        instance_seed,
                        solver: SolverKind::ChocoQ,
                        layers: None,
                        eliminate: elim,
                        device,
                    }),
                    ..base
                };
                let mut record = Record::new();
                record
                    .push("index", Field::UInt(index))
                    .push("problem", Field::Str(problem_ref.as_str().to_string()))
                    .push("instance_seed", Field::UInt(instance_seed))
                    .push("config", Field::Str(label.to_string()));
                match ChocoQSolver::new(config).solve_with_workspace(problem, &mut workspace) {
                    Ok(outcome) => {
                        let success = instance
                            .optimum
                            .as_ref()
                            .ok()
                            .map(|opt| outcome.metrics_with(problem, opt).success_rate);
                        record
                            .push(
                                "depth",
                                Field::opt_float(
                                    outcome.circuit.transpiled_depth.map(|x| x as f64),
                                ),
                            )
                            .push("success_rate", Field::opt_float(success))
                            .push("deployable", Field::Bool(true));
                    }
                    Err(e) => {
                        eprintln!("{label} on {}: {e}", problem.name());
                        record
                            .push("depth", Field::Null)
                            .push("success_rate", Field::Null)
                            .push("deployable", Field::Bool(false));
                    }
                }
                records.push(record);
                index += 1;
            }
        }
    }
    let mut summary = Record::new();
    summary
        .push("cells", Field::UInt(records.len() as u64))
        .push(
            "device",
            Field::opt_str(device.map(|d| d.model().name.to_string())),
        );
    Ok(RunReport {
        name: spec.name.clone(),
        description: spec.description.clone(),
        kind: spec.kind.label(),
        spec_seed: spec.seed,
        quick: opts.quick,
        records,
        summary,
    })
}

/// Fig. 9(b): the number of basis states supporting the state through the
/// Choco-Q circuit (quantum parallelism growth).
///
/// The profile runs on the engine the spec/CLI selects and counts support
/// through the engine's occupancy-aware counter — with `engine = "sparse"`
/// the harness never allocates a `2^n` buffer, which is what lets
/// `experiments/scaling_sparse.toml` profile registers the dense engine
/// cannot hold (the counts themselves are engine-independent).
/// Record keys for the five support sample points.
const QUARTER_KEYS: [&str; 5] = [
    "support_at_0pct",
    "support_at_25pct",
    "support_at_50pct",
    "support_at_75pct",
    "support_at_100pct",
];

/// The indices of the 0/25/50/75/100% sample points into a support
/// profile with `len` snapshots. Errors on an empty profile instead of
/// underflowing `len - 1` (a zero-iteration solve produces no snapshots).
pub(crate) fn quarter_indices(len: usize) -> Result<[usize; 5], String> {
    if len == 0 {
        return Err("support profile is empty (the solve recorded no snapshots)".into());
    }
    let mut out = [0usize; 5];
    for (quarter, slot) in out.iter_mut().enumerate() {
        *slot = (len - 1) * quarter / 4;
    }
    Ok(out)
}

pub(crate) fn execute_support(
    spec: &ExperimentSpec,
    opts: &RunOptions,
) -> Result<RunReport, String> {
    let cells = spec.expand_cells(opts.quick);
    let instances = build_instances(&cells)?;
    let sim = opts.effective_sim(spec);
    let mut records = Vec::new();
    let mut index = 0u64;
    for problem_ref in spec.effective_problems(opts.quick) {
        for &instance_seed in &spec.seeds {
            let key = (problem_ref.as_str().to_string(), instance_seed);
            let problem = &instances[&key].problem;
            let driver = CommuteDriver::build(problem.constraints())
                .map_err(|e| format!("{}: {e}", problem.name()))?;
            let initial = problem
                .first_feasible()
                .map(|x| driver.encode_state(x))
                .ok_or_else(|| format!("{}: infeasible", problem.name()))?;
            let ordered = driver.ordered_terms(initial);
            let poly = Arc::new(problem.cost_poly());
            let params = ChocoQSolver::initial_params(1, ordered.len());
            let circuit =
                ChocoQSolver::build_circuit(&driver, &poly, &ordered, initial, 1, &params);
            let profile = support_profile_with(&circuit, 1e-9, sim);
            let mut record = Record::new();
            record
                .push("index", Field::UInt(index))
                .push("problem", Field::Str(problem_ref.as_str().to_string()))
                .push("instance_seed", Field::UInt(instance_seed))
                .push("n_vars", Field::UInt(problem.n_vars() as u64))
                .push("gates", Field::UInt(circuit.len() as u64));
            match quarter_indices(profile.len()) {
                Ok(quarters) => {
                    record.push("status", Field::Str("ok".into()));
                    for (idx, key) in quarters.into_iter().zip(QUARTER_KEYS) {
                        record.push(key, Field::UInt(profile[idx] as u64));
                    }
                }
                Err(e) => {
                    // A zero-iteration solve (e.g. under a tight cell
                    // timeout) yields an empty profile; emit an error
                    // record rather than underflowing `len() - 1`.
                    record.push("status", Field::Str("error".into())).push(
                        "error",
                        Field::Str(format!("{}: {e}", problem_ref.as_str())),
                    );
                    for key in QUARTER_KEYS {
                        record.push(key, Field::Null);
                    }
                }
            }
            records.push(record);
            index += 1;
        }
    }
    let mut summary = Record::new();
    summary.push("cells", Field::UInt(records.len() as u64));
    Ok(RunReport {
        name: spec.name.clone(),
        description: spec.description.clone(),
        kind: spec.kind.label(),
        spec_seed: spec.seed,
        quick: opts.quick,
        records,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::execute;
    use crate::spec::ExperimentSpec;

    #[test]
    fn decomposition_report_has_both_methods() {
        let spec = ExperimentSpec::parse_str(
            r#"
name = "decomp"
kind = "decomposition"
[decomposition]
trotter_max = 4
lemma2_max = 6
slices = 8
timeout_secs = 5
"#,
        )
        .unwrap();
        let report = execute(&spec, &RunOptions::default()).unwrap();
        // n = 2..=4 twice + n = 5..=6 lemma2-only.
        assert_eq!(report.records.len(), 3 * 2 + 2);
        let choco_depths: Vec<f64> = report
            .records
            .iter()
            .filter(|r| r.get("method") == Some(&Field::Str("choco-q".into())))
            .filter_map(|r| match r.get("depth") {
                Some(Field::Float(d)) => Some(*d),
                _ => None,
            })
            .collect();
        assert_eq!(choco_depths.len(), 5);
        assert!(choco_depths.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn support_grows_through_the_circuit() {
        let spec = ExperimentSpec::parse_str(
            r#"
name = "support"
kind = "support"
[grid]
problems = ["F1"]
"#,
        )
        .unwrap();
        let report = execute(&spec, &RunOptions::default()).unwrap();
        assert_eq!(report.records.len(), 1);
        let r = &report.records[0];
        let at = |k: &str| match r.get(k) {
            Some(Field::UInt(u)) => *u,
            other => panic!("{k}: {other:?}"),
        };
        assert_eq!(at("support_at_0pct"), 1, "feasible initial state");
        assert!(at("support_at_100pct") > 1, "driver spreads the state");
        assert_eq!(r.get("status"), Some(&Field::Str("ok".into())));
    }

    /// Regression: `(profile.len() - 1) * quarter / 4` used to underflow
    /// and panic on an empty profile (zero-iteration solve under a tight
    /// cell timeout). It must now be a structured error.
    #[test]
    fn empty_support_profile_is_an_error_not_a_panic() {
        let e = quarter_indices(0).unwrap_err();
        assert!(e.contains("empty"), "{e}");
        assert_eq!(quarter_indices(1).unwrap(), [0; 5]);
        assert_eq!(quarter_indices(2).unwrap(), [0, 0, 0, 0, 1]);
        assert_eq!(quarter_indices(9).unwrap(), [0, 2, 4, 6, 8]);
    }
}
