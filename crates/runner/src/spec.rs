//! Experiment specifications: what to run, declared as data.
//!
//! An [`ExperimentSpec`] names a grid of
//! `{problem × instance seed × solver × layers × eliminate × device}`
//! cells (or one of the special experiment kinds), deserialized from the
//! TOML subset in [`crate::minitoml`]. Checked-in specs live under
//! `experiments/`; `choco-cli run <spec>` executes them.

use crate::minitoml::{self, Document, Value};
use choco_device::Device;
use choco_mathkit::SplitMix64;
use choco_model::Problem;
use choco_optim::OptimizerKind;
use choco_problems as problems;
use choco_qsim::EngineKind;

/// Which experiment harness a spec drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunKind {
    /// The default solver grid (tables I/II, figs. 7–11, 13).
    Grid,
    /// Trotter-vs-Lemma-2 decomposition scaling (fig. 12).
    Decomposition,
    /// The Opt1/Opt2/Opt3 ablation (fig. 14).
    Ablation,
    /// Support growth through the Choco-Q circuit (fig. 9b).
    Support,
}

impl RunKind {
    /// The kind's spec-file name.
    pub fn label(&self) -> &'static str {
        match self {
            RunKind::Grid => "grid",
            RunKind::Decomposition => "decomposition",
            RunKind::Ablation => "ablation",
            RunKind::Support => "support",
        }
    }

    fn parse(text: &str) -> Result<RunKind, String> {
        match text {
            "grid" => Ok(RunKind::Grid),
            "decomposition" => Ok(RunKind::Decomposition),
            "ablation" => Ok(RunKind::Ablation),
            "support" => Ok(RunKind::Support),
            other => Err(format!(
                "unknown kind `{other}` (expected grid|decomposition|ablation|support)"
            )),
        }
    }
}

/// The four designs of the paper's evaluation, in Table II column order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverKind {
    /// Penalty-based QAOA (soft constraints).
    Penalty,
    /// Cyclic-Hamiltonian QAOA (XY rings on summation constraints).
    Cyclic,
    /// Hardware-efficient ansatz.
    Hea,
    /// Choco-Q (commute driver, hard constraints).
    ChocoQ,
}

impl SolverKind {
    /// All four solvers in table order.
    pub const ALL: [SolverKind; 4] = [
        SolverKind::Penalty,
        SolverKind::Cyclic,
        SolverKind::Hea,
        SolverKind::ChocoQ,
    ];

    /// Short column label (`"penalty"`, … `"choco-q"`).
    pub fn label(&self) -> &'static str {
        match self {
            SolverKind::Penalty => "penalty",
            SolverKind::Cyclic => "cyclic",
            SolverKind::Hea => "hea",
            SolverKind::ChocoQ => "choco-q",
        }
    }

    /// Stable small id used for per-cell seed derivation.
    pub fn seed_id(&self) -> u64 {
        match self {
            SolverKind::Penalty => 1,
            SolverKind::Cyclic => 2,
            SolverKind::Hea => 3,
            SolverKind::ChocoQ => 4,
        }
    }

    fn parse(text: &str) -> Result<SolverKind, String> {
        match text {
            "penalty" => Ok(SolverKind::Penalty),
            "cyclic" => Ok(SolverKind::Cyclic),
            "hea" => Ok(SolverKind::Hea),
            "choco-q" | "choco" => Ok(SolverKind::ChocoQ),
            other => Err(format!(
                "unknown solver `{other}` (expected penalty|cyclic|hea|choco-q)"
            )),
        }
    }
}

/// A reference to one problem instance family, resolvable with a seed.
///
/// Two forms are accepted:
///
/// * a suite class id (`"F1"` … `"K4"`, `"X1"` … `"B4"`, plus the
///   native-inequality classes `"B1n"` … `"B4n"`, `"M1"`/`"M2"`,
///   `"A1"`/`"A2"`), or
/// * an explicit family shape: `"flp:2x1"`, `"gcp:3x2x3"`,
///   `"kpp:6x7x2"` / `"kpp:6x7x2:unbal"`, `"cover:6x10"`,
///   `"knapsack:5x8"` / `"knapsack:5x8:native"` (the encoding suffix is
///   a grid axis: `slack` is the default equality-budget formulation,
///   `native` keeps the budget a first-class `≤` row),
///   `"mdknap:5x2"` (items × dimensions), `"assign:2x3"`
///   (agents × tasks).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProblemRef(String);

impl ProblemRef {
    /// Parses and validates a problem reference.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed reference.
    pub fn parse(text: &str) -> Result<ProblemRef, String> {
        let r = ProblemRef(text.to_string());
        r.build(1).map(|_| r)
    }

    /// The reference text as written in the spec.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Builds the instance of this family for `seed`.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown families, malformed or degenerate
    /// shapes (each generator's preconditions are validated here, so a
    /// bad spec reports an error instead of tripping a generator
    /// assertion), or oversized instances.
    pub fn build(&self, seed: u64) -> Result<Problem, String> {
        let text = self.0.as_str();
        if problems::EXTENDED_CLASSES.contains(&text) || problems::NATIVE_CLASSES.contains(&text) {
            return Ok(problems::instance(text, seed));
        }
        let (family, rest) = text.split_once(':').ok_or_else(|| {
            format!("unknown problem `{text}` (not a suite class and no `family:shape` form)")
        })?;
        let (shape, suffix) = match rest.split_once(':') {
            Some((shape, suffix)) => (shape, Some(suffix)),
            None => (rest, None),
        };
        // Only kpp (`:unbal`) and knapsack (`:slack`/`:native`) take a
        // shape suffix; anything else is a typo, not a silent no-op.
        if let Some(suffix) = suffix {
            let valid = match family {
                "kpp" => suffix == "unbal",
                "knapsack" | "knap" => problems::KnapsackEncoding::parse(suffix).is_some(),
                _ => false,
            };
            if !valid {
                return Err(format!(
                    "bad suffix `:{suffix}` in `{text}` (valid: `kpp:VxExB:unbal`, \
                     `knapsack:IxW:slack`, `knapsack:IxW:native`)"
                ));
            }
        }
        let dims: Vec<&str> = shape.split('x').collect();
        let parse_dim = |i: usize| -> Result<usize, String> {
            dims.get(i)
                .and_then(|d| d.parse::<usize>().ok())
                .filter(|&d| d > 0)
                .ok_or_else(|| format!("bad shape `{shape}` for family `{family}`"))
        };
        let require = |ok: bool, why: &str| -> Result<(), String> {
            if ok {
                Ok(())
            } else {
                Err(format!("degenerate shape `{text}`: {why}"))
            }
        };
        let max_edges = |v: usize| v * v.saturating_sub(1) / 2;
        let built = match family {
            "flp" => {
                check_dims(&dims, 2, family)?;
                problems::flp(parse_dim(0)?, parse_dim(1)?, seed)
            }
            "gcp" => {
                check_dims(&dims, 3, family)?;
                let (v, e, k) = (parse_dim(0)?, parse_dim(1)?, parse_dim(2)?);
                require(k >= 2, "need at least 2 colors")?;
                require(e <= max_edges(v), "too many edges for a simple graph")?;
                problems::gcp_random(v, e, k, seed)
            }
            "kpp" => {
                check_dims(&dims, 3, family)?;
                let (v, e, b) = (parse_dim(0)?, parse_dim(1)?, parse_dim(2)?);
                let balanced = suffix.is_none();
                require(v >= 2 && b >= 2, "need at least 2 vertices and 2 blocks")?;
                require(e <= max_edges(v), "too many edges for a simple graph")?;
                require(
                    !balanced || v % b == 0,
                    "balanced partition needs V divisible by B (append `:unbal`)",
                )?;
                problems::kpp_random(v, e, b, balanced, seed)
            }
            "cover" => {
                check_dims(&dims, 2, family)?;
                let (elements, subsets) = (parse_dim(0)?, parse_dim(1)?);
                require(
                    elements >= 2 && subsets >= 2,
                    "need at least 2 elements and 2 subsets",
                )?;
                problems::cover_random(elements, subsets, seed)
            }
            "knapsack" | "knap" => {
                check_dims(&dims, 2, family)?;
                let encoding = suffix
                    .and_then(problems::KnapsackEncoding::parse)
                    .unwrap_or_default();
                problems::knapsack_random_with(parse_dim(0)?, parse_dim(1)? as u64, seed, encoding)
            }
            "mdknap" => {
                check_dims(&dims, 2, family)?;
                problems::mdknap_random(parse_dim(0)?, parse_dim(1)?, seed)
            }
            "assign" | "assigncap" => {
                check_dims(&dims, 2, family)?;
                problems::assigncap_random(parse_dim(0)?, parse_dim(1)?, seed)
            }
            other => return Err(format!("unknown problem family `{other}`")),
        };
        built.map_err(|e| format!("{text}: {e}"))
    }
}

fn check_dims(dims: &[&str], expect: usize, family: &str) -> Result<(), String> {
    if dims.len() == expect {
        Ok(())
    } else {
        Err(format!(
            "family `{family}` needs {expect} `x`-separated dimensions, got {}",
            dims.len()
        ))
    }
}

fn parse_device(text: &str) -> Result<Device, String> {
    match text {
        "fez" => Ok(Device::Fez),
        "osaka" => Ok(Device::Osaka),
        "sherbrooke" => Ok(Device::Sherbrooke),
        other => Err(format!(
            "unknown device `{other}` (expected fez|osaka|sherbrooke)"
        )),
    }
}

/// Solver-configuration knobs a spec may pin; anything left `None` falls
/// back to the register-size-scaled defaults
/// ([`crate::scaled_choco`] / [`crate::scaled_qaoa`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConfigOverrides {
    /// Measurement shots.
    pub shots: Option<u64>,
    /// Optimizer iteration budget.
    pub max_iters: Option<usize>,
    /// Choco-Q multistart count.
    pub restarts: Option<usize>,
    /// Monte-Carlo trajectories for noisy sampling.
    pub noise_trajectories: Option<u32>,
    /// Record transpiled statistics.
    pub transpiled_stats: Option<bool>,
}

/// Decomposition-kind parameters (fig. 12).
#[derive(Clone, Debug, PartialEq)]
pub struct DecompositionSpec {
    /// Largest register the Trotter baseline attempts.
    pub trotter_max: usize,
    /// Largest register the Lemma-2 path reports.
    pub lemma2_max: usize,
    /// Trotter slice count.
    pub slices: usize,
    /// Per-decomposition timeout in seconds.
    pub timeout_secs: u64,
    /// Evolution angle β.
    pub angle: f64,
    /// `trotter_max` under `--quick`.
    pub quick_trotter_max: usize,
    /// `lemma2_max` under `--quick`.
    pub quick_lemma2_max: usize,
}

impl Default for DecompositionSpec {
    fn default() -> Self {
        DecompositionSpec {
            trotter_max: 10,
            lemma2_max: 16,
            slices: 128,
            timeout_secs: 60,
            angle: 0.7,
            quick_trotter_max: 7,
            quick_lemma2_max: 12,
        }
    }
}

/// A complete experiment specification.
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    /// Experiment name (used for default output paths).
    pub name: String,
    /// One-line description, echoed into reports.
    pub description: String,
    /// Which harness runs this spec.
    pub kind: RunKind,
    /// Master seed mixed into every per-cell seed.
    pub seed: u64,
    /// Problem axis.
    pub problems: Vec<ProblemRef>,
    /// Substitute problem axis under `--quick` (defaults to `problems`).
    pub quick_problems: Option<Vec<ProblemRef>>,
    /// Skip instances above this variable count under `--quick`.
    pub quick_max_vars: Option<usize>,
    /// Solver axis.
    pub solvers: Vec<SolverKind>,
    /// Instance-seed axis.
    pub seeds: Vec<u64>,
    /// Layer axis (`None` = solver default / size-scaled).
    pub layers: Vec<Option<usize>>,
    /// Elimination axis (Choco-Q only; baselines ignore it).
    pub eliminate: Vec<usize>,
    /// Device axis (`None` = ideal).
    pub devices: Vec<Option<Device>>,
    /// Simulation engine the whole grid runs on (`None` = the runner's
    /// default, overridable by `choco-cli run --engine`). Not a grid axis:
    /// engines are bit-identical, so sweeping them would duplicate every
    /// record.
    pub engine: Option<EngineKind>,
    /// Batched-replay width for the compact engine (`None` = the runner's
    /// default, overridable by `choco-cli run --batch`). Like the engine
    /// key it is not a grid axis: batched replays are bit-identical to
    /// serial ones, so the setting changes wall-clock, never report bytes.
    pub batch: Option<usize>,
    /// Classical optimizer every solver in the grid runs (`None` = the
    /// workspace default, COBYLA; overridable by
    /// `choco-cli run --optimizer`). Unlike the engine key this *does*
    /// change outcomes — QAOA quality is sensitive to the optimizer — but
    /// it is a configuration knob, not a grid axis, mirroring how the
    /// paper fixes one optimizer for all designs.
    pub optimizer: Option<OptimizerKind>,
    /// Whether a device cell applies the device's noise model (otherwise
    /// the device only drives latency estimation).
    pub noisy: bool,
    /// Emit per-iteration cost histories in the report.
    pub history: bool,
    /// Configuration overrides.
    pub config: ConfigOverrides,
    /// Decomposition-kind parameters.
    pub decomposition: DecompositionSpec,
    /// Default report path (`results/<name>.json` when unset).
    pub output: Option<String>,
}

/// One cell of the experiment grid.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Position in the report (stable under any worker count).
    pub index: usize,
    /// The problem family.
    pub problem: ProblemRef,
    /// Instance seed.
    pub instance_seed: u64,
    /// The solver to run.
    pub solver: SolverKind,
    /// Layer override.
    pub layers: Option<usize>,
    /// Variables to eliminate (Choco-Q).
    pub eliminate: usize,
    /// Device (noise and/or latency model).
    pub device: Option<Device>,
}

/// Validates an integer key against its documented lower bound. An
/// out-of-range value is a hard parse error naming the key, the given
/// value, and the valid range — never a silent clamp into a different
/// experiment than the one the spec author wrote down.
fn int_at_least(key: &str, v: i64, min: i64) -> Result<i64, String> {
    if v < min {
        Err(format!(
            "`{key}`: must be at least {min} (got {v}) — out-of-range \
             values are rejected rather than silently clamped"
        ))
    } else {
        Ok(v)
    }
}

/// Like [`int_at_least`], applied to every element of an integer array
/// key.
fn ints_at_least(key: &str, xs: &[i64], min: i64) -> Result<Vec<i64>, String> {
    xs.iter().map(|&x| int_at_least(key, x, min)).collect()
}

impl ExperimentSpec {
    /// Parses a spec from TOML text.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending key or line.
    pub fn parse_str(text: &str) -> Result<ExperimentSpec, String> {
        let doc = minitoml::parse(text)?;
        Self::from_document(&doc)
    }

    /// Loads and parses a spec file.
    ///
    /// # Errors
    ///
    /// Returns I/O and parse failures as messages prefixed with the path.
    pub fn load(path: &str) -> Result<ExperimentSpec, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Self::parse_str(&text).map_err(|e| format!("{path}: {e}"))
    }

    fn from_document(doc: &Document) -> Result<ExperimentSpec, String> {
        let mut known = KnownKeys::default();
        let name = known
            .str_key(doc, "name")?
            .ok_or("missing required key `name`")?;
        let description = known.str_key(doc, "description")?.unwrap_or_default();
        let kind = match known.str_key(doc, "kind")? {
            Some(k) => RunKind::parse(&k)?,
            None => RunKind::Grid,
        };
        let seed = match known.int_key(doc, "seed")? {
            Some(v) => int_at_least("seed", v, 0)? as u64,
            None => 1,
        };
        let noisy = known.bool_key(doc, "grid.noisy")?.unwrap_or(false);
        let history = known.bool_key(doc, "grid.history")?.unwrap_or(false);
        let output = known.str_key(doc, "output")?;

        let problems = match known.str_array(doc, "grid.problems")? {
            Some(refs) => refs
                .iter()
                .map(|r| ProblemRef::parse(r))
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        let quick_problems = match known.str_array(doc, "grid.quick_problems")? {
            Some(refs) => Some(
                refs.iter()
                    .map(|r| ProblemRef::parse(r))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            None => None,
        };
        let quick_max_vars = known
            .int_key(doc, "grid.quick_max_vars")?
            .map(|v| int_at_least("[grid] quick_max_vars", v, 1).map(|v| v as usize))
            .transpose()?;
        let solvers = match known.str_array(doc, "grid.solvers")? {
            Some(names) => names
                .iter()
                .map(|n| SolverKind::parse(n))
                .collect::<Result<Vec<_>, _>>()?,
            None => SolverKind::ALL.to_vec(),
        };
        let seeds = match known.int_array(doc, "grid.seeds")? {
            Some(xs) => ints_at_least("[grid] seeds", &xs, 0)?
                .into_iter()
                .map(|x| x as u64)
                .collect(),
            None => vec![1],
        };
        let layers = match known.int_array(doc, "grid.layers")? {
            Some(xs) => ints_at_least("[grid] layers", &xs, 1)?
                .into_iter()
                .map(|x| Some(x as usize))
                .collect(),
            None => vec![None],
        };
        let eliminate = match known.int_array(doc, "grid.eliminate")? {
            Some(xs) => ints_at_least("[grid] eliminate", &xs, 0)?
                .into_iter()
                .map(|x| x as usize)
                .collect(),
            None => vec![0],
        };
        let devices = match known.str_array(doc, "grid.devices")? {
            Some(names) => names
                .iter()
                .map(|n| parse_device(n).map(Some))
                .collect::<Result<Vec<_>, _>>()?,
            None => vec![None],
        };
        let engine = match known.str_key(doc, "grid.engine")? {
            Some(name) => Some(EngineKind::parse(&name).map_err(|e| {
                format!(
                    "`[grid] engine`: {e} — pick `dense` for the 2^n strided \
                         engine, `sparse` for the feasible-subspace engine, \
                         `compact` for the plan-compiled rank-indexed engine, or \
                         `auto` to start sparse and densify at the occupancy \
                         threshold"
                )
            })?),
            None => None,
        };
        let batch = match known.int_key(doc, "grid.batch")? {
            Some(v) if v < 1 => {
                return Err(format!(
                    "`[grid] batch`: must be at least 1 (got {v}) — the batched \
                         compact replay evaluates that many candidate angle sets \
                         per plan traversal; 1 is the serial path"
                ));
            }
            Some(v) => Some(v as usize),
            None => None,
        };
        let optimizer = match known.str_key(doc, "grid.optimizer")? {
            Some(name) => Some(OptimizerKind::parse(&name).map_err(|e| {
                format!(
                    "`[grid] optimizer`: {e} — pick `cobyla` for the paper's \
                         linear-approximation trust region (the default), \
                         `nelder-mead` for the downhill simplex, or `spsa` for \
                         simultaneous perturbation stochastic approximation"
                )
            })?),
            None => None,
        };

        let config = ConfigOverrides {
            shots: known
                .int_key(doc, "config.shots")?
                .map(|v| int_at_least("[config] shots", v, 1).map(|v| v as u64))
                .transpose()?,
            max_iters: known
                .int_key(doc, "config.max_iters")?
                .map(|v| int_at_least("[config] max_iters", v, 1).map(|v| v as usize))
                .transpose()?,
            restarts: known
                .int_key(doc, "config.restarts")?
                .map(|v| int_at_least("[config] restarts", v, 1).map(|v| v as usize))
                .transpose()?,
            noise_trajectories: known
                .int_key(doc, "config.noise_trajectories")?
                .map(|v| {
                    let v = int_at_least("[config] noise_trajectories", v, 1)?;
                    u32::try_from(v).map_err(|_| {
                        format!(
                            "`[config] noise_trajectories`: must be at most {} (got {v})",
                            u32::MAX
                        )
                    })
                })
                .transpose()?,
            transpiled_stats: known.bool_key(doc, "config.transpiled_stats")?,
        };

        let d = DecompositionSpec::default();
        let decomp_usize = |known: &mut KnownKeys, key: &'static str, default: usize, min: i64| {
            known
                .int_key(doc, key)?
                .map(|v| {
                    int_at_least(
                        &format!("[decomposition] {}", &key["decomposition.".len()..]),
                        v,
                        min,
                    )
                    .map(|v| v as usize)
                })
                .transpose()
                .map(|v| v.unwrap_or(default))
        };
        let decomposition = DecompositionSpec {
            trotter_max: decomp_usize(&mut known, "decomposition.trotter_max", d.trotter_max, 2)?,
            lemma2_max: decomp_usize(&mut known, "decomposition.lemma2_max", d.lemma2_max, 2)?,
            slices: decomp_usize(&mut known, "decomposition.slices", d.slices, 1)?,
            timeout_secs: known
                .int_key(doc, "decomposition.timeout_secs")?
                .map(|v| int_at_least("[decomposition] timeout_secs", v, 1).map(|v| v as u64))
                .transpose()?
                .unwrap_or(d.timeout_secs),
            angle: known
                .float_key(doc, "decomposition.angle")?
                .unwrap_or(d.angle),
            quick_trotter_max: decomp_usize(
                &mut known,
                "decomposition.quick_trotter_max",
                d.quick_trotter_max,
                2,
            )?,
            quick_lemma2_max: decomp_usize(
                &mut known,
                "decomposition.quick_lemma2_max",
                d.quick_lemma2_max,
                2,
            )?,
        };

        known.reject_unknown(doc)?;

        let spec = ExperimentSpec {
            name,
            description,
            kind,
            seed,
            problems,
            quick_problems,
            quick_max_vars,
            solvers,
            seeds,
            layers,
            eliminate,
            devices,
            engine,
            batch,
            optimizer,
            noisy,
            history,
            config,
            decomposition,
            output,
        };
        if spec.kind != RunKind::Decomposition && spec.problems.is_empty() {
            return Err("`[grid] problems` must list at least one problem".into());
        }
        Ok(spec)
    }

    /// The problem axis, after `--quick` substitution.
    pub fn effective_problems(&self, quick: bool) -> &[ProblemRef] {
        match (&self.quick_problems, quick) {
            (Some(qs), true) => qs,
            _ => &self.problems,
        }
    }

    /// Expands the grid axes into cells in deterministic report order.
    pub fn expand_cells(&self, quick: bool) -> Vec<Cell> {
        let mut cells = Vec::new();
        let mut index = 0usize;
        for problem in self.effective_problems(quick) {
            for &instance_seed in &self.seeds {
                for &layers in &self.layers {
                    for &eliminate in &self.eliminate {
                        for &device in &self.devices {
                            for &solver in &self.solvers {
                                cells.push(Cell {
                                    index,
                                    problem: problem.clone(),
                                    instance_seed,
                                    solver,
                                    layers,
                                    eliminate,
                                    device,
                                });
                                index += 1;
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// The deterministic sampling seed of one cell.
    ///
    /// Derived only from the spec's master seed and the cell's own
    /// coordinates — never from the flat cell index or worker id — so any
    /// cell can be re-run in isolation and still reproduce its in-grid
    /// result. The device coordinate is mixed in only when it affects the
    /// computation (noisy runs), so latency-model-only sweeps measure the
    /// *same* solve on every device, matching Fig. 11's methodology.
    pub fn cell_seed(&self, cell: &Cell) -> u64 {
        let mut s = splitmix_step(self.seed ^ 0x5EED_CE11);
        s = splitmix_step(s ^ fnv1a(cell.problem.as_str().as_bytes()));
        s = splitmix_step(s ^ cell.instance_seed);
        s = splitmix_step(s ^ cell.solver.seed_id());
        s = splitmix_step(s ^ cell.layers.map_or(0, |l| l as u64 + 1));
        s = splitmix_step(s ^ (cell.eliminate as u64).wrapping_add(0xE1).rotate_left(8));
        if self.noisy {
            let device_id = cell.device.map_or(0u64, |d| match d {
                Device::Fez => 1,
                Device::Osaka => 2,
                Device::Sherbrooke => 3,
            });
            s = splitmix_step(s ^ device_id);
        }
        s
    }
}

/// One SplitMix64 scramble step (stateless).
fn splitmix_step(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

/// FNV-1a over bytes, for stable string coordinates in seeds (and for
/// the checkpoint journal's spec fingerprint).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Tracks which keys a spec consumed so typos are rejected, not ignored.
#[derive(Default)]
struct KnownKeys {
    seen: Vec<&'static str>,
}

impl KnownKeys {
    fn get<'d>(&mut self, doc: &'d Document, key: &'static str) -> Option<&'d Value> {
        self.seen.push(key);
        doc.get(key)
    }

    fn str_key(&mut self, doc: &Document, key: &'static str) -> Result<Option<String>, String> {
        match self.get(doc, key) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(|s| Some(s.to_string()))
                .ok_or_else(|| format!("`{key}` must be a string, got {v}")),
        }
    }

    fn int_key(&mut self, doc: &Document, key: &'static str) -> Result<Option<i64>, String> {
        match self.get(doc, key) {
            None => Ok(None),
            Some(v) => v
                .as_int()
                .map(Some)
                .ok_or_else(|| format!("`{key}` must be an integer, got {v}")),
        }
    }

    fn float_key(&mut self, doc: &Document, key: &'static str) -> Result<Option<f64>, String> {
        match self.get(doc, key) {
            None => Ok(None),
            Some(v) => v
                .as_float()
                .map(Some)
                .ok_or_else(|| format!("`{key}` must be a number, got {v}")),
        }
    }

    fn bool_key(&mut self, doc: &Document, key: &'static str) -> Result<Option<bool>, String> {
        match self.get(doc, key) {
            None => Ok(None),
            Some(v) => v
                .as_bool()
                .map(Some)
                .ok_or_else(|| format!("`{key}` must be a boolean, got {v}")),
        }
    }

    fn str_array(
        &mut self,
        doc: &Document,
        key: &'static str,
    ) -> Result<Option<Vec<String>>, String> {
        match self.get(doc, key) {
            None => Ok(None),
            Some(v) => {
                let items = v
                    .as_array()
                    .ok_or_else(|| format!("`{key}` must be an array, got {v}"))?;
                items
                    .iter()
                    .map(|x| {
                        x.as_str()
                            .map(|s| s.to_string())
                            .ok_or_else(|| format!("`{key}` must contain strings, got {x}"))
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map(Some)
            }
        }
    }

    fn int_array(&mut self, doc: &Document, key: &'static str) -> Result<Option<Vec<i64>>, String> {
        match self.get(doc, key) {
            None => Ok(None),
            Some(v) => {
                let items = v
                    .as_array()
                    .ok_or_else(|| format!("`{key}` must be an array, got {v}"))?;
                items
                    .iter()
                    .map(|x| {
                        x.as_int()
                            .ok_or_else(|| format!("`{key}` must contain integers, got {x}"))
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map(Some)
            }
        }
    }

    fn reject_unknown(&self, doc: &Document) -> Result<(), String> {
        for key in doc.keys() {
            if !self.seen.contains(&key.as_str()) {
                return Err(format!("unknown spec key `{key}`"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
name = "t"
[grid]
problems = ["F1"]
"#;

    #[test]
    fn minimal_spec_defaults() {
        let spec = ExperimentSpec::parse_str(MINIMAL).unwrap();
        assert_eq!(spec.kind, RunKind::Grid);
        assert_eq!(spec.solvers, SolverKind::ALL.to_vec());
        assert_eq!(spec.seeds, vec![1]);
        assert_eq!(spec.layers, vec![None]);
        assert_eq!(spec.devices, vec![None]);
        assert!(!spec.noisy);
        assert_eq!(spec.expand_cells(false).len(), 4);
    }

    #[test]
    fn axes_multiply_in_stable_order() {
        let spec = ExperimentSpec::parse_str(
            r#"
name = "axes"
[grid]
problems = ["F1", "K1"]
solvers = ["choco-q", "penalty"]
seeds = [1, 2, 3]
layers = [1, 2]
"#,
        )
        .unwrap();
        let cells = spec.expand_cells(false);
        assert_eq!(cells.len(), 2 * 2 * 3 * 2);
        assert_eq!(cells[0].problem.as_str(), "F1");
        assert_eq!(cells[0].solver, SolverKind::ChocoQ);
        assert_eq!(cells[1].solver, SolverKind::Penalty);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn cell_seeds_are_coordinate_stable() {
        let spec = ExperimentSpec::parse_str(
            r#"
name = "seeds"
[grid]
problems = ["F1", "K1"]
solvers = ["choco-q"]
"#,
        )
        .unwrap();
        let wide = spec.expand_cells(false);
        let narrow = ExperimentSpec::parse_str(
            r#"
name = "seeds"
[grid]
problems = ["K1"]
solvers = ["choco-q"]
"#,
        )
        .unwrap();
        let k1_wide = spec.cell_seed(&wide[1]);
        let k1_narrow = narrow.cell_seed(&narrow.expand_cells(false)[0]);
        // Same coordinates → same seed, regardless of grid shape.
        assert_eq!(k1_wide, k1_narrow);
        assert_ne!(spec.cell_seed(&wide[0]), k1_wide);
    }

    #[test]
    fn device_only_affects_seed_when_noisy() {
        let base = r#"
name = "d"
[grid]
problems = ["F1"]
solvers = ["choco-q"]
devices = ["fez", "osaka"]
"#;
        let latency_only = ExperimentSpec::parse_str(base).unwrap();
        let cells = latency_only.expand_cells(false);
        assert_eq!(
            latency_only.cell_seed(&cells[0]),
            latency_only.cell_seed(&cells[1])
        );
        let noisy = ExperimentSpec::parse_str(&format!("{base}noisy = true\n")).unwrap();
        let cells = noisy.expand_cells(false);
        assert_ne!(noisy.cell_seed(&cells[0]), noisy.cell_seed(&cells[1]));
    }

    #[test]
    fn quick_substitutes_problem_axis() {
        let spec = ExperimentSpec::parse_str(
            r#"
name = "q"
[grid]
problems = ["F1", "G4"]
quick_problems = ["F1"]
"#,
        )
        .unwrap();
        assert_eq!(spec.effective_problems(false).len(), 2);
        assert_eq!(spec.effective_problems(true).len(), 1);
    }

    #[test]
    fn explicit_family_refs_build() {
        for r in [
            "flp:2x1",
            "gcp:3x2x3",
            "kpp:4x3x2",
            "cover:4x6",
            "knapsack:4x6",
            "mdknap:4x2",
            "assign:2x2",
        ] {
            let p = ProblemRef::parse(r).unwrap().build(1).unwrap();
            assert!(p.n_vars() > 0, "{r}");
            assert!(p.first_feasible().is_some(), "{r}");
        }
        assert_eq!(
            ProblemRef::parse("X1").unwrap().build(2).unwrap().n_vars(),
            6
        );
    }

    #[test]
    fn knapsack_encoding_suffix_is_a_grid_axis() {
        // Same items either way; the axis only changes the formulation.
        let slack = ProblemRef::parse("knapsack:4x6:slack")
            .unwrap()
            .build(1)
            .unwrap();
        let native = ProblemRef::parse("knapsack:4x6:native")
            .unwrap()
            .build(1)
            .unwrap();
        let default = ProblemRef::parse("knapsack:4x6").unwrap().build(1).unwrap();
        assert_eq!(format!("{slack}"), format!("{default}"));
        assert!(native.n_vars() < slack.n_vars());
        assert!(native.has_inequalities());
        assert!(!slack.has_inequalities());
        assert!(ProblemRef::parse("knapsack:4x6:penalty").is_err());
        assert!(ProblemRef::parse("mdknap:4x2:native").is_err());
    }

    #[test]
    fn native_suite_classes_resolve() {
        for id in ["B1n", "M1", "A2"] {
            let p = ProblemRef::parse(id).unwrap().build(1).unwrap();
            assert!(p.has_inequalities(), "{id}");
        }
    }

    #[test]
    fn degenerate_shapes_error_instead_of_panicking() {
        for bad in [
            "cover:1x6",  // < 2 elements
            "cover:4x1",  // < 2 subsets
            "gcp:3x9x3",  // more edges than a simple 3-vertex graph
            "gcp:3x2x1",  // < 2 colors
            "kpp:1x1x2",  // < 2 vertices
            "kpp:5x4x2",  // balanced but 5 % 2 != 0
            "kpp:4x99x2", // too many edges
        ] {
            let err = ProblemRef::parse(bad).unwrap_err();
            assert!(
                err.contains("shape") || err.contains("degenerate"),
                "{bad}: {err}"
            );
        }
        // The unbalanced escape hatch lifts the divisibility requirement.
        assert!(ProblemRef::parse("kpp:5x4x2:unbal").is_ok());
    }

    #[test]
    fn trailing_suffixes_are_rejected_except_kpp_unbal() {
        for bad in ["cover:4x6:unbal", "flp:2x1:extra", "kpp:6x7x2:unbaI"] {
            let err = ProblemRef::parse(bad).unwrap_err();
            assert!(err.contains("suffix"), "{bad}: {err}");
        }
        assert!(ProblemRef::parse("kpp:6x7x2:unbal").is_ok());
    }

    #[test]
    fn engine_key_parses_and_defaults_to_none() {
        assert_eq!(ExperimentSpec::parse_str(MINIMAL).unwrap().engine, None);
        for (name, kind) in [
            ("dense", EngineKind::Dense),
            ("sparse", EngineKind::Sparse),
            ("compact", EngineKind::Compact),
            ("auto", EngineKind::Auto),
            // Case-insensitive: specs written by hand shouldn't care.
            ("Compact", EngineKind::Compact),
            ("DENSE", EngineKind::Dense),
        ] {
            let spec = ExperimentSpec::parse_str(&format!(
                "name = \"e\"\n[grid]\nproblems = [\"F1\"]\nengine = \"{name}\""
            ))
            .unwrap();
            assert_eq!(spec.engine, Some(kind));
        }
    }

    #[test]
    fn unknown_engine_is_rejected_with_guidance() {
        let err = ExperimentSpec::parse_str(
            "name = \"e\"\n[grid]\nproblems = [\"F1\"]\nengine = \"gpu\"",
        )
        .unwrap_err();
        assert!(err.contains("unknown engine `gpu`"), "{err}");
        assert!(err.contains("dense|sparse|compact|auto"), "{err}");
        assert!(
            err.contains("feasible-subspace"),
            "error must explain the choices: {err}"
        );
        // Wrong type is also caught, not silently ignored.
        let err =
            ExperimentSpec::parse_str("name = \"e\"\n[grid]\nproblems = [\"F1\"]\nengine = 3")
                .unwrap_err();
        assert!(err.contains("engine"), "{err}");
    }

    #[test]
    fn batch_key_parses_and_defaults_to_none() {
        assert_eq!(ExperimentSpec::parse_str(MINIMAL).unwrap().batch, None);
        for (text, want) in [("1", 1usize), ("8", 8), ("17", 17)] {
            let spec = ExperimentSpec::parse_str(&format!(
                "name = \"b\"\n[grid]\nproblems = [\"F1\"]\nbatch = {text}"
            ))
            .unwrap();
            assert_eq!(spec.batch, Some(want), "batch = {text}");
        }
    }

    #[test]
    fn nonpositive_batch_is_rejected_with_guidance() {
        for bad in ["0", "-3"] {
            let err = ExperimentSpec::parse_str(&format!(
                "name = \"b\"\n[grid]\nproblems = [\"F1\"]\nbatch = {bad}"
            ))
            .unwrap_err();
            assert!(err.contains("batch"), "{bad}: {err}");
            assert!(err.contains("at least 1"), "{bad}: {err}");
        }
        // Wrong type is also caught, not silently ignored.
        let err = ExperimentSpec::parse_str(
            "name = \"b\"\n[grid]\nproblems = [\"F1\"]\nbatch = \"wide\"",
        )
        .unwrap_err();
        assert!(err.contains("batch"), "{err}");
    }

    #[test]
    fn optimizer_key_parses_case_insensitively_and_defaults_to_none() {
        assert_eq!(ExperimentSpec::parse_str(MINIMAL).unwrap().optimizer, None);
        for (name, kind) in [
            ("cobyla", OptimizerKind::Cobyla),
            ("nelder-mead", OptimizerKind::NelderMead),
            ("spsa", OptimizerKind::Spsa),
            // Case-insensitive: specs written by hand shouldn't care.
            ("COBYLA", OptimizerKind::Cobyla),
            ("Nelder-Mead", OptimizerKind::NelderMead),
        ] {
            let spec = ExperimentSpec::parse_str(&format!(
                "name = \"o\"\n[grid]\nproblems = [\"F1\"]\noptimizer = \"{name}\""
            ))
            .unwrap();
            assert_eq!(spec.optimizer, Some(kind));
        }
        // Display/parse round-trip through the spec key.
        for kind in OptimizerKind::ALL {
            let spec = ExperimentSpec::parse_str(&format!(
                "name = \"o\"\n[grid]\nproblems = [\"F1\"]\noptimizer = \"{kind}\""
            ))
            .unwrap();
            assert_eq!(spec.optimizer, Some(kind));
        }
    }

    #[test]
    fn unknown_optimizer_is_rejected_with_guidance() {
        let err = ExperimentSpec::parse_str(
            "name = \"o\"\n[grid]\nproblems = [\"F1\"]\noptimizer = \"adam\"",
        )
        .unwrap_err();
        assert!(err.contains("unknown optimizer `adam`"), "{err}");
        assert!(err.contains("cobyla|nelder-mead|spsa"), "{err}");
        assert!(
            err.contains("trust region"),
            "error must explain the choices: {err}"
        );
        // Wrong type is also caught, not silently ignored.
        let err =
            ExperimentSpec::parse_str("name = \"o\"\n[grid]\nproblems = [\"F1\"]\noptimizer = 3")
                .unwrap_err();
        assert!(err.contains("optimizer"), "{err}");
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        assert!(ExperimentSpec::parse_str("").unwrap_err().contains("name"));
        let e = ExperimentSpec::parse_str("name = \"x\"\n[grid]\nproblems = [\"Q9\"]").unwrap_err();
        assert!(e.contains("Q9"), "{e}");
        let e = ExperimentSpec::parse_str(&format!("{MINIMAL}typo_key = 3")).unwrap_err();
        assert!(e.contains("typo_key"), "{e}");
        let e = ExperimentSpec::parse_str(
            "name = \"x\"\n[grid]\nproblems = [\"F1\"]\nsolvers = [\"vqe\"]",
        )
        .unwrap_err();
        assert!(e.contains("vqe"), "{e}");
    }

    /// Regression for the silent-clamp bug: out-of-range integers used to
    /// be clamped (`.max(0)`, `.max(1)`, `.max(2)`), silently running a
    /// *different* experiment than the spec asked for. They must now be
    /// hard parse errors naming the key, the given value, and the bound.
    #[test]
    fn out_of_range_values_are_rejected_not_clamped() {
        let cases: &[(&str, &str, &str, &str)] = &[
            ("seed = -5", "seed", "-5", "at least 0"),
            (
                "[grid]\nproblems = [\"F1\"]\nseeds = [3, -1]",
                "seeds",
                "-1",
                "at least 0",
            ),
            (
                "[grid]\nproblems = [\"F1\"]\nlayers = [0]",
                "layers",
                "0",
                "at least 1",
            ),
            (
                "[grid]\nproblems = [\"F1\"]\nlayers = [-3]",
                "layers",
                "-3",
                "at least 1",
            ),
            (
                "[grid]\nproblems = [\"F1\"]\neliminate = [-2]",
                "eliminate",
                "-2",
                "at least 0",
            ),
            (
                "[grid]\nproblems = [\"F1\"]\nquick_max_vars = 0",
                "quick_max_vars",
                "0",
                "at least 1",
            ),
            ("[config]\nshots = 0", "shots", "0", "at least 1"),
            ("[config]\nmax_iters = -3", "max_iters", "-3", "at least 1"),
            ("[config]\nrestarts = 0", "restarts", "0", "at least 1"),
            (
                "[config]\nnoise_trajectories = 0",
                "noise_trajectories",
                "0",
                "at least 1",
            ),
            (
                "[decomposition]\ntrotter_max = 1",
                "trotter_max",
                "1",
                "at least 2",
            ),
            (
                "[decomposition]\nlemma2_max = 0",
                "lemma2_max",
                "0",
                "at least 2",
            ),
            (
                "[decomposition]\nquick_trotter_max = 1",
                "quick_trotter_max",
                "1",
                "at least 2",
            ),
            (
                "[decomposition]\nquick_lemma2_max = -1",
                "quick_lemma2_max",
                "-1",
                "at least 2",
            ),
            ("[decomposition]\nslices = 0", "slices", "0", "at least 1"),
            (
                "[decomposition]\ntimeout_secs = 0",
                "timeout_secs",
                "0",
                "at least 1",
            ),
        ];
        for (snippet, key, value, range) in cases {
            let toml = if snippet.contains("[grid]") {
                format!("name = \"t\"\n{snippet}\n")
            } else {
                format!("name = \"t\"\n{snippet}\n[grid]\nproblems = [\"F1\"]\n")
            };
            let e = ExperimentSpec::parse_str(&toml)
                .expect_err(&format!("accepted out-of-range `{snippet}`"));
            assert!(e.contains(key), "error for `{snippet}` lacks key: {e}");
            assert!(e.contains(value), "error for `{snippet}` lacks value: {e}");
            assert!(e.contains(range), "error for `{snippet}` lacks range: {e}");
        }
        // In-range values still parse (boundary check: the minimum itself).
        let spec = ExperimentSpec::parse_str(
            "name = \"t\"\nseed = 0\n[grid]\nproblems = [\"F1\"]\nlayers = [1]\neliminate = [0]\n\
             [config]\nshots = 1\n[decomposition]\ntrotter_max = 2\nslices = 1\n",
        )
        .unwrap();
        assert_eq!(spec.seed, 0);
    }
}
