//! The `choco-cli run` and `choco-cli serve` subcommands: load a spec,
//! execute it, emit reports — or run the solve-as-a-service daemon.

use crate::fault::FaultPlan;
use crate::run::{execute, RunOptions};
use crate::serve::{serve, serve_socket, ServeOptions};
use crate::spec::ExperimentSpec;
use choco_optim::OptimizerKind;
use choco_qsim::{EngineKind, SimConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Parsed `run` subcommand arguments.
#[derive(Clone, Debug, Default)]
pub struct RunArgs {
    /// Spec file path.
    pub spec_path: String,
    /// Worker threads (0 = one per host core).
    pub workers: usize,
    /// Trim to the spec's quick subset.
    pub quick: bool,
    /// JSON output path (`-` = stdout; default from the spec / name).
    pub out: Option<String>,
    /// Also write the flat cells as CSV to this path.
    pub csv: Option<String>,
    /// Per-worker simulator threads (default 1: cell-level parallelism
    /// already fills the host).
    pub sim_threads: usize,
    /// Simulation engine override (`--engine dense|sparse|compact|auto`); `None`
    /// defers to the spec's `[grid] engine` key.
    pub engine: Option<EngineKind>,
    /// Batched-replay width override (`--batch K`); `None` defers to the
    /// spec's `[grid] batch` key. `1` is the serial path.
    pub batch: Option<usize>,
    /// Classical-optimizer override
    /// (`--optimizer cobyla|nelder-mead|spsa`); `None` defers to the
    /// spec's `[grid] optimizer` key.
    pub optimizer: Option<OptimizerKind>,
    /// Restart-scheduler workers per Choco-Q solve
    /// (`--restart-workers N`, 0 = one per host core, default 1).
    pub restart_workers: usize,
    /// Suppress the human-readable table on stdout.
    pub no_table: bool,
    /// Checkpoint journal path (`--checkpoint PATH`): append every
    /// completed grid cell as it finishes.
    pub checkpoint: Option<String>,
    /// Resume from the `--checkpoint` journal, skipping completed cells.
    pub resume: bool,
    /// Per-cell wall-clock budget in seconds (`--cell-timeout SECS`).
    pub cell_timeout_secs: Option<f64>,
    /// Retry budget for transient per-cell failures (`--retries N`).
    pub retries: u32,
}

/// Usage text for the `run` subcommand.
pub const RUN_USAGE: &str = "usage: choco-cli run <spec.toml> [--workers N] [--quick] \
     [--out PATH|-] [--csv PATH] [--sim-threads N] [--engine dense|sparse|compact|auto] \
     [--batch K] [--optimizer cobyla|nelder-mead|spsa] [--restart-workers N] [--no-table] \
     [--checkpoint PATH] [--resume] [--cell-timeout SECS] [--retries N]";

/// Parses a seconds-valued flag: positive, finite, and bounded by
/// [`crate::serve::MAX_KNOB_SECS`], so downstream `Duration` and
/// `Instant` arithmetic cannot panic however extreme the argument.
fn parse_secs(flag: &str, text: &str) -> Result<f64, String> {
    let secs: f64 = text.parse().map_err(|e| format!("{flag}: {e}"))?;
    if !secs.is_finite() || secs <= 0.0 || secs > crate::serve::MAX_KNOB_SECS {
        return Err(format!(
            "{flag}: expected a positive number of seconds, at most {:.0}, got {secs}",
            crate::serve::MAX_KNOB_SECS
        ));
    }
    Ok(secs)
}

/// Converts a seconds value to a `Duration` without the panic paths of
/// `Duration::from_secs_f64`. `RunArgs`/`ServeArgs` are public structs,
/// so option builders can see values that never went through
/// [`parse_secs`].
fn secs_to_duration(flag: &str, secs: f64) -> Result<Duration, String> {
    Duration::try_from_secs_f64(secs).map_err(|e| format!("{flag}: {e}"))
}

/// Parses `run` subcommand arguments (everything after the literal
/// `run`).
///
/// # Errors
///
/// Returns a user-facing message for unknown flags or missing values.
pub fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut parsed = RunArgs {
        sim_threads: 1,
        restart_workers: 1,
        ..RunArgs::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--workers" => {
                parsed.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--quick" => parsed.quick = true,
            "--out" => parsed.out = Some(value("--out")?),
            "--csv" => parsed.csv = Some(value("--csv")?),
            "--sim-threads" => {
                parsed.sim_threads = value("--sim-threads")?
                    .parse()
                    .map_err(|e| format!("--sim-threads: {e}"))?
            }
            "--engine" => {
                parsed.engine = Some(
                    EngineKind::parse(&value("--engine")?).map_err(|e| format!("--engine: {e}"))?,
                )
            }
            "--batch" => {
                let k: usize = value("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?;
                if k < 1 {
                    return Err("--batch: expected a width of at least 1 (1 = serial)".into());
                }
                parsed.batch = Some(k);
            }
            "--optimizer" => {
                parsed.optimizer = Some(
                    OptimizerKind::parse(&value("--optimizer")?)
                        .map_err(|e| format!("--optimizer: {e}"))?,
                )
            }
            "--restart-workers" => {
                parsed.restart_workers = value("--restart-workers")?
                    .parse()
                    .map_err(|e| format!("--restart-workers: {e}"))?
            }
            "--no-table" => parsed.no_table = true,
            "--checkpoint" => parsed.checkpoint = Some(value("--checkpoint")?),
            "--resume" => parsed.resume = true,
            "--cell-timeout" => {
                parsed.cell_timeout_secs =
                    Some(parse_secs("--cell-timeout", &value("--cell-timeout")?)?);
            }
            "--retries" => {
                parsed.retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?
            }
            other if parsed.spec_path.is_empty() && !other.starts_with('-') => {
                parsed.spec_path = other.to_string();
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if parsed.spec_path.is_empty() {
        return Err("no spec file given".into());
    }
    Ok(parsed)
}

/// Executes the `run` subcommand end to end: parse the spec, run the
/// batch, write JSON (and optional CSV), print the table.
///
/// # Errors
///
/// Returns a user-facing message on spec, execution, or I/O failure.
pub fn run_command(args: &[String]) -> Result<(), String> {
    let parsed = parse_run_args(args)?;
    let spec = ExperimentSpec::load(&parsed.spec_path)?;
    let options = RunOptions {
        workers: parsed.workers,
        quick: parsed.quick,
        sim: if parsed.sim_threads <= 1 {
            SimConfig::serial()
        } else {
            SimConfig::with_threads(parsed.sim_threads)
        },
        engine: parsed.engine,
        batch: parsed.batch,
        optimizer: parsed.optimizer,
        restart_workers: parsed.restart_workers,
        checkpoint: parsed.checkpoint.clone(),
        resume: parsed.resume,
        cell_timeout: parsed
            .cell_timeout_secs
            .map(|s| secs_to_duration("--cell-timeout", s))
            .transpose()?,
        retries: parsed.retries,
        faults: FaultPlan::from_env()?.map(Arc::new),
        cancel: None,
        job_deadline: None,
    };
    let report = execute(&spec, &options)?;

    let json = report.to_json();
    let out_path = parsed
        .out
        .clone()
        .or_else(|| spec.output.clone())
        .unwrap_or_else(|| format!("results/{}.json", spec.name));
    if out_path == "-" {
        print!("{json}");
    } else {
        if let Some(parent) = std::path::Path::new(&out_path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
        }
        std::fs::write(&out_path, &json).map_err(|e| format!("cannot write {out_path}: {e}"))?;
        eprintln!("wrote {out_path}");
    }
    if let Some(csv_path) = &parsed.csv {
        let csv = report.to_csv();
        if csv_path == "-" {
            print!("{csv}");
        } else {
            std::fs::write(csv_path, &csv).map_err(|e| format!("cannot write {csv_path}: {e}"))?;
            eprintln!("wrote {csv_path}");
        }
    }
    if !parsed.no_table && out_path != "-" && parsed.csv.as_deref() != Some("-") {
        print!("{}", report.to_table());
    }
    Ok(())
}

/// Parsed `serve` subcommand arguments.
#[derive(Clone, Debug)]
pub struct ServeArgs {
    /// Job-state directory (specs, journals, reports, done markers).
    pub state_dir: String,
    /// Maximum queued cells across all jobs.
    pub queue_cap: usize,
    /// Unix socket path; `None` serves one session on stdin/stdout.
    pub socket: Option<String>,
    /// Worker threads (0 = one per host core).
    pub workers: usize,
    /// Per-worker simulator threads (default 1).
    pub sim_threads: usize,
    /// Engine override applied to every job.
    pub engine: Option<EngineKind>,
    /// Batched-replay width override applied to every job.
    pub batch: Option<usize>,
    /// Classical-optimizer override applied to every job.
    pub optimizer: Option<OptimizerKind>,
    /// Restart-scheduler workers per Choco-Q solve.
    pub restart_workers: usize,
    /// Per-cell wall-clock budget in seconds.
    pub cell_timeout_secs: Option<f64>,
    /// Retry budget for transient per-cell failures.
    pub retries: u32,
    /// Admission memory budget in bytes (`--mem-budget BYTES[K|M|G]`,
    /// binary suffixes). `None` disables byte-based admission.
    pub mem_budget: Option<u64>,
    /// Prune completed jobs' spec/journal files (`--gc-done`).
    pub gc_done: bool,
    /// How long a signal-initiated drain may run before falling back to
    /// abort (`--drain-timeout SECS`).
    pub drain_timeout_secs: f64,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            state_dir: "serve-state".to_string(),
            queue_cap: 4096,
            socket: None,
            workers: 0,
            sim_threads: 1,
            engine: None,
            batch: None,
            optimizer: None,
            restart_workers: 1,
            cell_timeout_secs: None,
            retries: 0,
            mem_budget: None,
            gc_done: false,
            drain_timeout_secs: 60.0,
        }
    }
}

/// Usage text for the `serve` subcommand.
pub const SERVE_USAGE: &str = "usage: choco-cli serve [--state-dir DIR] [--queue-cap N] \
     [--socket PATH] [--workers N] [--sim-threads N] [--engine dense|sparse|compact|auto] \
     [--batch K] [--optimizer cobyla|nelder-mead|spsa] [--restart-workers N] \
     [--cell-timeout SECS] [--retries N] [--mem-budget BYTES[K|M|G]] [--gc-done] \
     [--drain-timeout SECS]";

/// Parses a byte count with an optional binary suffix: `1048576`,
/// `512K`, `64M`, `2G`.
fn parse_bytes(text: &str) -> Result<u64, String> {
    let text = text.trim();
    let (digits, multiplier) = match text.as_bytes().last() {
        Some(b'K' | b'k') => (&text[..text.len() - 1], 1u64 << 10),
        Some(b'M' | b'm') => (&text[..text.len() - 1], 1 << 20),
        Some(b'G' | b'g') => (&text[..text.len() - 1], 1 << 30),
        _ => (text, 1),
    };
    let n: u64 = digits
        .trim()
        .parse()
        .map_err(|e| format!("bad byte count `{text}`: {e}"))?;
    n.checked_mul(multiplier)
        .ok_or_else(|| format!("byte count `{text}` overflows"))
}

/// Parses `serve` subcommand arguments (everything after the literal
/// `serve`).
///
/// # Errors
///
/// Returns a user-facing message for unknown flags or missing values.
pub fn parse_serve_args(args: &[String]) -> Result<ServeArgs, String> {
    let mut parsed = ServeArgs::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--state-dir" => parsed.state_dir = value("--state-dir")?,
            "--queue-cap" => {
                let cap: usize = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
                if cap == 0 {
                    return Err("--queue-cap: expected a cap of at least 1".into());
                }
                parsed.queue_cap = cap;
            }
            "--socket" => parsed.socket = Some(value("--socket")?),
            "--workers" => {
                parsed.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--sim-threads" => {
                parsed.sim_threads = value("--sim-threads")?
                    .parse()
                    .map_err(|e| format!("--sim-threads: {e}"))?
            }
            "--engine" => {
                parsed.engine = Some(
                    EngineKind::parse(&value("--engine")?).map_err(|e| format!("--engine: {e}"))?,
                )
            }
            "--batch" => {
                let k: usize = value("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?;
                if k < 1 {
                    return Err("--batch: expected a width of at least 1 (1 = serial)".into());
                }
                parsed.batch = Some(k);
            }
            "--optimizer" => {
                parsed.optimizer = Some(
                    OptimizerKind::parse(&value("--optimizer")?)
                        .map_err(|e| format!("--optimizer: {e}"))?,
                )
            }
            "--restart-workers" => {
                parsed.restart_workers = value("--restart-workers")?
                    .parse()
                    .map_err(|e| format!("--restart-workers: {e}"))?
            }
            "--cell-timeout" => {
                parsed.cell_timeout_secs =
                    Some(parse_secs("--cell-timeout", &value("--cell-timeout")?)?);
            }
            "--retries" => {
                parsed.retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?
            }
            "--mem-budget" => {
                parsed.mem_budget = Some(
                    parse_bytes(&value("--mem-budget")?)
                        .map_err(|e| format!("--mem-budget: {e}"))?,
                )
            }
            "--gc-done" => parsed.gc_done = true,
            "--drain-timeout" => {
                parsed.drain_timeout_secs =
                    parse_secs("--drain-timeout", &value("--drain-timeout")?)?;
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(parsed)
}

/// Builds the daemon options a [`ServeArgs`] describes (shared by the
/// command entry point and the tests/benches that run the daemon
/// in-process).
///
/// # Errors
///
/// Returns `CHOCO_FAULT_INJECT` parse failures and out-of-range timeout
/// values (possible when a `ServeArgs` is built programmatically rather
/// than via [`parse_serve_args`]).
pub fn serve_options(parsed: &ServeArgs) -> Result<ServeOptions, String> {
    Ok(ServeOptions {
        state_dir: PathBuf::from(&parsed.state_dir),
        queue_cap: parsed.queue_cap,
        mem_budget: parsed.mem_budget,
        gc_done: parsed.gc_done,
        drain_timeout: secs_to_duration("--drain-timeout", parsed.drain_timeout_secs)?,
        run: RunOptions {
            workers: parsed.workers,
            quick: false,
            sim: if parsed.sim_threads <= 1 {
                SimConfig::serial()
            } else {
                SimConfig::with_threads(parsed.sim_threads)
            },
            engine: parsed.engine,
            batch: parsed.batch,
            optimizer: parsed.optimizer,
            restart_workers: parsed.restart_workers,
            checkpoint: None,
            resume: false,
            cell_timeout: parsed
                .cell_timeout_secs
                .map(|s| secs_to_duration("--cell-timeout", s))
                .transpose()?,
            retries: parsed.retries,
            faults: FaultPlan::from_env()?.map(Arc::new),
            cancel: None,
            job_deadline: None,
        },
    })
}

/// Executes the `serve` subcommand: runs the daemon on stdin/stdout, or
/// on a Unix socket when `--socket` is given. SIGTERM/SIGINT request the
/// daemon's bounded-drain shutdown instead of killing the process
/// mid-write (journals make even a hard kill safe, but a drain finishes
/// in-flight jobs' reports).
///
/// # Errors
///
/// Returns a user-facing message on argument, setup, or bind failure.
pub fn serve_command(args: &[String]) -> Result<(), String> {
    let parsed = parse_serve_args(args)?;
    let options = serve_options(&parsed)?;
    crate::serve::install_signal_handlers();
    match &parsed.socket {
        Some(path) => serve_socket(&options, std::path::Path::new(path)),
        None => serve(
            &options,
            std::io::BufReader::new(std::io::stdin()),
            std::io::stdout(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_all_flags() {
        let args = parse_run_args(&strings(&[
            "spec.toml",
            "--workers",
            "3",
            "--quick",
            "--out",
            "-",
            "--csv",
            "cells.csv",
            "--sim-threads",
            "2",
            "--engine",
            "sparse",
            "--batch",
            "8",
            "--optimizer",
            "nelder-mead",
            "--restart-workers",
            "4",
            "--no-table",
        ]))
        .unwrap();
        assert_eq!(args.spec_path, "spec.toml");
        assert_eq!(args.workers, 3);
        assert!(args.quick);
        assert_eq!(args.out.as_deref(), Some("-"));
        assert_eq!(args.csv.as_deref(), Some("cells.csv"));
        assert_eq!(args.sim_threads, 2);
        assert_eq!(args.engine, Some(EngineKind::Sparse));
        assert_eq!(args.batch, Some(8));
        assert_eq!(args.optimizer, Some(OptimizerKind::NelderMead));
        assert_eq!(args.restart_workers, 4);
        assert!(args.no_table);
    }

    #[test]
    fn parses_fault_tolerance_flags() {
        let args = parse_run_args(&strings(&[
            "spec.toml",
            "--checkpoint",
            "run.journal",
            "--resume",
            "--cell-timeout",
            "2.5",
            "--retries",
            "3",
        ]))
        .unwrap();
        assert_eq!(args.checkpoint.as_deref(), Some("run.journal"));
        assert!(args.resume);
        assert_eq!(args.cell_timeout_secs, Some(2.5));
        assert_eq!(args.retries, 3);
        // Defaults: no checkpointing, no budget, no retries.
        let args = parse_run_args(&strings(&["s.toml"])).unwrap();
        assert_eq!(args.checkpoint, None);
        assert!(!args.resume);
        assert_eq!(args.cell_timeout_secs, None);
        assert_eq!(args.retries, 0);
        // Non-positive, non-numeric, and Duration-overflowing budgets
        // are all parse errors, never a later `from_secs_f64` panic.
        for bad in ["0", "-1", "forever", "1e300", "inf", "nan"] {
            let err = parse_run_args(&strings(&["s.toml", "--cell-timeout", bad])).unwrap_err();
            assert!(err.contains("--cell-timeout"), "{bad}: {err}");
        }
    }

    #[test]
    fn parses_serve_flags_with_defaults() {
        let args = parse_serve_args(&[]).unwrap();
        assert_eq!(args.state_dir, "serve-state");
        assert_eq!(args.queue_cap, 4096);
        assert_eq!(args.socket, None);
        assert_eq!(args.workers, 0);

        let args = parse_serve_args(&strings(&[
            "--state-dir",
            "/tmp/s",
            "--queue-cap",
            "7",
            "--socket",
            "/tmp/s.sock",
            "--workers",
            "2",
            "--engine",
            "compact",
            "--retries",
            "1",
            "--mem-budget",
            "512M",
            "--gc-done",
            "--drain-timeout",
            "2.5",
        ]))
        .unwrap();
        assert_eq!(args.state_dir, "/tmp/s");
        assert_eq!(args.queue_cap, 7);
        assert_eq!(args.socket.as_deref(), Some("/tmp/s.sock"));
        assert_eq!(args.workers, 2);
        assert_eq!(args.engine, Some(EngineKind::Compact));
        assert_eq!(args.retries, 1);
        assert_eq!(args.mem_budget, Some(512 << 20));
        assert!(args.gc_done);
        assert_eq!(args.drain_timeout_secs, 2.5);

        assert!(parse_serve_args(&strings(&["--queue-cap", "0"]))
            .unwrap_err()
            .contains("--queue-cap"));
        assert!(parse_serve_args(&strings(&["--bogus"]))
            .unwrap_err()
            .contains("--bogus"));
    }

    #[test]
    fn mem_budget_accepts_binary_suffixes() {
        assert_eq!(parse_bytes("1048576"), Ok(1 << 20));
        assert_eq!(parse_bytes("512K"), Ok(512 << 10));
        assert_eq!(parse_bytes("64m"), Ok(64 << 20));
        assert_eq!(parse_bytes("2G"), Ok(2 << 30));
        assert!(parse_bytes("2T").is_err(), "unknown suffix");
        assert!(parse_bytes("").is_err());
        assert!(parse_bytes("-1").is_err());
        assert!(parse_bytes(&format!("{}G", u64::MAX)).is_err(), "overflow");
        for bad in ["0x10", "ten", "K"] {
            assert!(parse_bytes(bad).is_err(), "{bad}");
        }
        assert!(parse_serve_args(&strings(&["--mem-budget", "lots"]))
            .unwrap_err()
            .contains("--mem-budget"));
        for bad in ["-2", "1e30", "inf"] {
            assert!(
                parse_serve_args(&strings(&["--drain-timeout", bad]))
                    .unwrap_err()
                    .contains("--drain-timeout"),
                "{bad}"
            );
        }
        // `serve_options` itself refuses unparseable durations, so a
        // programmatically-built `ServeArgs` cannot panic the daemon.
        let args = ServeArgs {
            drain_timeout_secs: 1e300,
            ..ServeArgs::default()
        };
        assert!(serve_options(&args)
            .unwrap_err()
            .contains("--drain-timeout"));
        let args = ServeArgs {
            cell_timeout_secs: Some(-1.0),
            ..ServeArgs::default()
        };
        assert!(serve_options(&args).unwrap_err().contains("--cell-timeout"));
    }

    #[test]
    fn rejects_missing_spec_and_unknown_flags() {
        assert!(parse_run_args(&[]).unwrap_err().contains("no spec"));
        assert!(parse_run_args(&strings(&["s.toml", "--bogus"]))
            .unwrap_err()
            .contains("--bogus"));
        assert!(parse_run_args(&strings(&["s.toml", "--workers"]))
            .unwrap_err()
            .contains("--workers"));
    }

    #[test]
    fn engine_flag_defaults_to_none_and_rejects_unknown() {
        assert_eq!(parse_run_args(&strings(&["s.toml"])).unwrap().engine, None);
        let err = parse_run_args(&strings(&["s.toml", "--engine", "fpga"])).unwrap_err();
        assert!(err.contains("--engine") && err.contains("fpga"), "{err}");
    }

    #[test]
    fn batch_flag_defaults_to_none_and_rejects_bad_widths() {
        assert_eq!(parse_run_args(&strings(&["s.toml"])).unwrap().batch, None);
        let args = parse_run_args(&strings(&["s.toml", "--batch", "1"])).unwrap();
        assert_eq!(args.batch, Some(1));
        for bad in ["0", "-4", "wide"] {
            let err = parse_run_args(&strings(&["s.toml", "--batch", bad])).unwrap_err();
            assert!(err.contains("--batch"), "{bad}: {err}");
        }
    }

    #[test]
    fn optimizer_flag_defaults_to_none_and_rejects_unknown() {
        let args = parse_run_args(&strings(&["s.toml"])).unwrap();
        assert_eq!(args.optimizer, None);
        assert_eq!(args.restart_workers, 1);
        // Case-insensitive, like the spec key.
        let args = parse_run_args(&strings(&["s.toml", "--optimizer", "COBYLA"])).unwrap();
        assert_eq!(args.optimizer, Some(OptimizerKind::Cobyla));
        let err = parse_run_args(&strings(&["s.toml", "--optimizer", "adam"])).unwrap_err();
        assert!(err.contains("--optimizer") && err.contains("adam"), "{err}");
        assert!(err.contains("cobyla|nelder-mead|spsa"), "{err}");
    }
}
