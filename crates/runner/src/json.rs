//! Minimal JSON reader shared by the checkpoint journal and the
//! `choco-serve` line protocol (the repo deliberately has no serde; this
//! mirrors the `minitoml` approach). Numbers keep their raw token so a
//! reloaded record re-serializes byte-identically.
//!
//! Everything here returns `Result`: both consumers feed the parser
//! hostile bytes (a corrupt journal, an arbitrary request line), and a
//! long-lived daemon must surface a structured error, never panic.

use crate::report::{Field, Record};
use std::borrow::Cow;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    /// Raw number token, e.g. `"3"` or `"0.125"` (never re-formatted).
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub(crate) fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64` (protocol knobs like `deadline_secs`, where
    /// fractional seconds are meaningful).
    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The key/value pairs of an object (empty for non-objects).
    pub(crate) fn entries(&self) -> &[(String, Json)] {
        match self {
            Json::Obj(pairs) => pairs,
            _ => &[],
        }
    }

    /// A short human rendering for error messages: the raw token for
    /// numbers, a quoted excerpt for strings, a type name otherwise.
    pub(crate) fn brief(&self) -> String {
        match self {
            Json::Null => "null".into(),
            Json::Bool(b) => b.to_string(),
            Json::Num(raw) => raw.clone(),
            Json::Str(s) if s.len() <= 32 => format!("\"{s}\""),
            Json::Str(s) => format!("\"{}…\"", s.chars().take(29).collect::<String>()),
            Json::Arr(_) => "an array".into(),
            Json::Obj(_) => "an object".into(),
        }
    }
}

pub(crate) struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    pub(crate) fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code}"))?,
                            );
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe: advance to
                    // the next char boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        // The consumed bytes are all ASCII, so this conversion cannot
        // fail — but a daemon parsing hostile input never gets to rely
        // on "cannot": surface a structured error instead of panicking.
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number token at offset {start}"))?;
        if raw.parse::<f64>().is_err() {
            return Err(format!("bad number `{raw}` at offset {start}"));
        }
        Ok(Json::Num(raw.to_string()))
    }
}

/// Maps a parsed JSON value back to a record [`Field`]. The inverse of
/// `Field::write_json`: pure-integer tokens become `UInt` (matching how
/// the harness emits them), anything else numeric becomes `Float`, and
/// `null` inside a float array round-trips to `NaN`.
pub(crate) fn field_from_json(value: &Json) -> Result<Field, String> {
    Ok(match value {
        Json::Null => Field::Null,
        Json::Bool(b) => Field::Bool(*b),
        Json::Str(s) => Field::Str(s.clone()),
        Json::Num(raw) => {
            if !raw.contains(['.', 'e', 'E', '-']) {
                Field::UInt(raw.parse::<u64>().map_err(|e| format!("`{raw}`: {e}"))?)
            } else {
                Field::Float(raw.parse::<f64>().map_err(|e| format!("`{raw}`: {e}"))?)
            }
        }
        Json::Arr(items) => {
            let mut xs = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Json::Null => xs.push(f64::NAN),
                    Json::Num(raw) => {
                        xs.push(raw.parse::<f64>().map_err(|e| format!("`{raw}`: {e}"))?)
                    }
                    _ => return Err("array element is not a number".into()),
                }
            }
            Field::Floats(xs)
        }
        Json::Obj(_) => return Err("nested objects are not record fields".into()),
    })
}

/// Rebuilds a [`Record`] from its parsed JSON object.
pub(crate) fn record_from_json(value: &Json) -> Result<Record, String> {
    let Json::Obj(pairs) = value else {
        return Err("record is not an object".into());
    };
    let mut record = Record::new();
    for (key, v) in pairs {
        record.push(
            Cow::<'static, str>::Owned(key.clone()),
            field_from_json(v).map_err(|e| format!("field `{key}`: {e}"))?,
        );
    }
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "{\"a\" 1}",
            "[1,",
            "\"unterminated",
            "{\"a\":1}x",
            "nul",
            "{\"n\": 1e}",
            "{\"n\": --3}",
        ] {
            assert!(JsonParser::parse(bad).is_err(), "accepted `{bad}`");
        }
        assert_eq!(
            JsonParser::parse("{\"u\": \"\\u0041\"}")
                .unwrap()
                .get("u")
                .unwrap()
                .as_str(),
            Some("A")
        );
    }

    #[test]
    fn accessors_and_brief_renderings() {
        let v = JsonParser::parse(r#"{"i": 3, "neg": -2, "f": 1.5, "s": "x", "b": true}"#).unwrap();
        assert_eq!(v.get("i").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("neg").unwrap().as_i64(), Some(-2));
        assert_eq!(
            v.get("neg").unwrap().as_u64(),
            None,
            "negatives are not u64"
        );
        assert_eq!(v.get("f").unwrap().as_u64(), None, "fractions are not u64");
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_f64(), None, "strings are not f64");
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.entries().len(), 5);
        assert_eq!(v.get("f").unwrap().brief(), "1.5");
        assert_eq!(v.get("s").unwrap().brief(), "\"x\"");
        assert_eq!(v.brief(), "an object");
    }
}
