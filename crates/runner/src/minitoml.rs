//! A minimal TOML-subset parser for experiment specs.
//!
//! The workspace builds with zero network dependencies, so specs are
//! parsed by this small hand-written reader instead of a `toml` crate.
//! The supported subset is exactly what `experiments/*.toml` needs:
//!
//! * `# comments` and blank lines
//! * one level of `[section]` headers
//! * `key = value` with string, integer, float, boolean, and
//!   single-line array values (arrays of strings or numbers)
//!
//! Keys are flattened to `section.key`. Anything outside the subset is a
//! parse error with a line number, not a silent skip.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A single-line array of scalar values.
    Array(Vec<Value>),
}

impl Value {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float (integers coerce).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(xs) => Some(xs),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Array(xs) => {
                write!(f, "[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// A parsed document: flattened `section.key → value` pairs in
/// deterministic (sorted) order.
pub type Document = BTreeMap<String, Value>;

/// Parses a TOML-subset document.
///
/// # Errors
///
/// Returns a message with a 1-based line number for any construct outside
/// the supported subset (multi-line values, nested tables, bad literals).
pub fn parse(text: &str) -> Result<Document, String> {
    let mut doc = Document::new();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {lineno}: unterminated section header"))?
                .trim();
            if name.is_empty() || name.contains('[') || name.contains('.') {
                return Err(format!(
                    "line {lineno}: only plain one-level [section] headers are supported"
                ));
            }
            section = name.to_string();
            continue;
        }
        let (key, value_text) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(format!("line {lineno}: bad key `{key}`"));
        }
        let full_key = if section.is_empty() {
            key.to_string()
        } else {
            format!("{section}.{key}")
        };
        if doc.contains_key(&full_key) {
            return Err(format!("line {lineno}: duplicate key `{full_key}`"));
        }
        let value = parse_value(value_text.trim()).map_err(|e| format!("line {lineno}: {e}"))?;
        doc.insert(full_key, value);
    }
    Ok(doc)
}

/// Strips a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Result<Value, String> {
    if text.is_empty() {
        return Err("missing value".into());
    }
    if let Some(rest) = text.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string `{text}`"))?;
        if inner.contains('"') {
            return Err(format!("embedded quote in `{text}`"));
        }
        if inner.contains('\\') {
            return Err(format!(
                "escape sequence in `{text}` (this TOML subset reads strings \
                 literally; drop the backslash)"
            ));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    if let Some(rest) = text.strip_prefix('[') {
        let inner = rest
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated array `{text}` (arrays must be single-line)"))?;
        let mut items = Vec::new();
        for part in split_array_items(inner)? {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                Value::Array(_) => return Err("nested arrays are not supported".into()),
                v => items.push(v),
            }
        }
        // Heterogeneous arrays are always a spec typo (every consumer
        // wants all-strings or all-numbers), so fail loudly instead of
        // letting a later `as_int`/`as_str` silently drop elements.
        // Ints and floats may mix: both read back as numbers.
        let type_of = |v: &Value| match v {
            Value::Str(_) => "string",
            Value::Int(_) | Value::Float(_) => "number",
            Value::Bool(_) => "boolean",
            Value::Array(_) => unreachable!("nested arrays rejected above"),
        };
        if let Some(first) = items.first() {
            let expected = type_of(first);
            if let Some(odd) = items.iter().find(|v| type_of(v) != expected) {
                return Err(format!(
                    "mixed-type array `{text}`: contains both {expected} and {} \
                     elements",
                    type_of(odd)
                ));
            }
        }
        return Ok(Value::Array(items));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(i) = text.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = text.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(format!("unrecognized value `{text}`"))
}

/// Splits array items on commas outside quotes.
fn split_array_items(inner: &str) -> Result<Vec<&str>, String> {
    let mut items = Vec::new();
    let mut start = 0usize;
    let mut in_string = false;
    for (i, c) in inner.char_indices() {
        match c {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_string {
        return Err(format!("unterminated string in array `{inner}`"));
    }
    items.push(&inner[start..]);
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_arrays() {
        let doc = parse(
            r#"
# a spec
name = "table2"
seed = 7
noisy = false
scale = 1.5

[grid]
problems = ["F1", "F2"]  # trailing comment
layers = [1, 2, 3]
"#,
        )
        .unwrap();
        assert_eq!(doc["name"], Value::Str("table2".into()));
        assert_eq!(doc["seed"], Value::Int(7));
        assert_eq!(doc["noisy"], Value::Bool(false));
        assert_eq!(doc["scale"], Value::Float(1.5));
        assert_eq!(
            doc["grid.problems"],
            Value::Array(vec![Value::Str("F1".into()), Value::Str("F2".into())])
        );
        assert_eq!(
            doc["grid.layers"],
            Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = parse("title = \"a # b\"").unwrap();
        assert_eq!(doc["title"], Value::Str("a # b".into()));
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert!(parse("x 3").unwrap_err().contains("line 1"));
        assert!(parse("\n\nkey = ").unwrap_err().contains("line 3"));
        assert!(parse("[a.b]\n").unwrap_err().contains("one-level"));
        assert!(parse("k = [1, [2]]").unwrap_err().contains("nested"));
        assert!(parse("k = \"open").unwrap_err().contains("unterminated"));
        assert!(parse("k = 1\nk = 2").unwrap_err().contains("duplicate"));
    }

    #[test]
    fn unterminated_strings_are_rejected_everywhere() {
        for bad in [
            "k = \"open",
            "k = \"open # not a comment",
            "k = [\"a\", \"open]",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(err.contains("unterminated"), "{bad}: {err}");
        }
    }

    #[test]
    fn duplicate_keys_are_rejected_across_sections() {
        let err = parse("[grid]\nseeds = [1]\nseeds = [2]").unwrap_err();
        assert!(err.contains("duplicate key `grid.seeds`"), "{err}");
        // Same leaf name in different sections is fine.
        assert!(parse("[a]\nk = 1\n[b]\nk = 2").is_ok());
        // ... and a re-opened section still collides.
        let err = parse("[a]\nk = 1\n[b]\nx = 1\n[a]\nk = 2").unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn escape_sequences_are_rejected_with_guidance() {
        for bad in ["k = \"a\\nb\"", "k = \"C:\\\\path\"", "k = [\"a\\tb\"]"] {
            let err = parse(bad).unwrap_err();
            assert!(err.contains("escape"), "{bad}: {err}");
            assert!(err.contains("literal"), "{bad}: {err}");
        }
    }

    #[test]
    fn mixed_type_arrays_are_rejected() {
        for (bad, both) in [
            ("k = [1, \"b\"]", ("number", "string")),
            ("k = [\"a\", true]", ("string", "boolean")),
            ("k = [true, 0]", ("boolean", "number")),
        ] {
            let err = parse(bad).unwrap_err();
            assert!(err.contains("mixed-type"), "{bad}: {err}");
            assert!(err.contains(both.0) && err.contains(both.1), "{bad}: {err}");
        }
        // Int/float mixes are one numeric family, not an error.
        assert_eq!(
            parse("k = [1, 2.5]").unwrap()["k"],
            Value::Array(vec![Value::Int(1), Value::Float(2.5)])
        );
    }

    #[test]
    fn value_accessors_coerce_sensibly() {
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Str("x".into()).as_int(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(
            format!("{}", parse("a = [1, 2.5]").unwrap()["a"]),
            "[1, 2.5]"
        );
        assert_eq!(
            format!(
                "{}",
                Value::Array(vec![Value::Int(1), Value::Str("b".into())])
            ),
            "[1, \"b\"]"
        );
    }
}
