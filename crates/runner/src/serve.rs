//! `choco-serve`: the solve-as-a-service daemon behind `choco-cli serve`.
//!
//! A long-lived process accepts job submissions over a line-oriented JSON
//! protocol (stdin/stdout or a Unix socket), expands each job into grid
//! cells with the *same* expansion as `choco-cli run`, and schedules the
//! cells across a persistent worker pool. Each worker owns long-lived
//! [`SimWorkspace`]s — one per distinct [`SimConfig`] — and all workspaces
//! for a given configuration share one [`PlanCache`] **across requests**:
//! the second job with the same circuit shapes replays compiled plans
//! instead of recompiling them (observable through the `stats` op).
//!
//! # Protocol
//!
//! Requests are single JSON lines; responses are single JSON event lines.
//!
//! | request | effect |
//! |---|---|
//! | `{"op": "submit", "spec_path": "…"}` | submit a spec file |
//! | `{"op": "submit", "spec_toml": "…"}` | submit inline spec TOML |
//! | `{"op": "submit", "job": {…}}` | submit a minimal JSON job |
//! | `{"op": "cancel", "id": "…"}` | cancel a job (idempotent) |
//! | `{"op": "stats"}` | queue depth, per-job progress, worker restarts, plan-cache statistics |
//! | `{"op": "health"}` | pool/state-dir vitals (workers alive, journal bytes, memory watermark) |
//! | `{"op": "shutdown"}` | drain active jobs, then exit |
//! | `{"op": "shutdown", "mode": "abort"}` | stop after in-flight cells |
//!
//! A `submit` additionally accepts per-job execution overrides:
//! `deadline_secs` (whole-job wall-clock budget), `cell_timeout`
//! (seconds per cell), and `retries` — the job-level counterparts of the
//! daemon-wide CLI knobs. They apply for the submitting daemon's
//! lifetime; a restart resumes the job under the daemon-wide settings.
//!
//! Events: `ready` (session start, lists resumed jobs), `accepted`,
//! `rejected` (with a machine-readable `kind`), `record` (one per
//! completed cell, streamed as it lands), `done` (report written),
//! `cancelled`, `stats`, `health`, `error`, `shutdown`.
//!
//! # Supervision and signals
//!
//! Cells already run under per-attempt `catch_unwind` isolation; the
//! serve pool adds a supervisor above it: a panic that escapes a worker
//! (the `kill@` chaos directive, or a defect outside the attempt
//! envelope) replaces that worker's workspaces, counts a restart
//! (surfaced via `stats`/`health`), and requeues the cell — bounded, so
//! a cell that keeps crashing workers becomes a structured `panic`
//! record instead of looping forever. SIGTERM/SIGINT (when the CLI
//! installed handlers) drain active jobs within a bounded window, then
//! fall back to abort: cancelled cells drain cooperatively, journals are
//! kept, and a restart heals the interrupted jobs.
//!
//! # Durability
//!
//! Every job writes an append-only checkpoint journal under the state
//! directory *before* its record is streamed, one atomic line per cell. A
//! killed daemon loses at most one torn trailing line: on restart the
//! daemon re-admits every non-`.done` job from its persisted spec, skips
//! journaled cells, and re-runs the rest. Reports are byte-identical to
//! `choco-cli run` of the same spec at any worker count, with or without
//! an intervening kill, under any injected fault schedule.

use crate::checkpoint::{load_journal, CheckpointJournal, JournalHeader};
use crate::fault::{CellError, CellErrorKind};
use crate::json::{Json, JsonParser};
use crate::report::{write_json_str, Field, Record, RunReport};
use crate::run::{
    build_instances, expand_grid_cells, grid_record, run_grid_cell, summarize, Instance,
};
use crate::spec::{Cell, ExperimentSpec, RunKind, SolverKind};
use crate::RunOptions;
use choco_qsim::{EngineKind, PlanCache, SimConfig, SimWorkspace};
use choco_solvers::shared::check_size_for;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Daemon configuration: where job state lives, how much work may queue,
/// and the execution options every job runs under.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Directory for per-job state: `<id>.spec.toml`, `<id>.journal`,
    /// `<id>.json` (the report), `<id>.done` (completion marker).
    pub state_dir: PathBuf,
    /// Maximum queued cells across all jobs. A submission whose cells
    /// would push the queue past this cap is rejected (`queue_full`)
    /// instead of admitted — backpressure, not unbounded memory.
    pub queue_cap: usize,
    /// Admission budget in bytes for resident simulator state
    /// (`--mem-budget`). A job whose peak per-cell estimate, multiplied
    /// by the worker count (every worker can hold its high-water
    /// workspace at once), exceeds this is rejected `too_large` before
    /// any file is written. `None` (the default) disables the check.
    pub mem_budget: Option<u64>,
    /// State-dir hygiene (`--gc-done`): prune the spec and journal of
    /// every completed job — at startup and as each job finishes. The
    /// report and `.done` marker are kept, so duplicate detection and
    /// report retrieval survive the pruning.
    pub gc_done: bool,
    /// How long a SIGTERM/SIGINT drain may wait for active jobs before
    /// falling back to abort (`--drain-timeout`; aborted jobs keep their
    /// journals and resume on restart).
    pub drain_timeout: Duration,
    /// Execution options applied to every job (worker count, engine and
    /// optimizer overrides, retries, timeouts). `checkpoint`/`resume`
    /// are ignored: the daemon manages its own journals.
    pub run: RunOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            state_dir: PathBuf::from("serve-state"),
            queue_cap: 4096,
            mem_budget: None,
            gc_done: false,
            drain_timeout: Duration::from_secs(60),
            run: RunOptions::default(),
        }
    }
}

/// One admitted job: the spec, its expanded cells, resolved instances,
/// journal, and the slots its records land in.
struct Job {
    id: String,
    spec: ExperimentSpec,
    opts: RunOptions,
    sim: SimConfig,
    cells: Vec<Cell>,
    instances: BTreeMap<(String, u64), Instance>,
    journal: CheckpointJournal,
    /// One slot per cell, indexed by `Cell::index`; resumed cells are
    /// prefilled from the journal.
    slots: Mutex<Vec<Option<Record>>>,
    /// Cells not yet finished; the worker that takes it to zero
    /// finalizes the job.
    remaining: AtomicUsize,
    /// Set on the first journal-append failure: remaining cells are
    /// skipped and the job finishes with an `error` event instead of a
    /// report (a checkpoint that silently stopped recording would
    /// defeat its purpose).
    failed: AtomicBool,
    /// Cooperative cancel flag (the same `Arc` stored in `opts.cancel`):
    /// set by the `cancel` op or a shutdown drain timeout. Queued cells
    /// drain as `cancelled` records; in-flight solves exit at their next
    /// objective evaluation.
    cancel: Arc<AtomicBool>,
    /// Set when a shutdown abort dropped this job's cells: finalization
    /// must keep the journal and skip the report/`.done` write so a
    /// restart can heal the job.
    aborted: AtomicBool,
    /// Cells that landed as error records (per-job `stats` reporting).
    failed_cells: AtomicUsize,
    report_path: PathBuf,
    done_path: PathBuf,
    /// Cells restored from the journal at admission.
    resumed: usize,
}

/// One schedulable unit: a cell of a job.
struct Task {
    job: Arc<Job>,
    cell: usize,
    /// Worker crashes this cell has caused (supervision requeues); at
    /// [`CELL_CRASH_LIMIT`] the supervisor records a structured failure
    /// instead of requeueing again.
    crashes: u32,
}

/// Mutable daemon state behind one lock.
struct ServeState {
    tasks: VecDeque<Task>,
    active: Vec<Arc<Job>>,
    stop: bool,
}

/// Everything the worker pool and the session loop share.
struct Shared<'env> {
    opts: &'env ServeOptions,
    state: Mutex<ServeState>,
    wake: Condvar,
    /// Plan-cache registry keyed by engine configuration: every worker
    /// workspace for the same [`SimConfig`] shares one cache, so plans
    /// compiled for one request replay for every later one.
    caches: Mutex<Vec<(SimConfig, Arc<PlanCache>)>>,
    /// The current session's output. Events emitted between sessions
    /// (e.g. a job finishing after its submitter disconnected) go to the
    /// sink bound at the time; job *state* is on disk either way.
    sink: Mutex<Box<dyn Write + Send + 'env>>,
    /// Per-worker restart counts: a panic escaping the per-cell
    /// isolation costs that worker its workspaces, and the supervisor
    /// counts the replacement here (surfaced via `stats`/`health`).
    restarts: Vec<AtomicUsize>,
    /// Workers currently inside their loop (health reporting).
    workers_alive: AtomicUsize,
    /// Largest admitted per-cell byte estimate: the admission floor,
    /// because worker workspaces keep their high-water buffers alive for
    /// the daemon's lifetime.
    mem_high_water: AtomicU64,
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How a session ended.
enum SessionEnd {
    /// Input exhausted; a socket daemon accepts the next connection, a
    /// stdio daemon drains and exits.
    Eof,
    /// An explicit `shutdown` op.
    Shutdown {
        /// `true` for `"mode": "abort"`: queued cells are dropped
        /// (journals keep them resumable) instead of drained.
        abort: bool,
    },
    /// SIGTERM/SIGINT arrived: drain within
    /// [`ServeOptions::drain_timeout`], then fall back to abort.
    Signal,
}

/// Set by the SIGTERM/SIGINT handler; polled by the session loop, the
/// socket accept loop, and the drain path.
static SHUTDOWN_SIGNAL: AtomicBool = AtomicBool::new(false);

extern "C" fn note_shutdown_signal(_signum: i32) {
    SHUTDOWN_SIGNAL.store(true, Ordering::SeqCst);
}

fn shutdown_requested() -> bool {
    SHUTDOWN_SIGNAL.load(Ordering::SeqCst)
}

/// Installs SIGTERM/SIGINT handlers that request the daemon's graceful
/// drain (bounded by [`ServeOptions::drain_timeout`], then abort).
/// Called by the `choco-cli serve` entry point only — never by the
/// library [`serve`]/[`serve_socket`] functions, so embedding a daemon
/// in-process (tests, benches) leaves the host's signal disposition
/// alone.
pub fn install_signal_handlers() {
    // `signal(2)` straight from the C runtime Rust already links — the
    // repo stays dependency-free. Only an atomic store happens in the
    // handler, which is async-signal-safe.
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGINT, note_shutdown_signal);
        signal(SIGTERM, note_shutdown_signal);
    }
}

/// Runs the daemon over a single input/output session (the
/// stdin/stdout mode of `choco-cli serve`). End of input drains active
/// jobs and exits, so `echo '…' | choco-cli serve` submits, waits, and
/// terminates cleanly.
///
/// # Errors
///
/// Returns setup failures (unusable state directory). Per-job failures
/// are reported as protocol events, not errors.
pub fn serve<R, W>(opts: &ServeOptions, input: R, output: W) -> Result<(), String>
where
    R: BufRead + Send + 'static,
    W: Write + Send,
{
    let mut session = Some((input, output));
    drive(opts, move || session.take())
}

/// Runs the daemon on a Unix socket: one connection at a time, each a
/// session of the same line protocol as [`serve`]. A stale socket file
/// is removed at bind time; the daemon exits on a `shutdown` op.
///
/// # Errors
///
/// Returns setup failures (bind errors, unusable state directory).
pub fn serve_socket(opts: &ServeOptions, socket_path: &Path) -> Result<(), String> {
    use std::os::unix::net::UnixListener;
    if socket_path.exists() {
        std::fs::remove_file(socket_path)
            .map_err(|e| format!("cannot remove stale socket {}: {e}", socket_path.display()))?;
    }
    if let Some(parent) = socket_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    let listener = UnixListener::bind(socket_path)
        .map_err(|e| format!("cannot bind {}: {e}", socket_path.display()))?;
    // Non-blocking accept: a blocking accept would ride out SIGTERM (std
    // retries EINTR), so the loop polls the shutdown flag between
    // attempts instead.
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot configure {}: {e}", socket_path.display()))?;
    eprintln!("choco-serve: listening on {}", socket_path.display());
    drive(opts, move || loop {
        if shutdown_requested() {
            return None;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let Ok(reader) = stream.try_clone() else {
                    continue;
                };
                return Some((std::io::BufReader::new(reader), stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => {
                eprintln!("choco-serve: accept failed: {e}");
                return None;
            }
        }
    })
}

/// The daemon core shared by both transports: starts the worker pool,
/// resumes persisted jobs at the first session, then processes sessions
/// until input ends (stdio) or a `shutdown` op arrives.
fn drive<'env, R, W>(
    opts: &'env ServeOptions,
    mut next_session: impl FnMut() -> Option<(R, W)>,
) -> Result<(), String>
where
    R: BufRead + Send + 'static,
    W: Write + Send + 'env,
{
    std::fs::create_dir_all(&opts.state_dir)
        .map_err(|e| format!("cannot create state dir {}: {e}", opts.state_dir.display()))?;
    if opts.gc_done {
        gc_done_jobs(&opts.state_dir);
    }
    let n_workers = opts.run.effective_workers(usize::MAX);
    let shared = Shared {
        opts,
        state: Mutex::new(ServeState {
            tasks: VecDeque::new(),
            active: Vec::new(),
            stop: false,
        }),
        wake: Condvar::new(),
        caches: Mutex::new(Vec::new()),
        sink: Mutex::new(Box::new(std::io::sink())),
        restarts: (0..n_workers).map(|_| AtomicUsize::new(0)).collect(),
        workers_alive: AtomicUsize::new(0),
        mem_high_water: AtomicU64::new(0),
    };
    std::thread::scope(|scope| {
        for worker in 0..n_workers {
            let shared = &shared;
            scope.spawn(move || worker_loop(shared, worker));
        }
        let mut resumed: Option<Vec<String>> = None;
        let mut end = SessionEnd::Eof;
        while let Some((input, output)) = next_session() {
            *lock(&shared.sink) = Box::new(output);
            let ids = match &resumed {
                Some(ids) => ids.clone(),
                None => {
                    let ids = resume_jobs(&shared);
                    resumed = Some(ids.clone());
                    ids
                }
            };
            emit_ready(&shared, &ids);
            end = session_loop(&shared, input);
            if !matches!(end, SessionEnd::Eof) {
                break;
            }
        }
        // A stdio daemon whose input ended *because* a signal arrived
        // (reader thread gone, flag set) drains under signal semantics.
        if matches!(end, SessionEnd::Eof) && shutdown_requested() {
            end = SessionEnd::Signal;
        }
        let mode = drain(&shared, &end);
        emit_shutdown(&shared, mode);
    });
    // Consume the flag so a later in-process daemon (tests run several
    // sequentially) starts with a clean slate.
    SHUTDOWN_SIGNAL.store(false, Ordering::SeqCst);
    Ok(())
}

/// Winds the pool down according to how the final session ended.
/// Returns the shutdown mode actually reached: `drain`/`abort` for
/// protocol-initiated shutdowns, `signal-drain` for a signal drain that
/// completed in time, `signal-abort` when the drain window expired and
/// active jobs were cancelled and aborted (journals kept, resumable).
fn drain(shared: &Shared, end: &SessionEnd) -> &'static str {
    let mut mode = match end {
        SessionEnd::Shutdown { abort: true } => "abort",
        SessionEnd::Shutdown { abort: false } | SessionEnd::Eof => "drain",
        SessionEnd::Signal => "signal-drain",
    };
    {
        let mut st = lock(&shared.state);
        if matches!(end, SessionEnd::Shutdown { abort: true }) {
            st.tasks.clear();
            st.active.clear();
        } else {
            let mut deadline: Option<Instant> = None;
            while !st.active.is_empty() {
                // A signal may arrive mid-drain (e.g. during an Eof
                // drain); from that point the bounded window applies.
                if deadline.is_none() && shutdown_requested() {
                    deadline = Some(Instant::now() + shared.opts.drain_timeout);
                    mode = "signal-drain";
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    for job in &st.active {
                        job.cancel.store(true, Ordering::SeqCst);
                        job.aborted.store(true, Ordering::SeqCst);
                    }
                    st.tasks.clear();
                    st.active.clear();
                    mode = "signal-abort";
                    break;
                }
                let (guard, _) = shared
                    .wake
                    .wait_timeout(st, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }
        st.stop = true;
    }
    shared.wake.notify_all();
    mode
}

/// Reads request lines from one session until EOF, a `shutdown` op, or a
/// shutdown signal. Input is pumped through a channel by a detached
/// reader thread: a blocking `read_line` would ride out SIGTERM (std
/// retries EINTR), so the session loop polls the shutdown flag between
/// bounded waits instead.
fn session_loop<R: BufRead + Send + 'static>(shared: &Shared, input: R) -> SessionEnd {
    let (tx, rx) = std::sync::mpsc::channel::<std::io::Result<String>>();
    let spawned = std::thread::Builder::new()
        .name("choco-serve-reader".to_string())
        .spawn(move || {
            for line in input.lines() {
                let failed = line.is_err();
                if tx.send(line).is_err() || failed {
                    break;
                }
            }
        });
    if let Err(e) = spawned {
        emit_error(shared, None, &format!("cannot start session reader: {e}"));
        return SessionEnd::Eof;
    }
    loop {
        if shutdown_requested() {
            return SessionEnd::Signal;
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(Ok(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                if let Some(end) = handle_request(shared, &line) {
                    return end;
                }
            }
            Ok(Err(_)) => return SessionEnd::Eof,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return SessionEnd::Eof,
        }
    }
}

/// Dispatches one request line; `Some` ends the session.
fn handle_request(shared: &Shared, line: &str) -> Option<SessionEnd> {
    let request = match JsonParser::parse(line) {
        Ok(v) => v,
        Err(e) => {
            emit_error(shared, None, &format!("bad request line: {e}"));
            return None;
        }
    };
    match request.get("op").and_then(Json::as_str) {
        Some("submit") => {
            handle_submit(shared, &request);
            None
        }
        Some("cancel") => {
            handle_cancel(shared, &request);
            None
        }
        Some("stats") => {
            emit_stats(shared);
            None
        }
        Some("health") => {
            emit_health(shared);
            None
        }
        Some("shutdown") => {
            let abort = request.get("mode").and_then(Json::as_str) == Some("abort");
            Some(SessionEnd::Shutdown { abort })
        }
        Some(other) => {
            emit_error(
                shared,
                None,
                &format!(
                    "unknown op `{other}` (expected submit, cancel, stats, health, or shutdown)"
                ),
            );
            None
        }
        None => {
            emit_error(shared, None, "request has no `op` key");
            None
        }
    }
}

/// Admission control: validates a submission end to end, then either
/// enqueues its cells (emitting `accepted`) or rejects it with a
/// machine-readable kind (emitting `rejected`). Rejections never leave
/// state files behind.
fn handle_submit(shared: &Shared, request: &Json) {
    let id_hint = request
        .get("id")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    match admit(shared, request) {
        Ok(job) => emit_accepted(shared, &job),
        Err((kind, reason)) => emit_rejected(shared, &id_hint, kind, &reason),
    }
}

/// The `cancel` op: idempotent by design. An active job has its cancel
/// flag set (queued cells drain as `cancelled` records, in-flight solves
/// exit at their next objective evaluation and the job still finalizes
/// with a report); a finished or unknown job is a no-op. The response
/// reports what was found (`active`, `done`, `known`), so a client can
/// tell an in-flight job, a completed one, a known-but-failed one
/// (journal retained, no `.done` marker), and an unknown id apart.
fn handle_cancel(shared: &Shared, request: &Json) {
    let Some(id) = request.get("id").and_then(Json::as_str) else {
        emit_error(shared, None, "cancel needs a string `id`");
        return;
    };
    let active = {
        let st = lock(&shared.state);
        match st.active.iter().find(|j| j.id == id) {
            Some(job) => {
                job.cancel.store(true, Ordering::SeqCst);
                true
            }
            None => false,
        }
    };
    // A successful finalize writes `.done` strictly before it drops the
    // job from the active set, so probing the marker after releasing the
    // lock cannot miss a completion that raced this cancel. Jobs that
    // finished failed or aborted never write `.done`; their retained
    // spec/journal files distinguish them from a never-seen id.
    let state_file = |ext: &str| shared.opts.state_dir.join(format!("{id}.{ext}")).exists();
    let done = state_file("done");
    let known = active || done || state_file("spec.toml") || state_file("journal");
    emit_cancelled(shared, id, active, done, known);
}

/// Per-job execution overrides parsed from a `submit` request.
#[derive(Default)]
struct JobKnobs {
    /// Whole-job wall-clock budget (`deadline_secs`).
    deadline: Option<Duration>,
    /// Per-cell timeout override (`cell_timeout`, seconds).
    cell_timeout: Option<Duration>,
    /// Per-cell retry budget override (`retries`).
    retries: Option<u32>,
}

/// Largest second count accepted for time knobs (~31 years). The cap
/// keeps both `Duration` construction and `Instant` deadline arithmetic
/// comfortably in range, so an absurd `deadline_secs` is a `bad_request`
/// rejection instead of a panic on the daemon's control thread.
pub(crate) const MAX_KNOB_SECS: f64 = 1e9;

fn positive_secs(key: &str, value: &Json) -> Result<Duration, String> {
    let secs = value
        .as_f64()
        .filter(|s| s.is_finite() && *s > 0.0 && *s <= MAX_KNOB_SECS)
        .ok_or_else(|| {
            format!(
                "`{key}`: expected a positive number of seconds, at most {MAX_KNOB_SECS:.0} (got {})",
                value.brief()
            )
        })?;
    Duration::try_from_secs_f64(secs).map_err(|e| format!("`{key}`: {e}"))
}

fn job_knobs(request: &Json) -> Result<JobKnobs, String> {
    let mut knobs = JobKnobs::default();
    if let Some(value) = request.get("deadline_secs") {
        knobs.deadline = Some(positive_secs("deadline_secs", value)?);
    }
    if let Some(value) = request.get("cell_timeout") {
        knobs.cell_timeout = Some(positive_secs("cell_timeout", value)?);
    }
    if let Some(value) = request.get("retries") {
        let retries = value
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| {
                format!(
                    "`retries`: expected a small non-negative integer (got {})",
                    value.brief()
                )
            })?;
        knobs.retries = Some(retries);
    }
    Ok(knobs)
}

/// Admission result: either an enqueued job or `(kind, reason)`.
type Admission = Result<Arc<Job>, (&'static str, String)>;

fn admit(shared: &Shared, request: &Json) -> Admission {
    let knobs = job_knobs(request).map_err(|e| ("bad_request", e))?;
    let toml = spec_source(request).map_err(|e| ("bad_request", e))?;
    let spec = ExperimentSpec::parse_str(&toml).map_err(|e| ("spec_error", e))?;
    let id = match request.get("id").and_then(Json::as_str) {
        Some(explicit) => explicit.to_string(),
        None => spec.name.clone(),
    };
    validate_id(&id).map_err(|e| ("bad_request", e))?;
    if !matches!(spec.kind, RunKind::Grid) {
        return Err((
            "bad_request",
            format!(
                "choco-serve accepts grid specs only (this spec is `{}`)",
                spec.kind.label()
            ),
        ));
    }
    {
        let st = lock(&shared.state);
        if st.active.iter().any(|j| j.id == id) {
            return Err(("duplicate", format!("job `{id}` is already active")));
        }
    }
    let spec_path = shared.opts.state_dir.join(format!("{id}.spec.toml"));
    let done_path = shared.opts.state_dir.join(format!("{id}.done"));
    if spec_path.exists() || done_path.exists() {
        return Err((
            "duplicate",
            format!(
                "job `{id}` already exists in {} (state is kept for audit; pick a new id)",
                shared.opts.state_dir.display()
            ),
        ));
    }
    prepare_job(shared, id, spec, Some(&toml), false, &knobs)
}

/// Builds, validates, persists, and enqueues a job. `persist_toml` is the
/// spec text to write for a fresh submission (`None` on resume, where it
/// is already on disk); `resume` additionally restores journaled cells.
/// All validation happens before anything is written, so a rejected
/// submission leaves no state behind.
fn prepare_job(
    shared: &Shared,
    id: String,
    spec: ExperimentSpec,
    persist_toml: Option<&str>,
    resume: bool,
    knobs: &JobKnobs,
) -> Admission {
    let mut opts = shared.opts.run.clone();
    opts.checkpoint = None;
    opts.resume = false;
    if let Some(cell_timeout) = knobs.cell_timeout {
        opts.cell_timeout = Some(cell_timeout);
    }
    if let Some(retries) = knobs.retries {
        opts.retries = retries;
    }
    let cancel = Arc::new(AtomicBool::new(false));
    opts.cancel = Some(cancel.clone());
    // `checked_add` cannot fail for knob-capped durations, but a `None`
    // (no deadline) beats a panic if the platform's `Instant` range is
    // narrower than expected.
    opts.job_deadline = knobs.deadline.and_then(|d| Instant::now().checked_add(d));
    let sim = opts.effective_sim(&spec);
    let cells = expand_grid_cells(&spec, opts.quick).map_err(|e| ("spec_error", e))?;
    if cells.is_empty() {
        return Err((
            "spec_error",
            "the spec expands to zero cells (empty grid axes?)".to_string(),
        ));
    }
    let header = JournalHeader::for_run(&spec, &opts, cells.len());
    let journal_path = shared.opts.state_dir.join(format!("{id}.journal"));
    let completed = if resume && journal_path.exists() {
        load_journal(&journal_path, &header)
            .map_err(|e| ("journal_error", e))?
            .completed
    } else {
        BTreeMap::new()
    };
    let pending_cells: Vec<Cell> = cells
        .iter()
        .filter(|c| !completed.contains_key(&c.index))
        .cloned()
        .collect();
    let instances = build_instances(&pending_cells).map_err(|e| ("spec_error", e))?;
    // Size gate at admission: an instance no engine can hold is rejected
    // with the same guidance `check_size_for` gives the CLI, instead of
    // occupying a worker just to fail. Sized on the *encoded* register —
    // native-inequality instances simulate driver-synthesized slack
    // registers on top of their decision variables.
    for ((family, seed), instance) in &instances {
        check_size_for(admission_qubits(&instance.problem), sim.engine)
            .map_err(|e| ("too_large", format!("{family} seed={seed}: {e}")))?;
    }
    // Memory-aware admission (`--mem-budget`): every worker can end up
    // holding its high-water workspace at once, so the budget must cover
    // the largest admitted per-cell estimate times the worker count —
    // including the floor set by jobs already admitted (workspaces keep
    // their buffers for the daemon's lifetime).
    let mut job_peak = 0u64;
    if let Some(budget) = shared.opts.mem_budget {
        let mut worst = String::new();
        for cell in &pending_cells {
            let key = (cell.problem.as_str().to_string(), cell.instance_seed);
            let bytes = cell_sim_bytes(cell, &instances[&key], sim.engine);
            if bytes > job_peak {
                job_peak = bytes;
                worst = format!("{} seed={}", cell.problem.as_str(), cell.instance_seed);
            }
        }
        if !pending_cells.is_empty() {
            let floor = shared.mem_high_water.load(Ordering::SeqCst).max(job_peak);
            let n_workers = shared.opts.run.effective_workers(usize::MAX);
            let required = floor.saturating_mul(n_workers as u64);
            if budget < required {
                return Err((
                    "too_large",
                    format!(
                        "estimated resident simulator state ~{} ({} per worker x {} workers; \
                         peak cell {worst} needs {}) exceeds --mem-budget {}; raise the budget, \
                         lower --workers, or pick a leaner engine (sparse/compact hold |F| \
                         amplitudes instead of 2^n)",
                        fmt_bytes(required),
                        fmt_bytes(floor),
                        n_workers,
                        fmt_bytes(job_peak),
                        fmt_bytes(budget)
                    ),
                ));
            }
        }
    }
    {
        let st = lock(&shared.state);
        if st.tasks.len() + pending_cells.len() > shared.opts.queue_cap {
            return Err((
                "queue_full",
                format!(
                    "queue is full: {} queued + {} new cells exceeds the cap of {}",
                    st.tasks.len(),
                    pending_cells.len(),
                    shared.opts.queue_cap
                ),
            ));
        }
    }
    shared.mem_high_water.fetch_max(job_peak, Ordering::SeqCst);
    // Commit point: everything below writes state.
    if let Some(toml) = persist_toml {
        let spec_path = shared.opts.state_dir.join(format!("{id}.spec.toml"));
        std::fs::write(&spec_path, toml).map_err(|e| {
            (
                "io_error",
                format!("cannot write {}: {e}", spec_path.display()),
            )
        })?;
    }
    let journal = if resume && journal_path.exists() {
        CheckpointJournal::append_to(&journal_path).map_err(|e| ("journal_error", e))?
    } else {
        CheckpointJournal::create(&journal_path, &header).map_err(|e| ("journal_error", e))?
    };
    let mut slots: Vec<Option<Record>> = vec![None; cells.len()];
    let mut resumed_count = 0usize;
    for (index, record) in completed {
        slots[index] = Some(record);
        resumed_count += 1;
    }
    let pending: Vec<usize> = (0..cells.len()).filter(|&i| slots[i].is_none()).collect();
    let job = Arc::new(Job {
        report_path: shared.opts.state_dir.join(format!("{id}.json")),
        done_path: shared.opts.state_dir.join(format!("{id}.done")),
        id,
        spec,
        opts,
        sim,
        cells,
        instances,
        journal,
        slots: Mutex::new(slots),
        remaining: AtomicUsize::new(pending.len()),
        failed: AtomicBool::new(false),
        cancel,
        aborted: AtomicBool::new(false),
        failed_cells: AtomicUsize::new(0),
        resumed: resumed_count,
    });
    {
        let mut st = lock(&shared.state);
        st.active.push(job.clone());
        for &i in &pending {
            st.tasks.push_back(Task {
                job: job.clone(),
                cell: i,
                crashes: 0,
            });
        }
    }
    shared.wake.notify_all();
    if pending.is_empty() {
        // Killed after the last journal append but before the report
        // write: nothing to schedule, finalize right away.
        finalize_job(shared, &job);
    }
    Ok(job)
}

/// Re-admits every persisted job without a `.done` marker, restoring
/// journaled cells. Returns the resumed job ids (sorted, so the `ready`
/// event is deterministic). A job whose state is unusable is reported
/// and skipped — one corrupt journal must not take the daemon down.
fn resume_jobs(shared: &Shared) -> Vec<String> {
    let mut ids = Vec::new();
    let Ok(entries) = std::fs::read_dir(&shared.opts.state_dir) else {
        return ids;
    };
    let mut names: Vec<String> = entries
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().into_string().ok())
        .filter_map(|n| n.strip_suffix(".spec.toml").map(str::to_string))
        .collect();
    names.sort();
    for id in names {
        if shared.opts.state_dir.join(format!("{id}.done")).exists() {
            continue;
        }
        let spec_path = shared.opts.state_dir.join(format!("{id}.spec.toml"));
        let text = match std::fs::read_to_string(&spec_path) {
            Ok(text) => text,
            Err(e) => {
                emit_error(
                    shared,
                    Some(&id),
                    &format!("resume failed: cannot read {}: {e}", spec_path.display()),
                );
                continue;
            }
        };
        let spec = match ExperimentSpec::parse_str(&text) {
            Ok(spec) => spec,
            Err(e) => {
                emit_error(shared, Some(&id), &format!("resume failed: {e}"));
                continue;
            }
        };
        match prepare_job(shared, id.clone(), spec, None, true, &JobKnobs::default()) {
            Ok(_) => ids.push(id),
            Err((kind, reason)) => {
                emit_error(
                    shared,
                    Some(&id),
                    &format!("resume failed ({kind}): {reason}"),
                );
            }
        }
    }
    ids
}

/// The worker loop: pops tasks until the daemon stops. The workspace
/// registry (one per distinct [`SimConfig`]) persists for the worker's
/// lifetime, and every workspace shares the global plan cache for its
/// configuration — the cross-request reuse the daemon exists for.
///
/// The supervisor envelope: a panic that escapes [`run_task`]'s own
/// per-attempt isolation (the `kill@` chaos directive, or a defect
/// outside the attempt region) is caught here, the worker's workspaces
/// are replaced (plan caches survive — they live in [`Shared`]), a
/// restart is counted, and the cell is requeued with its crash count
/// bumped. Completion accounting stays *outside* the unwind region, so
/// a requeued cell is never double-counted.
fn worker_loop(shared: &Shared, worker: usize) {
    shared.workers_alive.fetch_add(1, Ordering::SeqCst);
    let mut workspaces: Vec<(SimConfig, SimWorkspace)> = Vec::new();
    loop {
        let task = {
            let mut st = lock(&shared.state);
            loop {
                if let Some(task) = st.tasks.pop_front() {
                    break Some(task);
                }
                if st.stop {
                    break None;
                }
                st = shared.wake.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(task) = task else { break };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_task(shared, &mut workspaces, &task)
        }));
        match outcome {
            Ok(()) => finish_cell(shared, &task.job),
            Err(payload) => {
                shared.restarts[worker].fetch_add(1, Ordering::SeqCst);
                // Poison-healing discipline: anything the panic may have
                // left half-updated is dropped and rebuilt fresh.
                workspaces = Vec::new();
                supervise_crash(shared, task, payload.as_ref());
            }
        }
    }
    shared.workers_alive.fetch_sub(1, Ordering::SeqCst);
}

/// Completion accounting for one scheduled cell: the worker that takes
/// `remaining` to zero finalizes the job. Kept separate from
/// [`run_task`] so the supervisor's crash path (which *requeues* the
/// cell) never decrements the counter.
fn finish_cell(shared: &Shared, job: &Arc<Job>) {
    if job.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
        finalize_job(shared, job);
    }
}

/// Runs one cell and commits its record; completion accounting lives in
/// [`finish_cell`]. Cancelled or deadline-expired jobs skip the solve and
/// commit a structured terminal record instead — queued cells drain
/// cooperatively rather than executing after the job gave up.
fn run_task(shared: &Shared, workspaces: &mut Vec<(SimConfig, SimWorkspace)>, task: &Task) {
    let job = &task.job;
    if job.failed.load(Ordering::SeqCst) {
        return;
    }
    let cell = &job.cells[task.cell];
    // Chaos hook: a `kill@` directive panics *outside* the per-attempt
    // isolation in `run_grid_cell`, exercising the worker supervisor the
    // way a real escaped panic would.
    if let Some(plan) = &job.opts.faults {
        if plan.draw_kill(cell.index) {
            panic!("injected fault: worker kill (CHOCO_FAULT_INJECT)");
        }
    }
    let key = (cell.problem.as_str().to_string(), cell.instance_seed);
    let started = Instant::now();
    let record = if job.cancel.load(Ordering::SeqCst) {
        // Same detail as the mid-solve relabel in `run_grid_cell`, so the
        // record is independent of *where* the cancel caught the cell.
        grid_record(
            &job.spec,
            &job.opts,
            cell,
            &job.instances[&key],
            Err(CellError::new(CellErrorKind::Cancelled, "job cancelled")),
            0,
        )
    } else if job.opts.job_deadline.is_some_and(|d| Instant::now() >= d) {
        grid_record(
            &job.spec,
            &job.opts,
            cell,
            &job.instances[&key],
            Err(CellError::new(
                CellErrorKind::Timeout,
                "job deadline exceeded",
            )),
            0,
        )
    } else {
        let workspace = workspace_for(workspaces, &shared.caches, job.sim);
        run_grid_cell(
            &job.spec,
            &job.opts,
            cell,
            &job.instances[&key],
            workspace,
            job.sim,
        )
    };
    commit_record(shared, job, task.cell, started.elapsed(), record);
}

/// Journals and streams one finished record. The journal append happens
/// *before* the record event, so a client that saw the record can rely
/// on it surviving a crash.
fn commit_record(shared: &Shared, job: &Arc<Job>, index: usize, elapsed: Duration, record: Record) {
    if matches!(record.get("status"), Some(Field::Str(s)) if s.as_str() == "error") {
        job.failed_cells.fetch_add(1, Ordering::SeqCst);
    }
    if let Err(e) = job.journal.append_cell(index, elapsed, &record) {
        job.failed.store(true, Ordering::SeqCst);
        emit_error(shared, Some(&job.id), &e);
    } else {
        emit_record(shared, &job.id, index, &record);
        lock(&job.slots)[index] = Some(record);
    }
}

/// Crashes a cell may cause before the supervisor stops requeueing it
/// and records a structured failure instead.
const CELL_CRASH_LIMIT: u32 = 3;

/// Handles a panic that escaped a worker: requeue the cell (bounded by
/// [`CELL_CRASH_LIMIT`]) or, at the limit or under cancellation, commit
/// a terminal `panic` record so the job still finishes with a report.
fn supervise_crash(shared: &Shared, task: Task, payload: &(dyn std::any::Any + Send)) {
    let error = CellError::from_panic(payload);
    let job = task.job.clone();
    if task.crashes + 1 < CELL_CRASH_LIMIT && !job.cancel.load(Ordering::SeqCst) {
        eprintln!(
            "choco-serve: job {} cell {} crashed its worker ({}); requeueing (crash {}/{})",
            job.id,
            task.cell,
            error.detail,
            task.crashes + 1,
            CELL_CRASH_LIMIT
        );
        {
            let mut st = lock(&shared.state);
            st.tasks.push_back(Task {
                crashes: task.crashes + 1,
                ..task
            });
        }
        shared.wake.notify_all();
        return;
    }
    let cell = &job.cells[task.cell];
    let key = (cell.problem.as_str().to_string(), cell.instance_seed);
    let record = grid_record(
        &job.spec,
        &job.opts,
        cell,
        &job.instances[&key],
        Err(CellError::new(
            CellErrorKind::Panic,
            format!(
                "cell crashed its worker {} times; last panic: {}",
                task.crashes + 1,
                error.detail
            ),
        )),
        0,
    );
    commit_record(shared, &job, task.cell, Duration::ZERO, record);
    finish_cell(shared, &job);
}

/// Finds (or creates) this worker's workspace for `sim`, wiring it to
/// the daemon-global plan cache for that configuration.
fn workspace_for<'w>(
    workspaces: &'w mut Vec<(SimConfig, SimWorkspace)>,
    caches: &Mutex<Vec<(SimConfig, Arc<PlanCache>)>>,
    sim: SimConfig,
) -> &'w mut SimWorkspace {
    if let Some(idx) = workspaces.iter().position(|(config, _)| *config == sim) {
        return &mut workspaces[idx].1;
    }
    let cache = {
        let mut caches = lock(caches);
        match caches.iter().find(|(config, _)| *config == sim) {
            Some((_, cache)) => cache.clone(),
            None => {
                let cache = Arc::new(PlanCache::new());
                caches.push((sim, cache.clone()));
                cache
            }
        }
    };
    let idx = workspaces.len();
    workspaces.push((sim, SimWorkspace::with_plan_cache(sim, cache)));
    &mut workspaces[idx].1
}

/// Assembles and writes the job's report (byte-identical to
/// `choco-cli run` of the same spec), marks it `.done`, removes it from
/// the active set, and emits `done` — or `error` if the job failed.
fn finalize_job(shared: &Shared, job: &Arc<Job>) {
    if job.aborted.load(Ordering::SeqCst) {
        // A shutdown abort dropped some of this job's cells; writing a
        // report now would publish a hole-ridden result. Keep the journal
        // and let a restart heal the job instead.
        {
            let mut st = lock(&shared.state);
            st.active.retain(|active| !Arc::ptr_eq(active, job));
        }
        shared.wake.notify_all();
        emit_error(
            shared,
            Some(&job.id),
            "job aborted by shutdown before completing; journal retained — restart the daemon to resume",
        );
        return;
    }
    let result: Result<(usize, u64), String> = if job.failed.load(Ordering::SeqCst) {
        Err("job failed: checkpoint journal append error (see earlier error event)".to_string())
    } else {
        let records: Result<Vec<Record>, String> = {
            let mut slot_vec = lock(&job.slots);
            (0..job.cells.len())
                .map(|i| {
                    slot_vec[i]
                        .take()
                        .ok_or_else(|| format!("internal: cell {i} produced no record"))
                })
                .collect()
        };
        records.and_then(|records| {
            let summary = summarize(&records);
            let errors = match summary.get("errors") {
                Some(Field::UInt(n)) => *n,
                _ => 0,
            };
            let report = RunReport {
                name: job.spec.name.clone(),
                description: job.spec.description.clone(),
                kind: job.spec.kind.label(),
                spec_seed: job.spec.seed,
                quick: job.opts.quick,
                records,
                summary,
            };
            std::fs::write(&job.report_path, report.to_json())
                .and_then(|()| std::fs::write(&job.done_path, b""))
                .map_err(|e| format!("cannot write {}: {e}", job.report_path.display()))
                .map(|()| (job.cells.len(), errors))
        })
    };
    if result.is_ok() && shared.opts.gc_done {
        let _ = std::fs::remove_file(shared.opts.state_dir.join(format!("{}.spec.toml", job.id)));
        let _ = std::fs::remove_file(shared.opts.state_dir.join(format!("{}.journal", job.id)));
    }
    {
        let mut st = lock(&shared.state);
        st.active.retain(|active| !Arc::ptr_eq(active, job));
    }
    shared.wake.notify_all();
    match result {
        Ok((cells, errors)) => emit_done(shared, job, cells, errors),
        Err(e) => emit_error(shared, Some(&job.id), &e),
    }
}

// ---------------------------------------------------------------- events

/// Writes one event line to the current session sink. Write failures are
/// ignored: a disconnected client must not take down jobs that are
/// already journaling to disk.
fn emit(shared: &Shared, line: &str) {
    let mut sink = lock(&shared.sink);
    let _ = sink
        .write_all(line.as_bytes())
        .and_then(|()| sink.write_all(b"\n"))
        .and_then(|()| sink.flush());
}

fn emit_ready(shared: &Shared, resumed: &[String]) {
    let mut line = String::from("{\"event\": \"ready\", \"resumed\": [");
    for (i, id) in resumed.iter().enumerate() {
        if i > 0 {
            line.push_str(", ");
        }
        write_json_str(&mut line, id);
    }
    line.push_str("]}");
    emit(shared, &line);
}

fn emit_accepted(shared: &Shared, job: &Job) {
    let mut line = String::from("{\"event\": \"accepted\", \"job\": ");
    write_json_str(&mut line, &job.id);
    let _ = write!(
        line,
        ", \"cells\": {}, \"resumed\": {}}}",
        job.cells.len(),
        job.resumed
    );
    emit(shared, &line);
}

fn emit_rejected(shared: &Shared, id: &str, kind: &str, reason: &str) {
    let mut line = String::from("{\"event\": \"rejected\", \"job\": ");
    write_json_str(&mut line, id);
    line.push_str(", \"kind\": \"");
    line.push_str(kind);
    line.push_str("\", \"reason\": ");
    write_json_str(&mut line, reason);
    line.push('}');
    emit(shared, &line);
}

fn emit_record(shared: &Shared, id: &str, index: usize, record: &Record) {
    let mut line = String::from("{\"event\": \"record\", \"job\": ");
    write_json_str(&mut line, id);
    let _ = write!(line, ", \"index\": {index}, \"record\": ");
    record.write_json_line(&mut line);
    line.push('}');
    emit(shared, &line);
}

fn emit_done(shared: &Shared, job: &Job, cells: usize, errors: u64) {
    let mut line = String::from("{\"event\": \"done\", \"job\": ");
    write_json_str(&mut line, &job.id);
    let _ = write!(
        line,
        ", \"cells\": {cells}, \"errors\": {errors}, \"report\": "
    );
    write_json_str(&mut line, &job.report_path.display().to_string());
    line.push('}');
    emit(shared, &line);
}

fn emit_stats(shared: &Shared) {
    // Snapshot under the lock, render after: per-job progress is
    // (total, completed-including-resumed, failed, resumed), sorted by
    // id so the event is deterministic.
    let (active, queued, jobs) = {
        let st = lock(&shared.state);
        let mut jobs: Vec<(String, usize, usize, usize, usize)> = st
            .active
            .iter()
            .map(|job| {
                let total = job.cells.len();
                let remaining = job.remaining.load(Ordering::SeqCst);
                (
                    job.id.clone(),
                    total,
                    total.saturating_sub(remaining),
                    job.failed_cells.load(Ordering::SeqCst),
                    job.resumed,
                )
            })
            .collect();
        jobs.sort();
        (st.active.len(), st.tasks.len(), jobs)
    };
    let mut line = format!(
        "{{\"event\": \"stats\", \"jobs_active\": {active}, \"cells_queued\": {queued}, \"worker_restarts\": ["
    );
    for (i, restarts) in shared.restarts.iter().enumerate() {
        if i > 0 {
            line.push_str(", ");
        }
        let _ = write!(line, "{}", restarts.load(Ordering::SeqCst));
    }
    line.push_str("], \"jobs\": [");
    for (i, (id, total, completed, failed, resumed)) in jobs.iter().enumerate() {
        if i > 0 {
            line.push_str(", ");
        }
        line.push_str("{\"id\": ");
        write_json_str(&mut line, id);
        let _ = write!(
            line,
            ", \"cells\": {total}, \"completed\": {completed}, \"failed\": {failed}, \"resumed\": {resumed}}}"
        );
    }
    line.push_str("], \"caches\": [");
    {
        let caches = lock(&shared.caches);
        for (i, (sim, cache)) in caches.iter().enumerate() {
            if i > 0 {
                line.push_str(", ");
            }
            let stats = cache.stats();
            let _ = write!(
                line,
                "{{\"engine\": \"{}\", \"batch\": {}, \"shapes\": {}, \"compilations\": {}, \"hits\": {}}}",
                sim.engine.label(),
                sim.batch_size,
                stats.shapes,
                stats.compilations,
                stats.hits
            );
        }
    }
    line.push_str("]}");
    emit(shared, &line);
}

fn emit_cancelled(shared: &Shared, id: &str, active: bool, done: bool, known: bool) {
    let mut line = String::from("{\"event\": \"cancelled\", \"job\": ");
    write_json_str(&mut line, id);
    let _ = write!(
        line,
        ", \"active\": {active}, \"done\": {done}, \"known\": {known}}}"
    );
    emit(shared, &line);
}

fn emit_health(shared: &Shared) {
    let (active, queued) = {
        let st = lock(&shared.state);
        (st.active.len(), st.tasks.len())
    };
    let restarts: usize = shared
        .restarts
        .iter()
        .map(|r| r.load(Ordering::SeqCst))
        .sum();
    let (shapes, compilations, hits) = {
        let caches = lock(&shared.caches);
        caches.iter().fold((0u64, 0u64, 0u64), |acc, (_, cache)| {
            let s = cache.stats();
            (
                acc.0 + s.shapes as u64,
                acc.1 + s.compilations,
                acc.2 + s.hits,
            )
        })
    };
    let mut line = format!(
        "{{\"event\": \"health\", \"jobs_active\": {active}, \"cells_queued\": {queued}, \
         \"workers\": {}, \"workers_alive\": {}, \"worker_restarts\": {restarts}, \
         \"journal_bytes\": {}, \"mem_high_water\": {}",
        shared.restarts.len(),
        shared.workers_alive.load(Ordering::SeqCst),
        journal_bytes(&shared.opts.state_dir),
        shared.mem_high_water.load(Ordering::SeqCst),
    );
    match shared.opts.mem_budget {
        Some(budget) => {
            let _ = write!(line, ", \"mem_budget\": {budget}");
        }
        None => line.push_str(", \"mem_budget\": null"),
    }
    let _ = write!(
        line,
        ", \"plan_shapes\": {shapes}, \"plan_compilations\": {compilations}, \"plan_hits\": {hits}}}"
    );
    emit(shared, &line);
}

fn emit_shutdown(shared: &Shared, mode: &str) {
    emit(
        shared,
        &format!("{{\"event\": \"shutdown\", \"mode\": \"{mode}\"}}"),
    );
}

fn emit_error(shared: &Shared, id: Option<&str>, reason: &str) {
    let mut line = String::from("{\"event\": \"error\", \"job\": ");
    match id {
        Some(id) => write_json_str(&mut line, id),
        None => line.push_str("null"),
    }
    line.push_str(", \"reason\": ");
    write_json_str(&mut line, reason);
    line.push('}');
    emit(shared, &line);
}

// ------------------------------------------------------------- admission

/// Simulated register width of one instance. For native-inequality
/// instances the Choco-Q engines evolve the driver-encoded register
/// (decision variables plus internally synthesized slack bits), which is
/// wider than `n_vars()` — admission must size against that width, not
/// the problem's. Falls back to `n_vars()` when driver synthesis itself
/// would fail (the worker then reports the precise `DriverError`).
fn admission_qubits(problem: &choco_model::Problem) -> usize {
    choco_core::encoded_qubits_for(problem.constraints()).unwrap_or(problem.n_vars())
}

/// Estimated resident simulator bytes for one cell, by engine:
/// dense (and auto, which may fall back to dense) holds the full
/// `2^n` complex amplitudes at 16 bytes each; sparse holds one map
/// entry (~24 bytes) and compact one packed entry (~32 bytes) per
/// feasible-space amplitude, which for Choco-Q cells is bounded by the
/// enumerated feasible count `|F|`. Non-Choco-Q solvers explore the full
/// register regardless of engine. Saturating arithmetic: an estimate
/// that overflows `u64` is "infinite" for admission purposes anyway.
fn cell_sim_bytes(cell: &Cell, instance: &Instance, engine: EngineKind) -> u64 {
    let Ok(optimum) = &instance.optimum else {
        return 0;
    };
    let n = admission_qubits(&instance.problem).min(62) as u32;
    let full = 1u64 << n;
    let support = if matches!(cell.solver, SolverKind::ChocoQ) {
        (optimum.n_feasible as u64).clamp(1, full)
    } else {
        full
    };
    match engine {
        EngineKind::Dense | EngineKind::Auto => full.saturating_mul(16),
        EngineKind::Sparse => support.saturating_mul(24),
        EngineKind::Compact => support.saturating_mul(32),
    }
}

/// Renders a byte count for admission messages: `512 B`, `64.0 KiB`, …
fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 4] = ["KiB", "MiB", "GiB", "TiB"];
    if bytes < 1024 {
        return format!("{bytes} B");
    }
    let mut value = bytes as f64 / 1024.0;
    let mut unit = UNITS[0];
    for next in &UNITS[1..] {
        if value < 1024.0 {
            break;
        }
        value /= 1024.0;
        unit = next;
    }
    format!("{value:.1} {unit}")
}

/// State-dir hygiene (`--gc-done`): removes the spec and journal of
/// every job with a `.done` marker. Reports and markers are kept, so
/// duplicate detection and report retrieval still work.
fn gc_done_jobs(state_dir: &Path) {
    let Ok(entries) = std::fs::read_dir(state_dir) else {
        return;
    };
    let ids: Vec<String> = entries
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().into_string().ok())
        .filter_map(|n| n.strip_suffix(".done").map(str::to_string))
        .collect();
    for id in ids {
        let _ = std::fs::remove_file(state_dir.join(format!("{id}.spec.toml")));
        let _ = std::fs::remove_file(state_dir.join(format!("{id}.journal")));
    }
}

/// Total bytes across all checkpoint journals in the state directory
/// (`health` reporting: unbounded growth here says `--gc-done` is off).
fn journal_bytes(state_dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(state_dir) else {
        return 0;
    };
    entries
        .filter_map(Result::ok)
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.ends_with(".journal"))
        })
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

/// Job ids become file names under the state directory, so the charset
/// is locked down: `[A-Za-z0-9._-]`, 1–64 characters, no leading dot.
fn validate_id(id: &str) -> Result<(), String> {
    if id.is_empty() || id.len() > 64 {
        return Err(format!("job id must be 1–64 characters (got {})", id.len()));
    }
    if id.starts_with('.') {
        return Err("job id may not start with `.`".to_string());
    }
    if let Some(bad) = id
        .chars()
        .find(|c| !c.is_ascii_alphanumeric() && !matches!(c, '.' | '_' | '-'))
    {
        return Err(format!(
            "job id contains `{bad}` — allowed characters are [A-Za-z0-9._-]"
        ));
    }
    Ok(())
}

/// Resolves a submit request to spec TOML text from exactly one of
/// `spec_path` (a file the daemon reads), `spec_toml` (inline text), or
/// `job` (a minimal JSON job translated by [`job_to_toml`]).
fn spec_source(request: &Json) -> Result<String, String> {
    match (
        request.get("spec_path"),
        request.get("spec_toml"),
        request.get("job"),
    ) {
        (Some(path), None, None) => {
            let path = path
                .as_str()
                .ok_or_else(|| format!("`spec_path`: expected a string (got {})", path.brief()))?;
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
        }
        (None, Some(toml), None) => toml
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("`spec_toml`: expected a string (got {})", toml.brief())),
        (None, None, Some(job)) => job_to_toml(job),
        _ => Err(
            "a submit request needs exactly one of `spec_path`, `spec_toml`, or `job`".to_string(),
        ),
    }
}

/// Translates the minimal JSON job format into spec TOML, so a client
/// can submit without authoring TOML. Unknown keys are rejected (a
/// typoed key silently ignored would change the experiment), and range
/// validation comes from the spec parser itself — the same hard errors
/// `choco-cli run` gives.
fn job_to_toml(job: &Json) -> Result<String, String> {
    if !matches!(job, Json::Obj(_)) {
        return Err(format!("`job`: expected an object (got {})", job.brief()));
    }
    let mut top = String::new();
    let mut grid = String::new();
    let mut config = String::new();
    for (key, value) in job.entries() {
        match key.as_str() {
            "name" => {
                let _ = writeln!(top, "name = {}", toml_str(key, value)?);
            }
            "description" => {
                let _ = writeln!(top, "description = {}", toml_str(key, value)?);
            }
            "seed" => {
                let _ = writeln!(top, "seed = {}", toml_int(key, value)?);
            }
            "problems" | "solvers" => {
                let _ = writeln!(grid, "{key} = {}", toml_str_array(key, value)?);
            }
            "seeds" | "layers" | "eliminate" => {
                let _ = writeln!(grid, "{key} = {}", toml_int_array(key, value)?);
            }
            "engine" | "optimizer" => {
                let _ = writeln!(grid, "{key} = {}", toml_str(key, value)?);
            }
            "batch" | "quick_max_vars" => {
                let _ = writeln!(grid, "{key} = {}", toml_int(key, value)?);
            }
            "shots" | "max_iters" | "restarts" | "noise_trajectories" => {
                let _ = writeln!(config, "{key} = {}", toml_int(key, value)?);
            }
            "transpiled_stats" => {
                let _ = writeln!(config, "{key} = {}", toml_bool(key, value)?);
            }
            other => {
                return Err(format!(
                    "job key `{other}` is not recognized (grid keys: name, description, seed, \
                     problems, solvers, seeds, layers, eliminate, engine, optimizer, batch, \
                     quick_max_vars; config keys: shots, max_iters, restarts, \
                     noise_trajectories, transpiled_stats)"
                ));
            }
        }
    }
    if !top.contains("name = ") {
        return Err("job needs a `name`".to_string());
    }
    if !grid.contains("problems = ") {
        return Err("job needs a `problems` list".to_string());
    }
    let mut toml = top;
    toml.push_str("\n[grid]\n");
    toml.push_str(&grid);
    if !config.is_empty() {
        toml.push_str("\n[config]\n");
        toml.push_str(&config);
    }
    Ok(toml)
}

/// Renders a JSON string as a TOML string literal. The spec parser's
/// TOML dialect has no escape sequences, so characters that would need
/// them are rejected rather than smuggled through.
fn toml_str(key: &str, value: &Json) -> Result<String, String> {
    let s = value
        .as_str()
        .ok_or_else(|| format!("job `{key}`: expected a string (got {})", value.brief()))?;
    if s.chars().any(|c| c == '"' || c == '\\' || c.is_control()) {
        return Err(format!(
            "job `{key}`: strings may not contain quotes, backslashes, or control characters"
        ));
    }
    Ok(format!("\"{s}\""))
}

fn toml_int(key: &str, value: &Json) -> Result<i64, String> {
    value
        .as_i64()
        .ok_or_else(|| format!("job `{key}`: expected an integer (got {})", value.brief()))
}

fn toml_bool(key: &str, value: &Json) -> Result<bool, String> {
    value
        .as_bool()
        .ok_or_else(|| format!("job `{key}`: expected a boolean (got {})", value.brief()))
}

fn toml_str_array(key: &str, value: &Json) -> Result<String, String> {
    let Json::Arr(items) = value else {
        return Err(format!(
            "job `{key}`: expected an array of strings (got {})",
            value.brief()
        ));
    };
    let rendered: Result<Vec<String>, String> =
        items.iter().map(|item| toml_str(key, item)).collect();
    Ok(format!("[{}]", rendered?.join(", ")))
}

fn toml_int_array(key: &str, value: &Json) -> Result<String, String> {
    let Json::Arr(items) = value else {
        return Err(format!(
            "job `{key}`: expected an array of integers (got {})",
            value.brief()
        ));
    };
    let rendered: Result<Vec<String>, String> = items
        .iter()
        .map(|item| toml_int(key, item).map(|v| v.to_string()))
        .collect();
    Ok(format!("[{}]", rendered?.join(", ")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_ids_are_safe_file_names() {
        assert!(validate_id("smoke-1").is_ok());
        assert!(validate_id("a.b_c-D9").is_ok());
        assert!(validate_id("").is_err());
        assert!(validate_id(".hidden").is_err());
        assert!(validate_id("a/b").is_err());
        assert!(validate_id("a b").is_err());
        assert!(validate_id(&"x".repeat(65)).is_err());
    }

    #[test]
    fn json_job_translates_to_spec_toml() {
        let job = JsonParser::parse(
            r#"{"name": "t", "seed": 3, "problems": ["F1"], "solvers": ["choco"],
                "seeds": [1, 2], "layers": [1], "shots": 512}"#,
        )
        .unwrap();
        let toml = job_to_toml(&job).unwrap();
        let spec = ExperimentSpec::parse_str(&toml).unwrap();
        assert_eq!(spec.name, "t");
        assert_eq!(spec.seed, 3);
        assert_eq!(spec.seeds, vec![1, 2]);
        let cells = spec.expand_cells(false);
        assert_eq!(cells.len(), 2);
    }

    #[test]
    fn json_job_rejects_unknown_and_unescapable_keys() {
        let typo = JsonParser::parse(r#"{"name": "t", "problems": ["F1"], "shotss": 1}"#).unwrap();
        let err = job_to_toml(&typo).unwrap_err();
        assert!(err.contains("shotss"), "{err}");

        let quote = JsonParser::parse(r#"{"name": "a\"b", "problems": ["F1"]}"#).unwrap();
        let err = job_to_toml(&quote).unwrap_err();
        assert!(err.contains("quotes"), "{err}");

        let nameless = JsonParser::parse(r#"{"problems": ["F1"]}"#).unwrap();
        assert!(job_to_toml(&nameless).unwrap_err().contains("name"));
    }

    #[test]
    fn mem_estimates_scale_by_engine_and_solver() {
        let cells = crate::run::expand_grid_cells(
            &ExperimentSpec::parse_str(
                "name = \"m\"\n[grid]\nproblems = [\"F1\"]\nsolvers = [\"choco\", \"penalty\"]\nseeds = [1]\n",
            )
            .unwrap(),
            false,
        )
        .unwrap();
        let instances = build_instances(&cells).unwrap();
        let key = (
            cells[0].problem.as_str().to_string(),
            cells[0].instance_seed,
        );
        let instance = &instances[&key];
        let n = instance.problem.n_vars() as u32;
        let full = 1u64 << n;
        let feasible = instance.optimum.as_ref().unwrap().n_feasible as u64;
        assert!(feasible < full, "F1 must have a non-trivial feasible space");

        let (choco, penalty) = match cells[0].solver {
            SolverKind::ChocoQ => (&cells[0], &cells[1]),
            _ => (&cells[1], &cells[0]),
        };
        // Dense and auto hold the full register regardless of solver.
        assert_eq!(
            cell_sim_bytes(choco, instance, EngineKind::Dense),
            full * 16
        );
        assert_eq!(cell_sim_bytes(choco, instance, EngineKind::Auto), full * 16);
        // Sparse/compact are |F|-bounded for Choco-Q only.
        assert_eq!(
            cell_sim_bytes(choco, instance, EngineKind::Sparse),
            feasible * 24
        );
        assert_eq!(
            cell_sim_bytes(choco, instance, EngineKind::Compact),
            feasible * 32
        );
        assert_eq!(
            cell_sim_bytes(penalty, instance, EngineKind::Sparse),
            full * 24
        );
    }

    #[test]
    fn byte_counts_format_with_binary_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(65536), "64.0 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.0 GiB");
    }

    #[test]
    fn job_range_errors_surface_through_the_spec_parser() {
        // Out-of-range values are *not* clamped by the translation — the
        // spec parser rejects them with the key and range (satellite #1).
        let job = JsonParser::parse(r#"{"name": "t", "problems": ["F1"], "shots": 0}"#).unwrap();
        let toml = job_to_toml(&job).unwrap();
        let err = ExperimentSpec::parse_str(&toml).unwrap_err();
        assert!(err.contains("shots") && err.contains("at least 1"), "{err}");
    }
}
