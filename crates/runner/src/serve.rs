//! `choco-serve`: the solve-as-a-service daemon behind `choco-cli serve`.
//!
//! A long-lived process accepts job submissions over a line-oriented JSON
//! protocol (stdin/stdout or a Unix socket), expands each job into grid
//! cells with the *same* expansion as `choco-cli run`, and schedules the
//! cells across a persistent worker pool. Each worker owns long-lived
//! [`SimWorkspace`]s — one per distinct [`SimConfig`] — and all workspaces
//! for a given configuration share one [`PlanCache`] **across requests**:
//! the second job with the same circuit shapes replays compiled plans
//! instead of recompiling them (observable through the `stats` op).
//!
//! # Protocol
//!
//! Requests are single JSON lines; responses are single JSON event lines.
//!
//! | request | effect |
//! |---|---|
//! | `{"op": "submit", "spec_path": "…"}` | submit a spec file |
//! | `{"op": "submit", "spec_toml": "…"}` | submit inline spec TOML |
//! | `{"op": "submit", "job": {…}}` | submit a minimal JSON job |
//! | `{"op": "stats"}` | queue depth + per-cache plan statistics |
//! | `{"op": "shutdown"}` | drain active jobs, then exit |
//! | `{"op": "shutdown", "mode": "abort"}` | stop after in-flight cells |
//!
//! Events: `ready` (session start, lists resumed jobs), `accepted`,
//! `rejected` (with a machine-readable `kind`), `record` (one per
//! completed cell, streamed as it lands), `done` (report written),
//! `stats`, `error`, `shutdown`.
//!
//! # Durability
//!
//! Every job writes an append-only checkpoint journal under the state
//! directory *before* its record is streamed, one atomic line per cell. A
//! killed daemon loses at most one torn trailing line: on restart the
//! daemon re-admits every non-`.done` job from its persisted spec, skips
//! journaled cells, and re-runs the rest. Reports are byte-identical to
//! `choco-cli run` of the same spec at any worker count, with or without
//! an intervening kill.

use crate::checkpoint::{load_journal, CheckpointJournal, JournalHeader};
use crate::json::{Json, JsonParser};
use crate::report::{write_json_str, Field, Record, RunReport};
use crate::run::{build_instances, expand_grid_cells, run_grid_cell, summarize, Instance};
use crate::spec::{Cell, ExperimentSpec, RunKind};
use crate::RunOptions;
use choco_qsim::{PlanCache, SimConfig, SimWorkspace};
use choco_solvers::shared::check_size_for;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Daemon configuration: where job state lives, how much work may queue,
/// and the execution options every job runs under.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Directory for per-job state: `<id>.spec.toml`, `<id>.journal`,
    /// `<id>.json` (the report), `<id>.done` (completion marker).
    pub state_dir: PathBuf,
    /// Maximum queued cells across all jobs. A submission whose cells
    /// would push the queue past this cap is rejected (`queue_full`)
    /// instead of admitted — backpressure, not unbounded memory.
    pub queue_cap: usize,
    /// Execution options applied to every job (worker count, engine and
    /// optimizer overrides, retries, timeouts). `checkpoint`/`resume`
    /// are ignored: the daemon manages its own journals.
    pub run: RunOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            state_dir: PathBuf::from("serve-state"),
            queue_cap: 4096,
            run: RunOptions::default(),
        }
    }
}

/// One admitted job: the spec, its expanded cells, resolved instances,
/// journal, and the slots its records land in.
struct Job {
    id: String,
    spec: ExperimentSpec,
    opts: RunOptions,
    sim: SimConfig,
    cells: Vec<Cell>,
    instances: BTreeMap<(String, u64), Instance>,
    journal: CheckpointJournal,
    /// One slot per cell, indexed by `Cell::index`; resumed cells are
    /// prefilled from the journal.
    slots: Mutex<Vec<Option<Record>>>,
    /// Cells not yet finished; the worker that takes it to zero
    /// finalizes the job.
    remaining: AtomicUsize,
    /// Set on the first journal-append failure: remaining cells are
    /// skipped and the job finishes with an `error` event instead of a
    /// report (a checkpoint that silently stopped recording would
    /// defeat its purpose).
    failed: AtomicBool,
    report_path: PathBuf,
    done_path: PathBuf,
    /// Cells restored from the journal at admission.
    resumed: usize,
}

/// One schedulable unit: a cell of a job.
struct Task {
    job: Arc<Job>,
    cell: usize,
}

/// Mutable daemon state behind one lock.
struct ServeState {
    tasks: VecDeque<Task>,
    active: Vec<Arc<Job>>,
    stop: bool,
}

/// Everything the worker pool and the session loop share.
struct Shared<'env> {
    opts: &'env ServeOptions,
    state: Mutex<ServeState>,
    wake: Condvar,
    /// Plan-cache registry keyed by engine configuration: every worker
    /// workspace for the same [`SimConfig`] shares one cache, so plans
    /// compiled for one request replay for every later one.
    caches: Mutex<Vec<(SimConfig, Arc<PlanCache>)>>,
    /// The current session's output. Events emitted between sessions
    /// (e.g. a job finishing after its submitter disconnected) go to the
    /// sink bound at the time; job *state* is on disk either way.
    sink: Mutex<Box<dyn Write + Send + 'env>>,
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How a session ended.
enum SessionEnd {
    /// Input exhausted; a socket daemon accepts the next connection, a
    /// stdio daemon drains and exits.
    Eof,
    /// An explicit `shutdown` op.
    Shutdown {
        /// `true` for `"mode": "abort"`: queued cells are dropped
        /// (journals keep them resumable) instead of drained.
        abort: bool,
    },
}

/// Runs the daemon over a single input/output session (the
/// stdin/stdout mode of `choco-cli serve`). End of input drains active
/// jobs and exits, so `echo '…' | choco-cli serve` submits, waits, and
/// terminates cleanly.
///
/// # Errors
///
/// Returns setup failures (unusable state directory). Per-job failures
/// are reported as protocol events, not errors.
pub fn serve<R, W>(opts: &ServeOptions, input: R, output: W) -> Result<(), String>
where
    R: BufRead,
    W: Write + Send,
{
    let mut session = Some((input, output));
    drive(opts, move || session.take())
}

/// Runs the daemon on a Unix socket: one connection at a time, each a
/// session of the same line protocol as [`serve`]. A stale socket file
/// is removed at bind time; the daemon exits on a `shutdown` op.
///
/// # Errors
///
/// Returns setup failures (bind errors, unusable state directory).
pub fn serve_socket(opts: &ServeOptions, socket_path: &Path) -> Result<(), String> {
    use std::os::unix::net::UnixListener;
    if socket_path.exists() {
        std::fs::remove_file(socket_path)
            .map_err(|e| format!("cannot remove stale socket {}: {e}", socket_path.display()))?;
    }
    if let Some(parent) = socket_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    let listener = UnixListener::bind(socket_path)
        .map_err(|e| format!("cannot bind {}: {e}", socket_path.display()))?;
    eprintln!("choco-serve: listening on {}", socket_path.display());
    drive(opts, move || loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let Ok(reader) = stream.try_clone() else {
                    continue;
                };
                return Some((std::io::BufReader::new(reader), stream));
            }
            Err(e) => {
                eprintln!("choco-serve: accept failed: {e}");
                return None;
            }
        }
    })
}

/// The daemon core shared by both transports: starts the worker pool,
/// resumes persisted jobs at the first session, then processes sessions
/// until input ends (stdio) or a `shutdown` op arrives.
fn drive<'env, R, W>(
    opts: &'env ServeOptions,
    mut next_session: impl FnMut() -> Option<(R, W)>,
) -> Result<(), String>
where
    R: BufRead,
    W: Write + Send + 'env,
{
    std::fs::create_dir_all(&opts.state_dir)
        .map_err(|e| format!("cannot create state dir {}: {e}", opts.state_dir.display()))?;
    let n_workers = opts.run.effective_workers(usize::MAX);
    let shared = Shared {
        opts,
        state: Mutex::new(ServeState {
            tasks: VecDeque::new(),
            active: Vec::new(),
            stop: false,
        }),
        wake: Condvar::new(),
        caches: Mutex::new(Vec::new()),
        sink: Mutex::new(Box::new(std::io::sink())),
    };
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| worker_loop(&shared));
        }
        let mut resumed: Option<Vec<String>> = None;
        let mut end = SessionEnd::Eof;
        while let Some((input, output)) = next_session() {
            *lock(&shared.sink) = Box::new(output);
            let ids = match &resumed {
                Some(ids) => ids.clone(),
                None => {
                    let ids = resume_jobs(&shared);
                    resumed = Some(ids.clone());
                    ids
                }
            };
            emit_ready(&shared, &ids);
            end = session_loop(&shared, input);
            if matches!(end, SessionEnd::Shutdown { .. }) {
                break;
            }
        }
        let abort = matches!(end, SessionEnd::Shutdown { abort: true });
        {
            let mut st = lock(&shared.state);
            if abort {
                st.tasks.clear();
                st.active.clear();
            } else {
                while !st.active.is_empty() {
                    st = shared.wake.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
            }
            st.stop = true;
        }
        shared.wake.notify_all();
        emit_shutdown(&shared, abort);
    });
    Ok(())
}

/// Reads request lines from one session until EOF or a `shutdown` op.
fn session_loop<R: BufRead>(shared: &Shared, input: R) -> SessionEnd {
    for line in input.lines() {
        let Ok(line) = line else {
            return SessionEnd::Eof;
        };
        if line.trim().is_empty() {
            continue;
        }
        if let Some(end) = handle_request(shared, &line) {
            return end;
        }
    }
    SessionEnd::Eof
}

/// Dispatches one request line; `Some` ends the session.
fn handle_request(shared: &Shared, line: &str) -> Option<SessionEnd> {
    let request = match JsonParser::parse(line) {
        Ok(v) => v,
        Err(e) => {
            emit_error(shared, None, &format!("bad request line: {e}"));
            return None;
        }
    };
    match request.get("op").and_then(Json::as_str) {
        Some("submit") => {
            handle_submit(shared, &request);
            None
        }
        Some("stats") => {
            emit_stats(shared);
            None
        }
        Some("shutdown") => {
            let abort = request.get("mode").and_then(Json::as_str) == Some("abort");
            Some(SessionEnd::Shutdown { abort })
        }
        Some(other) => {
            emit_error(
                shared,
                None,
                &format!("unknown op `{other}` (expected submit, stats, or shutdown)"),
            );
            None
        }
        None => {
            emit_error(shared, None, "request has no `op` key");
            None
        }
    }
}

/// Admission control: validates a submission end to end, then either
/// enqueues its cells (emitting `accepted`) or rejects it with a
/// machine-readable kind (emitting `rejected`). Rejections never leave
/// state files behind.
fn handle_submit(shared: &Shared, request: &Json) {
    let id_hint = request
        .get("id")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    match admit(shared, request) {
        Ok(job) => emit_accepted(shared, &job),
        Err((kind, reason)) => emit_rejected(shared, &id_hint, kind, &reason),
    }
}

/// Admission result: either an enqueued job or `(kind, reason)`.
type Admission = Result<Arc<Job>, (&'static str, String)>;

fn admit(shared: &Shared, request: &Json) -> Admission {
    let toml = spec_source(request).map_err(|e| ("bad_request", e))?;
    let spec = ExperimentSpec::parse_str(&toml).map_err(|e| ("spec_error", e))?;
    let id = match request.get("id").and_then(Json::as_str) {
        Some(explicit) => explicit.to_string(),
        None => spec.name.clone(),
    };
    validate_id(&id).map_err(|e| ("bad_request", e))?;
    if !matches!(spec.kind, RunKind::Grid) {
        return Err((
            "bad_request",
            format!(
                "choco-serve accepts grid specs only (this spec is `{}`)",
                spec.kind.label()
            ),
        ));
    }
    {
        let st = lock(&shared.state);
        if st.active.iter().any(|j| j.id == id) {
            return Err(("duplicate", format!("job `{id}` is already active")));
        }
    }
    let spec_path = shared.opts.state_dir.join(format!("{id}.spec.toml"));
    let done_path = shared.opts.state_dir.join(format!("{id}.done"));
    if spec_path.exists() || done_path.exists() {
        return Err((
            "duplicate",
            format!(
                "job `{id}` already exists in {} (state is kept for audit; pick a new id)",
                shared.opts.state_dir.display()
            ),
        ));
    }
    prepare_job(shared, id, spec, Some(&toml), false)
}

/// Builds, validates, persists, and enqueues a job. `persist_toml` is the
/// spec text to write for a fresh submission (`None` on resume, where it
/// is already on disk); `resume` additionally restores journaled cells.
/// All validation happens before anything is written, so a rejected
/// submission leaves no state behind.
fn prepare_job(
    shared: &Shared,
    id: String,
    spec: ExperimentSpec,
    persist_toml: Option<&str>,
    resume: bool,
) -> Admission {
    let mut opts = shared.opts.run.clone();
    opts.checkpoint = None;
    opts.resume = false;
    let sim = opts.effective_sim(&spec);
    let cells = expand_grid_cells(&spec, opts.quick).map_err(|e| ("spec_error", e))?;
    if cells.is_empty() {
        return Err((
            "spec_error",
            "the spec expands to zero cells (empty grid axes?)".to_string(),
        ));
    }
    let header = JournalHeader::for_run(&spec, &opts, cells.len());
    let journal_path = shared.opts.state_dir.join(format!("{id}.journal"));
    let completed = if resume && journal_path.exists() {
        load_journal(&journal_path, &header)
            .map_err(|e| ("journal_error", e))?
            .completed
    } else {
        BTreeMap::new()
    };
    let pending_cells: Vec<Cell> = cells
        .iter()
        .filter(|c| !completed.contains_key(&c.index))
        .cloned()
        .collect();
    let instances = build_instances(&pending_cells).map_err(|e| ("spec_error", e))?;
    // Size gate at admission: an instance no engine can hold is rejected
    // with the same guidance `check_size_for` gives the CLI, instead of
    // occupying a worker just to fail.
    for ((family, seed), instance) in &instances {
        check_size_for(instance.problem.n_vars(), sim.engine)
            .map_err(|e| ("too_large", format!("{family} seed={seed}: {e}")))?;
    }
    {
        let st = lock(&shared.state);
        if st.tasks.len() + pending_cells.len() > shared.opts.queue_cap {
            return Err((
                "queue_full",
                format!(
                    "queue is full: {} queued + {} new cells exceeds the cap of {}",
                    st.tasks.len(),
                    pending_cells.len(),
                    shared.opts.queue_cap
                ),
            ));
        }
    }
    // Commit point: everything below writes state.
    if let Some(toml) = persist_toml {
        let spec_path = shared.opts.state_dir.join(format!("{id}.spec.toml"));
        std::fs::write(&spec_path, toml).map_err(|e| {
            (
                "io_error",
                format!("cannot write {}: {e}", spec_path.display()),
            )
        })?;
    }
    let journal = if resume && journal_path.exists() {
        CheckpointJournal::append_to(&journal_path).map_err(|e| ("journal_error", e))?
    } else {
        CheckpointJournal::create(&journal_path, &header).map_err(|e| ("journal_error", e))?
    };
    let mut slots: Vec<Option<Record>> = vec![None; cells.len()];
    let mut resumed_count = 0usize;
    for (index, record) in completed {
        slots[index] = Some(record);
        resumed_count += 1;
    }
    let pending: Vec<usize> = (0..cells.len()).filter(|&i| slots[i].is_none()).collect();
    let job = Arc::new(Job {
        report_path: shared.opts.state_dir.join(format!("{id}.json")),
        done_path: shared.opts.state_dir.join(format!("{id}.done")),
        id,
        spec,
        opts,
        sim,
        cells,
        instances,
        journal,
        slots: Mutex::new(slots),
        remaining: AtomicUsize::new(pending.len()),
        failed: AtomicBool::new(false),
        resumed: resumed_count,
    });
    {
        let mut st = lock(&shared.state);
        st.active.push(job.clone());
        for &i in &pending {
            st.tasks.push_back(Task {
                job: job.clone(),
                cell: i,
            });
        }
    }
    shared.wake.notify_all();
    if pending.is_empty() {
        // Killed after the last journal append but before the report
        // write: nothing to schedule, finalize right away.
        finalize_job(shared, &job);
    }
    Ok(job)
}

/// Re-admits every persisted job without a `.done` marker, restoring
/// journaled cells. Returns the resumed job ids (sorted, so the `ready`
/// event is deterministic). A job whose state is unusable is reported
/// and skipped — one corrupt journal must not take the daemon down.
fn resume_jobs(shared: &Shared) -> Vec<String> {
    let mut ids = Vec::new();
    let Ok(entries) = std::fs::read_dir(&shared.opts.state_dir) else {
        return ids;
    };
    let mut names: Vec<String> = entries
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().into_string().ok())
        .filter_map(|n| n.strip_suffix(".spec.toml").map(str::to_string))
        .collect();
    names.sort();
    for id in names {
        if shared.opts.state_dir.join(format!("{id}.done")).exists() {
            continue;
        }
        let spec_path = shared.opts.state_dir.join(format!("{id}.spec.toml"));
        let text = match std::fs::read_to_string(&spec_path) {
            Ok(text) => text,
            Err(e) => {
                emit_error(
                    shared,
                    Some(&id),
                    &format!("resume failed: cannot read {}: {e}", spec_path.display()),
                );
                continue;
            }
        };
        let spec = match ExperimentSpec::parse_str(&text) {
            Ok(spec) => spec,
            Err(e) => {
                emit_error(shared, Some(&id), &format!("resume failed: {e}"));
                continue;
            }
        };
        match prepare_job(shared, id.clone(), spec, None, true) {
            Ok(_) => ids.push(id),
            Err((kind, reason)) => {
                emit_error(
                    shared,
                    Some(&id),
                    &format!("resume failed ({kind}): {reason}"),
                );
            }
        }
    }
    ids
}

/// The worker loop: pops tasks until the daemon stops. The workspace
/// registry (one per distinct [`SimConfig`]) persists for the worker's
/// lifetime, and every workspace shares the global plan cache for its
/// configuration — the cross-request reuse the daemon exists for.
fn worker_loop(shared: &Shared) {
    let mut workspaces: Vec<(SimConfig, SimWorkspace)> = Vec::new();
    loop {
        let task = {
            let mut st = lock(&shared.state);
            loop {
                if let Some(task) = st.tasks.pop_front() {
                    break Some(task);
                }
                if st.stop {
                    break None;
                }
                st = shared.wake.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(task) = task else { break };
        run_task(shared, &mut workspaces, &task);
    }
}

/// Runs one cell: solve, journal, stream, slot. The journal append
/// happens *before* the record event, so a client that saw the record
/// can rely on it surviving a crash. The worker that completes a job's
/// last cell finalizes it.
fn run_task(shared: &Shared, workspaces: &mut Vec<(SimConfig, SimWorkspace)>, task: &Task) {
    let job = &task.job;
    if !job.failed.load(Ordering::SeqCst) {
        let cell = &job.cells[task.cell];
        let key = (cell.problem.as_str().to_string(), cell.instance_seed);
        let workspace = workspace_for(workspaces, &shared.caches, job.sim);
        let started = Instant::now();
        let record = run_grid_cell(
            &job.spec,
            &job.opts,
            cell,
            &job.instances[&key],
            workspace,
            job.sim,
        );
        if let Err(e) = job
            .journal
            .append_cell(task.cell, started.elapsed(), &record)
        {
            job.failed.store(true, Ordering::SeqCst);
            emit_error(shared, Some(&job.id), &e);
        } else {
            emit_record(shared, &job.id, task.cell, &record);
            lock(&job.slots)[task.cell] = Some(record);
        }
    }
    if job.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
        finalize_job(shared, job);
    }
}

/// Finds (or creates) this worker's workspace for `sim`, wiring it to
/// the daemon-global plan cache for that configuration.
fn workspace_for<'w>(
    workspaces: &'w mut Vec<(SimConfig, SimWorkspace)>,
    caches: &Mutex<Vec<(SimConfig, Arc<PlanCache>)>>,
    sim: SimConfig,
) -> &'w mut SimWorkspace {
    if let Some(idx) = workspaces.iter().position(|(config, _)| *config == sim) {
        return &mut workspaces[idx].1;
    }
    let cache = {
        let mut caches = lock(caches);
        match caches.iter().find(|(config, _)| *config == sim) {
            Some((_, cache)) => cache.clone(),
            None => {
                let cache = Arc::new(PlanCache::new());
                caches.push((sim, cache.clone()));
                cache
            }
        }
    };
    workspaces.push((sim, SimWorkspace::with_plan_cache(sim, cache)));
    &mut workspaces.last_mut().expect("just pushed").1
}

/// Assembles and writes the job's report (byte-identical to
/// `choco-cli run` of the same spec), marks it `.done`, removes it from
/// the active set, and emits `done` — or `error` if the job failed.
fn finalize_job(shared: &Shared, job: &Arc<Job>) {
    let result: Result<(usize, u64), String> = if job.failed.load(Ordering::SeqCst) {
        Err("job failed: checkpoint journal append error (see earlier error event)".to_string())
    } else {
        let records: Result<Vec<Record>, String> = {
            let mut slot_vec = lock(&job.slots);
            (0..job.cells.len())
                .map(|i| {
                    slot_vec[i]
                        .take()
                        .ok_or_else(|| format!("internal: cell {i} produced no record"))
                })
                .collect()
        };
        records.and_then(|records| {
            let summary = summarize(&records);
            let errors = match summary.get("errors") {
                Some(Field::UInt(n)) => *n,
                _ => 0,
            };
            let report = RunReport {
                name: job.spec.name.clone(),
                description: job.spec.description.clone(),
                kind: job.spec.kind.label(),
                spec_seed: job.spec.seed,
                quick: job.opts.quick,
                records,
                summary,
            };
            std::fs::write(&job.report_path, report.to_json())
                .and_then(|()| std::fs::write(&job.done_path, b""))
                .map_err(|e| format!("cannot write {}: {e}", job.report_path.display()))
                .map(|()| (job.cells.len(), errors))
        })
    };
    {
        let mut st = lock(&shared.state);
        st.active.retain(|active| !Arc::ptr_eq(active, job));
    }
    shared.wake.notify_all();
    match result {
        Ok((cells, errors)) => emit_done(shared, job, cells, errors),
        Err(e) => emit_error(shared, Some(&job.id), &e),
    }
}

// ---------------------------------------------------------------- events

/// Writes one event line to the current session sink. Write failures are
/// ignored: a disconnected client must not take down jobs that are
/// already journaling to disk.
fn emit(shared: &Shared, line: &str) {
    let mut sink = lock(&shared.sink);
    let _ = sink
        .write_all(line.as_bytes())
        .and_then(|()| sink.write_all(b"\n"))
        .and_then(|()| sink.flush());
}

fn emit_ready(shared: &Shared, resumed: &[String]) {
    let mut line = String::from("{\"event\": \"ready\", \"resumed\": [");
    for (i, id) in resumed.iter().enumerate() {
        if i > 0 {
            line.push_str(", ");
        }
        write_json_str(&mut line, id);
    }
    line.push_str("]}");
    emit(shared, &line);
}

fn emit_accepted(shared: &Shared, job: &Job) {
    let mut line = String::from("{\"event\": \"accepted\", \"job\": ");
    write_json_str(&mut line, &job.id);
    let _ = write!(
        line,
        ", \"cells\": {}, \"resumed\": {}}}",
        job.cells.len(),
        job.resumed
    );
    emit(shared, &line);
}

fn emit_rejected(shared: &Shared, id: &str, kind: &str, reason: &str) {
    let mut line = String::from("{\"event\": \"rejected\", \"job\": ");
    write_json_str(&mut line, id);
    line.push_str(", \"kind\": \"");
    line.push_str(kind);
    line.push_str("\", \"reason\": ");
    write_json_str(&mut line, reason);
    line.push('}');
    emit(shared, &line);
}

fn emit_record(shared: &Shared, id: &str, index: usize, record: &Record) {
    let mut line = String::from("{\"event\": \"record\", \"job\": ");
    write_json_str(&mut line, id);
    let _ = write!(line, ", \"index\": {index}, \"record\": ");
    record.write_json_line(&mut line);
    line.push('}');
    emit(shared, &line);
}

fn emit_done(shared: &Shared, job: &Job, cells: usize, errors: u64) {
    let mut line = String::from("{\"event\": \"done\", \"job\": ");
    write_json_str(&mut line, &job.id);
    let _ = write!(
        line,
        ", \"cells\": {cells}, \"errors\": {errors}, \"report\": "
    );
    write_json_str(&mut line, &job.report_path.display().to_string());
    line.push('}');
    emit(shared, &line);
}

fn emit_stats(shared: &Shared) {
    let (active, queued) = {
        let st = lock(&shared.state);
        (st.active.len(), st.tasks.len())
    };
    let mut line = format!(
        "{{\"event\": \"stats\", \"jobs_active\": {active}, \"cells_queued\": {queued}, \"caches\": ["
    );
    {
        let caches = lock(&shared.caches);
        for (i, (sim, cache)) in caches.iter().enumerate() {
            if i > 0 {
                line.push_str(", ");
            }
            let stats = cache.stats();
            let _ = write!(
                line,
                "{{\"engine\": \"{}\", \"batch\": {}, \"shapes\": {}, \"compilations\": {}, \"hits\": {}}}",
                sim.engine.label(),
                sim.batch_size,
                stats.shapes,
                stats.compilations,
                stats.hits
            );
        }
    }
    line.push_str("]}");
    emit(shared, &line);
}

fn emit_shutdown(shared: &Shared, abort: bool) {
    let mode = if abort { "abort" } else { "drain" };
    emit(
        shared,
        &format!("{{\"event\": \"shutdown\", \"mode\": \"{mode}\"}}"),
    );
}

fn emit_error(shared: &Shared, id: Option<&str>, reason: &str) {
    let mut line = String::from("{\"event\": \"error\", \"job\": ");
    match id {
        Some(id) => write_json_str(&mut line, id),
        None => line.push_str("null"),
    }
    line.push_str(", \"reason\": ");
    write_json_str(&mut line, reason);
    line.push('}');
    emit(shared, &line);
}

// ------------------------------------------------------------- admission

/// Job ids become file names under the state directory, so the charset
/// is locked down: `[A-Za-z0-9._-]`, 1–64 characters, no leading dot.
fn validate_id(id: &str) -> Result<(), String> {
    if id.is_empty() || id.len() > 64 {
        return Err(format!("job id must be 1–64 characters (got {})", id.len()));
    }
    if id.starts_with('.') {
        return Err("job id may not start with `.`".to_string());
    }
    if let Some(bad) = id
        .chars()
        .find(|c| !c.is_ascii_alphanumeric() && !matches!(c, '.' | '_' | '-'))
    {
        return Err(format!(
            "job id contains `{bad}` — allowed characters are [A-Za-z0-9._-]"
        ));
    }
    Ok(())
}

/// Resolves a submit request to spec TOML text from exactly one of
/// `spec_path` (a file the daemon reads), `spec_toml` (inline text), or
/// `job` (a minimal JSON job translated by [`job_to_toml`]).
fn spec_source(request: &Json) -> Result<String, String> {
    let sources = [
        request.get("spec_path"),
        request.get("spec_toml"),
        request.get("job"),
    ];
    if sources.iter().filter(|s| s.is_some()).count() != 1 {
        return Err(
            "a submit request needs exactly one of `spec_path`, `spec_toml`, or `job`".to_string(),
        );
    }
    if let Some(path) = request.get("spec_path") {
        let path = path
            .as_str()
            .ok_or_else(|| format!("`spec_path`: expected a string (got {})", path.brief()))?;
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    } else if let Some(toml) = request.get("spec_toml") {
        toml.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("`spec_toml`: expected a string (got {})", toml.brief()))
    } else {
        job_to_toml(request.get("job").expect("counted above"))
    }
}

/// Translates the minimal JSON job format into spec TOML, so a client
/// can submit without authoring TOML. Unknown keys are rejected (a
/// typoed key silently ignored would change the experiment), and range
/// validation comes from the spec parser itself — the same hard errors
/// `choco-cli run` gives.
fn job_to_toml(job: &Json) -> Result<String, String> {
    if !matches!(job, Json::Obj(_)) {
        return Err(format!("`job`: expected an object (got {})", job.brief()));
    }
    let mut top = String::new();
    let mut grid = String::new();
    let mut config = String::new();
    for (key, value) in job.entries() {
        match key.as_str() {
            "name" => {
                let _ = writeln!(top, "name = {}", toml_str(key, value)?);
            }
            "description" => {
                let _ = writeln!(top, "description = {}", toml_str(key, value)?);
            }
            "seed" => {
                let _ = writeln!(top, "seed = {}", toml_int(key, value)?);
            }
            "problems" | "solvers" => {
                let _ = writeln!(grid, "{key} = {}", toml_str_array(key, value)?);
            }
            "seeds" | "layers" | "eliminate" => {
                let _ = writeln!(grid, "{key} = {}", toml_int_array(key, value)?);
            }
            "engine" | "optimizer" => {
                let _ = writeln!(grid, "{key} = {}", toml_str(key, value)?);
            }
            "batch" | "quick_max_vars" => {
                let _ = writeln!(grid, "{key} = {}", toml_int(key, value)?);
            }
            "shots" | "max_iters" | "restarts" | "noise_trajectories" => {
                let _ = writeln!(config, "{key} = {}", toml_int(key, value)?);
            }
            "transpiled_stats" => {
                let _ = writeln!(config, "{key} = {}", toml_bool(key, value)?);
            }
            other => {
                return Err(format!(
                    "job key `{other}` is not recognized (grid keys: name, description, seed, \
                     problems, solvers, seeds, layers, eliminate, engine, optimizer, batch, \
                     quick_max_vars; config keys: shots, max_iters, restarts, \
                     noise_trajectories, transpiled_stats)"
                ));
            }
        }
    }
    if !top.contains("name = ") {
        return Err("job needs a `name`".to_string());
    }
    if !grid.contains("problems = ") {
        return Err("job needs a `problems` list".to_string());
    }
    let mut toml = top;
    toml.push_str("\n[grid]\n");
    toml.push_str(&grid);
    if !config.is_empty() {
        toml.push_str("\n[config]\n");
        toml.push_str(&config);
    }
    Ok(toml)
}

/// Renders a JSON string as a TOML string literal. The spec parser's
/// TOML dialect has no escape sequences, so characters that would need
/// them are rejected rather than smuggled through.
fn toml_str(key: &str, value: &Json) -> Result<String, String> {
    let s = value
        .as_str()
        .ok_or_else(|| format!("job `{key}`: expected a string (got {})", value.brief()))?;
    if s.chars().any(|c| c == '"' || c == '\\' || c.is_control()) {
        return Err(format!(
            "job `{key}`: strings may not contain quotes, backslashes, or control characters"
        ));
    }
    Ok(format!("\"{s}\""))
}

fn toml_int(key: &str, value: &Json) -> Result<i64, String> {
    value
        .as_i64()
        .ok_or_else(|| format!("job `{key}`: expected an integer (got {})", value.brief()))
}

fn toml_bool(key: &str, value: &Json) -> Result<bool, String> {
    value
        .as_bool()
        .ok_or_else(|| format!("job `{key}`: expected a boolean (got {})", value.brief()))
}

fn toml_str_array(key: &str, value: &Json) -> Result<String, String> {
    let Json::Arr(items) = value else {
        return Err(format!(
            "job `{key}`: expected an array of strings (got {})",
            value.brief()
        ));
    };
    let rendered: Result<Vec<String>, String> =
        items.iter().map(|item| toml_str(key, item)).collect();
    Ok(format!("[{}]", rendered?.join(", ")))
}

fn toml_int_array(key: &str, value: &Json) -> Result<String, String> {
    let Json::Arr(items) = value else {
        return Err(format!(
            "job `{key}`: expected an array of integers (got {})",
            value.brief()
        ));
    };
    let rendered: Result<Vec<String>, String> = items
        .iter()
        .map(|item| toml_int(key, item).map(|v| v.to_string()))
        .collect();
    Ok(format!("[{}]", rendered?.join(", ")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_ids_are_safe_file_names() {
        assert!(validate_id("smoke-1").is_ok());
        assert!(validate_id("a.b_c-D9").is_ok());
        assert!(validate_id("").is_err());
        assert!(validate_id(".hidden").is_err());
        assert!(validate_id("a/b").is_err());
        assert!(validate_id("a b").is_err());
        assert!(validate_id(&"x".repeat(65)).is_err());
    }

    #[test]
    fn json_job_translates_to_spec_toml() {
        let job = JsonParser::parse(
            r#"{"name": "t", "seed": 3, "problems": ["F1"], "solvers": ["choco"],
                "seeds": [1, 2], "layers": [1], "shots": 512}"#,
        )
        .unwrap();
        let toml = job_to_toml(&job).unwrap();
        let spec = ExperimentSpec::parse_str(&toml).unwrap();
        assert_eq!(spec.name, "t");
        assert_eq!(spec.seed, 3);
        assert_eq!(spec.seeds, vec![1, 2]);
        let cells = spec.expand_cells(false);
        assert_eq!(cells.len(), 2);
    }

    #[test]
    fn json_job_rejects_unknown_and_unescapable_keys() {
        let typo = JsonParser::parse(r#"{"name": "t", "problems": ["F1"], "shotss": 1}"#).unwrap();
        let err = job_to_toml(&typo).unwrap_err();
        assert!(err.contains("shotss"), "{err}");

        let quote = JsonParser::parse(r#"{"name": "a\"b", "problems": ["F1"]}"#).unwrap();
        let err = job_to_toml(&quote).unwrap_err();
        assert!(err.contains("quotes"), "{err}");

        let nameless = JsonParser::parse(r#"{"problems": ["F1"]}"#).unwrap();
        assert!(job_to_toml(&nameless).unwrap_err().contains("name"));
    }

    #[test]
    fn job_range_errors_surface_through_the_spec_parser() {
        // Out-of-range values are *not* clamped by the translation — the
        // spec parser rejects them with the key and range (satellite #1).
        let job = JsonParser::parse(r#"{"name": "t", "problems": ["F1"], "shots": 0}"#).unwrap();
        let toml = job_to_toml(&job).unwrap();
        let err = ExperimentSpec::parse_str(&toml).unwrap_err();
        assert!(err.contains("shots") && err.contains("at least 1"), "{err}");
    }
}
