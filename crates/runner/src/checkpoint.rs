//! Checkpoint journal: crash-safe resume for grid runs.
//!
//! The journal is an append-only JSONL file. Line 1 is a header binding
//! the journal to the spec and the report-shaping options; every
//! subsequent line records one completed cell:
//!
//! ```text
//! {"choco_journal": 1, "spec": "...", "spec_hash": 123, "cells": 8, ...}
//! {"index": 3, "duration_us": 1042, "record": {"index": 3, ...}}
//! ```
//!
//! Each cell line is written with a single `write_all` + flush, so a
//! crash leaves at most one torn *trailing* line, which the loader
//! detects and drops. Because cell records hold only deterministic
//! fields (wall-clock durations live in the non-compared `duration_us`
//! sidecar), a resumed run re-emits byte-identical reports at any worker
//! count and any kill point. Error records are deliberately *not*
//! treated as completions: resuming re-executes failed cells, so a
//! faulty run followed by a healthy resume converges to the clean
//! report.

use crate::json::{record_from_json, Json, JsonParser};
use crate::report::{write_json_str, Field, Record};
use crate::run::RunOptions;
use crate::spec::{fnv1a, ExperimentSpec};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Journal format version; bumped on any layout change.
const JOURNAL_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------------

/// The journal's first line: binds it to the spec and to every option
/// that shapes record *content*. Worker counts, simulator threads, and
/// fault budgets are deliberately unbound — resuming with more workers
/// or a longer `--cell-timeout` is a supported operational flow.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct JournalHeader {
    version: u64,
    spec_name: String,
    /// FNV-1a over the spec's `Debug` rendering — cheap, dependency-free,
    /// and sensitive to every axis value.
    spec_hash: u64,
    cells: u64,
    quick: bool,
    engine: String,
    optimizer: String,
}

impl JournalHeader {
    /// The header a fresh journal for this run would carry.
    pub(crate) fn for_run(spec: &ExperimentSpec, opts: &RunOptions, cells: usize) -> JournalHeader {
        JournalHeader {
            version: JOURNAL_VERSION,
            spec_name: spec.name.clone(),
            spec_hash: fnv1a(format!("{spec:?}").as_bytes()),
            cells: cells as u64,
            quick: opts.quick,
            engine: opts.effective_sim(spec).engine.label().to_string(),
            optimizer: opts.effective_optimizer(spec).label().to_string(),
        }
    }

    fn to_line(&self) -> String {
        let mut out = String::new();
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!("{{\"choco_journal\": {}, \"spec\": ", self.version),
        );
        write_json_str(&mut out, &self.spec_name);
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                ", \"spec_hash\": {}, \"cells\": {}, \"quick\": {}, \"engine\": \"{}\", \"optimizer\": \"{}\"}}\n",
                self.spec_hash, self.cells, self.quick, self.engine, self.optimizer
            ),
        );
        out
    }

    fn from_json(value: &Json) -> Result<JournalHeader, String> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| format!("journal header is missing `{key}`"))
        };
        Ok(JournalHeader {
            version: field("choco_journal")?
                .as_u64()
                .ok_or("`choco_journal` is not an integer")?,
            spec_name: field("spec")?
                .as_str()
                .ok_or("`spec` is not a string")?
                .to_string(),
            spec_hash: field("spec_hash")?
                .as_u64()
                .ok_or("`spec_hash` is not an integer")?,
            cells: field("cells")?
                .as_u64()
                .ok_or("`cells` is not an integer")?,
            quick: field("quick")?.as_bool().ok_or("`quick` is not a bool")?,
            engine: field("engine")?
                .as_str()
                .ok_or("`engine` is not a string")?
                .to_string(),
            optimizer: field("optimizer")?
                .as_str()
                .ok_or("`optimizer` is not a string")?
                .to_string(),
        })
    }

    /// Field-by-field comparison with actionable messages: a mismatched
    /// journal names exactly which knob diverged instead of a bare
    /// "hash mismatch".
    fn validate(&self, expected: &JournalHeader) -> Result<(), String> {
        if self.version != expected.version {
            return Err(format!(
                "journal version {} is not the supported version {}",
                self.version, expected.version
            ));
        }
        let mut diffs = Vec::new();
        if self.spec_name != expected.spec_name {
            diffs.push(format!(
                "spec name `{}` != current `{}`",
                self.spec_name, expected.spec_name
            ));
        }
        if self.spec_hash != expected.spec_hash {
            diffs.push(format!(
                "spec hash {:#x} != current {:#x} (the spec file changed)",
                self.spec_hash, expected.spec_hash
            ));
        }
        if self.cells != expected.cells {
            diffs.push(format!(
                "cell count {} != current {}",
                self.cells, expected.cells
            ));
        }
        if self.quick != expected.quick {
            diffs.push(format!(
                "quick={} != current quick={} (pass the same --quick)",
                self.quick, expected.quick
            ));
        }
        if self.engine != expected.engine {
            diffs.push(format!(
                "engine `{}` != current `{}` (pass the same --engine)",
                self.engine, expected.engine
            ));
        }
        if self.optimizer != expected.optimizer {
            diffs.push(format!(
                "optimizer `{}` != current `{}` (pass the same --optimizer)",
                self.optimizer, expected.optimizer
            ));
        }
        if diffs.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "journal does not match this run: {}",
                diffs.join("; ")
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Appends completed cells to the journal file. Shared across workers;
/// each cell is one atomic `write_all` + flush so concurrent appends
/// never interleave and a crash tears at most the final line.
pub(crate) struct CheckpointJournal {
    path: PathBuf,
    file: Mutex<File>,
}

impl CheckpointJournal {
    /// Creates (truncating) a fresh journal and writes the header.
    pub(crate) fn create(path: &Path, header: &JournalHeader) -> Result<CheckpointJournal, String> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| {
                    format!(
                        "cannot create checkpoint directory {}: {e}",
                        parent.display()
                    )
                })?;
            }
        }
        let mut file = File::create(path)
            .map_err(|e| format!("cannot create checkpoint {}: {e}", path.display()))?;
        file.write_all(header.to_line().as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| format!("cannot write checkpoint header {}: {e}", path.display()))?;
        Ok(CheckpointJournal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// Reopens an existing journal for appending (resume flow; the caller
    /// has already validated the header via [`load_journal`]).
    pub(crate) fn append_to(path: &Path) -> Result<CheckpointJournal, String> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot reopen checkpoint {}: {e}", path.display()))?;
        Ok(CheckpointJournal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// Appends one completed cell. `duration` is observability-only (it
    /// lives outside the record so reports stay deterministic).
    pub(crate) fn append_cell(
        &self,
        index: usize,
        duration: Duration,
        record: &Record,
    ) -> Result<(), String> {
        let mut line = String::with_capacity(256);
        let _ = std::fmt::Write::write_fmt(
            &mut line,
            format_args!(
                "{{\"index\": {index}, \"duration_us\": {}, \"record\": ",
                duration.as_micros()
            ),
        );
        record.write_json_line(&mut line);
        line.push_str("}\n");
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| format!("cannot append to checkpoint {}: {e}", self.path.display()))
    }
}

// ---------------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------------

/// A validated journal's useful content: completed (`status == "ok"`)
/// records by cell index.
#[derive(Debug)]
pub(crate) struct LoadedJournal {
    /// Completed cell records, keyed by flat grid index.
    pub(crate) completed: BTreeMap<usize, Record>,
}

/// Reads and validates a journal against the header this run would
/// write. A torn (unparseable) *final* line is dropped with a warning —
/// that is the expected crash artifact; corruption anywhere else is an
/// error.
pub(crate) fn load_journal(path: &Path, expected: &JournalHeader) -> Result<LoadedJournal, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
    let lines: Vec<&str> = text.lines().collect();
    let header_line = lines
        .first()
        .ok_or_else(|| format!("checkpoint {} is empty", path.display()))?;
    let header_json = JsonParser::parse(header_line)
        .map_err(|e| format!("checkpoint {}: bad header: {e}", path.display()))?;
    let header = JournalHeader::from_json(&header_json)
        .map_err(|e| format!("checkpoint {}: {e}", path.display()))?;
    header
        .validate(expected)
        .map_err(|e| format!("checkpoint {}: {e}", path.display()))?;

    let mut completed = BTreeMap::new();
    for (lineno, line) in lines.iter().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let is_last = lineno == lines.len() - 1;
        let parsed = match JsonParser::parse(line) {
            Ok(v) => v,
            Err(e) if is_last => {
                eprintln!(
                    "checkpoint {}: dropping torn final line {} ({e})",
                    path.display(),
                    lineno + 1
                );
                continue;
            }
            Err(e) => {
                return Err(format!(
                    "checkpoint {}: corrupt line {}: {e}",
                    path.display(),
                    lineno + 1
                ));
            }
        };
        let entry = (|| -> Result<(usize, Record), String> {
            let raw_index = parsed.get("index").ok_or("cell line is missing `index`")?;
            // `as_u64` re-parses the raw token, so a fractional or
            // negative index fails here with the offending value named —
            // it must never truncate into a plausible-looking cell slot.
            let index = raw_index.as_u64().ok_or_else(|| {
                format!(
                    "cell line `index` is not a non-negative integer (got {})",
                    raw_index.brief()
                )
            })?;
            let index = usize::try_from(index)
                .map_err(|_| format!("cell line `index` {index} does not fit this platform"))?;
            let record = parsed
                .get("record")
                .ok_or("cell line is missing `record`")?;
            Ok((index, record_from_json(record)?))
        })();
        let (index, record) = match entry {
            Ok(pair) => pair,
            Err(e) if is_last => {
                eprintln!(
                    "checkpoint {}: dropping torn final line {} ({e})",
                    path.display(),
                    lineno + 1
                );
                continue;
            }
            Err(e) => {
                return Err(format!(
                    "checkpoint {}: corrupt line {}: {e}",
                    path.display(),
                    lineno + 1
                ));
            }
        };
        if index as u64 >= expected.cells {
            return Err(format!(
                "checkpoint {}: line {} indexes cell {} outside the {}-cell grid",
                path.display(),
                lineno + 1,
                index,
                expected.cells
            ));
        }
        // Only clean completions count: error records re-execute on
        // resume, so a faulty run converges to the clean report. Later
        // lines win (a re-run cell supersedes its earlier entry).
        let ok = matches!(record.get("status"), Some(Field::Str(s)) if s == "ok");
        if ok {
            completed.insert(index, record);
        } else {
            completed.remove(&index);
        }
    }
    Ok(LoadedJournal { completed })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(record: &Record) -> Record {
        let mut line = String::new();
        record.write_json_line(&mut line);
        let parsed = JsonParser::parse(&line).expect("parse");
        record_from_json(&parsed).expect("record")
    }

    #[test]
    fn records_roundtrip_byte_identically() {
        let mut record = Record::new();
        record
            .push("index", Field::UInt(3))
            .push("problem", Field::Str("F1 \"quoted\"\n".into()))
            .push("layers", Field::Null)
            .push("noisy", Field::Bool(false))
            .push("optimal_value", Field::Float(-12.5))
            .push("whole_float", Field::Float(3.0))
            .push("tiny", Field::Float(1.25e-7))
            .push("nan_metric", Field::Float(f64::NAN))
            .push("cost_history", Field::Floats(vec![1.0, f64::NAN, 0.5]));
        let reloaded = roundtrip(&record);
        let (mut a, mut b) = (String::new(), String::new());
        record.write_json_line(&mut a);
        reloaded.write_json_line(&mut b);
        assert_eq!(a, b, "reload must re-emit identical bytes");
        // NaN → null → NaN inside arrays; NaN scalar → null → Null field,
        // which emits identically (`null`).
        assert_eq!(reloaded.get("nan_metric"), Some(&Field::Null));
        match reloaded.get("cost_history") {
            Some(Field::Floats(xs)) => {
                assert!(xs[1].is_nan());
                assert_eq!((xs[0], xs[2]), (1.0, 0.5));
            }
            other => panic!("bad history: {other:?}"),
        }
        // Whole floats collapse to UInt on reload but print identically.
        assert_eq!(reloaded.get("whole_float"), Some(&Field::UInt(3)));
    }

    #[test]
    fn non_integer_indices_are_precise_errors_not_truncations() {
        // Regression: a fractional or negative `index` used to surface as
        // a misleading "missing `index`" and the cast to usize was
        // unchecked. Mid-file, each must be a structured error naming the
        // offending token; as the final line it is a torn-line drop.
        let dir = std::env::temp_dir().join(format!("choco_ckpt_idx_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_index.jsonl");
        let header = test_header();
        for (token, needle) in [
            ("2.5", "not a non-negative integer"),
            ("-1", "not a non-negative integer"),
            ("\"two\"", "not a non-negative integer"),
            ("1e300", "not a non-negative integer"),
        ] {
            let mut ok_line = String::from("{\"index\": 0, \"duration_us\": 1, \"record\": ");
            ok_record(0).write_json_line(&mut ok_line);
            ok_line.push_str("}\n");
            let text = format!(
                "{}{{\"index\": {token}, \"duration_us\": 1, \"record\": {{\"status\": \"ok\"}}}}\n{ok_line}",
                header.to_line()
            );
            std::fs::write(&path, text).unwrap();
            let err = load_journal(&path, &header).unwrap_err();
            assert!(err.contains("corrupt line 2"), "{token}: {err}");
            assert!(err.contains(needle), "{token}: {err}");
            assert!(err.contains(token.trim_matches('"')), "{token}: {err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    fn test_header() -> JournalHeader {
        JournalHeader {
            version: JOURNAL_VERSION,
            spec_name: "t".into(),
            spec_hash: 0xABCD,
            cells: 4,
            quick: false,
            engine: "auto".into(),
            optimizer: "adam".into(),
        }
    }

    #[test]
    fn header_roundtrips_and_validates() {
        let header = test_header();
        let line = header.to_line();
        let parsed = JournalHeader::from_json(&JsonParser::parse(line.trim()).unwrap()).unwrap();
        assert_eq!(parsed, header);
        parsed.validate(&header).unwrap();
        let mut other = header.clone();
        other.engine = "dense".into();
        let err = parsed.validate(&other).unwrap_err();
        assert!(err.contains("--engine"), "{err}");
        let mut other = header.clone();
        other.spec_hash ^= 1;
        assert!(parsed
            .validate(&other)
            .unwrap_err()
            .contains("spec file changed"));
    }

    fn ok_record(index: u64) -> Record {
        let mut r = Record::new();
        r.push("index", Field::UInt(index))
            .push("status", Field::Str("ok".into()))
            .push("best_value", Field::Float(1.5));
        r
    }

    #[test]
    fn journal_write_load_cycle() {
        let dir = std::env::temp_dir().join(format!("choco_ckpt_{}", std::process::id()));
        let path = dir.join("cycle.jsonl");
        let header = test_header();
        let journal = CheckpointJournal::create(&path, &header).unwrap();
        journal
            .append_cell(0, Duration::from_micros(42), &ok_record(0))
            .unwrap();
        let mut failed = Record::new();
        failed
            .push("index", Field::UInt(1))
            .push("status", Field::Str("error".into()));
        journal.append_cell(1, Duration::ZERO, &failed).unwrap();
        drop(journal);

        let loaded = load_journal(&path, &header).unwrap();
        assert_eq!(
            loaded.completed.len(),
            1,
            "error records are not completions"
        );
        assert!(loaded.completed.contains_key(&0));

        // A torn trailing line is dropped, not fatal.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"index\": 2, \"duration_us\": 1, \"rec");
        std::fs::write(&path, &text).unwrap();
        let loaded = load_journal(&path, &header).unwrap();
        assert_eq!(loaded.completed.len(), 1);

        // The same corruption mid-file is fatal.
        let torn = format!(
            "{}{{\"index\": 2, \"duration_us\": 1, \"rec\n{}",
            header.to_line(),
            {
                let mut line = String::from("{\"index\": 0, \"duration_us\": 1, \"record\": ");
                ok_record(0).write_json_line(&mut line);
                line.push_str("}\n");
                line
            }
        );
        std::fs::write(&path, torn).unwrap();
        let err = load_journal(&path, &header).unwrap_err();
        assert!(err.contains("corrupt line 2"), "{err}");

        // Out-of-range indices are rejected.
        let journal = CheckpointJournal::create(&path, &header).unwrap();
        journal
            .append_cell(99, Duration::ZERO, &ok_record(99))
            .unwrap();
        drop(journal);
        assert!(load_journal(&path, &header)
            .unwrap_err()
            .contains("outside the 4-cell grid"));

        // Resumed cells supersede earlier entries for the same index.
        let journal = CheckpointJournal::create(&path, &header).unwrap();
        let mut v1 = ok_record(0);
        v1.push("marker", Field::UInt(1));
        let mut v2 = ok_record(0);
        v2.push("marker", Field::UInt(2));
        journal.append_cell(0, Duration::ZERO, &v1).unwrap();
        journal.append_cell(0, Duration::ZERO, &v2).unwrap();
        drop(journal);
        let loaded = load_journal(&path, &header).unwrap();
        assert_eq!(loaded.completed[&0].get("marker"), Some(&Field::UInt(2)));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_header_fields_are_named() {
        let err = JournalHeader::from_json(&JsonParser::parse("{\"choco_journal\": 1}").unwrap())
            .unwrap_err();
        assert!(err.contains("`spec`"), "{err}");
    }
}
