//! Per-cell fault handling: the structured error taxonomy that replaces
//! stringly-typed cell failures, the retry policy, and the deterministic
//! fault injector behind `CHOCO_FAULT_INJECT`.
//!
//! A failed cell is a *degraded outcome*, not a dead run: the scheduler
//! catches panics, enforces cooperative deadlines, classifies whatever
//! went wrong into a [`CellError`], optionally retries transient kinds,
//! and records the result as a structured error row — every other cell
//! completes normally.

use choco_model::SolverError;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Classifies a failed cell (the `error_kind` field of grid records).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellErrorKind {
    /// The cell panicked; the panic was caught and the worker replaced
    /// its possibly-corrupted workspace with a fresh one.
    Panic,
    /// The cell's cooperative wall-clock deadline (`--cell-timeout`)
    /// expired mid-solve.
    Timeout,
    /// Admission control refused the cell before any simulation (e.g.
    /// the register exceeds the engine's qubit limit).
    SizeGate,
    /// The solver rejected the cell: infeasible constraints, an
    /// unsupported encoding, a failed driver construction, or a missing
    /// exact reference.
    Solver,
    /// Reading or writing a run artifact (journal, report) failed.
    Io,
    /// The job owning the cell was cancelled (the daemon's `cancel` op or
    /// a shutdown drain timeout); the cell drained cooperatively through
    /// the same hook as deadlines instead of producing a result.
    Cancelled,
}

impl CellErrorKind {
    /// Stable lowercase label used in reports (`panic`, `timeout`,
    /// `size_gate`, `solver`, `io`, `cancelled`).
    pub fn label(self) -> &'static str {
        match self {
            CellErrorKind::Panic => "panic",
            CellErrorKind::Timeout => "timeout",
            CellErrorKind::SizeGate => "size_gate",
            CellErrorKind::Solver => "solver",
            CellErrorKind::Io => "io",
            CellErrorKind::Cancelled => "cancelled",
        }
    }

    /// Whether a bounded retry may plausibly succeed. Panics and
    /// timeouts can be transient (a corrupted workspace, a host hiccup);
    /// size gates, solver rejections, and cancellations are deliberate,
    /// so retrying them only burns budget.
    pub fn retryable(self) -> bool {
        matches!(self, CellErrorKind::Panic | CellErrorKind::Timeout)
    }
}

/// A structured per-cell failure: what kind, the human-readable detail,
/// and how many retries were spent before giving up.
#[derive(Clone, Debug)]
pub struct CellError {
    /// Failure classification.
    pub kind: CellErrorKind,
    /// Human-readable detail (the `error` field of grid records).
    pub detail: String,
    /// Retries consumed before this error became final (filled in by the
    /// scheduler's retry loop; attempts beyond it were identical).
    pub retries: u32,
}

impl CellError {
    /// A fresh (zero-retry) error of the given kind.
    pub fn new(kind: CellErrorKind, detail: impl Into<String>) -> CellError {
        CellError {
            kind,
            detail: detail.into(),
            retries: 0,
        }
    }

    /// Classifies a [`SolverError`]: size gates and timeouts become their
    /// own kinds; everything else is a deterministic solver rejection.
    pub fn from_solver(err: &SolverError) -> CellError {
        let kind = match err {
            SolverError::TooLarge { .. } => CellErrorKind::SizeGate,
            SolverError::Timeout => CellErrorKind::Timeout,
            _ => CellErrorKind::Solver,
        };
        CellError::new(kind, err.to_string())
    }

    /// Classifies a caught panic payload, extracting the message when the
    /// payload is a string (the overwhelmingly common case).
    pub fn from_panic(payload: &(dyn std::any::Any + Send)) -> CellError {
        let detail = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with non-string payload".into());
        CellError::new(CellErrorKind::Panic, detail)
    }
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.detail)
    }
}

/// What an injected fault does to a cell attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the start of the attempt (exercises `catch_unwind`
    /// isolation and workspace replacement).
    Panic,
    /// Start the attempt with an already-expired deadline (a
    /// deterministic timeout, independent of host speed).
    Timeout,
    /// Sleep before the attempt (perturbs worker scheduling without
    /// failing the cell — determinism stress, not an error path).
    Delay(Duration),
    /// Crash the whole *worker thread* running the cell, outside the
    /// per-attempt `catch_unwind` envelope. Only the serve pool honors
    /// this (its supervisor restarts the worker and requeues the cell);
    /// the batch runner ignores it — there, every panic is already
    /// caught per attempt, so a worker-level crash cannot be expressed.
    Kill,
}

/// One parsed injection directive.
#[derive(Clone, Copy, Debug)]
struct Directive {
    index: usize,
    kind: FaultKind,
    /// How many attempts of the cell the fault hits (`None` = all). With
    /// `panic@3:1` and `--retries 1`, cell 3's first attempt panics and
    /// its retry succeeds — an `ok` record with `retries = 1`.
    attempts: Option<u32>,
}

/// A deterministic fault-injection plan, usually parsed from the
/// `CHOCO_FAULT_INJECT` environment variable (tests construct plans
/// directly via [`FaultPlan::parse`] to avoid process-global env races).
///
/// Grammar — comma-separated directives, cells addressed by their stable
/// flat grid index:
///
/// ```text
/// panic@I[:N]      panic in cell I's first N attempts (default: all)
/// timeout@I[:N]    expire cell I's deadline immediately
/// delay@I:MS[:N]   sleep MS milliseconds before cell I's attempt
/// kill@I[:N]       crash the serve worker running cell I (serve only)
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    directives: Vec<Directive>,
    /// Attempts drawn so far per cell index (shared across workers).
    attempts: Mutex<BTreeMap<usize, u32>>,
    /// Supervision-level attempts drawn per cell by [`FaultPlan::draw_kill`].
    /// Kept separate from `attempts` so kill scheduling never shifts
    /// which solve attempts the other directives hit.
    kill_attempts: Mutex<BTreeMap<usize, u32>>,
}

impl FaultPlan {
    /// Parses a plan from the directive grammar.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed directive.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut directives = Vec::new();
        for raw in text.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (kind, coords) = raw
                .split_once('@')
                .ok_or_else(|| format!("fault `{raw}`: expected `<kind>@<cell>[...]`"))?;
            let parts: Vec<&str> = coords.split(':').collect();
            let parse_num = |what: &str, s: &str| -> Result<u64, String> {
                s.parse::<u64>()
                    .map_err(|e| format!("fault `{raw}`: bad {what} `{s}`: {e}"))
            };
            let (kind, rest) = match kind {
                "panic" => (FaultKind::Panic, &parts[1..]),
                "timeout" => (FaultKind::Timeout, &parts[1..]),
                "delay" => {
                    let ms = parts
                        .get(1)
                        .ok_or_else(|| format!("fault `{raw}`: delay needs `delay@I:MS`"))?;
                    let ms = parse_num("delay", ms)?;
                    (FaultKind::Delay(Duration::from_millis(ms)), &parts[2..])
                }
                "kill" => (FaultKind::Kill, &parts[1..]),
                other => {
                    return Err(format!(
                        "fault `{raw}`: unknown kind `{other}` (expected panic|timeout|delay|kill)"
                    ))
                }
            };
            let index = parse_num("cell index", parts.first().unwrap_or(&""))? as usize;
            let attempts = match rest {
                [] => None,
                [n] => Some(parse_num("attempt count", n)? as u32),
                _ => return Err(format!("fault `{raw}`: too many `:` fields")),
            };
            directives.push(Directive {
                index,
                kind,
                attempts,
            });
        }
        Ok(FaultPlan {
            directives,
            attempts: Mutex::new(BTreeMap::new()),
            kill_attempts: Mutex::new(BTreeMap::new()),
        })
    }

    /// Reads `CHOCO_FAULT_INJECT` from the environment; unset or blank
    /// means no injection.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::parse`] failures.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var("CHOCO_FAULT_INJECT") {
            Ok(text) if !text.trim().is_empty() => FaultPlan::parse(&text)
                .map(Some)
                .map_err(|e| format!("CHOCO_FAULT_INJECT: {e}")),
            _ => Ok(None),
        }
    }

    /// Draws the fault (if any) for the next attempt of cell `index`,
    /// advancing that cell's attempt counter. Thread-safe; the counter is
    /// per-cell, so worker scheduling cannot change which attempts fail.
    /// `kill@` directives are not drawn here — they act above the attempt
    /// level, through [`FaultPlan::draw_kill`].
    pub fn draw(&self, index: usize) -> Option<FaultKind> {
        let attempt = {
            let mut attempts = self.attempts.lock().unwrap_or_else(PoisonError::into_inner);
            let n = attempts.entry(index).or_insert(0);
            let current = *n;
            *n += 1;
            current
        };
        self.directives
            .iter()
            .find(|d| {
                !matches!(d.kind, FaultKind::Kill)
                    && d.index == index
                    && d.attempts.is_none_or(|k| attempt < k)
            })
            .map(|d| d.kind)
    }

    /// Draws whether the next supervision-level dispatch of cell `index`
    /// should crash its worker thread (`kill@I[:N]` directives), advancing
    /// a counter independent of [`FaultPlan::draw`]'s.
    pub fn draw_kill(&self, index: usize) -> bool {
        let attempt = {
            let mut attempts = self
                .kill_attempts
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let n = attempts.entry(index).or_insert(0);
            let current = *n;
            *n += 1;
            current
        };
        self.directives.iter().any(|d| {
            matches!(d.kind, FaultKind::Kill)
                && d.index == index
                && d.attempts.is_none_or(|k| attempt < k)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_directive_kinds() {
        let plan = FaultPlan::parse("panic@0, timeout@2:1, delay@3:250:2").unwrap();
        assert_eq!(plan.draw(0), Some(FaultKind::Panic));
        assert_eq!(plan.draw(0), Some(FaultKind::Panic), "unbounded repeats");
        assert_eq!(plan.draw(1), None);
        assert_eq!(plan.draw(2), Some(FaultKind::Timeout));
        assert_eq!(plan.draw(2), None, "bounded to one attempt");
        let delay = Duration::from_millis(250);
        assert_eq!(plan.draw(3), Some(FaultKind::Delay(delay)));
        assert_eq!(plan.draw(3), Some(FaultKind::Delay(delay)));
        assert_eq!(plan.draw(3), None, "bounded to two attempts");
    }

    #[test]
    fn kill_directives_draw_on_their_own_counter() {
        let plan = FaultPlan::parse("kill@0:2, panic@0:1").unwrap();
        // `draw` never surfaces kills, and its counter keeps panic@0:1 on
        // the first solve attempt regardless of how many kills were drawn.
        assert!(plan.draw_kill(0));
        assert!(plan.draw_kill(0));
        assert!(!plan.draw_kill(0), "bounded to two dispatches");
        assert!(!plan.draw_kill(1));
        assert_eq!(plan.draw(0), Some(FaultKind::Panic));
        assert_eq!(plan.draw(0), None, "panic bounded to one attempt");

        let unbounded = FaultPlan::parse("kill@3").unwrap();
        for _ in 0..5 {
            assert!(unbounded.draw_kill(3));
        }
        assert_eq!(unbounded.draw(3), None, "kill is invisible to draw");
    }

    #[test]
    fn rejects_malformed_directives() {
        for bad in [
            "panic",
            "panic@x",
            "explode@1",
            "delay@1",
            "panic@1:2:3",
            "delay@1:5:2:9",
            "kill@",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.contains("fault"), "{bad}: {err}");
        }
        // Blank segments and whitespace are tolerated.
        assert!(FaultPlan::parse(" panic@1 , ").is_ok());
        assert!(FaultPlan::parse("").unwrap().draw(0).is_none());
    }

    #[test]
    fn solver_errors_classify_by_kind() {
        let gate = CellError::from_solver(&SolverError::TooLarge {
            required: 30,
            limit: 26,
        });
        assert_eq!(gate.kind, CellErrorKind::SizeGate);
        assert!(gate.detail.contains("30"));
        let timeout = CellError::from_solver(&SolverError::Timeout);
        assert_eq!(timeout.kind, CellErrorKind::Timeout);
        let solver = CellError::from_solver(&SolverError::Infeasible);
        assert_eq!(solver.kind, CellErrorKind::Solver);
        assert!(!solver.kind.retryable() && !gate.kind.retryable());
        assert!(timeout.kind.retryable() && CellErrorKind::Panic.retryable());
        assert!(!CellErrorKind::Cancelled.retryable());
        assert_eq!(CellErrorKind::Cancelled.label(), "cancelled");
    }

    #[test]
    fn panic_payloads_extract_string_messages() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new("static str".to_string());
        let err = CellError::from_panic(boxed.as_ref());
        assert_eq!(err.kind, CellErrorKind::Panic);
        assert_eq!(err.detail, "static str");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(42u32);
        let err = CellError::from_panic(boxed.as_ref());
        assert!(err.detail.contains("non-string"));
    }
}
