//! # choco-runner
//!
//! The data-driven experiment runner: every table and figure of the
//! Choco-Q evaluation is a checked-in spec under `experiments/`, executed
//! by one engine instead of one hand-written binary per figure.
//!
//! * [`ExperimentSpec`] — a `{problem family × size × seed × solver ×
//!   layers × eliminate × device}` grid (or a special kind:
//!   decomposition / ablation / support), parsed from the TOML subset in
//!   [`minitoml`].
//! * [`execute`] — a multi-threaded batch scheduler: cells fan out across
//!   `std::thread::scope` workers, each owning its own
//!   [`choco_qsim::SimWorkspace`] so the zero-allocation solver path runs
//!   in parallel. Per-cell seeds derive from cell *coordinates*, so any
//!   cell is reproducible in isolation and the report is byte-identical
//!   at any worker count.
//! * [`RunReport`] — deterministic JSON / CSV emission plus a terminal
//!   table ([`RunReport::to_json`] contains no wall-clock fields).
//! * Fault tolerance — grid cells run behind `catch_unwind` with a
//!   structured error taxonomy ([`CellError`]), cooperative per-cell
//!   deadlines, bounded retries, and an append-only checkpoint journal
//!   (`--checkpoint` / `--resume`) that makes killed runs resumable with
//!   byte-identical reports (see `docs/operations.md`).
//! * [`serve`] — `choco-cli serve`: a long-lived solve-as-a-service
//!   daemon that queues submitted jobs across a persistent worker pool
//!   whose workspaces share one plan cache across requests, streams
//!   records as JSONL, and journals every job for kill-resume.
//! * [`cli::run_command`] — the `choco-cli run <spec>` entry point.
//!
//! ```
//! use choco_runner::{execute, ExperimentSpec, RunOptions};
//!
//! let spec = ExperimentSpec::parse_str(r#"
//! name = "doc-smoke"
//! [grid]
//! problems = ["F1"]
//! solvers = ["choco-q"]
//! [config]
//! shots = 500
//! max_iters = 5
//! restarts = 1
//! transpiled_stats = false
//! "#).unwrap();
//! let report = execute(&spec, &RunOptions::default()).unwrap();
//! assert_eq!(report.records.len(), 1);
//! ```

#![warn(missing_docs)]

mod checkpoint;
pub mod cli;
mod fault;
mod json;
pub mod minitoml;
mod report;
mod run;
pub mod serve;
mod spec;
mod special;

pub use fault::{CellError, CellErrorKind, FaultKind, FaultPlan};
pub use report::{Field, Record, RunReport};
pub use run::{build_instances, execute, scaled_choco, scaled_qaoa, Instance, RunOptions};
pub use serve::ServeOptions;
pub use spec::{
    Cell, ConfigOverrides, DecompositionSpec, ExperimentSpec, ProblemRef, RunKind, SolverKind,
};
