//! Quantum circuit IR.
//!
//! A [`Circuit`] is an ordered list of [`Gate`]s over a fixed number of
//! qubits, with builder-style append helpers, ASAP depth computation (the
//! paper's "circuit depth" metric), gate counting, composition, and exact
//! inversion.

use crate::gate::{Gate, ShiftBlock, UBlock};
use crate::phasepoly::PhasePoly;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// An ordered sequence of gates over `n_qubits` qubits.
///
/// # Examples
///
/// ```
/// use choco_qsim::Circuit;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// assert_eq!(bell.depth(), 2);
/// assert_eq!(bell.len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// An empty circuit over `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        assert!(n_qubits <= 30, "simulator practical limit is 30 qubits");
        Circuit {
            n_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of gates.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` if the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gate list.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Iterates over the gates.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a qubit `>= n_qubits`.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        for q in gate.qubits() {
            assert!(
                q < self.n_qubits,
                "gate {gate} references qubit q{q} outside the {}-qubit circuit",
                self.n_qubits
            );
        }
        self.gates.push(gate);
        self
    }

    /// Appends every gate of `other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than this circuit has.
    pub fn append(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.n_qubits <= self.n_qubits,
            "cannot append a wider circuit"
        );
        for g in &other.gates {
            self.gates.push(g.clone());
        }
        self
    }

    /// The exact inverse circuit (gates reversed and inverted).
    pub fn inverse(&self) -> Circuit {
        Circuit {
            n_qubits: self.n_qubits,
            gates: self.gates.iter().rev().map(Gate::inverse).collect(),
        }
    }

    /// ASAP-scheduled depth: the number of layers when every gate starts as
    /// soon as all its qubits are free. Structured gates count as one layer
    /// on their support (call [`Circuit::depth`] on the *transpiled* circuit
    /// for deployable-depth numbers).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for g in &self.gates {
            let qs = g.qubits();
            let start = qs.iter().map(|&q| level[q]).max().unwrap_or(0);
            for &q in &qs {
                level[q] = start + 1;
            }
            depth = depth.max(start + 1);
        }
        depth
    }

    /// Gate histogram keyed by mnemonic.
    pub fn gate_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for g in &self.gates {
            *counts.entry(g.name()).or_insert(0) += 1;
        }
        counts
    }

    /// Number of gates acting on two or more qubits.
    pub fn multi_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.arity() >= 2).count()
    }

    /// `true` when every gate is in the deployable basic set.
    pub fn is_basic(&self) -> bool {
        self.gates.iter().all(Gate::is_basic)
    }

    /// `true` if any structured (UBlock / XyMix / DiagPhase) op remains.
    pub fn has_structured(&self) -> bool {
        self.gates.iter().any(Gate::is_structured)
    }

    // ---- builder-style helpers -------------------------------------------

    /// Appends a Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H(q))
    }

    /// Appends an X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X(q))
    }

    /// Appends a Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Y(q))
    }

    /// Appends a Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Z(q))
    }

    /// Appends an X-rotation.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rx(q, theta))
    }

    /// Appends a Y-rotation.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Ry(q, theta))
    }

    /// Appends a Z-rotation.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rz(q, theta))
    }

    /// Appends a phase gate.
    pub fn p(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Phase(q, theta))
    }

    /// Appends a CX.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cx(control, target))
    }

    /// Appends a CZ.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Cz(a, b))
    }

    /// Appends a controlled phase.
    pub fn cp(&mut self, control: usize, target: usize, theta: f64) -> &mut Self {
        self.push(Gate::Cp(control, target, theta))
    }

    /// Appends a Toffoli.
    pub fn ccx(&mut self, c1: usize, c2: usize, target: usize) -> &mut Self {
        self.push(Gate::Ccx(c1, c2, target))
    }

    /// Appends a multi-controlled X.
    pub fn mcx(&mut self, controls: Vec<usize>, target: usize) -> &mut Self {
        self.push(Gate::Mcx { controls, target })
    }

    /// Appends a multi-controlled phase on the all-ones state of `qubits`.
    pub fn mcphase(&mut self, qubits: Vec<usize>, angle: f64) -> &mut Self {
        self.push(Gate::McPhase { qubits, angle })
    }

    /// Appends a commute-Hamiltonian block `e^{-iθHc(u)}`.
    pub fn ublock(&mut self, block: UBlock) -> &mut Self {
        self.push(Gate::UBlock(block))
    }

    /// Appends a generalized commute block with slack-register shifts.
    pub fn shift_block(&mut self, block: ShiftBlock) -> &mut Self {
        self.push(Gate::ShiftBlock(block))
    }

    /// Appends an XY-mixer pair term.
    pub fn xy(&mut self, a: usize, b: usize, theta: f64) -> &mut Self {
        self.push(Gate::XyMix(a, b, theta))
    }

    /// Appends a diagonal evolution `e^{-iθ·f(x)}`.
    pub fn diag(&mut self, poly: Arc<PhasePoly>, theta: f64) -> &mut Self {
        self.push(Gate::DiagPhase(poly, theta))
    }

    /// Loads a computational basis state: applies X on every qubit whose bit
    /// is set in `bits` (used to prepare the feasible initial state).
    pub fn load_bits(&mut self, bits: u64) -> &mut Self {
        for q in 0..self.n_qubits {
            if (bits >> q) & 1 == 1 {
                self.x(q);
            }
        }
        self
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit[{} qubits, {} gates, depth {}]",
            self.n_qubits,
            self.gates.len(),
            self.depth()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;
    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_sequential_vs_parallel() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        assert_eq!(c.depth(), 1, "parallel 1q gates share a layer");
        c.cx(0, 1);
        assert_eq!(c.depth(), 2);
        c.cx(1, 2);
        assert_eq!(c.depth(), 3, "chained CX serializes");
    }

    #[test]
    fn depth_empty_is_zero() {
        assert_eq!(Circuit::new(4).depth(), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn push_validates_qubits() {
        let mut c = Circuit::new(2);
        c.h(2);
    }

    #[test]
    fn gate_counts_histogram() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1).rz(1, 0.5);
        let counts = c.gate_counts();
        assert_eq!(counts["h"], 2);
        assert_eq!(counts["cx"], 1);
        assert_eq!(counts["rz"], 1);
        assert_eq!(c.multi_qubit_gate_count(), 1);
    }

    #[test]
    fn inverse_reverses_order_and_angles() {
        let mut c = Circuit::new(2);
        c.h(0).rz(0, 0.3).cx(0, 1);
        let inv = c.inverse();
        assert_eq!(inv.gates()[0], Gate::Cx(0, 1));
        assert_eq!(inv.gates()[1], Gate::Rz(0, -0.3));
        assert_eq!(inv.gates()[2], Gate::H(0));
    }

    #[test]
    fn append_concatenates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.append(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn load_bits_places_x_gates() {
        let mut c = Circuit::new(4);
        c.load_bits(0b1010);
        let counts = c.gate_counts();
        assert_eq!(counts["x"], 2);
        assert_eq!(c.gates()[0], Gate::X(1));
        assert_eq!(c.gates()[1], Gate::X(3));
    }

    #[test]
    fn basic_and_structured_flags() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1);
        assert!(c.is_basic());
        assert!(!c.has_structured());
        c.xy(1, 2, 0.4);
        assert!(!c.is_basic());
        assert!(c.has_structured());
    }

    #[test]
    fn display_contains_header() {
        let mut c = Circuit::new(2);
        c.h(0);
        let s = format!("{c}");
        assert!(s.contains("circuit[2 qubits, 1 gates, depth 1]"));
        assert!(s.contains("h q0"));
    }
}
