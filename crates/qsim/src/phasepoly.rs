//! Phase polynomials: diagonal Hamiltonians as pseudo-Boolean functions.
//!
//! Every Hamiltonian built from `I` and `σ_z` operators is diagonal in the
//! computational basis, and its diagonal is a quadratic pseudo-Boolean
//! function of the bit assignment. Both the objective Hamiltonian `H_o`
//! (after `x_j → (I - Z_j)/2`) and penalty Hamiltonians have this form, so
//! the simulator can evolve `e^{-iγ H_o}` *exactly* by multiplying each
//! amplitude with `e^{-iγ f(x)}` — no gate decomposition, no Trotter error.

use std::fmt;

/// A quadratic pseudo-Boolean function
/// `f(x) = constant + Σ linear_i·x_i + Σ quad_{ij}·x_i·x_j`.
///
/// # Examples
///
/// ```
/// use choco_qsim::PhasePoly;
///
/// let mut f = PhasePoly::new(3);
/// f.add_linear(0, 2.0);
/// f.add_quadratic(0, 2, -1.5);
/// assert_eq!(f.eval_bits(0b101), 2.0 - 1.5);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhasePoly {
    n_vars: usize,
    constant: f64,
    linear: Vec<f64>,
    /// `(i, j, w)` with `i < j`; each unordered pair appears at most once.
    quadratic: Vec<(usize, usize, f64)>,
}

impl PhasePoly {
    /// The zero function over `n_vars` variables.
    pub fn new(n_vars: usize) -> Self {
        PhasePoly {
            n_vars,
            constant: 0.0,
            linear: vec![0.0; n_vars],
            quadratic: Vec::new(),
        }
    }

    /// Number of variables.
    #[inline]
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// The constant term.
    #[inline]
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// The linear coefficients.
    #[inline]
    pub fn linear(&self) -> &[f64] {
        &self.linear
    }

    /// The quadratic terms `(i, j, w)` with `i < j`.
    #[inline]
    pub fn quadratic(&self) -> &[(usize, usize, f64)] {
        &self.quadratic
    }

    /// Adds to the constant term.
    pub fn add_constant(&mut self, w: f64) {
        self.constant += w;
    }

    /// Adds `w·x_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_vars`.
    pub fn add_linear(&mut self, i: usize, w: f64) {
        assert!(i < self.n_vars, "variable x{i} out of range");
        self.linear[i] += w;
    }

    /// Adds `w·x_i·x_j`. For `i == j` this is `w·x_i` (booleans are
    /// idempotent).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn add_quadratic(&mut self, i: usize, j: usize, w: f64) {
        assert!(i < self.n_vars && j < self.n_vars, "variable out of range");
        if w == 0.0 {
            return;
        }
        if i == j {
            self.linear[i] += w;
            return;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        if let Some(entry) = self
            .quadratic
            .iter_mut()
            .find(|&&mut (x, y, _)| x == a && y == b)
        {
            entry.2 += w;
        } else {
            self.quadratic.push((a, b, w));
        }
    }

    /// Adds `scale · g` term-wise.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn add_scaled(&mut self, g: &PhasePoly, scale: f64) {
        assert_eq!(self.n_vars, g.n_vars, "variable count mismatch");
        self.constant += scale * g.constant;
        for (a, b) in self.linear.iter_mut().zip(g.linear.iter()) {
            *a += scale * b;
        }
        for &(i, j, w) in &g.quadratic {
            self.add_quadratic(i, j, scale * w);
        }
    }

    /// Materializes the per-basis diagonal `[f(0), f(1), …, f(dim-1)]` by
    /// strided term-wise accumulation — `O(dim·(1 + terms/2))` simple adds
    /// instead of `dim` branchy [`PhasePoly::eval_bits`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not a power of two.
    pub fn values_table(&self, dim: usize) -> Vec<f64> {
        let mut values = vec![0.0f64; dim];
        crate::kernels::accumulate_poly_diag(&mut values, self);
        values
    }

    /// Evaluates `f` on a packed bit assignment (`x_i = (bits >> i) & 1`).
    pub fn eval_bits(&self, bits: u64) -> f64 {
        let mut acc = self.constant;
        for (i, &w) in self.linear.iter().enumerate() {
            if w != 0.0 && (bits >> i) & 1 == 1 {
                acc += w;
            }
        }
        for &(i, j, w) in &self.quadratic {
            if (bits >> i) & 1 == 1 && (bits >> j) & 1 == 1 {
                acc += w;
            }
        }
        acc
    }

    /// The variables with any non-zero coefficient (sorted).
    pub fn support(&self) -> Vec<usize> {
        let mut used = vec![false; self.n_vars];
        for (i, &w) in self.linear.iter().enumerate() {
            if w != 0.0 {
                used[i] = true;
            }
        }
        for &(i, j, w) in &self.quadratic {
            if w != 0.0 {
                used[i] = true;
                used[j] = true;
            }
        }
        (0..self.n_vars).filter(|&i| used[i]).collect()
    }

    /// Number of non-zero linear + quadratic terms.
    pub fn term_count(&self) -> usize {
        self.linear.iter().filter(|&&w| w != 0.0).count()
            + self.quadratic.iter().filter(|&&(_, _, w)| w != 0.0).count()
    }

    /// Largest absolute coefficient (useful for parameter scaling).
    pub fn max_abs_coeff(&self) -> f64 {
        let lin = self.linear.iter().map(|w| w.abs()).fold(0.0, f64::max);
        let quad = self
            .quadratic
            .iter()
            .map(|&(_, _, w)| w.abs())
            .fold(0.0, f64::max);
        lin.max(quad).max(self.constant.abs())
    }
}

impl fmt::Display for PhasePoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.constant)?;
        for (i, &w) in self.linear.iter().enumerate() {
            if w != 0.0 {
                write!(
                    f,
                    " {} {:.4}·x{}",
                    if w < 0.0 { "-" } else { "+" },
                    w.abs(),
                    i
                )?;
            }
        }
        for &(i, j, w) in &self.quadratic {
            if w != 0.0 {
                write!(
                    f,
                    " {} {:.4}·x{}x{}",
                    if w < 0.0 { "-" } else { "+" },
                    w.abs(),
                    i,
                    j
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_constant_only() {
        let mut f = PhasePoly::new(2);
        f.add_constant(3.5);
        assert_eq!(f.eval_bits(0), 3.5);
        assert_eq!(f.eval_bits(0b11), 3.5);
    }

    #[test]
    fn eval_linear_and_quadratic() {
        let mut f = PhasePoly::new(4);
        f.add_linear(1, 2.0);
        f.add_linear(3, -1.0);
        f.add_quadratic(0, 3, 4.0);
        assert_eq!(f.eval_bits(0b0010), 2.0);
        assert_eq!(f.eval_bits(0b1001), -1.0 + 4.0);
        assert_eq!(f.eval_bits(0b1010), 2.0 - 1.0);
    }

    #[test]
    fn quadratic_merges_and_orders() {
        let mut f = PhasePoly::new(3);
        f.add_quadratic(2, 0, 1.0);
        f.add_quadratic(0, 2, 2.0);
        assert_eq!(f.quadratic(), &[(0, 2, 3.0)]);
    }

    #[test]
    fn diagonal_square_term_folds_to_linear() {
        let mut f = PhasePoly::new(2);
        f.add_quadratic(1, 1, 5.0);
        assert_eq!(f.linear()[1], 5.0);
        assert!(f.quadratic().is_empty());
    }

    #[test]
    fn add_scaled_combines() {
        let mut f = PhasePoly::new(2);
        f.add_linear(0, 1.0);
        let mut g = PhasePoly::new(2);
        g.add_linear(0, 2.0);
        g.add_quadratic(0, 1, 1.0);
        g.add_constant(4.0);
        f.add_scaled(&g, 0.5);
        assert_eq!(f.eval_bits(0b11), 1.0 + 1.0 + 0.5 + 2.0);
    }

    #[test]
    fn support_and_term_count() {
        let mut f = PhasePoly::new(5);
        f.add_linear(1, 1.0);
        f.add_quadratic(2, 4, -1.0);
        assert_eq!(f.support(), vec![1, 2, 4]);
        assert_eq!(f.term_count(), 2);
    }

    #[test]
    fn values_table_matches_eval_bits() {
        let mut f = PhasePoly::new(4);
        f.add_constant(0.25);
        f.add_linear(1, 2.0);
        f.add_linear(3, -1.0);
        f.add_quadratic(0, 2, 4.0);
        let table = f.values_table(16);
        for (bits, &v) in table.iter().enumerate() {
            assert_eq!(v, f.eval_bits(bits as u64), "bits={bits}");
        }
    }

    #[test]
    fn max_abs_coeff() {
        let mut f = PhasePoly::new(2);
        f.add_constant(-9.0);
        f.add_linear(0, 3.0);
        assert_eq!(f.max_abs_coeff(), 9.0);
    }
}
