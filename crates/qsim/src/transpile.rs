//! Lowering structured operations to deployable basic gates.
//!
//! The deployable basis is {1-qubit gates} ∪ {CX or CZ}. The passes here
//! implement:
//!
//! * **Lemma 2 of the paper** — each commute block `e^{-iβHc(u)}` becomes
//!   `G† · P(β) · X₁ · P(−β) · X₁ · G`, where `G` is the converting circuit
//!   of Algorithm 1 (a CX chain with X fix-ups and one H) and `P` is a
//!   multi-controlled phase. Linear time, linear depth.
//! * **Multi-controlled phase** via one clean ancilla:
//!   `MCX(q₁…q_{k−1} → a); CP(a, q_k); MCX undo` (the paper's reformulation
//!   of `P(β)` as an ancilla-assisted controlled-RZ).
//! * **Multi-controlled X** via a clean-ancilla Toffoli chain when enough
//!   ancillas are free, else the Barenco borrowed-qubit split
//!   (`C^m X = A·B·A·B` with `A = C^{⌈m/2⌉}X` onto a borrowed qubit): works
//!   even when the borrowed qubit carries data.
//! * Diagonal evolutions `e^{-iθf(x)}` into `Phase` / `CP` gates (one per
//!   non-zero term of `f`).
//!
//! Every lowering is exact (no Trotter error); equivalence against the
//! structured simulator path is enforced by tests.

use crate::circuit::Circuit;
use crate::gate::{Gate, ShiftBlock, UBlock};
use choco_mathkit::{c64, Complex64};
use std::fmt;

/// Which entangling gate the target device supports natively.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TwoQubitBasis {
    /// CX (ECR-style devices: Osaka, Sherbrooke).
    #[default]
    Cx,
    /// CZ (IBM Heron devices: Fez).
    Cz,
}

/// Transpilation options.
#[derive(Clone, Debug, Default)]
pub struct TranspileOptions {
    /// Native two-qubit gate.
    pub two_qubit: TwoQubitBasis,
    /// Clean (|0⟩, restored-after-use) ancilla qubits available to the
    /// lowering passes. Choco-Q circuits allocate two, following the paper.
    pub ancillas: Vec<usize>,
}

impl TranspileOptions {
    /// Options with a CX basis and the given clean ancillas.
    pub fn with_ancillas(ancillas: Vec<usize>) -> Self {
        TranspileOptions {
            two_qubit: TwoQubitBasis::Cx,
            ancillas,
        }
    }
}

/// Errors from [`transpile`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranspileError {
    /// A multi-controlled gate could not be lowered because no spare qubit
    /// (clean or borrowed) exists.
    NeedsAncilla {
        /// Display form of the gate that failed.
        gate: String,
    },
}

impl fmt::Display for TranspileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranspileError::NeedsAncilla { gate } => {
                write!(f, "gate `{gate}` needs a spare ancilla qubit to lower")
            }
        }
    }
}

impl std::error::Error for TranspileError {}

/// Lowers a circuit to the deployable basis.
///
/// # Errors
///
/// Returns [`TranspileError::NeedsAncilla`] if a multi-controlled gate
/// covers every qubit of the circuit and no ancilla was provided.
///
/// # Examples
///
/// ```
/// use choco_qsim::{transpile, Circuit, TranspileOptions, UBlock};
///
/// // 3-qubit commute block + 2 clean ancillas (the paper's layout).
/// let mut c = Circuit::new(5);
/// c.ublock(UBlock::from_u_with_angle(&[-1, 1, -1], 0.8));
/// let lowered = transpile(&c, &TranspileOptions::with_ancillas(vec![3, 4])).unwrap();
/// assert!(lowered.is_basic());
/// ```
pub fn transpile(circuit: &Circuit, opts: &TranspileOptions) -> Result<Circuit, TranspileError> {
    let n = circuit.n_qubits();
    let mut out = Circuit::new(n);
    let mut stack: Vec<Gate> = circuit.gates().iter().rev().cloned().collect();
    while let Some(g) = stack.pop() {
        if is_target_basic(&g, opts.two_qubit) {
            out.push(g);
            continue;
        }
        let expansion = expand_one(&g, n, opts)?;
        stack.extend(expansion.into_iter().rev());
    }
    Ok(out)
}

fn is_target_basic(g: &Gate, basis: TwoQubitBasis) -> bool {
    match g {
        Gate::Cx(..) => basis == TwoQubitBasis::Cx,
        Gate::Cz(..) => basis == TwoQubitBasis::Cz,
        other => other.is_basic(),
    }
}

/// Expands one non-basic gate into (possibly still non-basic) gates.
fn expand_one(
    g: &Gate,
    n_qubits: usize,
    opts: &TranspileOptions,
) -> Result<Vec<Gate>, TranspileError> {
    let mut out = Vec::new();
    match g {
        Gate::Cx(c, t) => {
            // CZ basis: CX = H(t) · CZ · H(t)
            out.push(Gate::H(*t));
            out.push(Gate::Cz(*c, *t));
            out.push(Gate::H(*t));
        }
        Gate::Cz(a, b) => {
            out.push(Gate::H(*b));
            out.push(Gate::Cx(*a, *b));
            out.push(Gate::H(*b));
        }
        Gate::Cp(a, b, theta) => {
            out.push(Gate::Phase(*a, theta / 2.0));
            out.push(Gate::Cx(*a, *b));
            out.push(Gate::Phase(*b, -theta / 2.0));
            out.push(Gate::Cx(*a, *b));
            out.push(Gate::Phase(*b, theta / 2.0));
        }
        Gate::Swap(a, b) => {
            out.push(Gate::Cx(*a, *b));
            out.push(Gate::Cx(*b, *a));
            out.push(Gate::Cx(*a, *b));
        }
        Gate::Ccx(c1, c2, t) => emit_ccx(&mut out, *c1, *c2, *t),
        Gate::Mcx { controls, target } => {
            emit_mcx(&mut out, controls, *target, n_qubits, opts)?;
        }
        Gate::McPhase { qubits, angle } => {
            emit_mcphase(&mut out, qubits, *angle, n_qubits, opts)?;
        }
        Gate::ControlledU {
            controls,
            target,
            matrix,
        } => emit_controlled_u(&mut out, controls, *target, *matrix, n_qubits, opts)?,
        Gate::UBlock(b) => emit_ublock(&mut out, b),
        Gate::ShiftBlock(b) => emit_shiftblock(&mut out, b),
        Gate::XyMix(a, b, theta) => {
            // XX+YY pair term = UBlock on {|01⟩,|10⟩} with doubled angle.
            let (lo, hi) = if a < b { (*a, *b) } else { (*b, *a) };
            out.push(Gate::UBlock(UBlock {
                support: vec![lo, hi],
                pattern: 0b01,
                angle: 2.0 * theta,
            }));
        }
        Gate::DiagPhase(poly, theta) => {
            for (i, &w) in poly.linear().iter().enumerate() {
                if w != 0.0 {
                    out.push(Gate::Phase(i, -theta * w));
                }
            }
            for &(i, j, w) in poly.quadratic() {
                if w != 0.0 {
                    out.push(Gate::Cp(i, j, -theta * w));
                }
            }
            // The constant term is a global phase: dropped.
        }
        basic => out.push(basic.clone()),
    }
    Ok(out)
}

/// Lemma 2: `e^{-iβHc(u)} = G† P(β) X₁ P(−β) X₁ G` with `G` from
/// Algorithm 1. Single-qubit blocks reduce to `Rx(2β)` since `Hc = X`.
fn emit_ublock(out: &mut Vec<Gate>, b: &UBlock) {
    let k = b.support.len();
    if k == 1 {
        out.push(Gate::Rx(b.support[0], 2.0 * b.angle));
        return;
    }
    let v = |idx: usize| (b.pattern >> idx) & 1;
    // --- G (Algorithm 1): walk i = k-1 .. 1, CX(s[i-1] → s[i]), X fix-up
    // when v_i == v_{i-1}; finish with H on the first support qubit.
    let mut g_gates: Vec<Gate> = Vec::new();
    for i in (1..k).rev() {
        g_gates.push(Gate::Cx(b.support[i - 1], b.support[i]));
        if v(i) == v(i - 1) {
            g_gates.push(Gate::X(b.support[i]));
        }
    }
    g_gates.push(Gate::H(b.support[0]));

    out.extend(g_gates.iter().cloned());
    // --- core: X₁ P(−β) X₁ P(β)  (applied left-to-right).
    out.push(Gate::X(b.support[0]));
    out.push(Gate::McPhase {
        qubits: b.support.clone(),
        angle: -b.angle,
    });
    out.push(Gate::X(b.support[0]));
    out.push(Gate::McPhase {
        qubits: b.support.clone(),
        angle: b.angle,
    });
    // --- G†: reversed inverses.
    for g in g_gates.iter().rev() {
        out.push(g.inverse());
    }
}

/// Generalized commute block with slack registers: one exact two-level
/// rotation per eligible register source-value combination. The coupled
/// `{|p⟩, |q⟩}` pairs are disjoint across combinations, so the two-level
/// rotations commute and their sequential product equals `e^{-iθHc}`
/// exactly (no Trotter error).
fn emit_shiftblock(out: &mut Vec<Gate>, b: &ShiftBlock) {
    if b.shifts.is_empty() {
        emit_ublock(
            out,
            &UBlock {
                support: b.support.clone(),
                pattern: b.pattern,
                angle: b.angle,
            },
        );
        return;
    }
    let mut footprint: Vec<usize> = b.support.clone();
    for s in &b.shifts {
        footprint.extend_from_slice(&s.qubits);
    }
    footprint.sort_unstable();
    let full = b.full_mask();
    let v_abs = b.pattern_abs();
    // Expand the (source, target) pattern per register value combination.
    let mut combos: Vec<(u64, u64)> = vec![(v_abs, v_abs ^ full)];
    for s in &b.shifts {
        let mut next = Vec::new();
        for &(p, q) in &combos {
            for r in 0..=s.max_value {
                let shifted = r as i64 + s.delta;
                if shifted < 0 || shifted as u64 > s.max_value {
                    continue;
                }
                next.push((s.write(p, r), s.write(q, shifted as u64)));
            }
        }
        combos = next;
    }
    let (sin, cos) = b.angle.sin_cos();
    let matrix = [
        [c64(cos, 0.0), c64(0.0, -sin)],
        [c64(0.0, -sin), c64(cos, 0.0)],
    ];
    for (p, q) in combos {
        emit_two_level(out, &footprint, p, q, matrix);
    }
}

/// An exact two-level unitary acting as `matrix` on `span{|p⟩, |q⟩}` over
/// the `footprint` qubits (absolute bit patterns, `p ≠ q`) and as identity
/// on every other footprint pattern: a CX-conjugation aligns the pair onto
/// a single differing qubit, X-conjugation fixes zero-valued controls, and
/// one [`Gate::ControlledU`] applies the 2×2. Requires a symmetric
/// `matrix` (the rotation used here), since the conjugation does not track
/// the pair's orientation.
fn emit_two_level(
    out: &mut Vec<Gate>,
    footprint: &[usize],
    p: u64,
    q: u64,
    matrix: [[Complex64; 2]; 2],
) {
    let diff = p ^ q;
    debug_assert_ne!(diff, 0, "two-level states must differ");
    let t = diff.trailing_zeros() as usize;
    let p_t = (p >> t) & 1;
    // After CX(t → d) on every other differing bit d, the images of p and
    // q agree everywhere except on t; differing bits then carry
    // `p_d ^ p_t`, common bits keep `p_d`.
    let mut pre: Vec<Gate> = Vec::new();
    for &d in footprint {
        if d != t && (diff >> d) & 1 == 1 {
            pre.push(Gate::Cx(t, d));
        }
    }
    let mut controls: Vec<usize> = Vec::new();
    for &d in footprint {
        if d == t {
            continue;
        }
        let val = if (diff >> d) & 1 == 1 {
            ((p >> d) & 1) ^ p_t
        } else {
            (p >> d) & 1
        };
        if val == 0 {
            pre.push(Gate::X(d));
        }
        controls.push(d);
    }
    out.extend(pre.iter().cloned());
    out.push(Gate::ControlledU {
        controls,
        target: t,
        matrix,
    });
    for g in pre.iter().rev() {
        out.push(g.inverse());
    }
}

/// Standard exact Toffoli: 6 CX + 9 single-qubit T/H gates.
fn emit_ccx(out: &mut Vec<Gate>, c1: usize, c2: usize, t: usize) {
    out.push(Gate::H(t));
    out.push(Gate::Cx(c2, t));
    out.push(Gate::Tdg(t));
    out.push(Gate::Cx(c1, t));
    out.push(Gate::T(t));
    out.push(Gate::Cx(c2, t));
    out.push(Gate::Tdg(t));
    out.push(Gate::Cx(c1, t));
    out.push(Gate::T(c2));
    out.push(Gate::T(t));
    out.push(Gate::H(t));
    out.push(Gate::Cx(c1, c2));
    out.push(Gate::T(c1));
    out.push(Gate::Tdg(c2));
    out.push(Gate::Cx(c1, c2));
}

/// Qubits not mentioned in `used`, split into (clean ancillas, borrowable).
fn spare_qubits(
    used: &[usize],
    n_qubits: usize,
    opts: &TranspileOptions,
) -> (Vec<usize>, Vec<usize>) {
    let mut is_used = vec![false; n_qubits];
    for &q in used {
        is_used[q] = true;
    }
    let clean: Vec<usize> = opts
        .ancillas
        .iter()
        .copied()
        .filter(|&a| a < n_qubits && !is_used[a])
        .collect();
    let mut is_clean = vec![false; n_qubits];
    for &a in &clean {
        is_clean[a] = true;
    }
    let dirty: Vec<usize> = (0..n_qubits)
        .filter(|&q| !is_used[q] && !is_clean[q])
        .collect();
    (clean, dirty)
}

/// Multi-controlled X. Chooses between the clean-ancilla Toffoli chain
/// (`2(m−2)+1` CCX) and the Barenco borrowed-qubit split (recursive,
/// correct for arbitrary borrowed-qubit state).
fn emit_mcx(
    out: &mut Vec<Gate>,
    controls: &[usize],
    target: usize,
    n_qubits: usize,
    opts: &TranspileOptions,
) -> Result<(), TranspileError> {
    let m = controls.len();
    match m {
        0 => {
            out.push(Gate::X(target));
            return Ok(());
        }
        1 => {
            out.push(Gate::Cx(controls[0], target));
            return Ok(());
        }
        2 => {
            out.push(Gate::Ccx(controls[0], controls[1], target));
            return Ok(());
        }
        _ => {}
    }
    let mut used = controls.to_vec();
    used.push(target);
    let (clean, dirty) = spare_qubits(&used, n_qubits, opts);

    if clean.len() >= m - 2 {
        // Toffoli chain with clean ancillas: compute the AND cascade,
        // flip the target, uncompute. 2(m−2)+1 CCX.
        let anc = &clean[..m - 2];
        let mut compute: Vec<Gate> = Vec::new();
        compute.push(Gate::Ccx(controls[0], controls[1], anc[0]));
        for i in 2..m - 1 {
            compute.push(Gate::Ccx(controls[i], anc[i - 2], anc[i - 1]));
        }
        out.extend(compute.iter().cloned());
        out.push(Gate::Ccx(controls[m - 1], anc[m - 3], target));
        for g in compute.iter().rev() {
            out.push(g.inverse());
        }
        Ok(())
    } else if clean.len() + dirty.len() >= m - 2 {
        // V-chain with *borrowed* ancillas (arbitrary state, restored):
        // the doubled-wedge network, 4(m−2) CCX — this is what keeps the
        // commute-block decomposition linear even with only the paper's two
        // clean ancillas, by borrowing idle problem qubits.
        let mut anc: Vec<usize> = clean.iter().copied().chain(dirty.iter().copied()).collect();
        anc.truncate(m - 2);
        emit_mcx_dirty_vchain(out, controls, target, &anc);
        Ok(())
    } else if let Some(&borrow) = clean.first().or(dirty.first()) {
        // Barenco split: C^m X = A·B·A·B with A = C^{m1}X(first half → borrow)
        // and B = C^{m2+1}X(second half + borrow → target). Works for any
        // state of `borrow` and restores it.
        let m1 = m.div_ceil(2);
        let first: Vec<usize> = controls[..m1].to_vec();
        let mut second: Vec<usize> = controls[m1..].to_vec();
        second.push(borrow);
        for _ in 0..2 {
            out.push(Gate::Mcx {
                controls: first.clone(),
                target: borrow,
            });
            out.push(Gate::Mcx {
                controls: second.clone(),
                target,
            });
        }
        Ok(())
    } else {
        Err(TranspileError::NeedsAncilla {
            gate: format!("mcx {controls:?} -> q{target}"),
        })
    }
}

/// The borrowed-ancilla V-chain (`m ≥ 3` controls, `m−2` ancillas in
/// arbitrary states, all restored): a doubled wedge of `4(m−2)` Toffolis.
fn emit_mcx_dirty_vchain(out: &mut Vec<Gate>, controls: &[usize], target: usize, anc: &[usize]) {
    let m = controls.len();
    debug_assert!(m >= 3 && anc.len() == m - 2);
    let top = |out: &mut Vec<Gate>| {
        out.push(Gate::Ccx(controls[m - 1], anc[m - 3], target));
    };
    let down = |out: &mut Vec<Gate>| {
        for i in (2..m - 1).rev() {
            out.push(Gate::Ccx(controls[i], anc[i - 2], anc[i - 1]));
        }
    };
    let bottom = |out: &mut Vec<Gate>| {
        out.push(Gate::Ccx(controls[0], controls[1], anc[0]));
    };
    let up = |out: &mut Vec<Gate>| {
        for i in 2..m - 1 {
            out.push(Gate::Ccx(controls[i], anc[i - 2], anc[i - 1]));
        }
    };
    // wedge = down · bottom · up ; network = top wedge top wedge.
    top(out);
    down(out);
    bottom(out);
    up(out);
    top(out);
    down(out);
    bottom(out);
    up(out);
}

/// Beyond this arity the recursive CP construction's quadratic growth
/// loses to the ancilla route.
const MCPHASE_RECURSION_LIMIT: usize = 6;

/// Multi-controlled phase on the all-ones state of `qubits`.
///
/// Small arities use the ancilla-free recursion
/// `C^k P(θ) = CP(c_k, t, θ/2) · C^{k−1}X · CP(c_k, t, −θ/2) · C^{k−1}X ·
/// C^{k−1}P(θ/2)` (the k = 2 base case is the textbook CCP identity);
/// large arities collapse the controls onto a clean ancilla first.
fn emit_mcphase(
    out: &mut Vec<Gate>,
    qubits: &[usize],
    angle: f64,
    n_qubits: usize,
    opts: &TranspileOptions,
) -> Result<(), TranspileError> {
    match qubits.len() {
        0 => return Ok(()), // global phase
        1 => {
            out.push(Gate::Phase(qubits[0], angle));
            return Ok(());
        }
        2 => {
            out.push(Gate::Cp(qubits[0], qubits[1], angle));
            return Ok(());
        }
        _ => {}
    }
    let k = qubits.len();
    if k <= MCPHASE_RECURSION_LIMIT {
        // Recursive, ancilla-free: phase fires iff *all* qubits are |1⟩.
        // C^{k−1}P(c…, pivot → t) = CP(pivot,t,θ/2) · MCX(c→pivot) ·
        // CP(pivot,t,−θ/2) · MCX(c→pivot) · C^{k−2}P(c… → t, θ/2).
        let t = qubits[k - 1];
        let pivot = qubits[k - 2];
        let rest: Vec<usize> = qubits[..k - 2].to_vec();
        out.push(Gate::Cp(pivot, t, angle / 2.0));
        out.push(Gate::Mcx {
            controls: rest.clone(),
            target: pivot,
        });
        out.push(Gate::Cp(pivot, t, -angle / 2.0));
        out.push(Gate::Mcx {
            controls: rest.clone(),
            target: pivot,
        });
        let mut recursive = rest;
        recursive.push(t);
        out.push(Gate::McPhase {
            qubits: recursive,
            angle: angle / 2.0,
        });
        return Ok(());
    }
    let (clean, _) = spare_qubits(qubits, n_qubits, opts);
    let Some(&a) = clean.first() else {
        return Err(TranspileError::NeedsAncilla {
            gate: format!("mcp({angle:.4}) {qubits:?}"),
        });
    };
    let controls: Vec<usize> = qubits[..k - 1].to_vec();
    let last = qubits[k - 1];
    out.push(Gate::Mcx {
        controls: controls.clone(),
        target: a,
    });
    out.push(Gate::Cp(a, last, angle));
    out.push(Gate::Mcx {
        controls,
        target: a,
    });
    Ok(())
}

/// ZYZ Euler angles of a 2×2 unitary: `U = e^{iα} Rz(β) Ry(γ) Rz(δ)`.
pub fn zyz_decompose(m: [[Complex64; 2]; 2]) -> (f64, f64, f64, f64) {
    let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
    let alpha = det.arg() / 2.0;
    let inv_phase = Complex64::cis(-alpha);
    let v00 = m[0][0] * inv_phase;
    let v10 = m[1][0] * inv_phase;
    let v11 = m[1][1] * inv_phase;
    let gamma = 2.0 * v10.abs().atan2(v00.abs());
    // V00 = cos(γ/2) e^{-i(β+δ)/2}; V10 = sin(γ/2) e^{i(β-δ)/2}
    let sum = if v00.abs() > 1e-12 {
        -2.0 * v00.arg()
    } else {
        0.0
    };
    let sum = if v11.abs() > 1e-12 {
        2.0 * v11.arg()
    } else {
        sum
    };
    let diff = if v10.abs() > 1e-12 {
        2.0 * v10.arg()
    } else {
        0.0
    };
    let beta = (sum + diff) / 2.0;
    let delta = (sum - diff) / 2.0;
    (alpha, beta, gamma, delta)
}

/// Controlled arbitrary single-qubit unitary.
///
/// A single control uses the textbook ABC construction
/// (`U = e^{iα} A X B X C`, `ABC = I`); more controls first collapse to one
/// clean ancilla via MCX.
fn emit_controlled_u(
    out: &mut Vec<Gate>,
    controls: &[usize],
    target: usize,
    matrix: [[Complex64; 2]; 2],
    n_qubits: usize,
    opts: &TranspileOptions,
) -> Result<(), TranspileError> {
    match controls.len() {
        0 => {
            let (alpha, beta, gamma, delta) = zyz_decompose(matrix);
            out.push(Gate::Rz(target, delta));
            out.push(Gate::Ry(target, gamma));
            out.push(Gate::Rz(target, beta));
            // global phase e^{iα} dropped
            let _ = alpha;
            Ok(())
        }
        1 => {
            let c = controls[0];
            let (alpha, beta, gamma, delta) = zyz_decompose(matrix);
            // C: Rz((δ-β)/2)   B: Rz(-(δ+β)/2) Ry(-γ/2)   A: Ry(γ/2) Rz(β)
            out.push(Gate::Phase(c, alpha));
            out.push(Gate::Rz(target, (delta - beta) / 2.0));
            out.push(Gate::Cx(c, target));
            out.push(Gate::Rz(target, -(delta + beta) / 2.0));
            out.push(Gate::Ry(target, -gamma / 2.0));
            out.push(Gate::Cx(c, target));
            out.push(Gate::Ry(target, gamma / 2.0));
            out.push(Gate::Rz(target, beta));
            Ok(())
        }
        _ => {
            let mut used = controls.to_vec();
            used.push(target);
            let (clean, _) = spare_qubits(&used, n_qubits, opts);
            let Some(&a) = clean.first() else {
                return Err(TranspileError::NeedsAncilla {
                    gate: format!("cu {controls:?} -> q{target}"),
                });
            };
            out.push(Gate::Mcx {
                controls: controls.to_vec(),
                target: a,
            });
            out.push(Gate::ControlledU {
                controls: vec![a],
                target,
                matrix,
            });
            out.push(Gate::Mcx {
                controls: controls.to_vec(),
                target: a,
            });
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phasepoly::PhasePoly;
    use crate::state::StateVector;
    use choco_mathkit::c64;
    use std::sync::Arc;

    /// Checks that `circuit` and its transpiled form act identically on all
    /// basis states of the *first* `data_qubits` qubits (ancillas stay |0⟩)
    /// AND on a uniform superposition of them. The superposition input is
    /// essential: basis-state fidelity is blind to relative *diagonal*
    /// phase errors.
    fn assert_equivalent(circuit: &Circuit, opts: &TranspileOptions, data_qubits: usize) {
        let lowered = transpile(circuit, opts).expect("transpile");
        assert!(lowered.is_basic(), "not fully lowered:\n{lowered}");
        for bits in 0..(1u64 << data_qubits) {
            let mut a = StateVector::from_bits(circuit.n_qubits(), bits);
            a.apply_circuit(circuit);
            let mut b = StateVector::from_bits(circuit.n_qubits(), bits);
            b.apply_circuit(&lowered);
            let fid = a.fidelity(&b);
            assert!(
                (fid - 1.0).abs() < 1e-9,
                "fidelity {fid} on input {bits:b}\noriginal:\n{circuit}\nlowered:\n{lowered}"
            );
        }
        // Phase-sensitive check on |+…+⟩ over the data qubits.
        let mut prep = Circuit::new(circuit.n_qubits());
        for q in 0..data_qubits {
            prep.h(q);
        }
        let mut a = StateVector::run(&prep);
        a.apply_circuit(circuit);
        let mut b = StateVector::run(&prep);
        b.apply_circuit(&lowered);
        let fid = a.fidelity(&b);
        assert!(
            (fid - 1.0).abs() < 1e-9,
            "superposition fidelity {fid}\noriginal:\n{circuit}\nlowered:\n{lowered}"
        );
    }

    #[test]
    fn cp_lowering_equivalent() {
        let mut c = Circuit::new(2);
        c.cp(0, 1, 0.9);
        assert_equivalent(&c, &TranspileOptions::default(), 2);
    }

    #[test]
    fn swap_lowering_equivalent() {
        let mut circuit = Circuit::new(2);
        circuit.h(0).push(Gate::Swap(0, 1));
        assert_equivalent(&circuit, &TranspileOptions::default(), 2);
    }

    #[test]
    fn ccx_lowering_equivalent() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        assert_equivalent(&c, &TranspileOptions::default(), 3);
    }

    #[test]
    fn shiftblock_lowering_equivalent() {
        use crate::gate::{RegisterShift, ShiftBlock};
        // 2 support qubits + a 2-bit slack register (values 0..=2), with
        // two clean ancillas for the multi-controlled lowering.
        let mut c = Circuit::new(6);
        c.push(Gate::ShiftBlock(ShiftBlock {
            support: vec![0, 1],
            pattern: 0b01,
            shifts: vec![RegisterShift {
                qubits: vec![2, 3],
                delta: 1,
                max_value: 2,
            }],
            angle: 0.7,
        }));
        assert_equivalent(&c, &TranspileOptions::with_ancillas(vec![4, 5]), 4);
    }

    #[test]
    fn shiftblock_without_registers_lowers_like_ublock() {
        use crate::gate::ShiftBlock;
        let mut c = Circuit::new(5);
        c.push(Gate::ShiftBlock(ShiftBlock {
            support: vec![0, 1, 2],
            pattern: 0b010,
            shifts: vec![],
            angle: -0.4,
        }));
        assert_equivalent(&c, &TranspileOptions::with_ancillas(vec![3, 4]), 3);
    }

    #[test]
    fn cz_basis_round_trip() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let opts = TranspileOptions {
            two_qubit: TwoQubitBasis::Cz,
            ancillas: vec![],
        };
        let lowered = transpile(&c, &opts).unwrap();
        assert!(lowered.gates().iter().all(|g| !matches!(g, Gate::Cx(..))));
        assert_equivalent(&c, &opts, 2);
    }

    #[test]
    fn mcx_clean_chain_equivalent() {
        // 4 controls + target + 2 clean ancillas = 7 qubits.
        let mut c = Circuit::new(7);
        c.mcx(vec![0, 1, 2, 3], 4);
        let opts = TranspileOptions::with_ancillas(vec![5, 6]);
        assert_equivalent(&c, &opts, 5);
    }

    #[test]
    fn mcx_dirty_vchain_equivalent() {
        // 4 controls + target + two spare dirty qubits: uses the V-chain.
        // data_qubits = 7 exercises every borrowed-ancilla state.
        let mut c = Circuit::new(7);
        c.mcx(vec![0, 1, 2, 3], 4);
        let opts = TranspileOptions::with_ancillas(vec![]);
        assert_equivalent(&c, &opts, 7);
    }

    #[test]
    fn mcx_dirty_vchain_larger_control_counts() {
        for m in 3..=5usize {
            let n = 2 * m - 1; // m controls + target + (m-2) dirty spares
            let mut c = Circuit::new(n);
            c.mcx((0..m).collect(), m);
            let opts = TranspileOptions::with_ancillas(vec![]);
            assert_equivalent(&c, &opts, n);
        }
    }

    #[test]
    fn mcx_borrowed_split_equivalent() {
        // 4 controls + target + only ONE spare qubit: forces the Barenco
        // A·B·A·B split. data_qubits = 6 exercises the borrowed qubit in
        // |1⟩ too.
        let mut c = Circuit::new(6);
        c.mcx(vec![0, 1, 2, 3], 4);
        let opts = TranspileOptions::with_ancillas(vec![]);
        assert_equivalent(&c, &opts, 6);
    }

    #[test]
    fn mcx_without_spare_fails() {
        let mut c = Circuit::new(4);
        c.mcx(vec![0, 1, 2], 3);
        let err = transpile(&c, &TranspileOptions::default()).unwrap_err();
        assert!(matches!(err, TranspileError::NeedsAncilla { .. }));
    }

    #[test]
    fn mcphase_with_ancilla_equivalent() {
        let mut c = Circuit::new(5);
        c.mcphase(vec![0, 1, 2], 0.77);
        let opts = TranspileOptions::with_ancillas(vec![3, 4]);
        assert_equivalent(&c, &opts, 3);
    }

    #[test]
    fn mcphase_small_cases_no_ancilla() {
        let mut c = Circuit::new(2);
        c.mcphase(vec![0], 0.4).mcphase(vec![0, 1], -0.9);
        assert_equivalent(&c, &TranspileOptions::default(), 2);
    }

    #[test]
    fn ublock_lemma2_equivalent() {
        // The paper's Fig. 5 example: u = (-1, +1, -1) plus 2 ancillas.
        let mut c = Circuit::new(5);
        c.ublock(UBlock::from_u_with_angle(&[-1, 1, -1], 0.8));
        let opts = TranspileOptions::with_ancillas(vec![3, 4]);
        assert_equivalent(&c, &opts, 3);
    }

    #[test]
    fn ublock_all_patterns_equivalent() {
        // Every v-pattern on a 3-qubit support must decompose correctly.
        for pattern_bits in 0..8i32 {
            let u: Vec<i8> = (0..3)
                .map(|k| if (pattern_bits >> k) & 1 == 1 { 1 } else { -1 })
                .collect();
            let mut c = Circuit::new(5);
            c.ublock(UBlock::from_u_with_angle(&u, 0.61));
            let opts = TranspileOptions::with_ancillas(vec![3, 4]);
            assert_equivalent(&c, &opts, 3);
        }
    }

    #[test]
    fn ublock_single_qubit_is_rx() {
        let mut c = Circuit::new(1);
        c.ublock(UBlock::from_u_with_angle(&[1], 0.5));
        let lowered = transpile(&c, &TranspileOptions::default()).unwrap();
        assert_eq!(lowered.gates(), &[Gate::Rx(0, 1.0)]);
    }

    #[test]
    fn ublock_two_qubit_and_xymix_equivalent() {
        let mut c = Circuit::new(3);
        c.xy(0, 1, 0.35)
            .ublock(UBlock::from_u_with_angle(&[1, -1], 0.2));
        // 2-qubit MCPhase needs no ancilla.
        assert_equivalent(&c, &TranspileOptions::default(), 2);
    }

    #[test]
    fn diag_phase_lowering_equivalent() {
        let mut poly = PhasePoly::new(3);
        poly.add_linear(0, 1.5);
        poly.add_linear(2, -0.5);
        poly.add_quadratic(0, 1, 2.0);
        poly.add_quadratic(1, 2, -1.0);
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2).diag(Arc::new(poly), 0.37);
        assert_equivalent(&c, &TranspileOptions::default(), 3);
    }

    #[test]
    fn diag_constant_is_dropped() {
        let mut poly = PhasePoly::new(1);
        poly.add_constant(42.0);
        let mut c = Circuit::new(1);
        c.diag(Arc::new(poly), 1.0);
        let lowered = transpile(&c, &TranspileOptions::default()).unwrap();
        assert!(lowered.is_empty());
    }

    #[test]
    fn zyz_reconstructs_unitaries() {
        let cases = [
            Gate::H(0).matrix_1q().unwrap(),
            Gate::T(0).matrix_1q().unwrap(),
            Gate::Rx(0, 1.234).matrix_1q().unwrap(),
            Gate::Ry(0, -0.7).matrix_1q().unwrap(),
            [
                [c64(0.6, 0.0), c64(0.0, 0.8)],
                [c64(0.0, 0.8), c64(0.6, 0.0)],
            ],
        ];
        for m in cases {
            let (alpha, beta, gamma, delta) = zyz_decompose(m);
            // Rebuild e^{iα} Rz(β) Ry(γ) Rz(δ) and compare.
            let rz = |t: f64| {
                [
                    [Complex64::cis(-t / 2.0), Complex64::ZERO],
                    [Complex64::ZERO, Complex64::cis(t / 2.0)],
                ]
            };
            let ry = |t: f64| {
                [
                    [c64((t / 2.0).cos(), 0.0), c64(-(t / 2.0).sin(), 0.0)],
                    [c64((t / 2.0).sin(), 0.0), c64((t / 2.0).cos(), 0.0)],
                ]
            };
            let mul = |a: [[Complex64; 2]; 2], b: [[Complex64; 2]; 2]| {
                let mut r = [[Complex64::ZERO; 2]; 2];
                for i in 0..2 {
                    for j in 0..2 {
                        for (k, bk) in b.iter().enumerate() {
                            r[i][j] += a[i][k] * bk[j];
                        }
                    }
                }
                r
            };
            let mut rebuilt = mul(rz(beta), mul(ry(gamma), rz(delta)));
            let phase = Complex64::cis(alpha);
            for row in rebuilt.iter_mut() {
                for entry in row.iter_mut() {
                    *entry *= phase;
                }
            }
            for i in 0..2 {
                for j in 0..2 {
                    assert!(
                        rebuilt[i][j].approx_eq(m[i][j], 1e-9),
                        "mismatch at ({i},{j}): {} vs {}",
                        rebuilt[i][j],
                        m[i][j]
                    );
                }
            }
        }
    }

    #[test]
    fn controlled_u_single_control_equivalent() {
        let m = Gate::Ry(0, 0.9).matrix_1q().unwrap();
        let mut c = Circuit::new(2);
        c.push(Gate::ControlledU {
            controls: vec![0],
            target: 1,
            matrix: m,
        });
        assert_equivalent(&c, &TranspileOptions::default(), 2);
    }

    #[test]
    fn controlled_u_multi_control_equivalent() {
        let m = Gate::T(0).matrix_1q().unwrap();
        let mut c = Circuit::new(6);
        c.push(Gate::ControlledU {
            controls: vec![0, 1, 2],
            target: 3,
            matrix: m,
        });
        let opts = TranspileOptions::with_ancillas(vec![4, 5]);
        assert_equivalent(&c, &opts, 4);
    }

    #[test]
    fn transpiled_depth_is_linear_in_support() {
        // The headline claim of Lemma 2: UBlock depth grows *linearly* with
        // the support size once the construction settles (small supports use
        // cheaper special cases). Measured on a wide register so borrowed
        // ancillas are plentiful, as in real problem circuits.
        let depths: Vec<usize> = (5..=9)
            .map(|k| {
                let u: Vec<i8> = (0..k).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
                let mut c = Circuit::new(16);
                c.ublock(UBlock::from_u_with_angle(&u, 0.4));
                let opts = TranspileOptions::with_ancillas(vec![14, 15]);
                transpile(&c, &opts).unwrap().depth()
            })
            .collect();
        let increments: Vec<i64> = depths
            .windows(2)
            .map(|w| w[1] as i64 - w[0] as i64)
            .collect();
        for &inc in &increments {
            assert!(inc > 0, "depth must grow: {depths:?}");
        }
        // Linearity: per-qubit increments stay within 2× of each other
        // (an exponential construction would double them every step).
        let min = *increments.iter().min().unwrap() as f64;
        let max = *increments.iter().max().unwrap() as f64;
        assert!(
            max <= 2.0 * min,
            "increments not linear: {increments:?} from depths {depths:?}"
        );
    }
}
