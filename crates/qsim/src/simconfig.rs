//! Execution configuration for the state-vector engines.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Which amplitude representation executes a circuit.
///
/// Choco-Q circuits never leave the feasible subspace (the commute
/// Hamiltonian's central property), so their state has `|F| ≪ 2^n`
/// occupied basis states. The sparse engine exploits that; the dense
/// strided engine is the general-purpose fallback.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// The dense strided engine ([`crate::StateVector`]): `2^n`
    /// amplitudes, every gate enumerated over its `2^(n-k)` subspace.
    #[default]
    Dense,
    /// The feasible-subspace sparse engine
    /// ([`crate::SparseStateVector`]): only occupied basis states are
    /// stored and updated. Never converts back to dense — the caller has
    /// opted in, even for circuits that fill the register.
    Sparse,
    /// The rank-indexed compact engine ([`crate::CompactStateVector`]):
    /// [`crate::SimWorkspace`] enumerates the feasible subspace once per
    /// circuit shape, compiles a gate plan of precomputed rank tables,
    /// and replays it as flat-array loops on every optimizer iteration.
    /// Circuits that break subspace confinement fall back to the dense
    /// engine exactly like [`EngineKind::Auto`].
    Compact,
    /// Start sparse, densify automatically once the occupied fraction of
    /// the register crosses [`SimConfig::density_threshold`] (and the
    /// register is small enough to allocate densely).
    Auto,
}

impl EngineKind {
    /// Short label (`"dense"`, `"sparse"`, `"compact"`, `"auto"`).
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Dense => "dense",
            EngineKind::Sparse => "sparse",
            EngineKind::Compact => "compact",
            EngineKind::Auto => "auto",
        }
    }

    /// Parses a label (case-insensitive, surrounding whitespace ignored).
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted values.
    pub fn parse(text: &str) -> Result<EngineKind, String> {
        match text.trim().to_ascii_lowercase().as_str() {
            "dense" => Ok(EngineKind::Dense),
            "sparse" => Ok(EngineKind::Sparse),
            "compact" => Ok(EngineKind::Compact),
            "auto" => Ok(EngineKind::Auto),
            _ => Err(format!(
                "unknown engine `{text}` (expected dense|sparse|compact|auto)"
            )),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How the state-vector kernels execute: engine selection, worker-thread
/// count, and the subspace size below which updates stay serial (thread
/// spawn overhead dwarfs the work on small states).
///
/// The default thread count comes from `CHOCO_SIM_THREADS` when set,
/// otherwise from [`std::thread::available_parallelism`].
///
/// # Examples
///
/// ```
/// use choco_qsim::{EngineKind, SimConfig};
///
/// let serial = SimConfig::serial();
/// assert_eq!(serial.threads, 1);
/// assert_eq!(serial.engine, EngineKind::Dense);
/// let sparse = SimConfig::serial().with_engine(EngineKind::Sparse);
/// assert_eq!(sparse.engine, EngineKind::Sparse);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Maximum worker threads for amplitude updates (1 = serial).
    pub threads: usize,
    /// Minimum number of work items (subspace indices or pairs) before the
    /// update fans out to threads.
    pub parallel_threshold: usize,
    /// Which amplitude representation to run circuits on.
    pub engine: EngineKind,
    /// Occupied fraction of the register above which an [`EngineKind::Auto`]
    /// run converts from the sparse to the dense engine. Ignored by the
    /// other engine kinds.
    pub density_threshold: f64,
    /// How many candidate angle sets a batched compact replay evaluates
    /// per plan traversal (`1` = the serial path; the default). Consumers
    /// with independent evaluations ready — a simplex construction, a
    /// geometry rebuild — hand up to this many circuits of one shape to
    /// [`crate::SimWorkspace::run_batch`] at once. Purely a performance
    /// knob: batched results are bit-identical to sequential replays at
    /// every setting.
    pub batch_size: usize,
}

/// Default threshold: below 2^15 items a scoped-thread fan-out costs more
/// than it saves on typical hardware.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 1 << 15;

/// Default auto-densify point: once an eighth of the register is occupied
/// the sorted-map overhead of the sparse engine outweighs the dense
/// engine's contiguous strides.
pub const DEFAULT_DENSITY_THRESHOLD: f64 = 0.125;

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(value) = std::env::var("CHOCO_SIM_THREADS") {
            if let Ok(n) = value.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            threads: default_threads(),
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            engine: EngineKind::Dense,
            density_threshold: DEFAULT_DENSITY_THRESHOLD,
            batch_size: 1,
        }
    }
}

impl SimConfig {
    /// Strictly serial execution (dense engine).
    pub fn serial() -> Self {
        SimConfig {
            threads: 1,
            ..SimConfig::default()
        }
    }

    /// A configuration with an explicit thread count (0 means "default").
    pub fn with_threads(threads: usize) -> Self {
        SimConfig {
            threads: if threads == 0 {
                default_threads()
            } else {
                threads
            },
            ..SimConfig::default()
        }
    }

    /// The same configuration with a different engine selection.
    pub fn with_engine(self, engine: EngineKind) -> Self {
        SimConfig { engine, ..self }
    }

    /// The same configuration with a different batch size (0 is clamped
    /// to 1, the serial path).
    pub fn with_batch(self, batch_size: usize) -> Self {
        SimConfig {
            batch_size: batch_size.max(1),
            ..self
        }
    }

    /// The worker count to use for `work_items` units of work: 1 below the
    /// threshold, otherwise capped so every worker gets at least a
    /// threshold's worth of items.
    pub fn effective_threads(&self, work_items: usize) -> usize {
        if self.threads <= 1 || work_items < self.parallel_threshold.max(2) {
            return 1;
        }
        let max_useful = work_items / self.parallel_threshold.max(1);
        self.threads.min(max_useful.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_never_fans_out() {
        let c = SimConfig::serial();
        assert_eq!(c.effective_threads(1 << 20), 1);
    }

    #[test]
    fn small_work_stays_serial() {
        let c = SimConfig {
            threads: 8,
            parallel_threshold: 1 << 10,
            ..SimConfig::default()
        };
        assert_eq!(c.effective_threads(512), 1);
        assert!(c.effective_threads(1 << 20) > 1);
    }

    #[test]
    fn workers_capped_by_work_per_thread() {
        let c = SimConfig {
            threads: 16,
            parallel_threshold: 1 << 10,
            ..SimConfig::default()
        };
        // 2^12 items / 2^10 threshold → at most 4 useful workers.
        assert_eq!(c.effective_threads(1 << 12), 4);
    }

    #[test]
    fn with_threads_zero_falls_back_to_default() {
        assert!(SimConfig::with_threads(0).threads >= 1);
        assert_eq!(SimConfig::with_threads(3).threads, 3);
    }

    #[test]
    fn default_engine_is_dense() {
        assert_eq!(SimConfig::default().engine, EngineKind::Dense);
        assert_eq!(SimConfig::serial().engine, EngineKind::Dense);
        assert!(SimConfig::default().density_threshold > 0.0);
    }

    #[test]
    fn engine_kind_parse_round_trips() {
        for kind in [
            EngineKind::Dense,
            EngineKind::Sparse,
            EngineKind::Compact,
            EngineKind::Auto,
        ] {
            assert_eq!(EngineKind::parse(kind.label()), Ok(kind));
            assert_eq!(format!("{kind}"), kind.label());
        }
        let err = EngineKind::parse("gpu").unwrap_err();
        assert!(
            err.contains("gpu") && err.contains("dense|sparse|compact|auto"),
            "{err}"
        );
    }

    #[test]
    fn engine_kind_parse_is_case_insensitive() {
        for (text, kind) in [
            ("Dense", EngineKind::Dense),
            ("SPARSE", EngineKind::Sparse),
            ("Compact", EngineKind::Compact),
            (" auto ", EngineKind::Auto),
            ("COMPACT", EngineKind::Compact),
        ] {
            assert_eq!(EngineKind::parse(text), Ok(kind), "{text}");
        }
    }

    #[test]
    fn with_engine_preserves_other_fields() {
        let c = SimConfig::with_threads(3).with_engine(EngineKind::Auto);
        assert_eq!(c.threads, 3);
        assert_eq!(c.engine, EngineKind::Auto);
    }

    #[test]
    fn batch_size_defaults_to_serial_and_clamps_zero() {
        assert_eq!(SimConfig::default().batch_size, 1);
        assert_eq!(SimConfig::serial().batch_size, 1);
        let c = SimConfig::serial().with_batch(8);
        assert_eq!(c.batch_size, 8);
        assert_eq!(c.threads, 1);
        assert_eq!(SimConfig::serial().with_batch(0).batch_size, 1);
        // Engine and batch builders compose in either order.
        let c = SimConfig::serial()
            .with_batch(4)
            .with_engine(EngineKind::Compact);
        assert_eq!((c.batch_size, c.engine), (4, EngineKind::Compact));
    }
}
