//! Execution configuration for the state-vector engine.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// How the state-vector kernels execute: worker-thread count and the
/// subspace size below which updates stay serial (thread spawn overhead
/// dwarfs the work on small states).
///
/// The default thread count comes from `CHOCO_SIM_THREADS` when set,
/// otherwise from [`std::thread::available_parallelism`].
///
/// # Examples
///
/// ```
/// use choco_qsim::SimConfig;
///
/// let serial = SimConfig::serial();
/// assert_eq!(serial.threads, 1);
/// let four = SimConfig::with_threads(4);
/// assert_eq!(four.threads, 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Maximum worker threads for amplitude updates (1 = serial).
    pub threads: usize,
    /// Minimum number of work items (subspace indices or pairs) before the
    /// update fans out to threads.
    pub parallel_threshold: usize,
}

/// Default threshold: below 2^15 items a scoped-thread fan-out costs more
/// than it saves on typical hardware.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 1 << 15;

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(value) = std::env::var("CHOCO_SIM_THREADS") {
            if let Ok(n) = value.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            threads: default_threads(),
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }
}

impl SimConfig {
    /// Strictly serial execution.
    pub fn serial() -> Self {
        SimConfig {
            threads: 1,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }

    /// A configuration with an explicit thread count (0 means "default").
    pub fn with_threads(threads: usize) -> Self {
        SimConfig {
            threads: if threads == 0 {
                default_threads()
            } else {
                threads
            },
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }

    /// The worker count to use for `work_items` units of work: 1 below the
    /// threshold, otherwise capped so every worker gets at least a
    /// threshold's worth of items.
    pub fn effective_threads(&self, work_items: usize) -> usize {
        if self.threads <= 1 || work_items < self.parallel_threshold.max(2) {
            return 1;
        }
        let max_useful = work_items / self.parallel_threshold.max(1);
        self.threads.min(max_useful.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_never_fans_out() {
        let c = SimConfig::serial();
        assert_eq!(c.effective_threads(1 << 20), 1);
    }

    #[test]
    fn small_work_stays_serial() {
        let c = SimConfig {
            threads: 8,
            parallel_threshold: 1 << 10,
        };
        assert_eq!(c.effective_threads(512), 1);
        assert!(c.effective_threads(1 << 20) > 1);
    }

    #[test]
    fn workers_capped_by_work_per_thread() {
        let c = SimConfig {
            threads: 16,
            parallel_threshold: 1 << 10,
        };
        // 2^12 items / 2^10 threshold → at most 4 useful workers.
        assert_eq!(c.effective_threads(1 << 12), 4);
    }

    #[test]
    fn with_threads_zero_falls_back_to_default() {
        assert!(SimConfig::with_threads(0).threads >= 1);
        assert_eq!(SimConfig::with_threads(3).threads, 3);
    }
}
