//! Reusable simulation workspace for iteration-heavy callers.
//!
//! Every variational solver replays a structured circuit hundreds of times
//! with different parameters. A bare [`StateVector::run`] pays three
//! avoidable costs per iteration: allocating a fresh `2^n` amplitude
//! buffer, re-evaluating each [`PhasePoly`] diagonal per basis state, and
//! (for sampling) rebuilding the `O(2^n)` cumulative-probability table per
//! call. [`SimWorkspace`] owns all three buffers across iterations,
//! restarts, and elimination branches:
//!
//! * the amplitude buffer is reset in place (`reallocations()` counts how
//!   often it had to be regrown — the zero-alloc-per-iteration invariant
//!   the solvers assert in their tests),
//! * diagonals are cached per `Arc<PhasePoly>` identity, so a polynomial
//!   shared across iterations is expanded exactly once per register width,
//! * the sampling prefix table is built lazily per final state and reused
//!   across repeated `sample` calls.

use crate::circuit::Circuit;
use crate::counts::Counts;
use crate::gate::Gate;
use crate::kernels;
use crate::phasepoly::PhasePoly;
use crate::simconfig::SimConfig;
use crate::state::StateVector;
use rand::Rng;
use std::sync::{Arc, Weak};

/// One cached diagonal: the polynomial it came from (kept weakly so cache
/// identity can be verified against live `Arc`s) and its per-basis values.
struct CachedDiag {
    poly: Weak<PhasePoly>,
    values: Vec<f64>,
}

/// Reusable buffers for repeated circuit execution (see module docs).
///
/// # Examples
///
/// ```
/// use choco_qsim::{Circuit, SimConfig, SimWorkspace};
///
/// let mut ws = SimWorkspace::new(SimConfig::serial());
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// for _ in 0..10 {
///     let state = ws.run(&bell);
///     assert!((state.probability(0b00) - 0.5).abs() < 1e-12);
/// }
/// assert_eq!(ws.reallocations(), 1, "buffer allocated once, reused 9×");
/// ```
pub struct SimWorkspace {
    config: SimConfig,
    state: Option<StateVector>,
    diag_cache: Vec<CachedDiag>,
    cumulative: Vec<f64>,
    /// Monotone run counter; `cumulative_for` marks which run (if any) the
    /// sampling table was built from.
    run_stamp: u64,
    cumulative_for: u64,
    reallocations: u64,
}

impl SimWorkspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new(config: SimConfig) -> Self {
        SimWorkspace {
            config,
            state: None,
            diag_cache: Vec::new(),
            cumulative: Vec::new(),
            run_stamp: 0,
            cumulative_for: u64::MAX,
            reallocations: 0,
        }
    }

    /// The execution configuration used for kernels run through this
    /// workspace.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// How many times the amplitude buffer was (re)allocated. Stays at 1
    /// across any number of same-width runs — the solvers' zero-alloc
    /// invariant.
    pub fn reallocations(&self) -> u64 {
        self.reallocations
    }

    /// Number of distinct diagonals currently cached.
    pub fn cached_diagonals(&self) -> usize {
        self.diag_cache.len()
    }

    /// Runs `circuit` from `|0…0⟩` reusing the workspace buffers, and
    /// returns the resulting state (borrowed — it stays inside the
    /// workspace for sampling / expectation calls).
    pub fn run(&mut self, circuit: &Circuit) -> &StateVector {
        self.reset_for(circuit.n_qubits());
        self.run_stamp += 1;
        for gate in circuit.iter() {
            match gate {
                Gate::DiagPhase(poly, theta) => self.apply_cached_diag(poly, *theta),
                g => self
                    .state
                    .as_mut()
                    .expect("state prepared by reset_for")
                    .apply_gate(g),
            }
        }
        self.state.as_ref().expect("state prepared by reset_for")
    }

    /// The state left by the last [`SimWorkspace::run`], if any.
    pub fn state(&self) -> Option<&StateVector> {
        self.state.as_ref()
    }

    /// Samples from the last run's state, building the cumulative table at
    /// most once per run (repeat calls reuse it).
    ///
    /// # Panics
    ///
    /// Panics if nothing has been run yet.
    pub fn sample<R: Rng>(&mut self, shots: u64, rng: &mut R) -> Counts {
        let state = self.state.as_ref().expect("run a circuit before sampling");
        if self.cumulative_for != self.run_stamp {
            state.fill_cumulative(&mut self.cumulative);
            self.cumulative_for = self.run_stamp;
        }
        state.sample_with_cumulative(&self.cumulative, shots, rng)
    }

    /// Expectation of a diagonal observable on the last run's state.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been run yet.
    pub fn expectation_diag_values(&self, values: &[f64]) -> f64 {
        self.state
            .as_ref()
            .expect("run a circuit before measuring")
            .expectation_diag_values(values)
    }

    /// Prepares the amplitude buffer for an `n`-qubit run, reusing it when
    /// the width matches and counting a reallocation otherwise.
    fn reset_for(&mut self, n_qubits: usize) {
        match &mut self.state {
            Some(state) if state.n_qubits() == n_qubits => state.reset_zero(),
            slot => {
                *slot = Some(StateVector::new_with(n_qubits, self.config));
                self.reallocations += 1;
                // Cached diagonals are per-width; drop stale ones.
                self.diag_cache.clear();
            }
        }
    }

    /// Applies a diagonal evolution using (and populating) the per-`Arc`
    /// diagonal cache.
    fn apply_cached_diag(&mut self, poly: &Arc<PhasePoly>, theta: f64) {
        let state = self.state.as_mut().expect("state prepared by reset_for");
        let dim = 1usize << state.n_qubits();
        let hit = self.diag_cache.iter().position(|entry| {
            entry.values.len() == dim
                && entry
                    .poly
                    .upgrade()
                    .is_some_and(|live| Arc::ptr_eq(&live, poly))
        });
        let idx = match hit {
            Some(idx) => idx,
            None => {
                // Drop entries whose polynomial is gone: they can never
                // match again, and each holds a 2^n-element Vec — a
                // long-lived workspace would otherwise grow per solve.
                self.diag_cache.retain(|e| e.poly.strong_count() > 0);
                let mut values = vec![0.0f64; dim];
                kernels::accumulate_poly_diag(&mut values, poly);
                self.diag_cache.push(CachedDiag {
                    poly: Arc::downgrade(poly),
                    values,
                });
                self.diag_cache.len() - 1
            }
        };
        state.apply_diag_values(&self.diag_cache[idx].values, theta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer_circuit(n: usize, poly: &Arc<PhasePoly>, theta: f64) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        c.diag(poly.clone(), theta);
        c.cx(0, 1);
        c
    }

    fn test_poly(n: usize) -> Arc<PhasePoly> {
        let mut poly = PhasePoly::new(n);
        for i in 0..n {
            poly.add_linear(i, 0.2 * (i + 1) as f64);
        }
        poly.add_quadratic(0, n - 1, -0.4);
        Arc::new(poly)
    }

    #[test]
    fn run_matches_bare_statevector() {
        let poly = test_poly(4);
        let mut ws = SimWorkspace::new(SimConfig::serial());
        for theta in [0.2, 0.9, 1.7] {
            let circuit = layer_circuit(4, &poly, theta);
            let expected = StateVector::run(&circuit);
            let got = ws.run(&circuit);
            assert!(
                (got.fidelity(&expected) - 1.0).abs() < 1e-12,
                "theta={theta}"
            );
        }
    }

    #[test]
    fn amplitude_buffer_allocated_once_across_iterations() {
        let poly = test_poly(5);
        let mut ws = SimWorkspace::new(SimConfig::serial());
        for i in 0..50 {
            let circuit = layer_circuit(5, &poly, 0.1 * i as f64);
            ws.run(&circuit);
        }
        assert_eq!(ws.reallocations(), 1);
        assert_eq!(ws.cached_diagonals(), 1, "shared poly expanded once");
    }

    #[test]
    fn width_change_reallocates_and_clears_diag_cache() {
        let p4 = test_poly(4);
        let p6 = test_poly(6);
        let mut ws = SimWorkspace::new(SimConfig::serial());
        ws.run(&layer_circuit(4, &p4, 0.3));
        ws.run(&layer_circuit(6, &p6, 0.3));
        assert_eq!(ws.reallocations(), 2);
        ws.run(&layer_circuit(6, &p6, 0.7));
        assert_eq!(ws.reallocations(), 2, "same width reuses the buffer");
    }

    #[test]
    fn distinct_polys_cache_separately() {
        let a = test_poly(4);
        let b = test_poly(4);
        let mut ws = SimWorkspace::new(SimConfig::serial());
        let mut c = Circuit::new(4);
        c.diag(a.clone(), 0.5)
            .diag(b.clone(), 0.25)
            .diag(a.clone(), 0.1);
        ws.run(&c);
        assert_eq!(ws.cached_diagonals(), 2);
        // Equivalence against the uncached engine.
        let expected = StateVector::run(&c);
        assert!((ws.state().unwrap().fidelity(&expected) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_reuses_the_cumulative_table_per_run() {
        let poly = test_poly(4);
        let circuit = layer_circuit(4, &poly, 0.8);
        let mut ws = SimWorkspace::new(SimConfig::serial());
        ws.run(&circuit);
        let mut rng = StdRng::seed_from_u64(9);
        let a = ws.sample(2_000, &mut rng);
        let table_ptr = ws.cumulative.as_ptr();
        let b = ws.sample(2_000, &mut rng);
        assert_eq!(ws.cumulative.as_ptr(), table_ptr, "table not rebuilt");
        assert_eq!(a.shots() + b.shots(), 4_000);
        // A fresh run invalidates the table.
        ws.run(&circuit);
        let stamp = ws.run_stamp;
        ws.sample(100, &mut rng);
        assert_eq!(ws.cumulative_for, stamp);
    }

    #[test]
    fn workspace_sampling_matches_direct_sampling() {
        let poly = test_poly(4);
        let circuit = layer_circuit(4, &poly, 0.8);
        let mut ws = SimWorkspace::new(SimConfig::serial());
        ws.run(&circuit);
        let direct = {
            let mut rng = StdRng::seed_from_u64(33);
            StateVector::run(&circuit).sample(3_000, &mut rng)
        };
        let mut rng = StdRng::seed_from_u64(33);
        let cached = ws.sample(3_000, &mut rng);
        assert_eq!(direct, cached);
    }
}
