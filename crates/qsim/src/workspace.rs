//! Reusable simulation workspace for iteration-heavy callers.
//!
//! Every variational solver replays a structured circuit hundreds of times
//! with different parameters. A bare [`StateVector::run`] pays three
//! avoidable costs per iteration: allocating a fresh `2^n` amplitude
//! buffer, re-evaluating each [`PhasePoly`] diagonal per basis state, and
//! (for sampling) rebuilding the `O(2^n)` cumulative-probability table per
//! call. [`SimWorkspace`] owns all three buffers across iterations,
//! restarts, and elimination branches:
//!
//! * the amplitude state is an engine ([`SimEngine`]) reset in place —
//!   dense buffers are reused, sparse entry lists are cleared
//!   (`reallocations()` counts how often the engine had to be rebuilt —
//!   the zero-alloc-per-iteration invariant the solvers assert in their
//!   tests),
//! * diagonals are cached per `Arc<PhasePoly>` identity **while the
//!   engine is dense**, so a polynomial shared across iterations is
//!   expanded exactly once per register width; the sparse engine
//!   evaluates the polynomial per occupied entry instead and needs no
//!   `2^n` table at all,
//! * the sampling prefix table is built lazily per final state and reused
//!   across repeated `sample` calls (its meaning follows the engine:
//!   `2^n` slots dense, occupancy slots sparse, `|F|` slots compact),
//! * compiled **gate plans** (the compact engine's rank-table
//!   compiler) are cached per circuit
//!   *shape* when [`crate::EngineKind::Compact`] is selected: the
//!   feasible subspace is enumerated and lowered to rank tables once, and
//!   every subsequent iteration replays the plan with that iteration's
//!   angles as flat-array loops — no support rediscovery, no map churn.
//!   Shapes that refuse compilation (structural support above the
//!   occupancy threshold) are remembered as fallbacks and run on the
//!   per-gate engines (sparse with the auto-style dense fallback).
//!
//! Which engine runs is [`SimConfig::engine`]'s choice — the workspace is
//! where that selection takes effect for every solver.

use crate::batch::BatchWorkspace;
use crate::circuit::Circuit;
use crate::compact::CompactStateVector;
use crate::counts::Counts;
use crate::engine::{SimEngine, MAX_DENSIFY_QUBITS};
use crate::gate::Gate;
use crate::kernels;
use crate::phasepoly::PhasePoly;
use crate::plan::{CircuitShape, GatePlan, PlanError};
use crate::simconfig::{EngineKind, SimConfig};
#[cfg(doc)]
use crate::state::StateVector;
use rand::Rng;
use std::sync::{Arc, Mutex, Weak};

/// One cached diagonal: the polynomial it came from (kept weakly so cache
/// identity can be verified against live `Arc`s) and its per-basis values.
struct CachedDiag {
    poly: Weak<PhasePoly>,
    values: Vec<f64>,
}

/// Most plans a workspace keeps: enough for a solve's Δ policies and
/// elimination branch widths, bounded so a long-lived worker workspace
/// cannot accumulate rank tables across unrelated cells.
const PLAN_CACHE_CAP: usize = 8;

/// One cached compilation outcome for a circuit shape.
enum PlanEntry {
    /// The shape compiled: replay it.
    Compiled(Arc<GatePlan>),
    /// The shape refused compilation (structural support too dense):
    /// remember that, so iterations skip the recompile attempt and go
    /// straight to the per-gate fallback engines.
    Fallback(CircuitShape),
}

impl PlanEntry {
    fn shape(&self) -> &CircuitShape {
        match self {
            PlanEntry::Compiled(plan) => plan.shape(),
            PlanEntry::Fallback(shape) => shape,
        }
    }
}

/// A shareable cache of compiled gate plans, keyed by circuit *shape*
/// (see [`crate::EngineKind::Compact`]).
///
/// Every [`SimWorkspace`] owns one behind an `Arc`; workspaces built with
/// [`SimWorkspace::with_plan_cache`] share it, so a multi-start scheduler
/// whose workers each own a workspace still compiles **each circuit shape
/// exactly once** — the first worker to reach a shape compiles it (under
/// the cache lock, so concurrent workers on the same shape wait instead
/// of duplicating the work) and every other worker replays the shared
/// plan. Replays only take the lock for the shape lookup; the plan itself
/// is handed out as an `Arc` and executed lock-free.
#[derive(Default)]
pub struct PlanCache {
    inner: Mutex<PlanCacheInner>,
}

#[derive(Default)]
struct PlanCacheInner {
    /// Compilation outcomes, most recently used last.
    entries: Vec<PlanEntry>,
    /// Total compilations (successful or refused) ever run.
    compilations: u64,
    /// Total shape lookups served from a cached entry.
    hits: u64,
    /// Content-interned diagonal polynomials, most recently used last.
    /// Circuit shapes hold their `PhasePoly` weakly and match by `Arc`
    /// pointer identity, so a caller that rebuilds an equal polynomial
    /// per solve would never hit the cache across solves; interning
    /// through here gives equal-content polynomials one canonical `Arc`
    /// (and keeps it alive, so the shape stays matchable).
    interned: Vec<Arc<PhasePoly>>,
}

/// Most canonical polynomials [`PlanCache::intern_poly`] keeps alive:
/// enough for the distinct cost/penalty polynomials of the shapes a
/// bounded plan cache can hold, without letting a long-lived daemon
/// accumulate dead problems' polynomials.
const INTERN_CAP: usize = 2 * PLAN_CACHE_CAP;

/// A point-in-time snapshot of a [`PlanCache`]'s counters — the stats
/// hook `choco-serve` reports so cross-request plan reuse is observable
/// (a second same-shape job must add `hits`, not `compilations`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Circuit shapes with a cached compilation outcome right now.
    pub shapes: usize,
    /// Plan compilations (successful or refused) ever run.
    pub compilations: u64,
    /// Shape lookups served from a cached entry.
    pub hits: u64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Locks the cache, recovering from a poisoned mutex. A worker that
    /// panics while holding the lock (the experiment runner isolates
    /// per-cell panics with `catch_unwind` and keeps its siblings alive)
    /// would otherwise take every workspace sharing this cache down on
    /// their next lookup. Compilation happens *before* the entry insert,
    /// so a poisoned cache holds no partially-built plan — but it may
    /// have missed LRU/eviction bookkeeping mid-update, so recovery
    /// conservatively drops the cached entries (they recompile on demand;
    /// the compilation counter survives) and clears the poison flag.
    fn lock_inner(&self) -> std::sync::MutexGuard<'_, PlanCacheInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.inner.clear_poison();
                let mut guard = poisoned.into_inner();
                guard.entries.clear();
                guard
            }
        }
    }

    /// Number of circuit shapes with a cached compilation outcome
    /// (compiled plan or remembered fallback).
    pub fn len(&self) -> usize {
        self.lock_inner().entries.len()
    }

    /// `true` when no shape has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many plan compilations (successful or refused) have run across
    /// every workspace sharing this cache. Stays at the number of
    /// distinct circuit shapes across any number of iterations, restarts,
    /// and workers — the compile-once invariant of the compact engine.
    pub fn compilations(&self) -> u64 {
        self.lock_inner().compilations
    }

    /// A snapshot of the cache counters (shape count, compilations,
    /// hits) — the observability hook behind `choco-serve`'s `stats`
    /// request.
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.lock_inner();
        PlanCacheStats {
            shapes: inner.entries.len(),
            compilations: inner.compilations,
            hits: inner.hits,
        }
    }

    /// Returns the canonical `Arc` for a polynomial with `poly`'s
    /// content, registering it if none exists yet (bounded, LRU).
    ///
    /// Circuit shapes ([`crate::EngineKind::Compact`]) identify their
    /// diagonal polynomials by `Arc` pointer, so two solves that each
    /// build an equal `PhasePoly` from scratch produce shapes that never
    /// match. Callers that want plan reuse **across** solves — the
    /// `choco-serve` daemon sharing one cache over all requests — intern
    /// their cost/penalty polynomials here so equal content maps to one
    /// pointer and the compiled plan is replayed instead of recompiled.
    pub fn intern_poly(&self, poly: PhasePoly) -> Arc<PhasePoly> {
        let mut inner = self.lock_inner();
        if let Some(idx) = inner.interned.iter().position(|p| **p == poly) {
            // LRU promotion, same policy as the plan entries.
            let found = inner.interned.remove(idx);
            inner.interned.push(found.clone());
            return found;
        }
        if inner.interned.len() >= INTERN_CAP {
            inner.interned.remove(0);
        }
        let canonical = Arc::new(poly);
        inner.interned.push(canonical.clone());
        canonical
    }

    /// Finds the plan for `circuit`'s shape, compiling it on a miss.
    /// Returns `None` when the shape is a (fresh or remembered) fallback:
    /// the caller then runs the per-gate engines.
    pub(crate) fn lookup_or_compile(
        &self,
        circuit: &Circuit,
        max_support: usize,
    ) -> Option<Arc<GatePlan>> {
        let mut inner = self.lock_inner();
        if let Some(idx) = inner
            .entries
            .iter()
            .position(|e| e.shape().matches(circuit))
        {
            // LRU promotion: eviction drops the front, so a hit must
            // refresh recency or a rotation over more shapes than the
            // cache holds would thrash into per-iteration recompiles.
            inner.hits += 1;
            let entry = inner.entries.remove(idx);
            let found = match &entry {
                PlanEntry::Compiled(plan) => Some(plan.clone()),
                PlanEntry::Fallback(_) => None,
            };
            inner.entries.push(entry);
            return found;
        }
        // Miss: compile while holding the lock — a concurrent worker on
        // the same shape blocks here and then *hits*, which is exactly
        // the compile-once guarantee a shared cache exists to give.
        inner.compilations += 1;
        let entry = match GatePlan::compile(circuit, max_support) {
            Ok(plan) => PlanEntry::Compiled(Arc::new(plan)),
            Err(PlanError::TooDense { .. }) => PlanEntry::Fallback(CircuitShape::of(circuit)),
        };
        // Entries whose diagonal polynomials died can never match again;
        // drop them first, then bound the cache.
        inner.entries.retain(|e| e.shape().is_live());
        if inner.entries.len() >= PLAN_CACHE_CAP {
            inner.entries.remove(0);
        }
        let found = match &entry {
            PlanEntry::Compiled(plan) => Some(plan.clone()),
            PlanEntry::Fallback(_) => None,
        };
        inner.entries.push(entry);
        found
    }
}

/// The structural-support cap above which plan compilation gives up: the
/// same occupancy threshold that trips [`crate::EngineKind::Auto`]'s
/// dense fallback (floored so tiny registers always compile), or a hard
/// table-size cap where no dense fallback exists.
fn plan_support_cap(config: &SimConfig, n_qubits: usize) -> usize {
    if n_qubits <= MAX_DENSIFY_QUBITS {
        let dim = (1u64 << n_qubits) as f64;
        ((config.density_threshold * dim) as usize).max(64)
    } else {
        1 << 22
    }
}

/// Reusable buffers for repeated circuit execution (see module docs).
///
/// # Examples
///
/// ```
/// use choco_qsim::{Circuit, SimConfig, SimWorkspace};
///
/// let mut ws = SimWorkspace::new(SimConfig::serial());
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// for _ in 0..10 {
///     let state = ws.run(&bell);
///     assert!((state.probability(0b00) - 0.5).abs() < 1e-12);
/// }
/// assert_eq!(ws.reallocations(), 1, "buffer allocated once, reused 9×");
/// ```
///
/// # Unwind safety
///
/// A workspace is **not** [`std::panic::UnwindSafe`]: the sparse engine
/// holds interior-mutable sampling caches, and a panic mid-`run` can
/// leave the engine state, diagonal cache, or sampling table logically
/// inconsistent (never memory-unsafe). Callers that isolate panics with
/// `catch_unwind(AssertUnwindSafe(..))` — the experiment runner's
/// per-cell fault isolation — must **discard the workspace afterwards**
/// and build a fresh one rather than reuse it. The shared [`PlanCache`]
/// is the exception: it recovers from lock poisoning on its own (entries
/// are rebuilt on demand), so sibling workspaces sharing the cache of a
/// panicked worker keep working.
pub struct SimWorkspace {
    config: SimConfig,
    engine: Option<SimEngine>,
    diag_cache: Vec<CachedDiag>,
    /// Compiled gate plans (and fallback markers), keyed by circuit shape
    /// ([`crate::EngineKind::Compact`] only). Shareable: workspaces built
    /// with [`SimWorkspace::with_plan_cache`] compile each shape once
    /// between them.
    plans: Arc<PlanCache>,
    cumulative: Vec<f64>,
    /// Monotone run counter; `cumulative_for` marks which run (if any) the
    /// sampling table was built from.
    run_stamp: u64,
    cumulative_for: u64,
    reallocations: u64,
    /// The SoA buffer for batched compact replay ([`SimWorkspace::run_batch`]),
    /// allocated on first use and reused across iterations.
    batch: Option<BatchWorkspace>,
}

impl SimWorkspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new(config: SimConfig) -> Self {
        Self::with_plan_cache(config, Arc::new(PlanCache::new()))
    }

    /// An empty workspace that shares `plans` with other workspaces: a
    /// circuit shape compiled by any of them serves all of them. This is
    /// how a parallel multi-start scheduler keeps the compile-once
    /// invariant across worker-owned workspaces.
    ///
    /// Share a cache only between workspaces running the **same
    /// `SimConfig`**: cached outcomes are keyed by circuit shape alone,
    /// so the compile-or-fallback decision (which depends on the
    /// config's occupancy threshold) is made by whichever workspace
    /// reaches a shape first and then inherited by every sharer.
    pub fn with_plan_cache(config: SimConfig, plans: Arc<PlanCache>) -> Self {
        SimWorkspace {
            config,
            engine: None,
            diag_cache: Vec::new(),
            plans,
            cumulative: Vec::new(),
            run_stamp: 0,
            cumulative_for: u64::MAX,
            reallocations: 0,
            batch: None,
        }
    }

    /// The plan cache this workspace compiles into — pass it to
    /// [`SimWorkspace::with_plan_cache`] to share compiled shapes with
    /// another workspace.
    pub fn plan_cache(&self) -> Arc<PlanCache> {
        self.plans.clone()
    }

    /// Interns `poly` in this workspace's (possibly shared) plan cache —
    /// see [`PlanCache::intern_poly`]. Solvers route every freshly built
    /// cost/penalty polynomial through this so equal-content polynomials
    /// share one `Arc` and compiled plans survive across solves (and, in
    /// `choco-serve`, across requests).
    pub fn intern_poly(&self, poly: PhasePoly) -> Arc<PhasePoly> {
        self.plans.intern_poly(poly)
    }

    /// The execution configuration used for kernels run through this
    /// workspace.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// How many times the engine state was (re)allocated. Stays at 1
    /// across any number of same-width runs — the solvers' zero-alloc
    /// invariant.
    pub fn reallocations(&self) -> u64 {
        self.reallocations
    }

    /// Number of distinct diagonals currently cached (dense engine only;
    /// the sparse engine never materializes a diagonal).
    pub fn cached_diagonals(&self) -> usize {
        self.diag_cache.len()
    }

    /// Number of circuit shapes with a cached compilation outcome
    /// (compiled plan or remembered fallback; compact engine only).
    /// Counted on the (possibly shared) plan cache.
    pub fn cached_plans(&self) -> usize {
        self.plans.len()
    }

    /// How many plan compilations (successful or refused) have run on
    /// this workspace's (possibly shared) plan cache. Stays at the number
    /// of distinct circuit shapes across any number of iterations,
    /// restarts, and sharing workers — the compile-once invariant of the
    /// compact engine.
    pub fn plan_compilations(&self) -> u64 {
        self.plans.compilations()
    }

    /// Drops the engine state (buffers and the sticky representation of a
    /// previous fallback) so the next run re-resolves its representation
    /// from the configuration. Callers that report *which* engine served
    /// a task — like the experiment runner — use this to make the
    /// resolution deterministic per task instead of dependent on what the
    /// workspace executed before. Plan and diagonal caches survive.
    pub fn reset_engine(&mut self) {
        self.engine = None;
    }

    /// Runs `circuit` from `|0…0⟩` reusing the workspace buffers, and
    /// returns the resulting engine state (borrowed — it stays inside the
    /// workspace for sampling / expectation calls).
    pub fn run(&mut self, circuit: &Circuit) -> &SimEngine {
        self.run_stamp += 1;
        if self.config.engine == EngineKind::Compact && self.run_compact(circuit) {
            return self.engine.as_ref().expect("compact run set the engine");
        }
        self.reset_for(circuit.n_qubits());
        for gate in circuit.iter() {
            match gate {
                // The cached-diagonal fast path only exists on the dense
                // engine; a sparse state evaluates the polynomial per
                // occupied entry inside `apply_gate` (and an auto run
                // that just fell back to dense starts using the cache
                // from this gate on).
                Gate::DiagPhase(poly, theta)
                    if self.engine.as_ref().is_some_and(|e| e.as_dense().is_some()) =>
                {
                    self.apply_cached_diag(poly, *theta)
                }
                g => self
                    .engine
                    .as_mut()
                    .expect("engine prepared by reset_for")
                    .apply_gate(g),
            }
        }
        self.engine.as_ref().expect("engine prepared by reset_for")
    }

    /// The state left by the last [`SimWorkspace::run`], if any.
    pub fn state(&self) -> Option<&SimEngine> {
        self.engine.as_ref()
    }

    /// Samples from the last run's state, building the cumulative table at
    /// most once per run (repeat calls reuse it).
    ///
    /// # Panics
    ///
    /// Panics if nothing has been run yet.
    pub fn sample<R: Rng>(&mut self, shots: u64, rng: &mut R) -> Counts {
        let engine = self.engine.as_ref().expect("run a circuit before sampling");
        if self.cumulative_for != self.run_stamp {
            engine.fill_cumulative(&mut self.cumulative);
            self.cumulative_for = self.run_stamp;
        }
        engine.sample_with_cumulative(&self.cumulative, shots, rng)
    }

    /// Expectation of a diagonal observable on the last run's state.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been run yet.
    pub fn expectation_diag_values(&self, values: &[f64]) -> f64 {
        self.engine
            .as_ref()
            .expect("run a circuit before measuring")
            .expectation_diag_values(values)
    }

    /// Replays K same-shape circuits in one pass over the cached gate
    /// plan — the batched compact fast path (see [`BatchWorkspace`]).
    /// Returns the lane-addressable batch state, or `None` when batching
    /// does not apply and the caller should fall back to K sequential
    /// [`SimWorkspace::run`] calls: a non-compact engine selection, an
    /// empty batch, a shape that refused compilation, or circuits of
    /// differing shapes.
    ///
    /// The serial engine state ([`SimWorkspace::state`], sampling caches)
    /// is untouched — a batched evaluation never disturbs what a
    /// subsequent serial run and `sample` will see.
    ///
    /// Bit-identity contract: lane `i` of the result reads exactly what
    /// `self.run(&circuits[i])` would produce, at any batch size and
    /// thread count.
    pub fn run_batch(&mut self, circuits: &[Circuit]) -> Option<&BatchWorkspace> {
        if circuits.is_empty() || self.config.engine != EngineKind::Compact {
            return None;
        }
        let cap = plan_support_cap(&self.config, circuits[0].n_qubits());
        let plan = self.plans.lookup_or_compile(&circuits[0], cap)?;
        if !circuits.iter().all(|c| plan.shape().matches(c)) {
            return None;
        }
        let batch = self.batch.get_or_insert_with(BatchWorkspace::new);
        batch.replay(&plan, circuits, &self.config);
        Some(&*batch)
    }

    /// How many times the batched SoA buffer had to grow (see
    /// [`BatchWorkspace::reallocations`]); 0 before the first
    /// [`SimWorkspace::run_batch`].
    pub fn batch_reallocations(&self) -> u64 {
        self.batch.as_ref().map_or(0, BatchWorkspace::reallocations)
    }

    /// The compact fast path: find or compile the gate plan for this
    /// circuit's shape and replay it into the (reused) rank-indexed
    /// amplitude array. Returns `false` when the shape is a remembered or
    /// fresh fallback — the caller then runs the per-gate engines.
    fn run_compact(&mut self, circuit: &Circuit) -> bool {
        let cap = plan_support_cap(&self.config, circuit.n_qubits());
        let Some(plan) = self.plans.lookup_or_compile(circuit, cap) else {
            return false;
        };
        match &mut self.engine {
            Some(SimEngine::Compact(c)) if c.n_qubits() == circuit.n_qubits() => {
                c.reset_for_basis(plan.basis());
            }
            slot => {
                *slot = Some(SimEngine::Compact(CompactStateVector::new(
                    circuit.n_qubits(),
                    plan.basis().clone(),
                    self.config,
                )));
                self.reallocations += 1;
            }
        }
        let Some(SimEngine::Compact(state)) = &mut self.engine else {
            unreachable!("engine set to compact above");
        };
        plan.execute(circuit, state.amps_mut(), &self.config);
        true
    }

    /// Prepares the engine for an `n`-qubit run, resetting it in place
    /// when the width and configuration match and counting a reallocation
    /// otherwise.
    fn reset_for(&mut self, n_qubits: usize) {
        match &mut self.engine {
            Some(engine) if engine.n_qubits() == n_qubits => engine.reset_zero(),
            slot => {
                *slot = Some(SimEngine::new_with(n_qubits, self.config));
                self.reallocations += 1;
                // Cached diagonals are per-width; drop stale ones.
                self.diag_cache.clear();
            }
        }
    }

    /// Applies a diagonal evolution on the dense engine using (and
    /// populating) the per-`Arc` diagonal cache.
    fn apply_cached_diag(&mut self, poly: &Arc<PhasePoly>, theta: f64) {
        let state = self
            .engine
            .as_mut()
            .and_then(|e| e.as_dense_mut())
            .expect("cached-diag path requires the dense engine");
        let dim = 1usize << state.n_qubits();
        let hit = self.diag_cache.iter().position(|entry| {
            entry.values.len() == dim
                && entry
                    .poly
                    .upgrade()
                    .is_some_and(|live| Arc::ptr_eq(&live, poly))
        });
        let idx = match hit {
            Some(idx) => idx,
            None => {
                // Drop entries whose polynomial is gone: they can never
                // match again, and each holds a 2^n-element Vec — a
                // long-lived workspace would otherwise grow per solve.
                self.diag_cache.retain(|e| e.poly.strong_count() > 0);
                let mut values = vec![0.0f64; dim];
                kernels::accumulate_poly_diag(&mut values, poly);
                self.diag_cache.push(CachedDiag {
                    poly: Arc::downgrade(poly),
                    values,
                });
                self.diag_cache.len() - 1
            }
        };
        state.apply_diag_values(&self.diag_cache[idx].values, theta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simconfig::EngineKind;
    use crate::state::StateVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer_circuit(n: usize, poly: &Arc<PhasePoly>, theta: f64) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        c.diag(poly.clone(), theta);
        c.cx(0, 1);
        c
    }

    fn test_poly(n: usize) -> Arc<PhasePoly> {
        let mut poly = PhasePoly::new(n);
        for i in 0..n {
            poly.add_linear(i, 0.2 * (i + 1) as f64);
        }
        poly.add_quadratic(0, n - 1, -0.4);
        Arc::new(poly)
    }

    #[test]
    fn run_matches_bare_statevector() {
        let poly = test_poly(4);
        let mut ws = SimWorkspace::new(SimConfig::serial());
        for theta in [0.2, 0.9, 1.7] {
            let circuit = layer_circuit(4, &poly, theta);
            let expected = StateVector::run(&circuit);
            let got = ws.run(&circuit);
            assert!(
                (got.fidelity_against_dense(&expected) - 1.0).abs() < 1e-12,
                "theta={theta}"
            );
        }
    }

    #[test]
    fn amplitude_buffer_allocated_once_across_iterations() {
        let poly = test_poly(5);
        let mut ws = SimWorkspace::new(SimConfig::serial());
        for i in 0..50 {
            let circuit = layer_circuit(5, &poly, 0.1 * i as f64);
            ws.run(&circuit);
        }
        assert_eq!(ws.reallocations(), 1);
        assert_eq!(ws.cached_diagonals(), 1, "shared poly expanded once");
    }

    #[test]
    fn width_change_reallocates_and_clears_diag_cache() {
        let p4 = test_poly(4);
        let p6 = test_poly(6);
        let mut ws = SimWorkspace::new(SimConfig::serial());
        ws.run(&layer_circuit(4, &p4, 0.3));
        ws.run(&layer_circuit(6, &p6, 0.3));
        assert_eq!(ws.reallocations(), 2);
        ws.run(&layer_circuit(6, &p6, 0.7));
        assert_eq!(ws.reallocations(), 2, "same width reuses the buffer");
    }

    #[test]
    fn distinct_polys_cache_separately() {
        let a = test_poly(4);
        let b = test_poly(4);
        let mut ws = SimWorkspace::new(SimConfig::serial());
        let mut c = Circuit::new(4);
        c.diag(a.clone(), 0.5)
            .diag(b.clone(), 0.25)
            .diag(a.clone(), 0.1);
        ws.run(&c);
        assert_eq!(ws.cached_diagonals(), 2);
        // Equivalence against the uncached engine.
        let expected = StateVector::run(&c);
        assert!((ws.state().unwrap().fidelity_against_dense(&expected) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_reuses_the_cumulative_table_per_run() {
        let poly = test_poly(4);
        let circuit = layer_circuit(4, &poly, 0.8);
        let mut ws = SimWorkspace::new(SimConfig::serial());
        ws.run(&circuit);
        let mut rng = StdRng::seed_from_u64(9);
        let a = ws.sample(2_000, &mut rng);
        let table_ptr = ws.cumulative.as_ptr();
        let b = ws.sample(2_000, &mut rng);
        assert_eq!(ws.cumulative.as_ptr(), table_ptr, "table not rebuilt");
        assert_eq!(a.shots() + b.shots(), 4_000);
        // A fresh run invalidates the table.
        ws.run(&circuit);
        let stamp = ws.run_stamp;
        ws.sample(100, &mut rng);
        assert_eq!(ws.cumulative_for, stamp);
    }

    #[test]
    fn workspace_sampling_matches_direct_sampling() {
        let poly = test_poly(4);
        let circuit = layer_circuit(4, &poly, 0.8);
        let mut ws = SimWorkspace::new(SimConfig::serial());
        ws.run(&circuit);
        let direct = {
            let mut rng = StdRng::seed_from_u64(33);
            StateVector::run(&circuit).sample(3_000, &mut rng)
        };
        let mut rng = StdRng::seed_from_u64(33);
        let cached = ws.sample(3_000, &mut rng);
        assert_eq!(direct, cached);
    }

    #[test]
    fn sparse_workspace_matches_dense_and_skips_diag_cache() {
        let poly = test_poly(4);
        let mut sparse_ws = SimWorkspace::new(SimConfig::serial().with_engine(EngineKind::Sparse));
        let mut dense_ws = SimWorkspace::new(SimConfig::serial());
        for theta in [0.3, 1.1] {
            // A subspace-confined circuit (no mixers): basis load + diag.
            let mut c = Circuit::new(4);
            c.load_bits(0b0110);
            c.diag(poly.clone(), theta);
            c.ublock(crate::gate::UBlock::from_u_with_angle(&[1, -1, 1, -1], 0.5));
            let dense_probs: Vec<f64> = {
                let e = dense_ws.run(&c);
                (0..16).map(|b| e.probability(b)).collect()
            };
            let sparse = sparse_ws.run(&c);
            assert!(sparse.is_sparse(), "confined circuit stays sparse");
            for (bits, &p) in dense_probs.iter().enumerate() {
                assert!((sparse.probability(bits as u64) - p).abs() < 1e-15);
            }
        }
        assert_eq!(
            sparse_ws.cached_diagonals(),
            0,
            "sparse runs never expand a 2^n diagonal"
        );
        assert!(dense_ws.cached_diagonals() > 0);
    }

    #[test]
    fn sparse_workspace_sampling_matches_dense_stream() {
        let mut c = Circuit::new(4);
        c.load_bits(0b0011);
        c.ublock(crate::gate::UBlock::from_u_with_angle(&[1, -1, 1, 0], 0.8));
        let mut sparse_ws = SimWorkspace::new(SimConfig::serial().with_engine(EngineKind::Sparse));
        let mut dense_ws = SimWorkspace::new(SimConfig::serial());
        sparse_ws.run(&c);
        dense_ws.run(&c);
        let mut ra = StdRng::seed_from_u64(21);
        let mut rb = StdRng::seed_from_u64(21);
        assert_eq!(
            sparse_ws.sample(4_000, &mut ra),
            dense_ws.sample(4_000, &mut rb)
        );
    }

    #[test]
    fn compact_workspace_compiles_once_and_matches_dense_bitwise() {
        let poly = test_poly(4);
        let confined = |theta: f64| {
            let mut c = Circuit::new(4);
            c.load_bits(0b0110);
            c.diag(poly.clone(), theta);
            c.ublock(crate::gate::UBlock::from_u_with_angle(&[1, -1, 1, -1], 0.5));
            c.ublock(crate::gate::UBlock::from_u_with_angle(
                &[0, 1, -1, 1],
                theta,
            ));
            c
        };
        let mut compact_ws =
            SimWorkspace::new(SimConfig::serial().with_engine(EngineKind::Compact));
        let mut dense_ws = SimWorkspace::new(SimConfig::serial());
        for (i, theta) in [0.3, 1.1, -0.7, 0.0, 2.2].into_iter().enumerate() {
            let c = confined(theta);
            let dense_amps: Vec<_> = {
                let e = dense_ws.run(&c);
                (0..16u64).map(|b| e.amplitude(b)).collect()
            };
            let state = compact_ws.run(&c);
            assert!(state.is_compact(), "iteration {i} lost the compact path");
            for (bits, d) in dense_amps.iter().enumerate() {
                let a = state.amplitude(bits as u64);
                assert!(
                    a.re == d.re && a.im == d.im,
                    "theta={theta} bits={bits}: {a} vs {d}"
                );
            }
        }
        assert_eq!(compact_ws.cached_plans(), 1, "one shape, one plan");
        assert_eq!(compact_ws.plan_compilations(), 1, "compiled exactly once");
        assert_eq!(compact_ws.reallocations(), 1, "iterations reuse the array");
        assert_eq!(
            compact_ws.cached_diagonals(),
            0,
            "the compact path bakes diagonals into the plan"
        );
    }

    #[test]
    fn compact_workspace_sampling_matches_dense_stream() {
        let mut c = Circuit::new(4);
        c.load_bits(0b0011);
        c.ublock(crate::gate::UBlock::from_u_with_angle(&[1, -1, 1, 0], 0.8));
        let mut compact_ws =
            SimWorkspace::new(SimConfig::serial().with_engine(EngineKind::Compact));
        let mut dense_ws = SimWorkspace::new(SimConfig::serial());
        assert!(compact_ws.run(&c).is_compact());
        dense_ws.run(&c);
        let mut ra = StdRng::seed_from_u64(21);
        let mut rb = StdRng::seed_from_u64(21);
        assert_eq!(
            compact_ws.sample(4_000, &mut ra),
            dense_ws.sample(4_000, &mut rb)
        );
    }

    #[test]
    fn compact_workspace_falls_back_cleanly_on_dense_shapes() {
        // A register-filling mixer: compilation refuses the shape, the
        // run degrades to the per-gate engines with the auto-style dense
        // fallback, and the refusal is remembered (no recompile attempts).
        let mut mixer = Circuit::new(10);
        for q in 0..10 {
            mixer.h(q);
        }
        let mut ws = SimWorkspace::new(SimConfig::serial().with_engine(EngineKind::Compact));
        for _ in 0..3 {
            let state = ws.run(&mixer);
            assert!(!state.is_compact(), "dense shape must not stay compact");
            assert!(!state.is_sparse(), "auto-style fallback densifies");
            let expected = StateVector::run(&mixer);
            assert!((state.fidelity_against_dense(&expected) - 1.0).abs() < 1e-12);
        }
        assert_eq!(ws.cached_plans(), 1, "fallback shape cached");
        assert_eq!(ws.plan_compilations(), 1, "refusal remembered");
        // A confined shape afterwards still gets the compact fast path.
        let mut confined = Circuit::new(10);
        confined.load_bits(0b101);
        let u: Vec<i8> = (0..10).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
        confined.ublock(crate::gate::UBlock::from_u_with_angle(&u, 0.4));
        assert!(ws.run(&confined).is_compact());
        assert_eq!(ws.cached_plans(), 2);
    }

    #[test]
    fn compact_plan_cache_holds_multiple_shapes_without_reallocating() {
        // Alternating Δ policies (two circuit shapes over one register)
        // must each keep their compiled plan and share the amplitude
        // allocation.
        let poly = test_poly(4);
        let shape_a = |theta: f64| {
            let mut c = Circuit::new(4);
            c.load_bits(0b0011);
            c.diag(poly.clone(), theta);
            c.ublock(crate::gate::UBlock::from_u_with_angle(&[1, -1, 0, 0], 0.5));
            c
        };
        let shape_b = |theta: f64| {
            let mut c = Circuit::new(4);
            c.load_bits(0b0011);
            c.diag(poly.clone(), theta);
            c.ublock(crate::gate::UBlock::from_u_with_angle(&[1, -1, 0, 0], 0.5));
            c.ublock(crate::gate::UBlock::from_u_with_angle(&[0, 0, 1, -1], 0.2));
            c
        };
        let mut ws = SimWorkspace::new(SimConfig::serial().with_engine(EngineKind::Compact));
        for i in 0..6 {
            let theta = 0.1 * i as f64;
            assert!(ws.run(&shape_a(theta)).is_compact());
            assert!(ws.run(&shape_b(theta)).is_compact());
        }
        assert_eq!(ws.cached_plans(), 2);
        assert_eq!(ws.plan_compilations(), 2, "one compile per shape");
        assert_eq!(ws.reallocations(), 1, "shapes share the amplitude array");
    }

    #[test]
    fn compact_plan_cache_promotes_hits_over_fifo_eviction() {
        // Fill the cache to capacity, touch the oldest shape, then force
        // one eviction: the promoted shape must survive (LRU), so
        // re-running it is a cache hit, not a recompile.
        let shape = |k: usize, theta: f64| {
            let mut c = Circuit::new(4);
            c.load_bits(0b0001);
            for _ in 0..k + 1 {
                c.ublock(crate::gate::UBlock::from_u_with_angle(
                    &[1, -1, 0, 0],
                    theta,
                ));
            }
            c
        };
        let mut ws = SimWorkspace::new(SimConfig::serial().with_engine(EngineKind::Compact));
        for k in 0..8 {
            ws.run(&shape(k, 0.3));
        }
        assert_eq!(ws.plan_compilations(), 8);
        ws.run(&shape(0, 0.7)); // hit on the oldest shape → promoted
        assert_eq!(ws.plan_compilations(), 8, "hit must not recompile");
        ws.run(&shape(8, 0.3)); // ninth shape → one eviction
        assert_eq!(ws.plan_compilations(), 9);
        assert_eq!(ws.cached_plans(), 8, "cache stays at capacity");
        ws.run(&shape(0, 1.1)); // the promoted shape must still be cached
        assert_eq!(
            ws.plan_compilations(),
            9,
            "promoted shape was evicted: cache is FIFO, not LRU"
        );
    }

    #[test]
    fn shared_plan_cache_compiles_each_shape_once_across_workspaces() {
        // The parallel multi-start contract: worker-owned workspaces
        // sharing one PlanCache must compile a shape exactly once between
        // them, and every worker's replay must be bit-identical to a
        // private-cache run.
        let poly = test_poly(4);
        let confined = |theta: f64| {
            let mut c = Circuit::new(4);
            c.load_bits(0b0110);
            c.diag(poly.clone(), theta);
            c.ublock(crate::gate::UBlock::from_u_with_angle(&[1, -1, 1, -1], 0.5));
            c
        };
        let config = SimConfig::serial().with_engine(EngineKind::Compact);
        let mut reference = SimWorkspace::new(config);
        let expected: Vec<_> = {
            let e = reference.run(&confined(0.8));
            (0..16u64).map(|b| e.amplitude(b)).collect()
        };

        let shared = Arc::new(PlanCache::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let shared = shared.clone();
                let expected = &expected;
                let confined = &confined;
                scope.spawn(move || {
                    let mut ws = SimWorkspace::with_plan_cache(config, shared);
                    for _ in 0..8 {
                        let state = ws.run(&confined(0.8));
                        assert!(state.is_compact());
                        for (bits, want) in expected.iter().enumerate() {
                            let got = state.amplitude(bits as u64);
                            assert!(got.re == want.re && got.im == want.im);
                        }
                    }
                });
            }
        });
        assert_eq!(shared.compilations(), 1, "one compile serves all workers");
        assert_eq!(shared.len(), 1);
        // A workspace joining afterwards hits the shared plan too.
        let mut late = SimWorkspace::with_plan_cache(config, shared.clone());
        late.run(&confined(1.3));
        assert_eq!(late.plan_compilations(), 1, "late joiner reuses the plan");
        assert_eq!(shared.compilations(), 1);
    }

    fn confined_4q(poly: &Arc<PhasePoly>, theta: f64) -> Circuit {
        let mut c = Circuit::new(4);
        c.load_bits(0b0110);
        c.diag(poly.clone(), theta);
        c.ublock(crate::gate::UBlock::from_u_with_angle(&[1, -1, 1, -1], 0.5));
        c.ublock(crate::gate::UBlock::from_u_with_angle(
            &[0, 1, -1, 1],
            theta,
        ));
        c
    }

    #[test]
    fn run_batch_lanes_match_serial_runs_bitwise() {
        let poly = test_poly(4);
        let thetas = [0.3, 1.1, -0.7, 0.0, 2.2];
        let circuits: Vec<Circuit> = thetas.iter().map(|&t| confined_4q(&poly, t)).collect();
        let config = SimConfig::serial().with_engine(EngineKind::Compact);
        let mut batch_ws = SimWorkspace::new(config);
        let mut serial_ws = SimWorkspace::new(config);
        let batch = batch_ws.run_batch(&circuits).expect("compact batch runs");
        assert_eq!(batch.lanes(), circuits.len());
        let table: Vec<f64> = (0..16u64).map(|b| poly.eval_bits(b)).collect();
        for (lane, circuit) in circuits.iter().enumerate() {
            let state = serial_ws.run(circuit);
            assert!(state.is_compact());
            for bits in 0..16u64 {
                let (a, b) = (batch.amplitude(lane, bits), state.amplitude(bits));
                assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "lane={lane} bits={bits}: {a} vs {b}"
                );
            }
            assert_eq!(
                batch.expectation_diag_values(lane, &table),
                serial_ws.expectation_diag_values(&table),
                "lane={lane} expectation"
            );
            let mut ra = StdRng::seed_from_u64(19);
            let mut rb = StdRng::seed_from_u64(19);
            assert_eq!(
                batch.sample(lane, 2_000, &mut ra),
                serial_ws.sample(2_000, &mut rb),
                "lane={lane} histogram"
            );
        }
        // The batch and the serial runs share one plan per workspace; the
        // batched path keeps the compile-once invariant.
        assert_eq!(batch_ws.plan_compilations(), 1);
        assert_eq!(serial_ws.plan_compilations(), 1);
    }

    #[test]
    fn run_batch_declines_when_batching_does_not_apply() {
        let poly = test_poly(4);
        let circuits = vec![confined_4q(&poly, 0.3), confined_4q(&poly, 0.9)];
        // Non-compact engine selection.
        let mut dense_ws = SimWorkspace::new(SimConfig::serial());
        assert!(dense_ws.run_batch(&circuits).is_none());
        // Empty batch.
        let config = SimConfig::serial().with_engine(EngineKind::Compact);
        let mut ws = SimWorkspace::new(config);
        assert!(ws.run_batch(&[]).is_none());
        // Mixed shapes.
        let mut longer = confined_4q(&poly, 0.3);
        longer.x(0);
        let mixed = vec![confined_4q(&poly, 0.3), longer];
        assert!(ws.run_batch(&mixed).is_none());
        // Fallback shape (refuses compilation).
        let mut mixer = Circuit::new(10);
        for q in 0..10 {
            mixer.h(q);
        }
        assert!(ws.run_batch(&[mixer.clone(), mixer]).is_none());
        // A well-formed batch afterwards still works.
        assert!(ws.run_batch(&circuits).is_some());
    }

    #[test]
    fn batched_iterations_are_zero_alloc_after_warmup() {
        let poly = test_poly(4);
        let config = SimConfig::serial().with_engine(EngineKind::Compact);
        let mut ws = SimWorkspace::new(config);
        assert_eq!(ws.batch_reallocations(), 0);
        for i in 0..20 {
            let circuits: Vec<Circuit> = (0..4)
                .map(|k| confined_4q(&poly, 0.05 * (i * 4 + k) as f64))
                .collect();
            ws.run_batch(&circuits).expect("compact batch runs");
        }
        assert_eq!(ws.batch_reallocations(), 1, "SoA buffer allocated once");
        // A narrower batch fits the existing capacity; a wider one grows.
        let narrow: Vec<Circuit> = (0..2).map(|k| confined_4q(&poly, 0.1 * k as f64)).collect();
        ws.run_batch(&narrow).unwrap();
        assert_eq!(ws.batch_reallocations(), 1);
        let wide: Vec<Circuit> = (0..16)
            .map(|k| confined_4q(&poly, 0.1 * k as f64))
            .collect();
        ws.run_batch(&wide).unwrap();
        assert_eq!(ws.batch_reallocations(), 2);
        // The serial engine state was never touched by batched runs.
        assert!(ws.state().is_none());
        assert_eq!(ws.reallocations(), 0);
    }

    #[test]
    fn shared_plan_cache_compiles_once_across_workers_and_batches() {
        // The PR-5 compile-once invariant extended over the batched path:
        // worker-owned workspaces sharing one PlanCache, each mixing
        // serial runs and batched replays of the same shape, still compile
        // it exactly once between them.
        let poly = test_poly(4);
        let config = SimConfig::serial().with_engine(EngineKind::Compact);
        let shared = Arc::new(PlanCache::new());
        std::thread::scope(|scope| {
            for w in 0..4 {
                let shared = shared.clone();
                let poly = poly.clone();
                scope.spawn(move || {
                    let mut ws = SimWorkspace::with_plan_cache(config, shared);
                    for i in 0..4 {
                        let circuits: Vec<Circuit> = (0..3)
                            .map(|k| confined_4q(&poly, 0.1 * (w * 16 + i * 3 + k) as f64))
                            .collect();
                        let batch = ws.run_batch(&circuits).expect("compact batch runs");
                        let want: Vec<_> = (0..16u64).map(|b| batch.amplitude(0, b)).collect();
                        let state = ws.run(&circuits[0]);
                        for (bits, w) in want.iter().enumerate() {
                            let got = state.amplitude(bits as u64);
                            assert!(got.re == w.re && got.im == w.im);
                        }
                    }
                });
            }
        });
        assert_eq!(
            shared.compilations(),
            1,
            "one compile across workers × batches"
        );
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn reset_engine_redoes_representation_resolution() {
        let config = SimConfig {
            density_threshold: 0.2,
            ..SimConfig::serial().with_engine(EngineKind::Auto)
        };
        let mut ws = SimWorkspace::new(config);
        let mut mixer = Circuit::new(4);
        for q in 0..4 {
            mixer.h(q);
        }
        assert!(!ws.run(&mixer).is_sparse(), "fallback tripped");
        // Sticky without a reset…
        let mut confined = Circuit::new(4);
        confined.load_bits(0b0101);
        assert!(!ws.run(&confined).is_sparse());
        // …re-resolved per configuration after one.
        ws.reset_engine();
        assert!(ws.run(&confined).is_sparse(), "fresh resolution is sparse");
    }

    #[test]
    fn auto_workspace_fallback_is_sticky_and_allocation_free() {
        let config = SimConfig {
            density_threshold: 0.2,
            ..SimConfig::serial().with_engine(EngineKind::Auto)
        };
        let mut ws = SimWorkspace::new(config);
        // A mixer circuit fills the register: fallback trips mid-run.
        let mut mixer = Circuit::new(4);
        for q in 0..4 {
            mixer.h(q);
        }
        assert!(!ws.run(&mixer).is_sparse(), "fallback tripped");
        // Iterating the same workload stays on the retained dense buffer:
        // no per-iteration sparse ramp, no fresh 2^n allocation — and the
        // results still match a dense run exactly.
        let buffer = ws
            .state()
            .and_then(|e| e.as_dense())
            .expect("dense after fallback")
            .amplitudes()
            .as_ptr();
        for _ in 0..3 {
            let state = ws.run(&mixer);
            assert!(!state.is_sparse(), "fallback is sticky across runs");
            let expected = StateVector::run(&mixer);
            assert!((state.fidelity_against_dense(&expected) - 1.0).abs() < 1e-12);
        }
        assert_eq!(
            ws.state()
                .and_then(|e| e.as_dense())
                .expect("still dense")
                .amplitudes()
                .as_ptr(),
            buffer,
            "iterations reuse the densified buffer in place"
        );
        assert_eq!(ws.reallocations(), 1, "fallback is not a reallocation");
        // A width change still starts sparse per the configuration.
        let mut confined = Circuit::new(5);
        confined.load_bits(0b00101);
        confined.ublock(crate::gate::UBlock::from_u_with_angle(
            &[1, -1, 1, -1, 0],
            0.4,
        ));
        assert!(ws.run(&confined).is_sparse(), "fresh width starts sparse");
        assert_eq!(ws.reallocations(), 2);
    }

    /// The cross-request reuse scenario behind `choco-serve`: two "solves"
    /// each rebuild an equal-content polynomial from scratch. Without
    /// interning the second shape can never match (shapes hold their poly
    /// by `Arc` pointer); with interning the second solve replays the
    /// compiled plan — zero new compilations, observable via `stats()`.
    #[test]
    fn interning_keeps_plans_replayable_across_rebuilt_polys() {
        let cache = Arc::new(PlanCache::new());
        let config = SimConfig::serial().with_engine(EngineKind::Compact);
        let solve = |cache: &Arc<PlanCache>| {
            // A fresh workspace per solve, like a fresh request; only the
            // plan cache is shared.
            let mut ws = SimWorkspace::with_plan_cache(config, cache.clone());
            let rebuilt = PhasePoly::clone(&test_poly(4));
            let poly = ws.intern_poly(rebuilt);
            let mut c = Circuit::new(4);
            c.load_bits(0b0011);
            c.diag(poly, 0.8);
            c.ublock(crate::gate::UBlock::from_u_with_angle(&[1, -1, 1, 0], 0.8));
            assert!(ws.run(&c).is_compact());
        };
        solve(&cache);
        let cold = cache.stats();
        assert_eq!(cold.compilations, 1);
        solve(&cache);
        let warm = cache.stats();
        assert_eq!(warm.compilations, 1, "second solve must not recompile");
        assert!(warm.hits > cold.hits, "second solve hits the cached plan");
        assert_eq!(warm.shapes, 1);
        // Interning is content-keyed: equal polynomials share one Arc.
        let a = cache.intern_poly(PhasePoly::clone(&test_poly(4)));
        let b = cache.intern_poly(PhasePoly::clone(&test_poly(4)));
        assert!(Arc::ptr_eq(&a, &b));
    }
}
