//! The rank-indexed compact engine's state representation.
//!
//! Where the sparse engine stores `(basis index, amplitude)` entries and
//! pays lookup/insert churn per gate, the compact engine stores a dense
//! `Vec<Complex64>` of length `|F|`, indexed by the *rank* of each
//! feasible basis state in the sorted feasible basis `F` that
//! the gate-plan compiler enumerated at compile time. All per-gate work happens
//! through the plan's precomputed rank tables; this type only owns the
//! amplitude array and implements the solver-facing read operations
//! (amplitudes, expectations, sampling, support counting).
//!
//! Structural slots the sparse engine pruned hold exact complex zeros
//! here. Every read operation either skips them (mirroring the sparse
//! engine's entry iteration term for term, so sums stay bit-identical) or
//! lets them contribute exact IEEE zeros (the cumulative sampling table),
//! which keeps amplitudes, expectations, and sample streams bit-identical
//! across all three engines.

use crate::counts::Counts;
use crate::phasepoly::PhasePoly;
use crate::simconfig::SimConfig;
use choco_mathkit::Complex64;
use rand::Rng;
use std::sync::Arc;

/// A pure quantum state over the feasible basis `F`, stored as one dense
/// amplitude per feasible-state rank.
///
/// Built and driven by [`crate::SimWorkspace`] when
/// [`crate::EngineKind::Compact`] is selected; the basis is shared
/// (`Arc`) with the compiled gate plan that produced it.
#[derive(Clone, Debug)]
pub struct CompactStateVector {
    n_qubits: usize,
    /// The sorted feasible basis `F`: `basis[rank]` is the basis-state
    /// bit pattern of `amps[rank]`. `basis[0] == 0` always (compilation
    /// starts from `|0…0⟩`).
    basis: Arc<Vec<u64>>,
    amps: Vec<Complex64>,
    config: SimConfig,
}

impl CompactStateVector {
    /// The state `|0…0⟩` over the given feasible basis.
    ///
    /// # Panics
    ///
    /// Panics if the basis does not start with the all-zeros state (every
    /// plan's basis does — compilation starts there).
    pub(crate) fn new(n_qubits: usize, basis: Arc<Vec<u64>>, config: SimConfig) -> Self {
        assert_eq!(basis.first(), Some(&0), "feasible basis must contain |0…0⟩");
        let mut amps = vec![Complex64::ZERO; basis.len()];
        amps[0] = Complex64::ONE;
        CompactStateVector {
            n_qubits,
            basis,
            amps,
            config,
        }
    }

    /// Re-targets this state at another plan's basis and resets to
    /// `|0…0⟩`, reusing the amplitude allocation (capacity permitting) —
    /// the workspace's zero-alloc-per-iteration path when one solve
    /// alternates between circuit shapes.
    pub(crate) fn reset_for_basis(&mut self, basis: &Arc<Vec<u64>>) {
        assert_eq!(basis.first(), Some(&0), "feasible basis must contain |0…0⟩");
        if !Arc::ptr_eq(&self.basis, basis) {
            self.basis = basis.clone();
        }
        self.amps.clear();
        self.amps.resize(self.basis.len(), Complex64::ZERO);
        self.amps[0] = Complex64::ONE;
    }

    /// Resets to `|0…0⟩` in place.
    pub fn reset_zero(&mut self) {
        self.amps.fill(Complex64::ZERO);
        self.amps[0] = Complex64::ONE;
    }

    /// The execution configuration.
    #[inline]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The sorted feasible basis this state is ranked over.
    #[inline]
    pub fn basis(&self) -> &[u64] {
        &self.basis
    }

    /// Mutable amplitude array for plan replay (rank-indexed).
    #[inline]
    pub(crate) fn amps_mut(&mut self) -> &mut [Complex64] {
        &mut self.amps
    }

    /// Size of the feasible basis `|F|` — the engine's storage footprint,
    /// as opposed to [`CompactStateVector::occupancy`] which counts only
    /// numerically non-zero amplitudes.
    #[inline]
    pub fn basis_len(&self) -> usize {
        self.basis.len()
    }

    /// Number of exactly non-zero amplitudes. Equals the sparse engine's
    /// occupancy (amplitudes are bit-identical across engines; the sparse
    /// engine prunes exact zeros).
    pub fn occupancy(&self) -> usize {
        self.amps
            .iter()
            .filter(|a| a.re != 0.0 || a.im != 0.0)
            .count()
    }

    /// Occupied fraction of the `2^n` register.
    pub fn density(&self) -> f64 {
        self.occupancy() as f64 / (1u64 << self.n_qubits) as f64
    }

    /// The non-zero entries `(basis index, amplitude)` in basis order —
    /// exactly the sparse engine's entry list for the same state.
    pub fn entries(&self) -> Vec<(u64, Complex64)> {
        self.basis
            .iter()
            .zip(self.amps.iter())
            .filter(|(_, a)| a.re != 0.0 || a.im != 0.0)
            .map(|(&bits, &a)| (bits, a))
            .collect()
    }

    /// The amplitude of basis state `bits` (zero off the feasible basis).
    pub fn amplitude(&self, bits: u64) -> Complex64 {
        match self.basis.binary_search(&bits) {
            Ok(rank) => self.amps[rank],
            Err(_) => Complex64::ZERO,
        }
    }

    /// Probability of measuring the basis state `bits`.
    pub fn probability(&self, bits: u64) -> f64 {
        self.amplitude(bits).norm_sqr()
    }

    /// Number of basis states with probability above `eps` (the fig. 9(b)
    /// support metric).
    pub fn support_size(&self, eps: f64) -> usize {
        self.amps.iter().filter(|a| a.norm_sqr() > eps).count()
    }

    /// Total probability (should be 1 up to rounding). Skips exact zeros
    /// so the sum has the same term sequence as the sparse engine's.
    pub fn norm_sqr(&self) -> f64 {
        self.amps
            .iter()
            .filter(|a| a.re != 0.0 || a.im != 0.0)
            .map(|a| a.norm_sqr())
            .sum()
    }

    /// Expectation of a diagonal observable given a `2^n` value table.
    /// Bit-identical to the other engines: the term sequence equals the
    /// sparse engine's occupied-entry iteration.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != 2^n`.
    pub fn expectation_diag_values(&self, values: &[f64]) -> f64 {
        assert_eq!(
            values.len(),
            1usize << self.n_qubits,
            "diagonal length mismatch"
        );
        self.basis
            .iter()
            .zip(self.amps.iter())
            .filter(|(_, a)| a.re != 0.0 || a.im != 0.0)
            .map(|(&bits, a)| a.norm_sqr() * values[bits as usize])
            .sum()
    }

    /// Expectation of a diagonal observable given as a polynomial —
    /// `O(|F| · terms)`, no table required.
    pub fn expectation_diag_poly(&self, poly: &PhasePoly) -> f64 {
        self.basis
            .iter()
            .zip(self.amps.iter())
            .filter(|(_, a)| a.re != 0.0 || a.im != 0.0)
            .map(|(&bits, a)| a.norm_sqr() * poly.eval_bits(bits))
            .sum()
    }

    /// Fills `out` with the cumulative probability over all `|F|` ranks
    /// (ascending basis index). Zero slots add exact IEEE zeros, so the
    /// values at occupied slots match the other engines' tables
    /// bit-for-bit — which keeps sample streams identical.
    pub fn fill_cumulative(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.amps.len());
        let mut acc = 0.0f64;
        for a in &self.amps {
            acc += a.norm_sqr();
            out.push(acc);
        }
    }

    /// Samples `shots` outcomes using a prebuilt rank-cumulative table
    /// (see [`CompactStateVector::fill_cumulative`]). One
    /// `rng.gen::<f64>()` per shot; tie handling mirrors the dense
    /// engine's `partition_point` endpoint exactly, so a shared seed
    /// yields identical histograms across engines.
    ///
    /// # Panics
    ///
    /// Panics if the table length does not match `|F|`.
    pub fn sample_with_cumulative<R: Rng>(
        &self,
        cumulative: &[f64],
        shots: u64,
        rng: &mut R,
    ) -> Counts {
        assert_eq!(cumulative.len(), self.amps.len(), "table length mismatch");
        let total = *cumulative.last().expect("non-empty state");
        let mut counts = Counts::new();
        for _ in 0..shots {
            let r: f64 = rng.gen::<f64>() * total;
            let bits = if r == 0.0 {
                // The dense table's partition_point lands on basis index 0
                // for r = 0; mirror that endpoint exactly (as the sparse
                // engine does).
                0
            } else {
                let slot = cumulative.partition_point(|&c| c < r);
                self.basis[slot.min(self.amps.len() - 1)]
            };
            counts.record(bits);
        }
        counts
    }

    /// Samples `shots` measurement outcomes, building the cumulative
    /// table on the fly (one-off calls; [`crate::SimWorkspace::sample`]
    /// caches the table across calls).
    pub fn sample<R: Rng>(&self, shots: u64, rng: &mut R) -> Counts {
        let mut cumulative = Vec::new();
        self.fill_cumulative(&mut cumulative);
        self.sample_with_cumulative(&cumulative, shots, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::gate::UBlock;
    use crate::plan::GatePlan;
    use crate::sparse::SparseStateVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_compact(circuit: &Circuit) -> CompactStateVector {
        let plan = GatePlan::compile(circuit, 1 << 12).unwrap();
        let mut state = CompactStateVector::new(
            circuit.n_qubits(),
            plan.basis().clone(),
            SimConfig::serial(),
        );
        plan.execute(circuit, state.amps_mut(), &SimConfig::serial());
        state
    }

    fn confined() -> Circuit {
        let mut poly = PhasePoly::new(4);
        poly.add_linear(0, 1.2);
        poly.add_quadratic(1, 3, -0.6);
        let mut c = Circuit::new(4);
        c.load_bits(0b0011);
        c.diag(Arc::new(poly), 0.8);
        c.ublock(UBlock::from_u_with_angle(&[1, -1, 1, 0], 0.8));
        c.ublock(UBlock::from_u_with_angle(&[0, 1, -1, 1], 0.4));
        c
    }

    #[test]
    fn reads_match_sparse_bitwise() {
        let circuit = confined();
        let compact = run_compact(&circuit);
        let sparse = SparseStateVector::run(&circuit);
        for bits in 0..16u64 {
            let (a, b) = (compact.amplitude(bits), sparse.amplitude(bits));
            assert!(a.re == b.re && a.im == b.im, "bits={bits}");
        }
        assert_eq!(compact.occupancy(), sparse.occupancy());
        assert_eq!(compact.entries(), sparse.entries().to_vec());
        assert_eq!(compact.support_size(1e-9), sparse.support_size(1e-9));
        assert!((compact.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectations_are_bit_identical_to_sparse() {
        let circuit = confined();
        let compact = run_compact(&circuit);
        let sparse = SparseStateVector::run(&circuit);
        let mut poly = PhasePoly::new(4);
        poly.add_linear(2, -1.5);
        poly.add_quadratic(0, 1, 0.7);
        let table: Vec<f64> = (0..16u64).map(|b| poly.eval_bits(b)).collect();
        assert_eq!(
            compact.expectation_diag_values(&table),
            sparse.expectation_diag_values(&table)
        );
        assert_eq!(
            compact.expectation_diag_poly(&poly),
            sparse.expectation_diag_poly(&poly)
        );
    }

    #[test]
    fn sample_stream_is_identical_to_sparse() {
        let circuit = confined();
        let compact = run_compact(&circuit);
        let sparse = SparseStateVector::run(&circuit);
        let mut ra = StdRng::seed_from_u64(17);
        let mut rb = StdRng::seed_from_u64(17);
        assert_eq!(
            compact.sample(5_000, &mut ra),
            sparse.sample(5_000, &mut rb)
        );
    }

    #[test]
    fn reset_reuses_the_allocation() {
        let circuit = confined();
        let mut compact = run_compact(&circuit);
        let ptr = compact.amps.as_ptr();
        compact.reset_zero();
        assert_eq!(compact.amps.as_ptr(), ptr);
        assert_eq!(compact.probability(0), 1.0);
        assert_eq!(compact.occupancy(), 1);
        // Re-targeting at the same basis keeps the allocation too.
        let basis = compact.basis.clone();
        compact.reset_for_basis(&basis);
        assert_eq!(compact.amps.as_ptr(), ptr);
    }
}
