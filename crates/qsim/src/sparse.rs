//! The feasible-subspace sparse engine.
//!
//! Choco-Q's central theorem is that commute-Hamiltonian evolution never
//! leaves the feasible subspace: starting from one feasible basis state,
//! the state's support stays inside the `|F|` feasible assignments, not
//! the full `2^n` register (the quantity Figure 9(b) measures). A dense
//! state vector pays `O(2^(n-k))` per gate regardless; this engine stores
//! only the occupied entries — a **sorted map from basis index to
//! amplitude** — and updates exactly those, so a Choco-Q layer costs
//! `O(|F|·poly)` and registers far beyond dense allocation limits become
//! simulable.
//!
//! Every kernel mirrors the dense engine's floating-point expressions
//! *verbatim* (same shape dispatch, same operand order), and zero
//! amplitudes contribute exact IEEE no-ops to sums, so sparse amplitudes,
//! expectations, and sampling streams are **bit-identical** to the dense
//! engine on any circuit — the property the differential tests in
//! `tests/engines.rs` and the CI engine matrix pin down. Support *grows*
//! on demand: a pair kernel inserts the partner of an occupied entry, a
//! Hadamard doubles the occupied set. Circuits that fill the register
//! (penalty/HEA mixers) are therefore still correct here, just slower
//! than dense — [`crate::SimEngine`] with [`crate::EngineKind::Auto`]
//! densifies at a configurable occupancy threshold instead.

use crate::circuit::Circuit;
use crate::counts::Counts;
use crate::gate::{Gate, ShiftBlock, UBlock};
use crate::phasepoly::PhasePoly;
use crate::simconfig::SimConfig;
use choco_mathkit::Complex64;
use rand::Rng;

/// Maximum register width for the sparse engine: basis indices are `u64`
/// bit patterns and the circuit IR itself stops at 30 qubits... but the
/// sparse representation has no `2^n` buffer, so it accepts the IR's full
/// width. Kept as its own constant so a wider IR lifts this in one place.
pub const MAX_SPARSE_QUBITS: usize = 30;

/// A pure quantum state stored as its occupied basis entries only
/// (sorted by basis index; little-endian qubit indexing as in
/// [`crate::StateVector`]).
///
/// # Examples
///
/// ```
/// use choco_qsim::{Circuit, SparseStateVector, UBlock};
///
/// // A commute block spreads |01⟩ over its pattern pair only: the sparse
/// // state tracks 2 entries, never the 2^2 register.
/// let mut c = Circuit::new(2);
/// c.load_bits(0b01);
/// c.ublock(UBlock::from_u_with_angle(&[1, -1], 0.6));
/// let s = SparseStateVector::run(&c);
/// assert_eq!(s.occupancy(), 2);
/// assert!((s.probability(0b01) - 0.6f64.cos().powi(2)).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct SparseStateVector {
    n_qubits: usize,
    /// Occupied entries, strictly sorted by basis index. Exact complex
    /// zeros are pruned so `occupancy` tracks true support.
    entries: Vec<(u64, Complex64)>,
    config: SimConfig,
    /// Lazily-built cumulative probability table over the occupied
    /// entries, reused across repeated [`SparseStateVector::sample`]
    /// calls on an unchanged state (the sparse counterpart of the dense
    /// prefix-table cache in [`crate::SimWorkspace`]). Invalidated by
    /// every mutating kernel.
    cumulative: std::cell::RefCell<Vec<f64>>,
    cumulative_valid: std::cell::Cell<bool>,
}

impl SparseStateVector {
    /// The all-zeros state `|0…0⟩` with the default [`SimConfig`].
    pub fn new(n_qubits: usize) -> Self {
        Self::new_with(n_qubits, SimConfig::default())
    }

    /// The all-zeros state with an explicit execution configuration.
    pub fn new_with(n_qubits: usize, config: SimConfig) -> Self {
        assert!(
            n_qubits <= MAX_SPARSE_QUBITS,
            "sparse state vector limited to {MAX_SPARSE_QUBITS} qubits"
        );
        SparseStateVector {
            n_qubits,
            entries: vec![(0, Complex64::ONE)],
            config,
            cumulative: std::cell::RefCell::new(Vec::new()),
            cumulative_valid: std::cell::Cell::new(false),
        }
    }

    /// Builds a sparse state from an already-sorted non-zero entry list
    /// (the compact engine's degrade path for incremental mutation).
    pub(crate) fn from_sorted_entries(
        n_qubits: usize,
        entries: Vec<(u64, Complex64)>,
        config: SimConfig,
    ) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        let mut s = SparseStateVector::new_with(n_qubits, config);
        s.entries = entries;
        s
    }

    /// Marks the cached sampling table stale (every mutation funnels
    /// through one of the callers of this).
    #[inline]
    fn touch(&mut self) {
        self.cumulative_valid.set(false);
    }

    /// A computational basis state `|bits⟩`.
    pub fn from_bits(n_qubits: usize, bits: u64) -> Self {
        let mut s = SparseStateVector::new(n_qubits);
        s.entries[0] = (bits, Complex64::ONE);
        s
    }

    /// Runs a circuit from `|0…0⟩`.
    pub fn run(circuit: &Circuit) -> Self {
        Self::run_with(circuit, SimConfig::default())
    }

    /// Runs a circuit from `|0…0⟩` under an explicit configuration.
    pub fn run_with(circuit: &Circuit, config: SimConfig) -> Self {
        let mut s = SparseStateVector::new_with(circuit.n_qubits(), config);
        s.apply_circuit(circuit);
        s
    }

    /// The execution configuration.
    #[inline]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Resets to `|0…0⟩` in place, reusing the entry buffer.
    pub fn reset_zero(&mut self) {
        self.touch();
        self.entries.clear();
        self.entries.push((0, Complex64::ONE));
    }

    /// Resets to the basis state `|bits⟩` in place.
    pub fn reset_bits(&mut self, bits: u64) {
        self.touch();
        self.entries.clear();
        self.entries.push((bits, Complex64::ONE));
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of occupied (non-zero) basis entries — the sparse engine's
    /// support counter, and the quantity the auto-densify threshold
    /// watches.
    #[inline]
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Occupied fraction of the `2^n` register.
    pub fn density(&self) -> f64 {
        self.entries.len() as f64 / (1u64 << self.n_qubits) as f64
    }

    /// The occupied entries `(basis index, amplitude)`, sorted by index.
    #[inline]
    pub fn entries(&self) -> &[(u64, Complex64)] {
        &self.entries
    }

    /// The amplitude of basis state `bits` (zero when unoccupied).
    pub fn amplitude(&self, bits: u64) -> Complex64 {
        match self.entries.binary_search_by_key(&bits, |e| e.0) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => Complex64::ZERO,
        }
    }

    /// Probability of measuring the basis state `bits`.
    pub fn probability(&self, bits: u64) -> f64 {
        self.amplitude(bits).norm_sqr()
    }

    /// Number of basis states with probability above `eps` — the paper's
    /// Figure 9(b) "parallelism" metric, counted over occupied entries
    /// only (no `2^n` scan).
    pub fn support_size(&self, eps: f64) -> usize {
        self.entries
            .iter()
            .filter(|(_, a)| a.norm_sqr() > eps)
            .count()
    }

    /// Total probability (should be 1 up to rounding).
    pub fn norm_sqr(&self) -> f64 {
        self.entries.iter().map(|(_, a)| a.norm_sqr()).sum()
    }

    /// Applies every gate of a circuit in order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(
            circuit.n_qubits() <= self.n_qubits,
            "circuit wider than state"
        );
        for g in circuit.iter() {
            self.apply_gate(g);
        }
    }

    /// Applies a single gate (same dispatch table as the dense engine).
    pub fn apply_gate(&mut self, gate: &Gate) {
        match gate {
            Gate::Cx(c, t) => self.apply_mcx(1u64 << c, *t),
            Gate::Cz(a, b) => self.apply_mcphase((1u64 << a) | (1u64 << b), std::f64::consts::PI),
            Gate::Cp(a, b, theta) => self.apply_mcphase((1u64 << a) | (1u64 << b), *theta),
            Gate::Swap(a, b) => self.apply_swap(*a, *b),
            Gate::Ccx(c1, c2, t) => self.apply_mcx((1u64 << c1) | (1u64 << c2), *t),
            Gate::Mcx { controls, target } => {
                let mask = controls.iter().fold(0u64, |m, &q| m | (1 << q));
                self.apply_mcx(mask, *target);
            }
            Gate::McPhase { qubits, angle } => {
                let mask = qubits.iter().fold(0u64, |m, &q| m | (1 << q));
                self.apply_mcphase(mask, *angle);
            }
            Gate::ControlledU {
                controls,
                target,
                matrix,
            } => {
                let mask = controls.iter().fold(0u64, |m, &q| m | (1 << q));
                self.apply_controlled_1q(mask, *matrix, *target);
            }
            Gate::UBlock(b) => self.apply_ublock(b),
            Gate::ShiftBlock(b) => self.apply_shift_block(b),
            Gate::XyMix(a, b, theta) => {
                let full = (1u64 << a) | (1u64 << b);
                self.apply_block_masks(full, 1u64 << a, 2.0 * theta);
            }
            Gate::DiagPhase(poly, theta) => self.apply_diag_poly(poly, *theta),
            g1q => {
                let m = g1q
                    .matrix_1q()
                    .unwrap_or_else(|| panic!("unhandled gate {g1q}"));
                self.apply_1q(m, g1q.qubits()[0]);
            }
        }
    }

    /// Applies a 2×2 unitary to qubit `q`.
    pub fn apply_1q(&mut self, m: [[Complex64; 2]; 2], q: usize) {
        self.apply_controlled_1q(0, m, q);
    }

    /// Applies a 2×2 unitary to qubit `q` conditioned on all bits of
    /// `controls_mask` being 1. The shape dispatch (diagonal /
    /// anti-diagonal / real / general) mirrors the dense engine
    /// expression-for-expression so results stay bit-identical.
    pub fn apply_controlled_1q(&mut self, controls_mask: u64, m: [[Complex64; 2]; 2], q: usize) {
        let t = 1u64 << q;
        if controls_mask & t != 0 {
            // Degenerate gate (target in controls): no-op, as in the
            // dense engine and the oracle.
            return;
        }
        let fixed = controls_mask | t;
        let diagonal = m[0][1] == Complex64::ZERO && m[1][0] == Complex64::ZERO;
        if diagonal {
            for (value, d) in [(controls_mask, m[0][0]), (fixed, m[1][1])] {
                if d != Complex64::ONE {
                    self.subspace_map(fixed, value, |a| a * d);
                }
            }
            return;
        }
        let anti_diagonal = m[0][0] == Complex64::ZERO && m[1][1] == Complex64::ZERO;
        if anti_diagonal {
            let (m01, m10) = (m[0][1], m[1][0]);
            self.pair_map(fixed, controls_mask, t, move |a, b| (m01 * b, m10 * a));
            return;
        }
        let real = m.iter().flatten().all(|c| c.im == 0.0);
        if real {
            let (r00, r01, r10, r11) = (m[0][0].re, m[0][1].re, m[1][0].re, m[1][1].re);
            self.pair_map(fixed, controls_mask, t, move |a, b| {
                (a.scale(r00) + b.scale(r01), a.scale(r10) + b.scale(r11))
            });
            return;
        }
        self.pair_map(fixed, controls_mask, t, move |a, b| {
            (m[0][0] * a + m[0][1] * b, m[1][0] * a + m[1][1] * b)
        });
    }

    fn apply_swap(&mut self, a: usize, b: usize) {
        if a == b {
            return; // matches the dense engine / oracle no-op
        }
        let (ma, mb) = (1u64 << a, 1u64 << b);
        self.pair_map(ma | mb, ma, ma | mb, |x, y| (y, x));
    }

    fn apply_mcx(&mut self, controls_mask: u64, target: usize) {
        let t = 1u64 << target;
        if controls_mask & t != 0 {
            return; // degenerate: target is one of its own controls
        }
        self.pair_map(controls_mask | t, controls_mask, t, |x, y| (y, x));
    }

    fn apply_mcphase(&mut self, mask: u64, angle: f64) {
        let phase = Complex64::cis(angle);
        self.subspace_map(mask, mask, move |a| a * phase);
    }

    /// Applies `e^{-iθ·Hc(u)}` exactly on the occupied entries and their
    /// pattern partners.
    pub fn apply_ublock(&mut self, block: &UBlock) {
        let mut full_mask = 0u64;
        let mut v_mask = 0u64;
        for (k, &q) in block.support.iter().enumerate() {
            full_mask |= 1 << q;
            if (block.pattern >> k) & 1 == 1 {
                v_mask |= 1 << q;
            }
        }
        self.apply_block_masks(full_mask, v_mask, block.angle);
    }

    /// Applies a generalized commute block with slack-register shifts on the
    /// occupied entries: the same exact pair rotation as
    /// [`SparseStateVector::apply_ublock`], with pairs gated on register
    /// eligibility via [`ShiftBlock::source_of`]. Ineligible occupied
    /// entries are left untouched (identity rows of `Hc`).
    pub fn apply_shift_block(&mut self, block: &ShiftBlock) {
        if block.shifts.is_empty() {
            self.apply_block_masks(block.full_mask(), block.pattern_abs(), block.angle);
            return;
        }
        // Canonical source index of every eligible touched pair; both pair
        // members canonicalize to the same source, so sort + dedup gives
        // each pair exactly once — same scheme as `pair_map`.
        let mut pairs: Vec<u64> = self
            .entries
            .iter()
            .filter_map(|&(bits, _)| block.source_of(bits))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        if pairs.is_empty() {
            return;
        }
        let (sin, cos) = block.angle.sin_cos();
        let mut updates: Vec<(u64, Complex64)> = Vec::with_capacity(pairs.len() * 2);
        for &i in &pairs {
            let j = block.forward(i).expect("canonical source is eligible");
            let (a, b) = (self.amplitude(i), self.amplitude(j));
            updates.push((
                i,
                Complex64::new(cos * a.re + sin * b.im, cos * a.im - sin * b.re),
            ));
            updates.push((
                j,
                Complex64::new(cos * b.re + sin * a.im, cos * b.im - sin * a.re),
            ));
        }
        updates.sort_unstable_by_key(|e| e.0);
        self.merge_updates(updates);
    }

    fn apply_block_masks(&mut self, full_mask: u64, v_mask: u64, theta: f64) {
        if full_mask == 0 {
            // Empty support: global phase e^{-iθ}, as in the dense engine.
            let phase = Complex64::cis(-theta);
            self.subspace_map(0, 0, move |a| a * phase);
            return;
        }
        let (sin, cos) = theta.sin_cos();
        self.pair_map(full_mask, v_mask, full_mask, move |a, b| {
            (
                Complex64::new(cos * a.re + sin * b.im, cos * a.im - sin * b.re),
                Complex64::new(cos * b.re + sin * a.im, cos * b.im - sin * a.re),
            )
        });
    }

    /// Applies `e^{-iθ·f(x)}`: the polynomial is evaluated per occupied
    /// entry ([`PhasePoly::eval_bits`] accumulates terms in the same order
    /// as the dense engine's strided diagonal materialization, so the
    /// phases are bit-identical) — `O(occupancy · terms)` instead of the
    /// dense path's `O(2^n)` diagonal buffer.
    pub fn apply_diag_poly(&mut self, poly: &PhasePoly, theta: f64) {
        self.touch();
        for (bits, a) in self.entries.iter_mut() {
            let f = poly.eval_bits(*bits);
            if f != 0.0 {
                *a *= Complex64::cis(-theta * f);
            }
        }
    }

    /// Applies `e^{-iθ·values[x]}` from a precomputed `2^n` diagonal
    /// (dense-table compatibility path; the sparse engine only reads the
    /// occupied slots).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != 2^n`.
    pub fn apply_diag_values(&mut self, values: &[f64], theta: f64) {
        assert_eq!(
            values.len(),
            1usize << self.n_qubits,
            "diagonal length mismatch"
        );
        self.touch();
        for (bits, a) in self.entries.iter_mut() {
            let f = values[*bits as usize];
            if f != 0.0 {
                *a *= Complex64::cis(-theta * f);
            }
        }
    }

    /// Expectation of a diagonal observable given a `2^n` value table.
    /// Bit-identical to the dense engine's full-register sum: unoccupied
    /// entries contribute exact IEEE zeros there.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != 2^n`.
    pub fn expectation_diag_values(&self, values: &[f64]) -> f64 {
        assert_eq!(
            values.len(),
            1usize << self.n_qubits,
            "diagonal length mismatch"
        );
        self.entries
            .iter()
            .map(|(bits, a)| a.norm_sqr() * values[*bits as usize])
            .sum()
    }

    /// Expectation of a diagonal observable given as a polynomial —
    /// `O(occupancy · terms)`, no table required (how large-register
    /// solves evaluate their objective).
    pub fn expectation_diag_poly(&self, poly: &PhasePoly) -> f64 {
        self.entries
            .iter()
            .map(|(bits, a)| a.norm_sqr() * poly.eval_bits(*bits))
            .sum()
    }

    /// Fills `out` with the cumulative probability over the *occupied*
    /// entries (ascending basis index). Because skipped entries add exact
    /// zeros, the values at occupied slots match the dense engine's
    /// `2^n` table bit-for-bit — which is what keeps sample streams
    /// identical across engines.
    pub fn fill_cumulative(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.entries.len());
        let mut acc = 0.0f64;
        for (_, a) in &self.entries {
            acc += a.norm_sqr();
            out.push(acc);
        }
    }

    /// Samples `shots` outcomes using a prebuilt occupied-entry cumulative
    /// table (see [`SparseStateVector::fill_cumulative`]). Consumes one
    /// `rng.gen::<f64>()` per shot and resolves ties exactly like the
    /// dense engine, so a shared seed yields identical histograms.
    ///
    /// # Panics
    ///
    /// Panics if the table length does not match the occupancy.
    pub fn sample_with_cumulative<R: Rng>(
        &self,
        cumulative: &[f64],
        shots: u64,
        rng: &mut R,
    ) -> Counts {
        assert_eq!(
            cumulative.len(),
            self.entries.len(),
            "table length mismatch"
        );
        let total = *cumulative.last().expect("non-empty state");
        let mut counts = Counts::new();
        for _ in 0..shots {
            let r: f64 = rng.gen::<f64>() * total;
            let bits = if r == 0.0 {
                // The dense table's partition_point lands on basis index 0
                // for r = 0 (its cumulative starts at index 0 regardless
                // of occupancy); mirror that endpoint exactly.
                0
            } else {
                let slot = cumulative.partition_point(|&c| c < r);
                self.entries[slot.min(self.entries.len() - 1)].0
            };
            counts.record(bits);
        }
        counts
    }

    /// Samples `shots` measurement outcomes. The cumulative-weight table
    /// is built at most once per state mutation: repeated `sample` calls
    /// within one evaluation reuse it, matching the dense engine's
    /// prefix-table cache in [`crate::SimWorkspace`].
    pub fn sample<R: Rng>(&self, shots: u64, rng: &mut R) -> Counts {
        if !self.cumulative_valid.get() {
            self.fill_cumulative(&mut self.cumulative.borrow_mut());
            self.cumulative_valid.set(true);
        }
        let cumulative = self.cumulative.borrow();
        self.sample_with_cumulative(&cumulative, shots, rng)
    }

    /// Applies `op` to the amplitude of every occupied index matching
    /// `index & fixed_mask == fixed_value` (phase-type kernels: the
    /// occupied set never changes, zeros stay zero).
    fn subspace_map<Op>(&mut self, fixed_mask: u64, fixed_value: u64, op: Op)
    where
        Op: Fn(Complex64) -> Complex64,
    {
        self.touch();
        for (bits, a) in self.entries.iter_mut() {
            if *bits & fixed_mask == fixed_value {
                *a = op(*a);
            }
        }
    }

    /// Applies `op` to every amplitude pair `(i, j)` with
    /// `i & fixed_mask == fixed_value`, `j = i ^ partner_xor`, where at
    /// least one member is occupied — the partner is materialized on
    /// demand (support growth) and exact-zero results are pruned.
    fn pair_map<Op>(&mut self, fixed_mask: u64, fixed_value: u64, partner_xor: u64, op: Op)
    where
        Op: Fn(Complex64, Complex64) -> (Complex64, Complex64),
    {
        debug_assert_ne!(partner_xor, 0, "pair kernel needs a partner");
        debug_assert_eq!(partner_xor & !fixed_mask, 0, "partner bits must be fixed");
        // Canonical (enumerated) index of every touched pair. Both pair
        // members canonicalize to the same value, so sort + dedup gives
        // each pair exactly once.
        let mut pairs: Vec<u64> = self
            .entries
            .iter()
            .filter_map(|&(bits, _)| {
                let f = bits & fixed_mask;
                if f == fixed_value {
                    Some(bits)
                } else if f == fixed_value ^ partner_xor {
                    Some(bits ^ partner_xor)
                } else {
                    None
                }
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        if pairs.is_empty() {
            return;
        }
        let mut updates: Vec<(u64, Complex64)> = Vec::with_capacity(pairs.len() * 2);
        for &i in &pairs {
            let j = i ^ partner_xor;
            let (na, nb) = op(self.amplitude(i), self.amplitude(j));
            updates.push((i, na));
            updates.push((j, nb));
        }
        updates.sort_unstable_by_key(|e| e.0);
        self.merge_updates(updates);
    }

    /// Replaces/inserts the given sorted, index-unique updates into the
    /// sorted entry list, pruning exact complex zeros.
    fn merge_updates(&mut self, updates: Vec<(u64, Complex64)>) {
        debug_assert!(updates.windows(2).all(|w| w[0].0 < w[1].0));
        self.touch();
        let old = std::mem::take(&mut self.entries);
        let mut out = Vec::with_capacity(old.len() + updates.len());
        let push_nonzero = |out: &mut Vec<(u64, Complex64)>, bits: u64, a: Complex64| {
            if a.re != 0.0 || a.im != 0.0 {
                out.push((bits, a));
            }
        };
        let mut it = updates.into_iter().peekable();
        for (bits, a) in old {
            while let Some(&(ubits, ua)) = it.peek() {
                if ubits < bits {
                    push_nonzero(&mut out, ubits, ua);
                    it.next();
                } else {
                    break;
                }
            }
            if it.peek().is_some_and(|&(ubits, _)| ubits == bits) {
                let (ubits, ua) = it.next().expect("peeked");
                push_nonzero(&mut out, ubits, ua);
            } else {
                out.push((bits, a));
            }
        }
        for (ubits, ua) in it {
            push_nonzero(&mut out, ubits, ua);
        }
        self.entries = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScalarStateVector;
    use crate::state::StateVector;
    use choco_mathkit::c64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    const EPS: f64 = 1e-12;

    fn assert_matches_dense(c: &Circuit) {
        let sparse = SparseStateVector::run(c);
        let dense = StateVector::run(c);
        for bits in 0..(1u64 << c.n_qubits()) {
            let (a, b) = (sparse.amplitude(bits), dense.amplitude(bits));
            assert!(a.approx_eq(b, 1e-12), "bits={bits}: sparse {a} dense {b}");
        }
    }

    #[test]
    fn initial_state_is_one_entry() {
        let s = SparseStateVector::new(4);
        assert_eq!(s.occupancy(), 1);
        assert_eq!(s.probability(0), 1.0);
        assert!((s.density() - 1.0 / 16.0).abs() < EPS);
    }

    #[test]
    fn basis_permutations_keep_occupancy_one() {
        let mut s = SparseStateVector::from_bits(3, 0b011);
        s.apply_gate(&Gate::X(2));
        s.apply_gate(&Gate::Cx(0, 1));
        s.apply_gate(&Gate::Swap(0, 2));
        assert_eq!(s.occupancy(), 1, "permutations never grow support");
        assert!((s.norm_sqr() - 1.0).abs() < EPS);
    }

    #[test]
    fn hadamard_grows_support_on_demand() {
        let mut s = SparseStateVector::new(3);
        s.apply_gate(&Gate::H(0));
        assert_eq!(s.occupancy(), 2);
        s.apply_gate(&Gate::H(1));
        assert_eq!(s.occupancy(), 4);
        // Interference back down: H is its own inverse.
        s.apply_gate(&Gate::H(1));
        s.apply_gate(&Gate::H(0));
        assert_eq!(s.occupancy(), 1, "exact zeros are pruned");
        assert!((s.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ublock_stays_in_pattern_pair() {
        let block = UBlock::from_u_with_angle(&[1, -1, 1], 1.3);
        let mut s = SparseStateVector::from_bits(3, 0b101);
        s.apply_ublock(&block);
        assert_eq!(s.occupancy(), 2);
        assert!((s.probability(0b101) + s.probability(0b010) - 1.0).abs() < EPS);
        // Off-pattern states are untouched.
        let mut s = SparseStateVector::from_bits(3, 0b111);
        s.apply_ublock(&block);
        assert_eq!(s.occupancy(), 1);
        assert!((s.probability(0b111) - 1.0).abs() < EPS);
    }

    #[test]
    fn empty_support_ublock_is_a_global_phase() {
        let block = UBlock {
            support: vec![],
            pattern: 0,
            angle: 0.3,
        };
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut s = SparseStateVector::run(&c);
        s.apply_ublock(&block);
        assert!(s.amplitude(0).approx_eq(
            Complex64::cis(-0.3).scale(std::f64::consts::FRAC_1_SQRT_2),
            EPS
        ));
    }

    #[test]
    fn mixed_circuit_matches_dense_engine() {
        let mut poly = PhasePoly::new(5);
        poly.add_constant(0.3);
        poly.add_linear(0, 1.0);
        poly.add_linear(4, -0.8);
        poly.add_quadratic(1, 3, 0.6);
        let mut c = Circuit::new(5);
        c.h(0)
            .h(3)
            .ry(1, 0.7)
            .rx(2, -0.4)
            .rz(0, 1.2)
            .p(4, 0.8)
            .cx(0, 1)
            .cz(1, 2)
            .cp(2, 4, -0.6)
            .ccx(0, 1, 4)
            .mcx(vec![0, 2], 3)
            .mcphase(vec![1, 2, 4], 0.9)
            .xy(1, 4, 0.35)
            .ublock(UBlock::from_u_with_angle(&[1, 0, -1, 1, -1], 0.55))
            .diag(Arc::new(poly), 0.75)
            .push(Gate::Swap(0, 4))
            .push(Gate::Y(2));
        assert_matches_dense(&c);
    }

    #[test]
    fn amplitudes_are_bit_identical_to_dense_not_just_close() {
        // Bit-identity (==, not approx) is what makes the CI engine
        // matrix's byte-identical-report check possible.
        let mut poly = PhasePoly::new(4);
        poly.add_linear(1, 0.7);
        poly.add_quadratic(0, 3, -0.4);
        let mut c = Circuit::new(4);
        c.load_bits(0b0101);
        c.diag(Arc::new(poly), 0.9);
        c.ublock(UBlock::from_u_with_angle(&[1, -1, 0, 1], 0.5));
        c.ublock(UBlock::from_u_with_angle(&[0, 1, -1, -1], -0.8));
        let sparse = SparseStateVector::run(&c);
        let dense = StateVector::run(&c);
        for &(bits, a) in sparse.entries() {
            let d = dense.amplitude(bits);
            assert!(a.re == d.re && a.im == d.im, "bits={bits}: {a} vs {d}");
        }
    }

    #[test]
    fn degenerate_gates_are_no_ops() {
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        c.push(Gate::Cx(0, 0));
        c.push(Gate::Swap(1, 1));
        c.push(Gate::Ccx(0, 1, 1));
        assert_matches_dense(&c);
    }

    #[test]
    fn controlled_u_and_all_1q_shapes_match_oracle() {
        let mut c = Circuit::new(3);
        c.h(0).h(2);
        c.push(Gate::S(0)); // diagonal
        c.push(Gate::X(1)); // anti-diagonal
        c.push(Gate::Ry(2, 0.9)); // real
        c.push(Gate::ControlledU {
            controls: vec![0],
            target: 2,
            matrix: Gate::Rx(2, 0.4).matrix_1q().unwrap(), // general complex
        });
        let sparse = SparseStateVector::run(&c);
        let oracle = ScalarStateVector::run(&c);
        for (bits, &a) in oracle.amplitudes().iter().enumerate() {
            assert!(sparse.amplitude(bits as u64).approx_eq(a, 1e-12));
        }
    }

    #[test]
    fn diag_values_matches_diag_poly() {
        let mut poly = PhasePoly::new(3);
        poly.add_linear(2, -1.5);
        poly.add_quadratic(0, 1, 0.7);
        let values: Vec<f64> = (0..8u64).map(|b| poly.eval_bits(b)).collect();
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        let mut a = SparseStateVector::run(&c);
        let mut b = a.clone();
        a.apply_diag_poly(&poly, 0.9);
        b.apply_diag_values(&values, 0.9);
        for bits in 0..8u64 {
            assert!(a.amplitude(bits).approx_eq(b.amplitude(bits), EPS));
        }
    }

    #[test]
    fn expectations_match_dense() {
        let mut poly = PhasePoly::new(3);
        poly.add_linear(0, 1.0);
        poly.add_linear(1, 2.0);
        poly.add_quadratic(0, 2, -0.5);
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(2, 0.8);
        let sparse = SparseStateVector::run(&c);
        let dense = StateVector::run(&c);
        let table: Vec<f64> = (0..8u64).map(|b| poly.eval_bits(b)).collect();
        assert_eq!(
            sparse.expectation_diag_values(&table),
            dense.expectation_diag_values(&table),
            "table expectation must be bit-identical"
        );
        assert!(
            (sparse.expectation_diag_poly(&poly) - dense.expectation_diag_poly(&poly)).abs()
                < 1e-12
        );
    }

    #[test]
    fn sampling_stream_is_identical_to_dense() {
        let mut c = Circuit::new(4);
        c.load_bits(0b0011);
        c.ublock(UBlock::from_u_with_angle(&[1, -1, 1, 0], 0.8));
        c.ublock(UBlock::from_u_with_angle(&[0, 1, -1, 1], 0.4));
        let sparse = SparseStateVector::run(&c);
        let dense = StateVector::run(&c);
        let mut rng_a = StdRng::seed_from_u64(17);
        let mut rng_b = StdRng::seed_from_u64(17);
        let a = sparse.sample(5_000, &mut rng_a);
        let b = dense.sample(5_000, &mut rng_b);
        assert_eq!(a, b, "same seed must give identical histograms");
    }

    #[test]
    fn reset_reuses_buffer() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1);
        let mut s = SparseStateVector::run(&c);
        assert!(s.occupancy() > 1);
        s.reset_zero();
        assert_eq!(s.occupancy(), 1);
        assert_eq!(s.probability(0), 1.0);
        s.reset_bits(0b101);
        assert_eq!(s.probability(0b101), 1.0);
    }

    #[test]
    fn wide_register_beyond_dense_allocation_runs() {
        // 30 qubits: a dense buffer would be 2^30 × 16 B = 16 GiB. The
        // sparse engine tracks two entries. Start on the block's |v⟩
        // pattern (even bits set) so the rotation engages.
        let u: Vec<i8> = (0..30).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
        let v_bits = (0..30)
            .filter(|i| i % 2 == 0)
            .fold(0u64, |m, i| m | (1 << i));
        let mut s = SparseStateVector::from_bits(30, v_bits);
        s.apply_ublock(&UBlock::from_u_with_angle(&u, 0.7));
        assert_eq!(s.occupancy(), 2);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        assert!((s.probability(v_bits) - 0.7f64.cos().powi(2)).abs() < 1e-12);
    }

    #[test]
    fn repeated_sampling_reuses_the_cumulative_table() {
        let mut c = Circuit::new(4);
        c.load_bits(0b0011);
        c.ublock(UBlock::from_u_with_angle(&[1, -1, 1, 0], 0.8));
        let mut s = SparseStateVector::run(&c);
        assert!(!s.cumulative_valid.get(), "fresh state has no table");
        let mut rng = StdRng::seed_from_u64(3);
        let a = s.sample(1_000, &mut rng);
        assert!(s.cumulative_valid.get(), "first sample builds the table");
        let table_ptr = s.cumulative.borrow().as_ptr();
        let b = s.sample(1_000, &mut rng);
        assert_eq!(s.cumulative.borrow().as_ptr(), table_ptr, "table rebuilt");
        assert_eq!(a.shots() + b.shots(), 2_000);
        // The cached path must sample the same stream as a fresh table.
        let mut fresh = Vec::new();
        s.fill_cumulative(&mut fresh);
        let mut ra = StdRng::seed_from_u64(9);
        let mut rb = StdRng::seed_from_u64(9);
        assert_eq!(
            s.sample(2_000, &mut ra),
            s.sample_with_cumulative(&fresh, 2_000, &mut rb)
        );
        // Any mutation invalidates the cache.
        s.apply_gate(&Gate::X(0));
        assert!(!s.cumulative_valid.get(), "mutation must invalidate");
        let mut rc = StdRng::seed_from_u64(5);
        let mut rd = StdRng::seed_from_u64(5);
        let cached = s.sample(2_000, &mut rc);
        let direct = {
            let mut fresh = Vec::new();
            s.fill_cumulative(&mut fresh);
            s.sample_with_cumulative(&fresh, 2_000, &mut rd)
        };
        assert_eq!(cached, direct, "post-mutation table must be rebuilt");
    }

    #[test]
    fn rotation_transfers_amplitude_to_inserted_partner() {
        let mut s = SparseStateVector::from_bits(2, 0b01);
        // Quarter turn: all amplitude transfers to the partner |10⟩.
        let block = UBlock::from_u_with_angle(&[1, -1], std::f64::consts::FRAC_PI_2);
        s.apply_ublock(&block);
        assert!((s.probability(0b10) - 1.0).abs() < 1e-12);
        assert!(s.amplitude(0b10).approx_eq(c64(0.0, -1.0), 1e-12));
    }
}
