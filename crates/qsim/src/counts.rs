//! Measurement outcome histograms.

use std::collections::BTreeMap;
use std::fmt;

/// A histogram of measured bitstrings.
///
/// # Examples
///
/// ```
/// use choco_qsim::Counts;
///
/// let mut counts = Counts::new();
/// counts.record(0b101);
/// counts.record(0b101);
/// counts.record(0b010);
/// assert_eq!(counts.shots(), 3);
/// assert!((counts.probability(0b101) - 2.0 / 3.0).abs() < 1e-12);
/// ```
/// Outcomes are stored in a `BTreeMap`, so iteration — and therefore
/// every floating-point accumulation over a histogram (success rate,
/// ARG, expectations) — happens in ascending-bitstring order. This keeps
/// solver metrics bit-identical across processes and thread counts; a
/// hash map's arbitrary order would perturb the last ulp from run to run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counts {
    map: BTreeMap<u64, u64>,
    shots: u64,
}

impl Counts {
    /// An empty histogram.
    pub fn new() -> Self {
        Counts::default()
    }

    /// Records one measurement of `bits`.
    pub fn record(&mut self, bits: u64) {
        *self.map.entry(bits).or_insert(0) += 1;
        self.shots += 1;
    }

    /// Records `n` measurements of `bits`.
    pub fn record_n(&mut self, bits: u64, n: u64) {
        if n > 0 {
            *self.map.entry(bits).or_insert(0) += n;
            self.shots += n;
        }
    }

    /// Total number of shots recorded.
    #[inline]
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// Number of distinct outcomes.
    #[inline]
    pub fn distinct(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing has been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.shots == 0
    }

    /// Count for a specific outcome.
    pub fn count(&self, bits: u64) -> u64 {
        self.map.get(&bits).copied().unwrap_or(0)
    }

    /// Empirical probability of an outcome (0.0 when no shots).
    pub fn probability(&self, bits: u64) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.count(bits) as f64 / self.shots as f64
        }
    }

    /// Iterates over `(bits, count)` pairs in ascending bitstring order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.map.iter().map(|(&b, &c)| (b, c))
    }

    /// The most frequent outcome, ties broken by smaller bitstring.
    pub fn most_frequent(&self) -> Option<u64> {
        self.map
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&bits, _)| bits)
    }

    /// Total probability mass on outcomes satisfying `pred`.
    pub fn mass_where<F: Fn(u64) -> bool>(&self, pred: F) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .map
            .iter()
            .filter(|(&bits, _)| pred(bits))
            .map(|(_, &c)| c)
            .sum();
        hits as f64 / self.shots as f64
    }

    /// Expectation of `f` under the empirical distribution.
    pub fn expectation<F: Fn(u64) -> f64>(&self, f: F) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        self.map
            .iter()
            .map(|(&bits, &c)| f(bits) * c as f64)
            .sum::<f64>()
            / self.shots as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Counts) {
        for (bits, c) in other.iter() {
            self.record_n(bits, c);
        }
    }

    /// Returns a new histogram with every bitstring rewritten by `f`
    /// (used to lift reduced-circuit outcomes back to full variable space
    /// after variable elimination).
    pub fn map_bits<F: Fn(u64) -> u64>(&self, f: F) -> Counts {
        let mut out = Counts::new();
        for (bits, c) in self.iter() {
            out.record_n(f(bits), c);
        }
        out
    }

    /// Outcomes sorted by decreasing count (ties: smaller bitstring first).
    pub fn sorted(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

impl FromIterator<u64> for Counts {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut c = Counts::new();
        for bits in iter {
            c.record(bits);
        }
        c
    }
}

impl Extend<u64> for Counts {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for bits in iter {
            self.record(bits);
        }
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "counts[{} shots: ", self.shots)?;
        for (i, (bits, c)) in self.sorted().into_iter().take(8).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{bits:b}:{c}")?;
        }
        if self.distinct() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let counts: Counts = [1u64, 1, 2, 3, 3, 3].into_iter().collect();
        assert_eq!(counts.shots(), 6);
        assert_eq!(counts.distinct(), 3);
        assert_eq!(counts.count(3), 3);
        assert_eq!(counts.most_frequent(), Some(3));
    }

    #[test]
    fn empty_behaviour() {
        let c = Counts::new();
        assert!(c.is_empty());
        assert_eq!(c.probability(0), 0.0);
        assert_eq!(c.expectation(|_| 1.0), 0.0);
        assert_eq!(c.most_frequent(), None);
    }

    #[test]
    fn mass_where_counts_predicate() {
        let counts: Counts = [0b00u64, 0b01, 0b10, 0b11].into_iter().collect();
        let even = counts.mass_where(|b| b % 2 == 0);
        assert!((even - 0.5).abs() < 1e-12);
    }

    #[test]
    fn expectation_weighted() {
        let mut c = Counts::new();
        c.record_n(0, 3);
        c.record_n(1, 1);
        assert!((c.expectation(|b| b as f64) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a: Counts = [1u64, 2].into_iter().collect();
        let b: Counts = [2u64, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.shots(), 4);
        assert_eq!(a.count(2), 2);
    }

    #[test]
    fn map_bits_rewrites() {
        let counts: Counts = [0b01u64, 0b01, 0b10].into_iter().collect();
        let lifted = counts.map_bits(|b| b << 1);
        assert_eq!(lifted.count(0b010), 2);
        assert_eq!(lifted.count(0b100), 1);
        assert_eq!(lifted.shots(), 3);
    }

    #[test]
    fn sorted_is_descending() {
        let counts: Counts = [5u64, 5, 5, 7, 7, 9].into_iter().collect();
        let sorted = counts.sorted();
        assert_eq!(sorted[0], (5, 3));
        assert_eq!(sorted[1], (7, 2));
        assert_eq!(sorted[2], (9, 1));
    }

    #[test]
    fn ties_broken_by_smaller_bitstring() {
        let counts: Counts = [4u64, 2].into_iter().collect();
        assert_eq!(counts.most_frequent(), Some(2));
    }
}
