//! The scan-and-mask reference engine.
//!
//! [`ScalarStateVector`] preserves the original single-threaded kernels
//! that iterate all `2^n` indices and filter by mask. It exists for two
//! jobs only:
//!
//! 1. **Test oracle** — property tests drive random circuits through both
//!    engines and require 1e-10 agreement (`tests/kernels.rs` and the
//!    `state` unit tests).
//! 2. **Bench baseline** — the `statevector_layer` Criterion bench and the
//!    `bench_json` emitter measure the fast path against this baseline so
//!    the speedup is tracked across PRs in `BENCH_simulation.json`.
//!
//! Production code paths must use [`crate::StateVector`].

use crate::circuit::Circuit;
use crate::gate::{Gate, ShiftBlock, UBlock};
use crate::phasepoly::PhasePoly;
use crate::state::StateVector;
use choco_mathkit::Complex64;

/// A state vector evolved by the original O(2^n)-per-gate scalar kernels.
#[derive(Clone, Debug)]
pub struct ScalarStateVector {
    n_qubits: usize,
    amps: Vec<Complex64>,
}

impl ScalarStateVector {
    /// The all-zeros state `|0…0⟩`.
    pub fn new(n_qubits: usize) -> Self {
        assert!(n_qubits <= 30, "state vector limited to 30 qubits");
        let mut amps = vec![Complex64::ZERO; 1 << n_qubits];
        amps[0] = Complex64::ONE;
        ScalarStateVector { n_qubits, amps }
    }

    /// A computational basis state `|bits⟩`.
    pub fn from_bits(n_qubits: usize, bits: u64) -> Self {
        let mut s = ScalarStateVector::new(n_qubits);
        s.amps[0] = Complex64::ZERO;
        s.amps[bits as usize] = Complex64::ONE;
        s
    }

    /// Runs a circuit from `|0…0⟩`.
    pub fn run(circuit: &Circuit) -> Self {
        let mut s = ScalarStateVector::new(circuit.n_qubits());
        s.apply_circuit(circuit);
        s
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Borrow of all amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Applies every gate of a circuit in order.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(
            circuit.n_qubits() <= self.n_qubits,
            "circuit wider than state"
        );
        for g in circuit.iter() {
            self.apply_gate(g);
        }
    }

    /// Applies a single gate with the scan-and-mask kernels.
    pub fn apply_gate(&mut self, gate: &Gate) {
        match gate {
            Gate::Cx(c, t) => self.apply_mcx(1u64 << c, *t),
            Gate::Cz(a, b) => self.apply_mcphase((1u64 << a) | (1u64 << b), std::f64::consts::PI),
            Gate::Cp(a, b, theta) => self.apply_mcphase((1u64 << a) | (1u64 << b), *theta),
            Gate::Swap(a, b) => self.apply_swap(*a, *b),
            Gate::Ccx(c1, c2, t) => self.apply_mcx((1u64 << c1) | (1u64 << c2), *t),
            Gate::Mcx { controls, target } => {
                let mask = controls.iter().fold(0u64, |m, &q| m | (1 << q));
                self.apply_mcx(mask, *target);
            }
            Gate::McPhase { qubits, angle } => {
                let mask = qubits.iter().fold(0u64, |m, &q| m | (1 << q));
                self.apply_mcphase(mask, *angle);
            }
            Gate::ControlledU {
                controls,
                target,
                matrix,
            } => {
                let mask = controls.iter().fold(0u64, |m, &q| m | (1 << q));
                self.apply_controlled_1q(mask, *matrix, *target);
            }
            Gate::UBlock(b) => self.apply_ublock(b),
            Gate::ShiftBlock(b) => self.apply_shift_block(b),
            Gate::XyMix(a, b, theta) => {
                let full = (1u64 << a) | (1u64 << b);
                self.apply_block_masks(full, 1u64 << a, 2.0 * theta);
            }
            Gate::DiagPhase(poly, theta) => self.apply_diag_poly(poly, *theta),
            g1q => {
                let m = g1q
                    .matrix_1q()
                    .unwrap_or_else(|| panic!("unhandled gate {g1q}"));
                self.apply_1q(m, g1q.qubits()[0]);
            }
        }
    }

    /// Applies a 2×2 unitary to qubit `q` (stride walk over all pairs).
    pub fn apply_1q(&mut self, m: [[Complex64; 2]; 2], q: usize) {
        let step = 1usize << q;
        let dim = self.amps.len();
        let mut base = 0usize;
        while base < dim {
            for i in base..base + step {
                let j = i + step;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[j] = m[1][0] * a0 + m[1][1] * a1;
            }
            base += step << 1;
        }
    }

    /// Controlled 2×2 unitary: full scan filtered by the control mask.
    pub fn apply_controlled_1q(&mut self, controls_mask: u64, m: [[Complex64; 2]; 2], q: usize) {
        let t = 1u64 << q;
        for i in 0..self.amps.len() as u64 {
            if i & controls_mask == controls_mask && i & t == 0 {
                let j = (i | t) as usize;
                let i = i as usize;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[j] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    fn apply_swap(&mut self, a: usize, b: usize) {
        let (ma, mb) = (1u64 << a, 1u64 << b);
        for i in 0..self.amps.len() as u64 {
            if i & ma == ma && i & mb == 0 {
                let j = (i ^ ma) | mb;
                self.amps.swap(i as usize, j as usize);
            }
        }
    }

    fn apply_mcx(&mut self, controls_mask: u64, target: usize) {
        let t = 1u64 << target;
        for i in 0..self.amps.len() as u64 {
            if i & controls_mask == controls_mask && i & t == 0 {
                self.amps.swap(i as usize, (i | t) as usize);
            }
        }
    }

    fn apply_mcphase(&mut self, mask: u64, angle: f64) {
        let phase = Complex64::cis(angle);
        for i in 0..self.amps.len() as u64 {
            if i & mask == mask {
                self.amps[i as usize] *= phase;
            }
        }
    }

    /// Commute-Hamiltonian block via full scan.
    pub fn apply_ublock(&mut self, block: &UBlock) {
        let mut full_mask = 0u64;
        let mut v_mask = 0u64;
        for (k, &q) in block.support.iter().enumerate() {
            full_mask |= 1 << q;
            if (block.pattern >> k) & 1 == 1 {
                v_mask |= 1 << q;
            }
        }
        self.apply_block_masks(full_mask, v_mask, block.angle);
    }

    fn apply_block_masks(&mut self, full_mask: u64, v_mask: u64, theta: f64) {
        let cos = Complex64::from_re(theta.cos());
        let nisin = Complex64::new(0.0, -theta.sin());
        for i in 0..self.amps.len() as u64 {
            if i & full_mask == v_mask {
                let j = (i ^ full_mask) as usize;
                let i = i as usize;
                let a = self.amps[i];
                let b = self.amps[j];
                self.amps[i] = cos * a + nisin * b;
                self.amps[j] = nisin * a + cos * b;
            }
        }
    }

    /// Generalized commute block with slack-register shifts, via full scan:
    /// every eligible source index rotates with its shifted partner,
    /// ineligible indices are identity.
    pub fn apply_shift_block(&mut self, block: &ShiftBlock) {
        if block.shifts.is_empty() {
            self.apply_block_masks(block.full_mask(), block.pattern_abs(), block.angle);
            return;
        }
        let full_mask = block.full_mask();
        let v_mask = block.pattern_abs();
        let cos = Complex64::from_re(block.angle.cos());
        let nisin = Complex64::new(0.0, -block.angle.sin());
        for i in 0..self.amps.len() as u64 {
            if i & full_mask == v_mask {
                let Some(j) = block.forward(i) else {
                    continue;
                };
                let (i, j) = (i as usize, j as usize);
                let a = self.amps[i];
                let b = self.amps[j];
                self.amps[i] = cos * a + nisin * b;
                self.amps[j] = nisin * a + cos * b;
            }
        }
    }

    /// Diagonal evolution by per-index polynomial evaluation.
    pub fn apply_diag_poly(&mut self, poly: &PhasePoly, theta: f64) {
        for (i, amp) in self.amps.iter_mut().enumerate() {
            let f = poly.eval_bits(i as u64);
            if f != 0.0 {
                *amp *= Complex64::cis(-theta * f);
            }
        }
    }

    /// Per-basis measurement probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Fidelity `|⟨self|other⟩|²` against the production engine.
    pub fn fidelity_against(&self, other: &StateVector) -> f64 {
        assert_eq!(self.n_qubits, other.n_qubits(), "dimension mismatch");
        self.amps
            .iter()
            .zip(other.amplitudes().iter())
            .map(|(a, b)| a.conj() * *b)
            .sum::<Complex64>()
            .norm_sqr()
    }

    /// Fidelity `|⟨self|other⟩|²` against either production engine
    /// representation.
    pub fn fidelity_against_engine(&self, other: &crate::SimEngine) -> f64 {
        assert_eq!(self.n_qubits, other.n_qubits(), "dimension mismatch");
        self.amps
            .iter()
            .enumerate()
            .map(|(bits, a)| a.conj() * other.amplitude(bits as u64))
            .sum::<Complex64>()
            .norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn oracle_reproduces_bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = ScalarStateVector::run(&c);
        let p = s.probabilities();
        assert!((p[0b00] - 0.5).abs() < 1e-12);
        assert!((p[0b11] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn oracle_agrees_with_fast_engine_on_mixed_circuit() {
        let mut poly = PhasePoly::new(4);
        poly.add_linear(1, 0.7);
        poly.add_quadratic(0, 3, -0.4);
        let mut c = Circuit::new(4);
        c.h(0)
            .ry(1, 0.3)
            .cx(0, 2)
            .ccx(0, 1, 3)
            .xy(2, 3, 0.8)
            .diag(Arc::new(poly), 0.9)
            .mcphase(vec![0, 1, 3], 1.1)
            .ublock(UBlock::from_u_with_angle(&[1, -1, 0, 1], 0.5));
        let oracle = ScalarStateVector::run(&c);
        let fast = StateVector::run(&c);
        assert!((oracle.fidelity_against(&fast) - 1.0).abs() < 1e-12);
    }
}
