//! Batched multi-angle plan replay: K candidate angle sets, one pass.
//!
//! A variational optimizer routinely holds K parameter vectors for the
//! *same* circuit shape — an initial simplex, a geometry rebuild, a
//! shrink step. The serial compact path replays the cached
//! [`crate::plan::GatePlan`] K separate times, paying the rank-table
//! traversal, kernel dispatch, and cache refill per candidate.
//! [`BatchWorkspace`] instead holds a structure-of-arrays amplitude
//! buffer of length `K·|F|` in **rank-major** order — `amps[rank·K +
//! lane]`, all K candidates of one basis rank contiguous — and replays
//! the plan once, with the inner diagonal/2×2 loops running over the K
//! lanes ([`crate::plan::GatePlan::execute_batch`]).
//!
//! Bit-identity contract: every lane evaluates exactly the IEEE
//! expression sequence its own serial replay would, so amplitudes,
//! expectations, and sample streams read from a lane are bit-identical
//! to a [`crate::CompactStateVector`] run of that lane's circuit — at
//! any batch size and any thread count. The read operations below mirror
//! the compact engine's term for term (same exact-zero filters, same
//! cumulative-table endpoint handling).

use crate::counts::Counts;
use crate::phasepoly::PhasePoly;
use crate::plan::{BatchScratch, GatePlan};
use crate::simconfig::SimConfig;
use choco_mathkit::Complex64;
use rand::Rng;
use std::sync::Arc;

/// The SoA amplitude buffer for batched compact replay, plus per-lane
/// read operations. Owned (and reused across iterations) by
/// [`crate::SimWorkspace`]; obtained through
/// [`crate::SimWorkspace::run_batch`].
#[derive(Debug, Default)]
pub struct BatchWorkspace {
    n_qubits: usize,
    /// The sorted feasible basis `F` shared with the plan that replayed
    /// into this buffer.
    basis: Arc<Vec<u64>>,
    /// Rank-major lanes: `amps[rank * lanes + lane]`.
    amps: Vec<Complex64>,
    lanes: usize,
    scratch: BatchScratch,
    reallocations: u64,
}

impl BatchWorkspace {
    /// An empty batch workspace (no buffer until the first replay).
    pub(crate) fn new() -> Self {
        BatchWorkspace::default()
    }

    /// Replays `plan` over one lane per circuit. The caller has verified
    /// every circuit matches the plan's shape.
    pub(crate) fn replay(
        &mut self,
        plan: &GatePlan,
        circuits: &[crate::Circuit],
        config: &SimConfig,
    ) {
        let basis = plan.basis();
        assert_eq!(basis.first(), Some(&0), "feasible basis must contain |0…0⟩");
        let lanes = circuits.len();
        let needed = lanes * basis.len();
        if self.amps.capacity() < needed {
            self.reallocations += 1;
        }
        if !Arc::ptr_eq(&self.basis, basis) {
            self.basis = basis.clone();
        }
        self.n_qubits = circuits[0].n_qubits();
        self.lanes = lanes;
        self.amps.clear();
        self.amps.resize(needed, Complex64::ZERO);
        for lane in 0..lanes {
            self.amps[lane] = Complex64::ONE; // rank 0 of every lane
        }
        plan.execute_batch(circuits, &mut self.amps, &mut self.scratch, config);
    }

    /// Number of lanes (K) held by the last replay.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of qubits of the batched circuits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The sorted feasible basis the lanes are ranked over.
    #[inline]
    pub fn basis(&self) -> &[u64] {
        &self.basis
    }

    /// How many times the SoA buffer had to grow. Stays flat once the
    /// workspace has warmed up on a shape/batch size — the batched analog
    /// of [`crate::SimWorkspace::reallocations`].
    #[inline]
    pub fn reallocations(&self) -> u64 {
        self.reallocations
    }

    #[inline]
    fn lane_amp(&self, rank: usize, lane: usize) -> Complex64 {
        self.amps[rank * self.lanes + lane]
    }

    /// The amplitude of basis state `bits` on one lane (zero off the
    /// feasible basis) — mirrors [`crate::CompactStateVector::amplitude`].
    pub fn amplitude(&self, lane: usize, bits: u64) -> Complex64 {
        assert!(lane < self.lanes, "lane out of range");
        match self.basis.binary_search(&bits) {
            Ok(rank) => self.lane_amp(rank, lane),
            Err(_) => Complex64::ZERO,
        }
    }

    /// Number of exactly non-zero amplitudes on one lane.
    pub fn occupancy(&self, lane: usize) -> usize {
        assert!(lane < self.lanes, "lane out of range");
        (0..self.basis.len())
            .map(|rank| self.lane_amp(rank, lane))
            .filter(|a| a.re != 0.0 || a.im != 0.0)
            .count()
    }

    /// One lane's total probability, with the same term sequence as
    /// [`crate::CompactStateVector::norm_sqr`].
    pub fn norm_sqr(&self, lane: usize) -> f64 {
        assert!(lane < self.lanes, "lane out of range");
        (0..self.basis.len())
            .map(|rank| self.lane_amp(rank, lane))
            .filter(|a| a.re != 0.0 || a.im != 0.0)
            .map(|a| a.norm_sqr())
            .sum()
    }

    /// One lane's expectation of a diagonal observable given a `2^n`
    /// value table — the exact term sequence of
    /// [`crate::CompactStateVector::expectation_diag_values`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != 2^n` or the lane is out of range.
    pub fn expectation_diag_values(&self, lane: usize, values: &[f64]) -> f64 {
        assert!(lane < self.lanes, "lane out of range");
        assert_eq!(
            values.len(),
            1usize << self.n_qubits,
            "diagonal length mismatch"
        );
        self.basis
            .iter()
            .enumerate()
            .map(|(rank, &bits)| (bits, self.lane_amp(rank, lane)))
            .filter(|(_, a)| a.re != 0.0 || a.im != 0.0)
            .map(|(bits, a)| a.norm_sqr() * values[bits as usize])
            .sum()
    }

    /// One lane's expectation of a diagonal polynomial observable — the
    /// exact term sequence of
    /// [`crate::CompactStateVector::expectation_diag_poly`].
    pub fn expectation_diag_poly(&self, lane: usize, poly: &PhasePoly) -> f64 {
        assert!(lane < self.lanes, "lane out of range");
        self.basis
            .iter()
            .enumerate()
            .map(|(rank, &bits)| (bits, self.lane_amp(rank, lane)))
            .filter(|(_, a)| a.re != 0.0 || a.im != 0.0)
            .map(|(bits, a)| a.norm_sqr() * poly.eval_bits(bits))
            .sum()
    }

    /// Fills `out` with one lane's cumulative probability over all `|F|`
    /// ranks — bit-identical to
    /// [`crate::CompactStateVector::fill_cumulative`] on that lane's
    /// serial state.
    pub fn fill_cumulative(&self, lane: usize, out: &mut Vec<f64>) {
        assert!(lane < self.lanes, "lane out of range");
        out.clear();
        out.reserve(self.basis.len());
        let mut acc = 0.0f64;
        for rank in 0..self.basis.len() {
            acc += self.lane_amp(rank, lane).norm_sqr();
            out.push(acc);
        }
    }

    /// Samples `shots` outcomes from one lane, building the cumulative
    /// table on the fly. Tie handling mirrors
    /// [`crate::CompactStateVector::sample_with_cumulative`] exactly, so
    /// a shared seed yields the identical histogram the serial engines
    /// produce for that lane's circuit.
    pub fn sample<R: Rng>(&self, lane: usize, shots: u64, rng: &mut R) -> Counts {
        let mut cumulative = Vec::new();
        self.fill_cumulative(lane, &mut cumulative);
        let total = *cumulative.last().expect("non-empty state");
        let mut counts = Counts::new();
        for _ in 0..shots {
            let r: f64 = rng.gen::<f64>() * total;
            let bits = if r == 0.0 {
                0
            } else {
                let slot = cumulative.partition_point(|&c| c < r);
                self.basis[slot.min(self.basis.len() - 1)]
            };
            counts.record(bits);
        }
        counts
    }
}
