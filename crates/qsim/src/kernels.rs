//! Low-level amplitude-update kernels: strided subspace enumeration and
//! multi-threaded execution.
//!
//! Every structured gate of the IR touches only a *subspace* of the `2^n`
//! basis states — the indices whose bits under a `fixed_mask` equal a
//! `fixed_value`. The kernels here enumerate exactly those `2^(n-k)`
//! indices (instead of scanning all `2^n` and filtering, as the retained
//! [`crate::oracle`] reference does) using a carry-propagation increment
//! that steps between matching indices in O(1):
//!
//! ```text
//! next = ((current | fixed_ext) + 1) & !fixed_ext
//! ```
//!
//! where `fixed_ext` extends the fixed mask with all bits above the state
//! dimension so the carry wraps cleanly. Chunk starts for worker threads
//! are seeded with a bit-scatter ([`expand_index`]).
//!
//! Threading uses `std::thread::scope` — no external dependencies — and
//! kicks in only above a configurable subspace-size threshold so small
//! states stay serial. Safety for the raw-pointer fan-out rests on a
//! disjointness argument documented on [`pair_map`] / [`subspace_map`].

use crate::simconfig::SimConfig;
use choco_mathkit::Complex64;

/// Scatters the low bits of `m` into the zero-bit positions of
/// `fixed_mask`: the `m`-th index (in increasing order) whose fixed bits
/// are all zero.
#[inline]
pub(crate) fn expand_index(m: u64, fixed_mask: u64) -> u64 {
    let mut out = 0u64;
    let mut remaining = m;
    let mut pos = 0u32;
    while remaining != 0 {
        if (fixed_mask >> pos) & 1 == 0 {
            out |= (remaining & 1) << pos;
            remaining >>= 1;
        }
        pos += 1;
        debug_assert!(pos < 64, "expand_index ran out of free bits");
    }
    out
}

/// Serial enumeration of `count` subspace indices starting from the free
/// pattern `start_free`, calling `f(index)` with the fixed value OR-ed in.
#[inline]
fn for_each_index<F: FnMut(usize)>(
    start_free: u64,
    count: usize,
    fixed_ext: u64,
    fixed_value: u64,
    mut f: F,
) {
    let mut free = start_free;
    for _ in 0..count {
        f((free | fixed_value) as usize);
        free = (free | fixed_ext).wrapping_add(1) & !fixed_ext;
    }
}

/// Raw amplitude-buffer handle shared across scoped worker threads.
///
/// # Safety
///
/// Each worker must touch a set of indices disjoint from every other
/// worker's. The kernels below guarantee that by partitioning the free-bit
/// pattern range: distinct free patterns map to distinct indices
/// (the fixed bits are identical across the subspace), and the pair
/// kernels additionally require the partner index to leave the subspace
/// (see [`pair_map`]).
pub(crate) struct AmpPtr(pub(crate) *mut Complex64);

unsafe impl Send for AmpPtr {}
unsafe impl Sync for AmpPtr {}

impl AmpPtr {
    /// Accessor that keeps closures capturing the `Sync` wrapper rather
    /// than the raw pointer field (edition-2021 disjoint capture).
    pub(crate) fn get(&self) -> *mut Complex64 {
        self.0
    }
}

/// Splits `count` work items across the configured workers and runs
/// `work(range)` on each, serially when below the parallel threshold.
/// Shared by the strided kernels here and the compact engine's plan
/// replay ([`crate::plan`]).
pub(crate) fn dispatch<W>(config: &SimConfig, count: usize, work: W)
where
    W: Fn(std::ops::Range<usize>) + Sync,
{
    let threads = config.effective_threads(count);
    if threads <= 1 {
        work(0..count);
        return;
    }
    let chunk = count.div_ceil(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let lo = t * chunk;
            let hi = (lo + chunk).min(count);
            if lo >= hi {
                break;
            }
            let work = &work;
            scope.spawn(move || work(lo..hi));
        }
    });
}

fn check_subspace(dim: usize, fixed_mask: u64, fixed_value: u64) -> (usize, u64) {
    // Hard asserts, not debug: the callers write through raw pointers, so
    // an out-of-register mask in a release build would be silent UB
    // instead of a panic. Cost is once per gate, not per index.
    assert!(dim.is_power_of_two(), "dimension must be a power of two");
    let index_mask = (dim - 1) as u64;
    assert_eq!(
        fixed_mask & !index_mask,
        0,
        "fixed mask outside the register"
    );
    assert_eq!(fixed_value & !fixed_mask, 0, "value outside fixed mask");
    let count = dim >> fixed_mask.count_ones();
    // Extend the fixed mask with every bit above the register so the
    // carry-increment wraps to zero at the end of the subspace.
    let fixed_ext = fixed_mask | !index_mask;
    (count, fixed_ext)
}

/// Applies `op` to the amplitude of every index matching
/// `index & fixed_mask == fixed_value`.
///
/// Disjointness (threading safety): every enumerated index has the same
/// fixed bits, so distinct free patterns give distinct indices, and the
/// free-pattern range is partitioned across workers.
pub(crate) fn subspace_map<Op>(
    amps: &mut [Complex64],
    config: &SimConfig,
    fixed_mask: u64,
    fixed_value: u64,
    op: Op,
) where
    Op: Fn(Complex64) -> Complex64 + Sync,
{
    let (count, fixed_ext) = check_subspace(amps.len(), fixed_mask, fixed_value);
    let ptr = AmpPtr(amps.as_mut_ptr());
    dispatch(config, count, |range| {
        let base = ptr.get();
        let start_free = expand_index(range.start as u64, fixed_ext);
        for_each_index(start_free, range.len(), fixed_ext, fixed_value, |i| {
            // SAFETY: `i < dim` by construction and each worker's index set
            // is disjoint (see `AmpPtr`).
            unsafe {
                let a = base.add(i);
                *a = op(*a);
            }
        });
    });
}

/// Applies `op` to every amplitude pair `(i, j)` where
/// `i & fixed_mask == fixed_value` and `j = i ^ partner_xor`.
///
/// Disjointness (threading safety): `partner_xor` must be a non-empty
/// subset of `fixed_mask`, so `j`'s fixed bits differ from `fixed_value` —
/// no `j` ever collides with another pair's `i`, and distinct free
/// patterns keep distinct `(i, j)` pairs.
pub(crate) fn pair_map<Op>(
    amps: &mut [Complex64],
    config: &SimConfig,
    fixed_mask: u64,
    fixed_value: u64,
    partner_xor: u64,
    op: Op,
) where
    Op: Fn(Complex64, Complex64) -> (Complex64, Complex64) + Sync,
{
    assert_ne!(partner_xor, 0, "pair kernel needs a partner");
    assert_eq!(
        partner_xor & !fixed_mask,
        0,
        "partner bits must be fixed bits"
    );
    let (count, fixed_ext) = check_subspace(amps.len(), fixed_mask, fixed_value);
    let ptr = AmpPtr(amps.as_mut_ptr());
    dispatch(config, count, |range| {
        let base = ptr.get();
        let start_free = expand_index(range.start as u64, fixed_ext);
        for_each_index(start_free, range.len(), fixed_ext, fixed_value, |i| {
            let j = i ^ partner_xor as usize;
            // SAFETY: `i`, `j` < dim; pairs are disjoint across the whole
            // traversal (see the disjointness note above).
            unsafe {
                let pa = base.add(i);
                let pb = base.add(j);
                let (a, b) = op(*pa, *pb);
                *pa = a;
                *pb = b;
            }
        });
    });
}

/// Gated variant of [`pair_map`] for the generalized commute couplings:
/// enumerates every *source* index `i` with `i & fixed_mask == fixed_value`
/// and applies `op` to the pair `(i, partner(i))` — skipping indices where
/// `partner` returns `None` (register-ineligible states stay untouched).
///
/// Disjointness (threading safety): the caller must guarantee that
/// `partner(i) & fixed_mask != fixed_value` for every source (the partner
/// leaves the source subspace, so it never collides with another worker's
/// source) and that `partner` is injective over the sources (so no two pairs
/// share a target). [`crate::gate::ShiftBlock::forward`] satisfies both: the
/// partner carries the complement support pattern, and the register shift is
/// a fixed translation.
pub(crate) fn gated_pair_map<P, Op>(
    amps: &mut [Complex64],
    config: &SimConfig,
    fixed_mask: u64,
    fixed_value: u64,
    partner: P,
    op: Op,
) where
    P: Fn(u64) -> Option<u64> + Sync,
    Op: Fn(Complex64, Complex64) -> (Complex64, Complex64) + Sync,
{
    assert_ne!(fixed_mask, 0, "gated pair kernel needs support bits");
    let (count, fixed_ext) = check_subspace(amps.len(), fixed_mask, fixed_value);
    let dim = amps.len() as u64;
    let ptr = AmpPtr(amps.as_mut_ptr());
    dispatch(config, count, |range| {
        let base = ptr.get();
        let start_free = expand_index(range.start as u64, fixed_ext);
        for_each_index(start_free, range.len(), fixed_ext, fixed_value, |i| {
            let Some(j) = partner(i as u64) else {
                return;
            };
            debug_assert!(j < dim, "partner index outside the register");
            debug_assert_ne!(
                j & fixed_mask,
                fixed_value,
                "partner must leave the source subspace"
            );
            let j = j as usize;
            // SAFETY: `i`, `j` < dim; sources are partitioned across
            // workers, and the caller guarantees partners leave the source
            // subspace and are injective, so every touched index belongs
            // to at most one pair.
            unsafe {
                let pa = base.add(i);
                let pb = base.add(j);
                let (a, b) = op(*pa, *pb);
                *pa = a;
                *pb = b;
            }
        });
    });
}

/// Applies `op(amp, value)` element-wise over the full array, in parallel
/// chunks (safe `split_at_mut` slicing — no raw pointers needed).
pub(crate) fn zip_map_values<Op>(amps: &mut [Complex64], config: &SimConfig, values: &[f64], op: Op)
where
    Op: Fn(&mut Complex64, f64) + Sync,
{
    debug_assert_eq!(amps.len(), values.len());
    let threads = config.effective_threads(amps.len());
    if threads <= 1 {
        for (a, &v) in amps.iter_mut().zip(values.iter()) {
            op(a, v);
        }
        return;
    }
    let chunk = amps.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (achunk, vchunk) in amps.chunks_mut(chunk).zip(values.chunks(chunk)) {
            let op = &op;
            scope.spawn(move || {
                for (a, &v) in achunk.iter_mut().zip(vchunk.iter()) {
                    op(a, v);
                }
            });
        }
    });
}

/// Accumulates the per-basis diagonal of a phase polynomial into `values`
/// by strided term-wise addition: `O(2^n · (1 + terms/2))` simple adds
/// instead of `O(2^n · terms)` branchy per-index evaluation.
pub(crate) fn accumulate_poly_diag(values: &mut [f64], poly: &crate::phasepoly::PhasePoly) {
    let dim = values.len();
    debug_assert!(dim.is_power_of_two());
    let index_mask = (dim - 1) as u64;
    values.fill(poly.constant());
    let mut add_on_subspace = |fixed_mask: u64, w: f64| {
        let (count, fixed_ext) = check_subspace(dim, fixed_mask, fixed_mask);
        for_each_index(0, count, fixed_ext, fixed_mask, |i| values[i] += w);
    };
    for (i, &w) in poly.linear().iter().enumerate() {
        let bit = 1u64 << i;
        if w != 0.0 && bit & index_mask != 0 {
            add_on_subspace(bit, w);
        }
    }
    for &(i, j, w) in poly.quadratic() {
        let bits = (1u64 << i) | (1u64 << j);
        if w != 0.0 && bits & !index_mask == 0 {
            add_on_subspace(bits, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phasepoly::PhasePoly;
    use choco_mathkit::c64;

    fn test_config(threads: usize) -> SimConfig {
        SimConfig {
            threads,
            parallel_threshold: 1, // force threading even on tiny states
            ..SimConfig::default()
        }
    }

    #[test]
    fn expand_index_scatters_into_free_positions() {
        // fixed bits {1, 3}: free positions are 0, 2, 4, 5, …
        assert_eq!(expand_index(0b000, 0b1010), 0b00000);
        assert_eq!(expand_index(0b001, 0b1010), 0b00001);
        assert_eq!(expand_index(0b010, 0b1010), 0b00100);
        assert_eq!(expand_index(0b011, 0b1010), 0b00101);
        assert_eq!(expand_index(0b100, 0b1010), 0b10000);
    }

    #[test]
    fn subspace_enumeration_matches_scan_and_mask() {
        let dim = 1usize << 6;
        let fixed_mask = 0b10010u64;
        let fixed_value = 0b10000u64;
        let (count, fixed_ext) = check_subspace(dim, fixed_mask, fixed_value);
        let mut seen = Vec::new();
        for_each_index(0, count, fixed_ext, fixed_value, |i| seen.push(i));
        let expected: Vec<usize> = (0..dim)
            .filter(|&i| i as u64 & fixed_mask == fixed_value)
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn subspace_map_multiplies_only_matching_indices() {
        for threads in [1, 2, 4] {
            let mut amps = vec![Complex64::ONE; 32];
            subspace_map(&mut amps, &test_config(threads), 0b11, 0b01, |a| {
                a.scale(2.0)
            });
            for (i, a) in amps.iter().enumerate() {
                let expect = if i & 0b11 == 0b01 { 2.0 } else { 1.0 };
                assert_eq!(a.re, expect, "threads={threads} i={i}");
            }
        }
    }

    #[test]
    fn pair_map_swaps_partner_amplitudes() {
        for threads in [1, 3] {
            let mut amps: Vec<Complex64> = (0..16).map(|i| c64(i as f64, 0.0)).collect();
            // Swap |x0⟩ ↔ |x1⟩ on bit 0 (an X gate on qubit 0).
            pair_map(&mut amps, &test_config(threads), 0b1, 0b0, 0b1, |a, b| {
                (b, a)
            });
            for i in (0..16).step_by(2) {
                assert_eq!(amps[i].re, (i + 1) as f64);
                assert_eq!(amps[i + 1].re, i as f64);
            }
        }
    }

    #[test]
    fn gated_pair_map_skips_ineligible_sources() {
        for threads in [1, 3] {
            let mut amps: Vec<Complex64> = (0..16).map(|i| c64(i as f64, 0.0)).collect();
            // Swap |x0⟩ ↔ |x1⟩ on bit 0, but only when bit 3 is clear.
            gated_pair_map(
                &mut amps,
                &test_config(threads),
                0b1,
                0b0,
                |i| (i & 0b1000 == 0).then_some(i ^ 0b1),
                |a, b| (b, a),
            );
            for i in (0..16).step_by(2) {
                if i & 0b1000 == 0 {
                    assert_eq!(amps[i].re, (i + 1) as f64, "threads={threads}");
                    assert_eq!(amps[i + 1].re, i as f64);
                } else {
                    assert_eq!(amps[i].re, i as f64, "threads={threads}");
                    assert_eq!(amps[i + 1].re, (i + 1) as f64);
                }
            }
        }
    }

    #[test]
    fn accumulate_poly_diag_matches_eval_bits() {
        let mut poly = PhasePoly::new(5);
        poly.add_constant(0.5);
        poly.add_linear(0, 1.0);
        poly.add_linear(3, -2.0);
        poly.add_quadratic(1, 4, 0.25);
        let mut values = vec![0.0; 32];
        accumulate_poly_diag(&mut values, &poly);
        for (bits, &v) in values.iter().enumerate() {
            assert!(
                (v - poly.eval_bits(bits as u64)).abs() < 1e-12,
                "bits={bits}"
            );
        }
    }

    #[test]
    fn zip_map_values_covers_every_element() {
        for threads in [1, 4] {
            let values: Vec<f64> = (0..24).map(|i| i as f64).collect();
            let mut amps = vec![Complex64::ZERO; 24];
            zip_map_values(&mut amps, &test_config(threads), &values, |a, v| {
                *a += c64(v, 0.0)
            });
            for (i, a) in amps.iter().enumerate() {
                assert_eq!(a.re, i as f64, "threads={threads}");
            }
        }
    }
}
