//! Plain-text circuit rendering.
//!
//! [`draw`] lays a circuit out qubit-per-row, one column per ASAP layer —
//! handy for debugging decompositions and for documentation:
//!
//! ```text
//! q0: ─X──●──H──
//! q1: ────X─────
//! ```

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Per-gate cell symbols: (symbol on each involved qubit, in
/// `Gate::qubits()` order).
fn symbols(gate: &Gate) -> Vec<(usize, String)> {
    match gate {
        Gate::Cx(c, t) => vec![(*c, "●".into()), (*t, "X".into())],
        Gate::Cz(a, b) => vec![(*a, "●".into()), (*b, "●".into())],
        Gate::Cp(a, b, _) => vec![(*a, "●".into()), (*b, "P".into())],
        Gate::Swap(a, b) => vec![(*a, "x".into()), (*b, "x".into())],
        Gate::Ccx(c1, c2, t) => {
            vec![(*c1, "●".into()), (*c2, "●".into()), (*t, "X".into())]
        }
        Gate::Mcx { controls, target } => {
            let mut v: Vec<(usize, String)> = controls.iter().map(|&q| (q, "●".into())).collect();
            v.push((*target, "X".into()));
            v
        }
        Gate::McPhase { qubits, .. } => qubits.iter().map(|&q| (q, "P".into())).collect(),
        Gate::ControlledU {
            controls, target, ..
        } => {
            let mut v: Vec<(usize, String)> = controls.iter().map(|&q| (q, "●".into())).collect();
            v.push((*target, "U".into()));
            v
        }
        Gate::UBlock(b) => b
            .support
            .iter()
            .enumerate()
            .map(|(k, &q)| {
                let bit = (b.pattern >> k) & 1;
                (q, if bit == 1 { "◆".into() } else { "◇".into() })
            })
            .collect(),
        Gate::ShiftBlock(b) => {
            let mut v: Vec<(usize, String)> = b
                .support
                .iter()
                .enumerate()
                .map(|(k, &q)| {
                    let bit = (b.pattern >> k) & 1;
                    (q, if bit == 1 { "◆".into() } else { "◇".into() })
                })
                .collect();
            for s in &b.shifts {
                v.extend(s.qubits.iter().map(|&q| (q, "Δ".into())));
            }
            v
        }
        Gate::XyMix(a, b, _) => vec![(*a, "Y".into()), (*b, "Y".into())],
        Gate::DiagPhase(..) => gate.qubits().into_iter().map(|q| (q, "Φ".into())).collect(),
        g1q => {
            let q = g1q.qubits()[0];
            let sym = match g1q {
                Gate::H(_) => "H",
                Gate::X(_) => "X",
                Gate::Y(_) => "Y",
                Gate::Z(_) => "Z",
                Gate::S(_) => "S",
                Gate::Sdg(_) => "s",
                Gate::T(_) => "T",
                Gate::Tdg(_) => "t",
                Gate::Rx(..) => "x",
                Gate::Ry(..) => "y",
                Gate::Rz(..) => "z",
                Gate::Phase(..) => "P",
                _ => "?",
            };
            vec![(q, sym.into())]
        }
    }
}

/// Renders a circuit as ASCII art, at most `max_columns` layers
/// (an ellipsis row marks truncation).
///
/// # Examples
///
/// ```
/// use choco_qsim::{draw, Circuit};
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let art = draw(&c, 80);
/// assert!(art.contains("q0:"));
/// assert!(art.contains("●"));
/// ```
pub fn draw(circuit: &Circuit, max_columns: usize) -> String {
    let n = circuit.n_qubits();
    // ASAP layering, same rule as Circuit::depth().
    let mut level = vec![0usize; n];
    let mut layers: Vec<Vec<&Gate>> = Vec::new();
    for g in circuit.iter() {
        let qs = g.qubits();
        let start = qs.iter().map(|&q| level[q]).max().unwrap_or(0);
        for &q in &qs {
            level[q] = start + 1;
        }
        if layers.len() <= start {
            layers.resize_with(start + 1, Vec::new);
        }
        layers[start].push(g);
    }
    let truncated = layers.len() > max_columns;
    layers.truncate(max_columns);

    let mut rows: Vec<String> = (0..n).map(|q| format!("{:<5}", format!("q{q}:"))).collect();
    for layer in &layers {
        let mut cells: Vec<String> = vec!["─".into(); n];
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for g in layer {
            let syms = symbols(g);
            let lo = syms.iter().map(|&(q, _)| q).min().unwrap_or(0);
            let hi = syms.iter().map(|&(q, _)| q).max().unwrap_or(0);
            spans.push((lo, hi));
            for (q, s) in syms {
                cells[q] = s;
            }
        }
        // Vertical connectors through untouched wires inside a span.
        for (lo, hi) in spans {
            for (q, cell) in cells.iter_mut().enumerate().take(hi).skip(lo + 1) {
                if cell == "─" && q > lo && q < hi {
                    *cell = "│".into();
                }
            }
        }
        for (q, row) in rows.iter_mut().enumerate() {
            row.push('─');
            row.push_str(&cells[q]);
            row.push('─');
        }
    }
    let mut out = rows.join("\n");
    if truncated {
        out.push_str("\n… (truncated)");
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::UBlock;

    #[test]
    fn bell_circuit_renders() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let art = draw(&c, 80);
        assert!(art.contains("q0"));
        assert!(art.contains("H"));
        assert!(art.contains("●"));
        assert!(art.contains("X"));
    }

    #[test]
    fn parallel_gates_share_a_column() {
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        let art = draw(&c, 80);
        // Both H in the first layer: each row has exactly one H.
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines[0].matches('H').count(), 1);
        assert_eq!(lines[1].matches('H').count(), 1);
        // Same column offset.
        assert_eq!(lines[0].find('H'), lines[1].find('H'));
    }

    #[test]
    fn vertical_connector_through_middle_wire() {
        let mut c = Circuit::new(3);
        c.cx(0, 2);
        let art = draw(&c, 80);
        assert!(art.contains('│'), "{art}");
    }

    #[test]
    fn ublock_pattern_symbols() {
        let mut c = Circuit::new(3);
        c.ublock(UBlock::from_u_with_angle(&[1, -1, 1], 0.3));
        let art = draw(&c, 80);
        assert_eq!(art.matches('◆').count(), 2);
        assert_eq!(art.matches('◇').count(), 1);
    }

    #[test]
    fn truncation_marks_long_circuits() {
        let mut c = Circuit::new(1);
        for _ in 0..50 {
            c.h(0);
        }
        let art = draw(&c, 10);
        assert!(art.contains("truncated"));
    }
}
