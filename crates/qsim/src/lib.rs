//! # choco-qsim
//!
//! A self-contained quantum circuit simulator built for the Choco-Q
//! reproduction:
//!
//! * [`Circuit`] / [`Gate`] — an IR whose structured operations match the
//!   paper's building blocks: diagonal evolutions `e^{-iγH_o}`
//!   ([`Gate::DiagPhase`]), commute-Hamiltonian blocks `e^{-iβHc(u)}`
//!   ([`Gate::UBlock`]), and XY-mixer pairs ([`Gate::XyMix`]).
//! * [`StateVector`] — exact state-vector execution of every gate,
//!   including the structured ones (no Trotter error anywhere).
//! * [`transpile`] — lowering to deployable basic gates; implements the
//!   paper's Lemma 2 (`G† P(β) X₁ P(−β) X₁ G`) with linear circuit depth and
//!   two clean ancillas, plus ancilla-based MCX/MCPhase constructions.
//! * [`NoiseModel`] — Monte-Carlo Pauli + readout noise for the hardware
//!   experiments.
//! * [`two_level_decompose`] — the *conventional* exponential-cost unitary
//!   synthesis used by the Trotter baseline of Figure 12.
//!
//! ## Example
//!
//! ```
//! use choco_qsim::{transpile, Circuit, StateVector, TranspileOptions, UBlock};
//!
//! // One commute block on 3 qubits (+2 ancillas), both execution paths.
//! let mut c = Circuit::new(5);
//! c.load_bits(0b010);
//! c.ublock(UBlock::from_u_with_angle(&[-1, 1, -1], 0.8));
//!
//! let exact = StateVector::run(&c);
//! let lowered = transpile(&c, &TranspileOptions::with_ancillas(vec![3, 4]))?;
//! let gate_level = StateVector::run(&lowered);
//! assert!((exact.fidelity(&gate_level) - 1.0).abs() < 1e-9);
//! # Ok::<(), choco_qsim::TranspileError>(())
//! ```

#![warn(missing_docs)]

mod batch;
mod circuit;
pub mod compact;
mod counts;
mod draw;
mod engine;
mod gate;
mod kernels;
mod noise;
pub mod oracle;
mod phasepoly;
mod plan;
mod simconfig;
pub mod sparse;
mod state;
mod synth;
mod transpile;
mod workspace;

pub use batch::BatchWorkspace;
pub use circuit::Circuit;
pub use compact::CompactStateVector;
pub use counts::Counts;
pub use draw::draw;
pub use engine::{SimEngine, MAX_DENSIFY_QUBITS};
pub use gate::{Gate, RegisterShift, ShiftBlock, UBlock};
pub use noise::NoiseModel;
pub use phasepoly::PhasePoly;
pub use simconfig::{EngineKind, SimConfig, DEFAULT_DENSITY_THRESHOLD, DEFAULT_PARALLEL_THRESHOLD};
pub use sparse::{SparseStateVector, MAX_SPARSE_QUBITS};
pub use state::StateVector;
pub use synth::{
    circuit_unitary, two_level_decompose, SynthCost, TwoLevelDecomposition, TwoLevelOp,
};
pub use transpile::{transpile, zyz_decompose, TranspileError, TranspileOptions, TwoQubitBasis};
pub use workspace::{PlanCache, PlanCacheStats, SimWorkspace};
