//! Stochastic Pauli noise (Monte-Carlo trajectories).
//!
//! NISQ behaviour is modelled the way the paper's hardware runs experience
//! it: depolarizing-style Pauli errors after each gate (rate depending on
//! gate arity) and independent readout bit-flips at measurement. Trajectory
//! sampling keeps the cost at `O(trajectories · circuit)` instead of a
//! density-matrix simulation's `4^n`.

use crate::circuit::Circuit;
use crate::counts::Counts;
use crate::gate::Gate;
use crate::simconfig::SimConfig;
use crate::state::StateVector;
use rand::Rng;

/// Per-gate and readout error rates.
///
/// # Examples
///
/// ```
/// use choco_qsim::{Circuit, NoiseModel};
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let noise = NoiseModel::new(0.001, 0.01, 0.02);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let counts = noise.sample_noisy(&c, 1000, 20, &mut rng);
/// assert_eq!(counts.shots(), 1000);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseModel {
    /// Pauli error probability after each single-qubit gate.
    pub p1: f64,
    /// Pauli error probability (per involved qubit) after each multi-qubit
    /// gate.
    pub p2: f64,
    /// Readout bit-flip probability per qubit.
    pub readout: f64,
}

impl NoiseModel {
    /// Creates a noise model from the three rates.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]`.
    pub fn new(p1: f64, p2: f64, readout: f64) -> Self {
        for (name, p) in [("p1", p1), ("p2", p2), ("readout", readout)] {
            assert!((0.0..=1.0).contains(&p), "{name} = {p} out of [0,1]");
        }
        NoiseModel { p1, p2, readout }
    }

    /// The noiseless model.
    pub fn ideal() -> Self {
        NoiseModel {
            p1: 0.0,
            p2: 0.0,
            readout: 0.0,
        }
    }

    /// `true` when all rates are zero.
    pub fn is_ideal(&self) -> bool {
        self.p1 == 0.0 && self.p2 == 0.0 && self.readout == 0.0
    }

    /// Runs `circuit` under this noise model and samples `shots`
    /// measurements, split across `trajectories` independent error
    /// realizations.
    ///
    /// # Panics
    ///
    /// Panics if `trajectories == 0`.
    pub fn sample_noisy<R: Rng>(
        &self,
        circuit: &Circuit,
        shots: u64,
        trajectories: u32,
        rng: &mut R,
    ) -> Counts {
        self.sample_noisy_with(SimConfig::default(), circuit, shots, trajectories, rng)
    }

    /// [`NoiseModel::sample_noisy`] under an explicit engine configuration
    /// (thread count / threshold) — the trajectory loop is the most
    /// expensive simulation path, so callers with a configured
    /// [`SimConfig`] must not silently fall back to the default.
    ///
    /// # Panics
    ///
    /// Panics if `trajectories == 0`.
    pub fn sample_noisy_with<R: Rng>(
        &self,
        config: SimConfig,
        circuit: &Circuit,
        shots: u64,
        trajectories: u32,
        rng: &mut R,
    ) -> Counts {
        assert!(trajectories > 0, "at least one trajectory required");
        if self.is_ideal() {
            let state = StateVector::run_with(circuit, config);
            return state.sample(shots, rng);
        }
        let mut counts = Counts::new();
        let base = shots / trajectories as u64;
        let remainder = shots % trajectories as u64;
        // One amplitude buffer and one cumulative table serve every
        // trajectory — no per-trajectory allocation.
        let mut state = StateVector::new_with(circuit.n_qubits(), config);
        let mut cumulative = Vec::new();
        for t in 0..trajectories {
            let traj_shots = base + if (t as u64) < remainder { 1 } else { 0 };
            if traj_shots == 0 {
                continue;
            }
            self.run_trajectory_into(circuit, &mut state, rng);
            state.fill_cumulative(&mut cumulative);
            let clean = state.sample_with_cumulative(&cumulative, traj_shots, rng);
            if self.readout == 0.0 {
                counts.merge(&clean);
            } else {
                for (bits, c) in clean.iter() {
                    for _ in 0..c {
                        counts.record(self.flip_readout(bits, circuit.n_qubits(), rng));
                    }
                }
            }
        }
        counts
    }

    /// One noisy execution: applies each gate followed by randomly drawn
    /// Pauli errors on the involved qubits.
    pub fn run_trajectory<R: Rng>(&self, circuit: &Circuit, rng: &mut R) -> StateVector {
        let mut state = StateVector::new(circuit.n_qubits());
        self.run_trajectory_into(circuit, &mut state, rng);
        state
    }

    /// [`NoiseModel::run_trajectory`] into a caller-owned state: resets
    /// `state` to `|0…0⟩` in place and evolves it, so trajectory loops
    /// reuse one amplitude buffer.
    ///
    /// # Panics
    ///
    /// Panics if `state` is narrower than the circuit.
    pub fn run_trajectory_into<R: Rng>(
        &self,
        circuit: &Circuit,
        state: &mut StateVector,
        rng: &mut R,
    ) {
        state.reset_zero();
        for gate in circuit.iter() {
            state.apply_gate(gate);
            let qubits = gate.qubits();
            let p = if qubits.len() == 1 { self.p1 } else { self.p2 };
            if p == 0.0 {
                continue;
            }
            for q in qubits {
                if rng.gen::<f64>() < p {
                    match rng.gen_range(0..3) {
                        0 => state.apply_gate(&Gate::X(q)),
                        1 => state.apply_gate(&Gate::Y(q)),
                        _ => state.apply_gate(&Gate::Z(q)),
                    }
                }
            }
        }
    }

    fn flip_readout<R: Rng>(&self, bits: u64, n_qubits: usize, rng: &mut R) -> u64 {
        let mut out = bits;
        for q in 0..n_qubits {
            if rng.gen::<f64>() < self.readout {
                out ^= 1 << q;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_model_matches_clean_sampling() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let noise = NoiseModel::ideal();
        assert!(noise.is_ideal());
        let mut rng = StdRng::seed_from_u64(3);
        let counts = noise.sample_noisy(&c, 4000, 10, &mut rng);
        // Only the Bell outcomes appear.
        assert_eq!(counts.count(0b01), 0);
        assert_eq!(counts.count(0b10), 0);
        assert_eq!(counts.shots(), 4000);
    }

    #[test]
    fn heavy_noise_pollutes_outcomes() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let noise = NoiseModel::new(0.2, 0.3, 0.1);
        let mut rng = StdRng::seed_from_u64(5);
        let counts = noise.sample_noisy(&c, 4000, 40, &mut rng);
        // With strong noise the forbidden outcomes must leak in.
        assert!(counts.count(0b01) + counts.count(0b10) > 0);
        assert_eq!(counts.shots(), 4000);
    }

    #[test]
    fn readout_only_noise_flips_basis_state() {
        let c = Circuit::new(3); // identity circuit: ideal outcome |000⟩
        let noise = NoiseModel::new(0.0, 0.0, 0.5);
        let mut rng = StdRng::seed_from_u64(7);
        let counts = noise.sample_noisy(&c, 8000, 1, &mut rng);
        // Each bit flips with p=0.5 → near-uniform over 8 outcomes.
        for bits in 0..8u64 {
            let p = counts.probability(bits);
            assert!((p - 0.125).abs() < 0.03, "p({bits:03b}) = {p}");
        }
    }

    #[test]
    fn noise_reduces_success_probability_monotonically() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).x(0);
        let mut rng = StdRng::seed_from_u64(11);
        let clean = NoiseModel::ideal().sample_noisy(&c, 4000, 1, &mut rng);
        let noisy = NoiseModel::new(0.05, 0.1, 0.05).sample_noisy(&c, 4000, 40, &mut rng);
        let target = clean.most_frequent().unwrap();
        assert!(noisy.probability(target) < clean.probability(target) + 0.02);
        assert!(noisy.distinct() > clean.distinct());
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn rejects_invalid_rates() {
        let _ = NoiseModel::new(1.5, 0.0, 0.0);
    }

    #[test]
    fn shots_split_exactly_across_trajectories() {
        let c = Circuit::new(1);
        let noise = NoiseModel::new(0.01, 0.01, 0.0);
        let mut rng = StdRng::seed_from_u64(13);
        let counts = noise.sample_noisy(&c, 1003, 10, &mut rng);
        assert_eq!(counts.shots(), 1003);
    }
}
