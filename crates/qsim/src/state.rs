//! Full state-vector simulation.
//!
//! [`StateVector`] holds `2^n` complex amplitudes and applies every gate of
//! the IR *exactly* — including the structured operations: diagonal
//! evolutions multiply per-amplitude phases, and commute-Hamiltonian blocks
//! rotate the two-dimensional `{|v⟩, |v̄⟩}` subspaces directly. This is what
//! lets the Choco-Q algorithmic experiments run without paying gate-level
//! decomposition cost (the decomposed path is exercised separately by the
//! transpiler + noise experiments, and equivalence of the two paths is
//! checked by tests).

use crate::circuit::Circuit;
use crate::counts::Counts;
use crate::gate::{Gate, UBlock};
use crate::phasepoly::PhasePoly;
use choco_mathkit::Complex64;
use rand::Rng;

/// A pure quantum state over `n` qubits (little-endian basis indexing:
/// qubit `q` is bit `q` of the basis index).
///
/// # Examples
///
/// ```
/// use choco_qsim::{Circuit, StateVector};
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let state = StateVector::run(&bell);
/// let p = state.probabilities();
/// assert!((p[0b00] - 0.5).abs() < 1e-12);
/// assert!((p[0b11] - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros state `|0…0⟩`.
    pub fn new(n_qubits: usize) -> Self {
        assert!(n_qubits <= 30, "state vector limited to 30 qubits");
        let mut amps = vec![Complex64::ZERO; 1 << n_qubits];
        amps[0] = Complex64::ONE;
        StateVector { n_qubits, amps }
    }

    /// A computational basis state `|bits⟩`.
    pub fn from_bits(n_qubits: usize, bits: u64) -> Self {
        let mut s = StateVector::new(n_qubits);
        s.amps[0] = Complex64::ZERO;
        s.amps[bits as usize] = Complex64::ONE;
        s
    }

    /// Builds a state from raw amplitudes (must have power-of-two length and
    /// unit norm within 1e-6).
    ///
    /// # Panics
    ///
    /// Panics on a non-power-of-two length or non-normalized vector.
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Self {
        let len = amps.len();
        assert!(len.is_power_of_two(), "length must be a power of two");
        let n_qubits = len.trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-6, "state not normalized: {norm}");
        StateVector { n_qubits, amps }
    }

    /// Runs a circuit from `|0…0⟩`.
    pub fn run(circuit: &Circuit) -> Self {
        let mut s = StateVector::new(circuit.n_qubits());
        s.apply_circuit(circuit);
        s
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The amplitude of basis state `bits`.
    #[inline]
    pub fn amplitude(&self, bits: u64) -> Complex64 {
        self.amps[bits as usize]
    }

    /// Borrow of all amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Applies every gate of a circuit in order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(
            circuit.n_qubits() <= self.n_qubits,
            "circuit wider than state"
        );
        for g in circuit.iter() {
            self.apply_gate(g);
        }
    }

    /// Applies a single gate.
    pub fn apply_gate(&mut self, gate: &Gate) {
        match gate {
            Gate::Cx(c, t) => self.apply_mcx(1u64 << c, *t),
            Gate::Cz(a, b) => self.apply_mcphase((1u64 << a) | (1u64 << b), std::f64::consts::PI),
            Gate::Cp(a, b, theta) => self.apply_mcphase((1u64 << a) | (1u64 << b), *theta),
            Gate::Swap(a, b) => self.apply_swap(*a, *b),
            Gate::Ccx(c1, c2, t) => self.apply_mcx((1u64 << c1) | (1u64 << c2), *t),
            Gate::Mcx { controls, target } => {
                let mask = controls.iter().fold(0u64, |m, &q| m | (1 << q));
                self.apply_mcx(mask, *target);
            }
            Gate::McPhase { qubits, angle } => {
                let mask = qubits.iter().fold(0u64, |m, &q| m | (1 << q));
                self.apply_mcphase(mask, *angle);
            }
            Gate::ControlledU {
                controls,
                target,
                matrix,
            } => {
                let mask = controls.iter().fold(0u64, |m, &q| m | (1 << q));
                self.apply_controlled_1q(mask, *matrix, *target);
            }
            Gate::UBlock(b) => self.apply_ublock(b),
            Gate::XyMix(a, b, theta) => {
                // XX+YY = 2(|01⟩⟨10| + |10⟩⟨01|): a UBlock with doubled angle.
                let full = (1u64 << a) | (1u64 << b);
                self.apply_block_masks(full, 1u64 << a, 2.0 * theta);
            }
            Gate::DiagPhase(poly, theta) => self.apply_diag_poly(poly, *theta),
            g1q => {
                let m = g1q
                    .matrix_1q()
                    .unwrap_or_else(|| panic!("unhandled gate {g1q}"));
                self.apply_1q(m, g1q.qubits()[0]);
            }
        }
    }

    /// Applies a 2×2 unitary to qubit `q`.
    pub fn apply_1q(&mut self, m: [[Complex64; 2]; 2], q: usize) {
        let step = 1usize << q;
        let dim = self.amps.len();
        let mut base = 0usize;
        while base < dim {
            for i in base..base + step {
                let j = i + step;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[j] = m[1][0] * a0 + m[1][1] * a1;
            }
            base += step << 1;
        }
    }

    /// Applies a 2×2 unitary to qubit `q` conditioned on all bits of
    /// `controls_mask` being 1.
    pub fn apply_controlled_1q(&mut self, controls_mask: u64, m: [[Complex64; 2]; 2], q: usize) {
        let t = 1u64 << q;
        for i in 0..self.amps.len() as u64 {
            if i & controls_mask == controls_mask && i & t == 0 {
                let j = (i | t) as usize;
                let i = i as usize;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[j] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    fn apply_swap(&mut self, a: usize, b: usize) {
        let (ma, mb) = (1u64 << a, 1u64 << b);
        for i in 0..self.amps.len() as u64 {
            if i & ma == ma && i & mb == 0 {
                let j = (i ^ ma) | mb;
                self.amps.swap(i as usize, j as usize);
            }
        }
    }

    fn apply_mcx(&mut self, controls_mask: u64, target: usize) {
        let t = 1u64 << target;
        for i in 0..self.amps.len() as u64 {
            if i & controls_mask == controls_mask && i & t == 0 {
                self.amps.swap(i as usize, (i | t) as usize);
            }
        }
    }

    fn apply_mcphase(&mut self, mask: u64, angle: f64) {
        let phase = Complex64::cis(angle);
        for i in 0..self.amps.len() as u64 {
            if i & mask == mask {
                self.amps[i as usize] *= phase;
            }
        }
    }

    /// Applies `e^{-iθ·Hc(u)}` exactly: a rotation
    /// `[[cos θ, −i sin θ], [−i sin θ, cos θ]]` on every `{|v⟩, |v̄⟩}` pair.
    pub fn apply_ublock(&mut self, block: &UBlock) {
        let mut full_mask = 0u64;
        let mut v_mask = 0u64;
        for (k, &q) in block.support.iter().enumerate() {
            full_mask |= 1 << q;
            if (block.pattern >> k) & 1 == 1 {
                v_mask |= 1 << q;
            }
        }
        self.apply_block_masks(full_mask, v_mask, block.angle);
    }

    /// Rotation between index patterns `v_mask` and `v_mask ^ full_mask`
    /// within the qubits of `full_mask`.
    fn apply_block_masks(&mut self, full_mask: u64, v_mask: u64, theta: f64) {
        let cos = Complex64::from_re(theta.cos());
        let nisin = Complex64::new(0.0, -theta.sin());
        for i in 0..self.amps.len() as u64 {
            if i & full_mask == v_mask {
                let j = (i ^ full_mask) as usize;
                let i = i as usize;
                let a = self.amps[i];
                let b = self.amps[j];
                self.amps[i] = cos * a + nisin * b;
                self.amps[j] = nisin * a + cos * b;
            }
        }
    }

    /// Applies `e^{-iθ·f(x)}` by evaluating the polynomial per index.
    pub fn apply_diag_poly(&mut self, poly: &PhasePoly, theta: f64) {
        for (i, amp) in self.amps.iter_mut().enumerate() {
            let f = poly.eval_bits(i as u64);
            if f != 0.0 {
                *amp *= Complex64::cis(-theta * f);
            }
        }
    }

    /// Applies `e^{-iθ·values[x]}` from a precomputed diagonal. Much faster
    /// than [`StateVector::apply_diag_poly`] when the same diagonal is reused
    /// across optimizer iterations.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != 2^n`.
    pub fn apply_diag_values(&mut self, values: &[f64], theta: f64) {
        assert_eq!(values.len(), self.amps.len(), "diagonal length mismatch");
        for (amp, &f) in self.amps.iter_mut().zip(values.iter()) {
            if f != 0.0 {
                *amp *= Complex64::cis(-theta * f);
            }
        }
    }

    /// Measurement probabilities for every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Probability of measuring the basis state `bits`.
    pub fn probability(&self, bits: u64) -> f64 {
        self.amps[bits as usize].norm_sqr()
    }

    /// Expectation of a diagonal observable given per-basis values.
    pub fn expectation_diag_values(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.amps.len(), "diagonal length mismatch");
        self.amps
            .iter()
            .zip(values.iter())
            .map(|(a, &v)| a.norm_sqr() * v)
            .sum()
    }

    /// Expectation of a diagonal observable given as a polynomial.
    pub fn expectation_diag_poly(&self, poly: &PhasePoly) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .map(|(i, a)| a.norm_sqr() * poly.eval_bits(i as u64))
            .sum()
    }

    /// Number of basis states with probability above `eps` — the
    /// "parallelism" metric of the paper's Figure 9(b) (#measured states).
    pub fn support_size(&self, eps: f64) -> usize {
        self.amps.iter().filter(|a| a.norm_sqr() > eps).count()
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn inner(&self, other: &StateVector) -> Complex64 {
        assert_eq!(self.n_qubits, other.n_qubits, "dimension mismatch");
        self.amps
            .iter()
            .zip(other.amps.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Total probability (should be 1 up to rounding).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalizes to unit norm (used by the stochastic noise executor
    /// after injecting non-unitary readout errors — unitary evolution never
    /// needs this).
    pub fn normalize(&mut self) {
        let norm = self.norm_sqr().sqrt();
        if norm > 0.0 {
            for a in self.amps.iter_mut() {
                *a = *a / norm;
            }
        }
    }

    /// Samples `shots` measurement outcomes in the computational basis.
    pub fn sample<R: Rng>(&self, shots: u64, rng: &mut R) -> Counts {
        // Prefix sums + binary search: O(2^n + shots·n).
        let mut cumulative = Vec::with_capacity(self.amps.len());
        let mut acc = 0.0f64;
        for a in &self.amps {
            acc += a.norm_sqr();
            cumulative.push(acc);
        }
        let total = acc;
        let mut counts = Counts::new();
        for _ in 0..shots {
            let r: f64 = rng.gen::<f64>() * total;
            let idx = cumulative.partition_point(|&c| c < r);
            counts.record(idx.min(self.amps.len() - 1) as u64);
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_mathkit::c64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    const EPS: f64 = 1e-12;

    #[test]
    fn initial_state_is_zero_ket() {
        let s = StateVector::new(3);
        assert_eq!(s.probability(0), 1.0);
        assert_eq!(s.support_size(1e-12), 1);
    }

    #[test]
    fn x_flips_bit() {
        let mut s = StateVector::new(2);
        s.apply_gate(&Gate::X(1));
        assert!((s.probability(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = StateVector::run(&c);
        assert!((s.probability(0b00) - 0.5).abs() < EPS);
        assert!((s.probability(0b11) - 0.5).abs() < EPS);
        assert!(s.probability(0b01) < EPS);
    }

    #[test]
    fn ghz_support_size() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
        let s = StateVector::run(&c);
        assert_eq!(s.support_size(1e-9), 2);
    }

    #[test]
    fn cz_and_cp_phases() {
        // |11⟩ picks up -1 under CZ.
        let mut s = StateVector::from_bits(2, 0b11);
        s.apply_gate(&Gate::Cz(0, 1));
        assert!(s.amplitude(0b11).approx_eq(c64(-1.0, 0.0), EPS));
        // CP(θ) adds e^{iθ}.
        let mut s = StateVector::from_bits(2, 0b11);
        s.apply_gate(&Gate::Cp(0, 1, 0.7));
        assert!(s.amplitude(0b11).approx_eq(Complex64::cis(0.7), EPS));
        // No phase on |01⟩.
        let mut s = StateVector::from_bits(2, 0b01);
        s.apply_gate(&Gate::Cp(0, 1, 0.7));
        assert!(s.amplitude(0b01).approx_eq(Complex64::ONE, EPS));
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut s = StateVector::from_bits(3, 0b001);
        s.apply_gate(&Gate::Swap(0, 2));
        assert!((s.probability(0b100) - 1.0).abs() < EPS);
    }

    #[test]
    fn ccx_and_mcx() {
        let mut s = StateVector::from_bits(3, 0b011);
        s.apply_gate(&Gate::Ccx(0, 1, 2));
        assert!((s.probability(0b111) - 1.0).abs() < EPS);

        let mut s = StateVector::from_bits(4, 0b0111);
        s.apply_gate(&Gate::Mcx {
            controls: vec![0, 1, 2],
            target: 3,
        });
        assert!((s.probability(0b1111) - 1.0).abs() < EPS);

        // One control off → no flip.
        let mut s = StateVector::from_bits(4, 0b0101);
        s.apply_gate(&Gate::Mcx {
            controls: vec![0, 1, 2],
            target: 3,
        });
        assert!((s.probability(0b0101) - 1.0).abs() < EPS);
    }

    #[test]
    fn mcphase_only_on_all_ones() {
        let mut s = StateVector::from_bits(3, 0b111);
        s.apply_gate(&Gate::McPhase {
            qubits: vec![0, 1, 2],
            angle: 1.1,
        });
        assert!(s.amplitude(0b111).approx_eq(Complex64::cis(1.1), EPS));

        let mut s = StateVector::from_bits(3, 0b101);
        s.apply_gate(&Gate::McPhase {
            qubits: vec![0, 1, 2],
            angle: 1.1,
        });
        assert!(s.amplitude(0b101).approx_eq(Complex64::ONE, EPS));
    }

    #[test]
    fn rotation_gates_match_matrices() {
        // Rx(π) = -iX: |0⟩ → -i|1⟩.
        let mut s = StateVector::new(1);
        s.apply_gate(&Gate::Rx(0, std::f64::consts::PI));
        assert!(s.amplitude(1).approx_eq(c64(0.0, -1.0), EPS));
        // Rz on |+⟩ keeps probabilities.
        let mut s = StateVector::new(1);
        s.apply_gate(&Gate::H(0));
        s.apply_gate(&Gate::Rz(0, 0.4));
        assert!((s.probability(0) - 0.5).abs() < EPS);
    }

    #[test]
    fn ublock_rotates_pattern_pair() {
        // u = (+1, -1) on 2 qubits: v = |01⟩ (bit0 = 1), v̄ = |10⟩.
        let block = UBlock::from_u_with_angle(&[1, -1], 0.6);
        let mut s = StateVector::from_bits(2, 0b01);
        s.apply_ublock(&block);
        assert!(s.amplitude(0b01).approx_eq(c64(0.6f64.cos(), 0.0), EPS));
        assert!(s.amplitude(0b10).approx_eq(c64(0.0, -(0.6f64.sin())), EPS));
        // An off-pattern state is untouched.
        let mut s = StateVector::from_bits(2, 0b11);
        s.apply_ublock(&block);
        assert!((s.probability(0b11) - 1.0).abs() < EPS);
    }

    #[test]
    fn ublock_preserves_norm_and_constraint_expectation() {
        // Superposition over the feasible pair stays in the subspace.
        let block = UBlock::from_u_with_angle(&[1, -1, 1], 1.3);
        let mut s = StateVector::from_bits(3, 0b101);
        s.apply_ublock(&block);
        assert!((s.norm_sqr() - 1.0).abs() < EPS);
        // Support is {|101⟩, |010⟩}.
        assert!((s.probability(0b101) + s.probability(0b010) - 1.0).abs() < EPS);
    }

    #[test]
    fn xymix_matches_ublock_on_pair_subspace() {
        let theta = 0.47;
        let mut a = StateVector::from_bits(2, 0b01);
        a.apply_gate(&Gate::XyMix(0, 1, theta));
        // exp(-iθ(XX+YY))|01⟩ = cos(2θ)|01⟩ - i sin(2θ)|10⟩
        assert!(a.amplitude(0b01).approx_eq(c64((2.0 * theta).cos(), 0.0), EPS));
        assert!(a
            .amplitude(0b10)
            .approx_eq(c64(0.0, -(2.0 * theta).sin()), EPS));
        // |00⟩ and |11⟩ are untouched.
        let mut b = StateVector::from_bits(2, 0b00);
        b.apply_gate(&Gate::XyMix(0, 1, theta));
        assert!((b.probability(0b00) - 1.0).abs() < EPS);
    }

    #[test]
    fn diag_phase_applies_per_state() {
        let mut poly = PhasePoly::new(2);
        poly.add_linear(0, 1.0);
        poly.add_quadratic(0, 1, 2.0);
        let poly = Arc::new(poly);
        // Uniform superposition picks up e^{-iθf(x)} per component.
        let mut c = Circuit::new(2);
        c.h(0).h(1).diag(poly.clone(), 0.5);
        let s = StateVector::run(&c);
        let amp = |bits: u64| Complex64::cis(-0.5 * poly.eval_bits(bits)).scale(0.5);
        for bits in 0..4u64 {
            assert!(s.amplitude(bits).approx_eq(amp(bits), EPS), "bits={bits}");
        }
    }

    #[test]
    fn diag_values_matches_poly_path() {
        let mut poly = PhasePoly::new(3);
        poly.add_linear(2, -1.5);
        poly.add_quadratic(0, 1, 0.7);
        let values: Vec<f64> = (0..8u64).map(|b| poly.eval_bits(b)).collect();
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        let mut a = StateVector::run(&c);
        let mut b = a.clone();
        a.apply_diag_poly(&poly, 0.9);
        b.apply_diag_values(&values, 0.9);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn expectation_of_diagonal() {
        let mut poly = PhasePoly::new(2);
        poly.add_linear(0, 1.0);
        poly.add_linear(1, 2.0);
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        let s = StateVector::run(&c);
        // Uniform over {0,1,2,3}: E[f] = (0 + 1 + 2 + 3)/4 = 1.5
        assert!((s.expectation_diag_poly(&poly) - 1.5).abs() < EPS);
        let values: Vec<f64> = (0..4u64).map(|b| poly.eval_bits(b)).collect();
        assert!((s.expectation_diag_values(&values) - 1.5).abs() < EPS);
    }

    #[test]
    fn circuit_inverse_restores_state() {
        let mut poly = PhasePoly::new(3);
        poly.add_quadratic(0, 2, 1.0);
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .rz(1, 0.3)
            .xy(1, 2, 0.8)
            .diag(Arc::new(poly), 0.4)
            .mcphase(vec![0, 1, 2], 0.2);
        let mut s = StateVector::run(&c);
        s.apply_circuit(&c.inverse());
        let zero = StateVector::new(3);
        assert!((s.fidelity(&zero) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sampling_approximates_distribution() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = StateVector::run(&c);
        let mut rng = StdRng::seed_from_u64(7);
        let counts = s.sample(20_000, &mut rng);
        assert_eq!(counts.shots(), 20_000);
        let p00 = counts.probability(0b00);
        let p11 = counts.probability(0b11);
        assert!((p00 - 0.5).abs() < 0.02, "p00={p00}");
        assert!((p11 - 0.5).abs() < 0.02, "p11={p11}");
        assert_eq!(counts.probability(0b01), 0.0);
    }

    #[test]
    fn unitarity_norm_preserved_through_random_circuit() {
        let mut c = Circuit::new(4);
        c.h(0)
            .ry(1, 0.7)
            .cx(0, 2)
            .cp(1, 3, 0.9)
            .ccx(0, 1, 2)
            .xy(2, 3, 0.3)
            .mcphase(vec![0, 2, 3], 1.4);
        let s = StateVector::run(&c);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-10);
    }
}
