//! Full state-vector simulation — the fast path.
//!
//! [`StateVector`] holds `2^n` complex amplitudes and applies every gate of
//! the IR *exactly* — including the structured operations: diagonal
//! evolutions multiply per-amplitude phases, and commute-Hamiltonian blocks
//! rotate the two-dimensional `{|v⟩, |v̄⟩}` subspaces directly. This is what
//! lets the Choco-Q algorithmic experiments run without paying gate-level
//! decomposition cost (the decomposed path is exercised separately by the
//! transpiler + noise experiments, and equivalence of the two paths is
//! checked by tests).
//!
//! Every kernel enumerates exactly the `2^(n-k)` basis indices its gate
//! touches (strided subspace enumeration — see [`crate::kernels`]) instead
//! of scanning all `2^n` and filtering by mask, applies shape-specialized
//! arithmetic (diagonal / anti-diagonal / real / general 2×2), and fans
//! out across worker threads per [`SimConfig`] once the work is large
//! enough. The original scan-and-mask kernels are retained in
//! [`crate::oracle`] as the test oracle and bench baseline.

use crate::circuit::Circuit;
use crate::counts::Counts;
use crate::gate::{Gate, ShiftBlock, UBlock};
use crate::kernels;
use crate::phasepoly::PhasePoly;
use crate::simconfig::SimConfig;
use choco_mathkit::Complex64;
use rand::Rng;

/// A pure quantum state over `n` qubits (little-endian basis indexing:
/// qubit `q` is bit `q` of the basis index).
///
/// # Examples
///
/// ```
/// use choco_qsim::{Circuit, StateVector};
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let state = StateVector::run(&bell);
/// let p = state.probabilities();
/// assert!((p[0b00] - 0.5).abs() < 1e-12);
/// assert!((p[0b11] - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<Complex64>,
    config: SimConfig,
    /// Reusable scratch for materializing phase-polynomial diagonals, so
    /// repeated [`StateVector::apply_diag_poly`] calls (e.g. per noise
    /// trajectory) allocate once, not per gate.
    diag_scratch: Vec<f64>,
}

impl StateVector {
    /// The all-zeros state `|0…0⟩` with the default [`SimConfig`].
    pub fn new(n_qubits: usize) -> Self {
        Self::new_with(n_qubits, SimConfig::default())
    }

    /// The all-zeros state with an explicit execution configuration.
    pub fn new_with(n_qubits: usize, config: SimConfig) -> Self {
        assert!(n_qubits <= 30, "state vector limited to 30 qubits");
        let mut amps = vec![Complex64::ZERO; 1 << n_qubits];
        amps[0] = Complex64::ONE;
        StateVector {
            n_qubits,
            amps,
            config,
            diag_scratch: Vec::new(),
        }
    }

    /// A computational basis state `|bits⟩`.
    pub fn from_bits(n_qubits: usize, bits: u64) -> Self {
        let mut s = StateVector::new(n_qubits);
        s.amps[0] = Complex64::ZERO;
        s.amps[bits as usize] = Complex64::ONE;
        s
    }

    /// Builds a state from raw amplitudes (must have power-of-two length and
    /// unit norm within 1e-6).
    ///
    /// # Panics
    ///
    /// Panics on a non-power-of-two length or non-normalized vector.
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Self {
        let len = amps.len();
        assert!(len.is_power_of_two(), "length must be a power of two");
        let n_qubits = len.trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-6, "state not normalized: {norm}");
        StateVector {
            n_qubits,
            amps,
            config: SimConfig::default(),
            diag_scratch: Vec::new(),
        }
    }

    /// Builds a dense state by scattering sparse occupied entries into a
    /// fresh `2^n` buffer (the engine fallback's densify step — exact).
    pub(crate) fn from_sparse_entries(
        n_qubits: usize,
        entries: &[(u64, Complex64)],
        config: SimConfig,
    ) -> Self {
        let mut amps = vec![Complex64::ZERO; 1 << n_qubits];
        for &(bits, a) in entries {
            amps[bits as usize] = a;
        }
        StateVector {
            n_qubits,
            amps,
            config,
            diag_scratch: Vec::new(),
        }
    }

    /// Runs a circuit from `|0…0⟩`.
    pub fn run(circuit: &Circuit) -> Self {
        Self::run_with(circuit, SimConfig::default())
    }

    /// Runs a circuit from `|0…0⟩` under an explicit configuration.
    pub fn run_with(circuit: &Circuit, config: SimConfig) -> Self {
        let mut s = StateVector::new_with(circuit.n_qubits(), config);
        s.apply_circuit(circuit);
        s
    }

    /// The execution configuration.
    #[inline]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Replaces the execution configuration (affects subsequent kernels).
    pub fn set_config(&mut self, config: SimConfig) {
        self.config = config;
    }

    /// Resets to `|0…0⟩` in place, reusing the amplitude buffer.
    pub fn reset_zero(&mut self) {
        self.amps.fill(Complex64::ZERO);
        self.amps[0] = Complex64::ONE;
    }

    /// Resets to the basis state `|bits⟩` in place.
    pub fn reset_bits(&mut self, bits: u64) {
        self.amps.fill(Complex64::ZERO);
        self.amps[bits as usize] = Complex64::ONE;
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The amplitude of basis state `bits`.
    #[inline]
    pub fn amplitude(&self, bits: u64) -> Complex64 {
        self.amps[bits as usize]
    }

    /// Borrow of all amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Applies every gate of a circuit in order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(
            circuit.n_qubits() <= self.n_qubits,
            "circuit wider than state"
        );
        for g in circuit.iter() {
            self.apply_gate(g);
        }
    }

    /// Applies a single gate.
    pub fn apply_gate(&mut self, gate: &Gate) {
        match gate {
            Gate::Cx(c, t) => self.apply_mcx(1u64 << c, *t),
            Gate::Cz(a, b) => self.apply_mcphase((1u64 << a) | (1u64 << b), std::f64::consts::PI),
            Gate::Cp(a, b, theta) => self.apply_mcphase((1u64 << a) | (1u64 << b), *theta),
            Gate::Swap(a, b) => self.apply_swap(*a, *b),
            Gate::Ccx(c1, c2, t) => self.apply_mcx((1u64 << c1) | (1u64 << c2), *t),
            Gate::Mcx { controls, target } => {
                let mask = controls.iter().fold(0u64, |m, &q| m | (1 << q));
                self.apply_mcx(mask, *target);
            }
            Gate::McPhase { qubits, angle } => {
                let mask = qubits.iter().fold(0u64, |m, &q| m | (1 << q));
                self.apply_mcphase(mask, *angle);
            }
            Gate::ControlledU {
                controls,
                target,
                matrix,
            } => {
                let mask = controls.iter().fold(0u64, |m, &q| m | (1 << q));
                self.apply_controlled_1q(mask, *matrix, *target);
            }
            Gate::UBlock(b) => self.apply_ublock(b),
            Gate::ShiftBlock(b) => self.apply_shift_block(b),
            Gate::XyMix(a, b, theta) => {
                // XX+YY = 2(|01⟩⟨10| + |10⟩⟨01|): a UBlock with doubled angle.
                let full = (1u64 << a) | (1u64 << b);
                self.apply_block_masks(full, 1u64 << a, 2.0 * theta);
            }
            Gate::DiagPhase(poly, theta) => self.apply_diag_poly(poly, *theta),
            g1q => {
                let m = g1q
                    .matrix_1q()
                    .unwrap_or_else(|| panic!("unhandled gate {g1q}"));
                self.apply_1q(m, g1q.qubits()[0]);
            }
        }
    }

    /// Applies a 2×2 unitary to qubit `q`.
    pub fn apply_1q(&mut self, m: [[Complex64; 2]; 2], q: usize) {
        self.apply_controlled_1q(0, m, q);
    }

    /// Applies a 2×2 unitary to qubit `q` conditioned on all bits of
    /// `controls_mask` being 1, dispatching on the matrix shape so
    /// diagonal and real matrices skip the full complex arithmetic.
    pub fn apply_controlled_1q(&mut self, controls_mask: u64, m: [[Complex64; 2]; 2], q: usize) {
        let t = 1u64 << q;
        if controls_mask & t != 0 {
            // Degenerate gate (target in controls): no-op, as in the oracle.
            return;
        }
        let fixed = controls_mask | t;
        let diagonal = m[0][1] == Complex64::ZERO && m[1][0] == Complex64::ZERO;
        if diagonal {
            // Phase-type gate: two independent subspace passes, each
            // skipped entirely when its diagonal entry is 1.
            for (value, d) in [(controls_mask, m[0][0]), (fixed, m[1][1])] {
                if d != Complex64::ONE {
                    kernels::subspace_map(&mut self.amps, &self.config, fixed, value, |a| a * d);
                }
            }
            return;
        }
        let anti_diagonal = m[0][0] == Complex64::ZERO && m[1][1] == Complex64::ZERO;
        if anti_diagonal {
            let (m01, m10) = (m[0][1], m[1][0]);
            kernels::pair_map(
                &mut self.amps,
                &self.config,
                fixed,
                controls_mask,
                t,
                move |a, b| (m01 * b, m10 * a),
            );
            return;
        }
        let real = m.iter().flatten().all(|c| c.im == 0.0);
        if real {
            let (r00, r01, r10, r11) = (m[0][0].re, m[0][1].re, m[1][0].re, m[1][1].re);
            kernels::pair_map(
                &mut self.amps,
                &self.config,
                fixed,
                controls_mask,
                t,
                move |a, b| (a.scale(r00) + b.scale(r01), a.scale(r10) + b.scale(r11)),
            );
            return;
        }
        kernels::pair_map(
            &mut self.amps,
            &self.config,
            fixed,
            controls_mask,
            t,
            move |a, b| (m[0][0] * a + m[0][1] * b, m[1][0] * a + m[1][1] * b),
        );
    }

    fn apply_swap(&mut self, a: usize, b: usize) {
        if a == b {
            return; // matches the oracle: swap(q, q) never matched its filter
        }
        let (ma, mb) = (1u64 << a, 1u64 << b);
        // Enumerate indices with bit a = 1, bit b = 0; the partner flips
        // both. The two untouched subspaces (00 and 11) are never visited.
        kernels::pair_map(
            &mut self.amps,
            &self.config,
            ma | mb,
            ma,
            ma | mb,
            |x, y| (y, x),
        );
    }

    fn apply_mcx(&mut self, controls_mask: u64, target: usize) {
        let t = 1u64 << target;
        if controls_mask & t != 0 {
            // Degenerate gate (target is one of its own controls): the
            // scan-and-mask filter `i & controls == controls && i & t == 0`
            // never matched, so this was — and stays — a no-op.
            return;
        }
        kernels::pair_map(
            &mut self.amps,
            &self.config,
            controls_mask | t,
            controls_mask,
            t,
            |x, y| (y, x),
        );
    }

    fn apply_mcphase(&mut self, mask: u64, angle: f64) {
        let phase = Complex64::cis(angle);
        kernels::subspace_map(&mut self.amps, &self.config, mask, mask, move |a| a * phase);
    }

    /// Applies `e^{-iθ·Hc(u)}` exactly: a rotation
    /// `[[cos θ, −i sin θ], [−i sin θ, cos θ]]` on every `{|v⟩, |v̄⟩}` pair.
    pub fn apply_ublock(&mut self, block: &UBlock) {
        let mut full_mask = 0u64;
        let mut v_mask = 0u64;
        for (k, &q) in block.support.iter().enumerate() {
            full_mask |= 1 << q;
            if (block.pattern >> k) & 1 == 1 {
                v_mask |= 1 << q;
            }
        }
        self.apply_block_masks(full_mask, v_mask, block.angle);
    }

    /// Applies a generalized commute block `e^{-iθ·Hc}` with slack-register
    /// shifts: the same exact pair rotation as [`StateVector::apply_ublock`]
    /// on every eligible `|v,r⟩ ↔ |v̄,r+δ⟩` pair; register-ineligible states
    /// (where `Hc` has a zero row) get the identity.
    pub fn apply_shift_block(&mut self, block: &ShiftBlock) {
        if block.shifts.is_empty() {
            self.apply_block_masks(block.full_mask(), block.pattern_abs(), block.angle);
            return;
        }
        let (sin, cos) = block.angle.sin_cos();
        kernels::gated_pair_map(
            &mut self.amps,
            &self.config,
            block.full_mask(),
            block.pattern_abs(),
            |i| block.forward(i),
            move |a, b| {
                (
                    Complex64::new(cos * a.re + sin * b.im, cos * a.im - sin * b.re),
                    Complex64::new(cos * b.re + sin * a.im, cos * b.im - sin * a.re),
                )
            },
        );
    }

    /// Rotation between index patterns `v_mask` and `v_mask ^ full_mask`
    /// within the qubits of `full_mask`: only the `2^(n-k)` pairs of the
    /// block's subspace are enumerated.
    fn apply_block_masks(&mut self, full_mask: u64, v_mask: u64, theta: f64) {
        if full_mask == 0 {
            // Empty support: Hc degenerates to identity and the old scan
            // kernel applied the global phase e^{-iθ} (i paired with
            // itself); keep that instead of tripping the pair kernel's
            // partner assert.
            let phase = Complex64::cis(-theta);
            kernels::subspace_map(&mut self.amps, &self.config, 0, 0, move |a| a * phase);
            return;
        }
        let (sin, cos) = theta.sin_cos();
        kernels::pair_map(
            &mut self.amps,
            &self.config,
            full_mask,
            v_mask,
            full_mask,
            move |a, b| {
                (
                    Complex64::new(cos * a.re + sin * b.im, cos * a.im - sin * b.re),
                    Complex64::new(cos * b.re + sin * a.im, cos * b.im - sin * a.re),
                )
            },
        );
    }

    /// Applies `e^{-iθ·f(x)}` for a phase polynomial: the diagonal is
    /// materialized once by strided term-wise accumulation, then applied in
    /// a single (parallel) phase pass. Reuse [`StateVector::apply_diag_values`]
    /// with a cached diagonal when the same polynomial recurs across
    /// optimizer iterations (see [`crate::SimWorkspace`]).
    pub fn apply_diag_poly(&mut self, poly: &PhasePoly, theta: f64) {
        let mut values = std::mem::take(&mut self.diag_scratch);
        values.resize(self.amps.len(), 0.0);
        kernels::accumulate_poly_diag(&mut values, poly);
        self.apply_diag_values(&values, theta);
        self.diag_scratch = values;
    }

    /// Applies `e^{-iθ·values[x]}` from a precomputed diagonal. Much faster
    /// than [`StateVector::apply_diag_poly`] when the same diagonal is reused
    /// across optimizer iterations.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != 2^n`.
    pub fn apply_diag_values(&mut self, values: &[f64], theta: f64) {
        assert_eq!(values.len(), self.amps.len(), "diagonal length mismatch");
        kernels::zip_map_values(&mut self.amps, &self.config, values, move |a, f| {
            if f != 0.0 {
                *a *= Complex64::cis(-theta * f);
            }
        });
    }

    /// Measurement probabilities for every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Probability of measuring the basis state `bits`.
    pub fn probability(&self, bits: u64) -> f64 {
        self.amps[bits as usize].norm_sqr()
    }

    /// Expectation of a diagonal observable given per-basis values.
    pub fn expectation_diag_values(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.amps.len(), "diagonal length mismatch");
        self.amps
            .iter()
            .zip(values.iter())
            .map(|(a, &v)| a.norm_sqr() * v)
            .sum()
    }

    /// Expectation of a diagonal observable given as a polynomial.
    pub fn expectation_diag_poly(&self, poly: &PhasePoly) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .map(|(i, a)| a.norm_sqr() * poly.eval_bits(i as u64))
            .sum()
    }

    /// Number of basis states with probability above `eps` — the
    /// "parallelism" metric of the paper's Figure 9(b) (#measured states).
    pub fn support_size(&self, eps: f64) -> usize {
        self.amps.iter().filter(|a| a.norm_sqr() > eps).count()
    }

    /// Number of exactly non-zero amplitudes — the dense counterpart of
    /// the sparse engine's occupancy counter (`O(2^n)` scan here; the
    /// sparse engine answers in `O(1)`).
    pub fn occupancy(&self) -> usize {
        self.amps
            .iter()
            .filter(|a| a.re != 0.0 || a.im != 0.0)
            .count()
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn inner(&self, other: &StateVector) -> Complex64 {
        assert_eq!(self.n_qubits, other.n_qubits, "dimension mismatch");
        self.amps
            .iter()
            .zip(other.amps.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Total probability (should be 1 up to rounding).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalizes to unit norm (used by the stochastic noise executor
    /// after injecting non-unitary readout errors — unitary evolution never
    /// needs this).
    pub fn normalize(&mut self) {
        let norm = self.norm_sqr().sqrt();
        if norm > 0.0 {
            for a in self.amps.iter_mut() {
                *a = *a / norm;
            }
        }
    }

    /// Fills `out` with the cumulative probability table used by inverse-
    /// transform sampling (`out[i] = Σ_{k≤i} |amps[k]|²`).
    pub fn fill_cumulative(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.amps.len());
        let mut acc = 0.0f64;
        for a in &self.amps {
            acc += a.norm_sqr();
            out.push(acc);
        }
    }

    /// Samples `shots` outcomes using a prebuilt cumulative table (see
    /// [`StateVector::fill_cumulative`]); `O(shots·n)` once the table
    /// exists, so repeated sampling skips the `O(2^n)` prefix-sum rebuild.
    ///
    /// # Panics
    ///
    /// Panics if the table length does not match the state dimension.
    pub fn sample_with_cumulative<R: Rng>(
        &self,
        cumulative: &[f64],
        shots: u64,
        rng: &mut R,
    ) -> Counts {
        assert_eq!(cumulative.len(), self.amps.len(), "table length mismatch");
        let total = *cumulative.last().expect("non-empty state");
        let mut counts = Counts::new();
        for _ in 0..shots {
            let r: f64 = rng.gen::<f64>() * total;
            let idx = cumulative.partition_point(|&c| c < r);
            counts.record(idx.min(self.amps.len() - 1) as u64);
        }
        counts
    }

    /// Samples `shots` measurement outcomes in the computational basis,
    /// building the cumulative table on the fly (one-off calls; use
    /// [`crate::SimWorkspace::sample`] to reuse the table across calls).
    pub fn sample<R: Rng>(&self, shots: u64, rng: &mut R) -> Counts {
        let mut cumulative = Vec::new();
        self.fill_cumulative(&mut cumulative);
        self.sample_with_cumulative(&cumulative, shots, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScalarStateVector;
    use choco_mathkit::c64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    const EPS: f64 = 1e-12;

    #[test]
    fn initial_state_is_zero_ket() {
        let s = StateVector::new(3);
        assert_eq!(s.probability(0), 1.0);
        assert_eq!(s.support_size(1e-12), 1);
    }

    #[test]
    fn x_flips_bit() {
        let mut s = StateVector::new(2);
        s.apply_gate(&Gate::X(1));
        assert!((s.probability(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = StateVector::run(&c);
        assert!((s.probability(0b00) - 0.5).abs() < EPS);
        assert!((s.probability(0b11) - 0.5).abs() < EPS);
        assert!(s.probability(0b01) < EPS);
    }

    #[test]
    fn ghz_support_size() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
        let s = StateVector::run(&c);
        assert_eq!(s.support_size(1e-9), 2);
    }

    #[test]
    fn cz_and_cp_phases() {
        // |11⟩ picks up -1 under CZ.
        let mut s = StateVector::from_bits(2, 0b11);
        s.apply_gate(&Gate::Cz(0, 1));
        assert!(s.amplitude(0b11).approx_eq(c64(-1.0, 0.0), EPS));
        // CP(θ) adds e^{iθ}.
        let mut s = StateVector::from_bits(2, 0b11);
        s.apply_gate(&Gate::Cp(0, 1, 0.7));
        assert!(s.amplitude(0b11).approx_eq(Complex64::cis(0.7), EPS));
        // No phase on |01⟩.
        let mut s = StateVector::from_bits(2, 0b01);
        s.apply_gate(&Gate::Cp(0, 1, 0.7));
        assert!(s.amplitude(0b01).approx_eq(Complex64::ONE, EPS));
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut s = StateVector::from_bits(3, 0b001);
        s.apply_gate(&Gate::Swap(0, 2));
        assert!((s.probability(0b100) - 1.0).abs() < EPS);
    }

    #[test]
    fn ccx_and_mcx() {
        let mut s = StateVector::from_bits(3, 0b011);
        s.apply_gate(&Gate::Ccx(0, 1, 2));
        assert!((s.probability(0b111) - 1.0).abs() < EPS);

        let mut s = StateVector::from_bits(4, 0b0111);
        s.apply_gate(&Gate::Mcx {
            controls: vec![0, 1, 2],
            target: 3,
        });
        assert!((s.probability(0b1111) - 1.0).abs() < EPS);

        // One control off → no flip.
        let mut s = StateVector::from_bits(4, 0b0101);
        s.apply_gate(&Gate::Mcx {
            controls: vec![0, 1, 2],
            target: 3,
        });
        assert!((s.probability(0b0101) - 1.0).abs() < EPS);
    }

    #[test]
    fn mcphase_only_on_all_ones() {
        let mut s = StateVector::from_bits(3, 0b111);
        s.apply_gate(&Gate::McPhase {
            qubits: vec![0, 1, 2],
            angle: 1.1,
        });
        assert!(s.amplitude(0b111).approx_eq(Complex64::cis(1.1), EPS));

        let mut s = StateVector::from_bits(3, 0b101);
        s.apply_gate(&Gate::McPhase {
            qubits: vec![0, 1, 2],
            angle: 1.1,
        });
        assert!(s.amplitude(0b101).approx_eq(Complex64::ONE, EPS));
    }

    #[test]
    fn rotation_gates_match_matrices() {
        // Rx(π) = -iX: |0⟩ → -i|1⟩.
        let mut s = StateVector::new(1);
        s.apply_gate(&Gate::Rx(0, std::f64::consts::PI));
        assert!(s.amplitude(1).approx_eq(c64(0.0, -1.0), EPS));
        // Rz on |+⟩ keeps probabilities.
        let mut s = StateVector::new(1);
        s.apply_gate(&Gate::H(0));
        s.apply_gate(&Gate::Rz(0, 0.4));
        assert!((s.probability(0) - 0.5).abs() < EPS);
    }

    #[test]
    fn ublock_rotates_pattern_pair() {
        // u = (+1, -1) on 2 qubits: v = |01⟩ (bit0 = 1), v̄ = |10⟩.
        let block = UBlock::from_u_with_angle(&[1, -1], 0.6);
        let mut s = StateVector::from_bits(2, 0b01);
        s.apply_ublock(&block);
        assert!(s.amplitude(0b01).approx_eq(c64(0.6f64.cos(), 0.0), EPS));
        assert!(s.amplitude(0b10).approx_eq(c64(0.0, -(0.6f64.sin())), EPS));
        // An off-pattern state is untouched.
        let mut s = StateVector::from_bits(2, 0b11);
        s.apply_ublock(&block);
        assert!((s.probability(0b11) - 1.0).abs() < EPS);
    }

    #[test]
    fn ublock_preserves_norm_and_constraint_expectation() {
        // Superposition over the feasible pair stays in the subspace.
        let block = UBlock::from_u_with_angle(&[1, -1, 1], 1.3);
        let mut s = StateVector::from_bits(3, 0b101);
        s.apply_ublock(&block);
        assert!((s.norm_sqr() - 1.0).abs() < EPS);
        // Support is {|101⟩, |010⟩}.
        assert!((s.probability(0b101) + s.probability(0b010) - 1.0).abs() < EPS);
    }

    #[test]
    fn xymix_matches_ublock_on_pair_subspace() {
        let theta = 0.47;
        let mut a = StateVector::from_bits(2, 0b01);
        a.apply_gate(&Gate::XyMix(0, 1, theta));
        // exp(-iθ(XX+YY))|01⟩ = cos(2θ)|01⟩ - i sin(2θ)|10⟩
        assert!(a
            .amplitude(0b01)
            .approx_eq(c64((2.0 * theta).cos(), 0.0), EPS));
        assert!(a
            .amplitude(0b10)
            .approx_eq(c64(0.0, -(2.0 * theta).sin()), EPS));
        // |00⟩ and |11⟩ are untouched.
        let mut b = StateVector::from_bits(2, 0b00);
        b.apply_gate(&Gate::XyMix(0, 1, theta));
        assert!((b.probability(0b00) - 1.0).abs() < EPS);
    }

    #[test]
    fn diag_phase_applies_per_state() {
        let mut poly = PhasePoly::new(2);
        poly.add_linear(0, 1.0);
        poly.add_quadratic(0, 1, 2.0);
        let poly = Arc::new(poly);
        // Uniform superposition picks up e^{-iθf(x)} per component.
        let mut c = Circuit::new(2);
        c.h(0).h(1).diag(poly.clone(), 0.5);
        let s = StateVector::run(&c);
        let amp = |bits: u64| Complex64::cis(-0.5 * poly.eval_bits(bits)).scale(0.5);
        for bits in 0..4u64 {
            assert!(s.amplitude(bits).approx_eq(amp(bits), EPS), "bits={bits}");
        }
    }

    #[test]
    fn diag_values_matches_poly_path() {
        let mut poly = PhasePoly::new(3);
        poly.add_linear(2, -1.5);
        poly.add_quadratic(0, 1, 0.7);
        let values: Vec<f64> = (0..8u64).map(|b| poly.eval_bits(b)).collect();
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        let mut a = StateVector::run(&c);
        let mut b = a.clone();
        a.apply_diag_poly(&poly, 0.9);
        b.apply_diag_values(&values, 0.9);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn expectation_of_diagonal() {
        let mut poly = PhasePoly::new(2);
        poly.add_linear(0, 1.0);
        poly.add_linear(1, 2.0);
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        let s = StateVector::run(&c);
        // Uniform over {0,1,2,3}: E[f] = (0 + 1 + 2 + 3)/4 = 1.5
        assert!((s.expectation_diag_poly(&poly) - 1.5).abs() < EPS);
        let values: Vec<f64> = (0..4u64).map(|b| poly.eval_bits(b)).collect();
        assert!((s.expectation_diag_values(&values) - 1.5).abs() < EPS);
    }

    #[test]
    fn circuit_inverse_restores_state() {
        let mut poly = PhasePoly::new(3);
        poly.add_quadratic(0, 2, 1.0);
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .rz(1, 0.3)
            .xy(1, 2, 0.8)
            .diag(Arc::new(poly), 0.4)
            .mcphase(vec![0, 1, 2], 0.2);
        let mut s = StateVector::run(&c);
        s.apply_circuit(&c.inverse());
        let zero = StateVector::new(3);
        assert!((s.fidelity(&zero) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sampling_approximates_distribution() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = StateVector::run(&c);
        let mut rng = StdRng::seed_from_u64(7);
        let counts = s.sample(20_000, &mut rng);
        assert_eq!(counts.shots(), 20_000);
        let p00 = counts.probability(0b00);
        let p11 = counts.probability(0b11);
        assert!((p00 - 0.5).abs() < 0.02, "p00={p00}");
        assert!((p11 - 0.5).abs() < 0.02, "p11={p11}");
        assert_eq!(counts.probability(0b01), 0.0);
    }

    #[test]
    fn sample_with_cumulative_matches_fresh_table() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(2, 0.9);
        let s = StateVector::run(&c);
        let mut table = Vec::new();
        s.fill_cumulative(&mut table);
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        let direct = s.sample(5_000, &mut rng_a);
        let cached = s.sample_with_cumulative(&table, 5_000, &mut rng_b);
        assert_eq!(direct, cached, "same seed must give identical histograms");
    }

    #[test]
    fn unitarity_norm_preserved_through_random_circuit() {
        let mut c = Circuit::new(4);
        c.h(0)
            .ry(1, 0.7)
            .cx(0, 2)
            .cp(1, 3, 0.9)
            .ccx(0, 1, 2)
            .xy(2, 3, 0.3)
            .mcphase(vec![0, 2, 3], 1.4);
        let s = StateVector::run(&c);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn degenerate_gates_match_oracle_no_op() {
        // Control == target gates were silent no-ops in the scan-and-mask
        // engine (the filter `i & controls == controls && i & t == 0` never
        // matched); the strided path must preserve that.
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        c.push(Gate::Cx(0, 0));
        c.push(Gate::Swap(1, 1));
        c.push(Gate::Ccx(0, 1, 1));
        c.push(Gate::Mcx {
            controls: vec![0, 1],
            target: 0,
        });
        let oracle = ScalarStateVector::run(&c);
        let fast = StateVector::run(&c);
        assert!((oracle.fidelity_against(&fast) - 1.0).abs() < 1e-12);
        // And they really are no-ops, not merely oracle-consistent.
        let mut plus = Circuit::new(2);
        plus.h(0).h(1);
        let reference = StateVector::run(&plus);
        assert!((fast.fidelity(&reference) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_support_ublock_is_a_global_phase() {
        // Public fields allow constructing a support-free block; the old
        // scan kernel applied e^{-iθ} to every amplitude.
        let block = UBlock {
            support: vec![],
            pattern: 0,
            angle: 0.3,
        };
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut s = StateVector::run(&c);
        s.apply_ublock(&block);
        let mut oracle = ScalarStateVector::run(&c);
        oracle.apply_ublock(&block);
        for (a, b) in oracle.amplitudes().iter().zip(s.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
        assert!(s.amplitude(0).approx_eq(
            Complex64::cis(-0.3).scale(std::f64::consts::FRAC_1_SQRT_2),
            1e-12
        ));
    }

    #[test]
    fn diag_poly_scratch_is_reused_across_applications() {
        let mut poly = PhasePoly::new(3);
        poly.add_linear(0, 0.4);
        poly.add_quadratic(1, 2, -0.9);
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        let mut s = StateVector::run(&c);
        s.apply_diag_poly(&poly, 0.3);
        let scratch = s.diag_scratch.as_ptr();
        s.apply_diag_poly(&poly, -0.3);
        assert_eq!(s.diag_scratch.as_ptr(), scratch, "scratch reallocated");
        assert!((s.fidelity(&StateVector::run(&c)) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reset_reuses_buffer_and_restores_zero_ket() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(2, 1.1);
        let mut s = StateVector::run(&c);
        let buffer = s.amplitudes().as_ptr();
        s.reset_zero();
        assert_eq!(s.amplitudes().as_ptr(), buffer, "no reallocation");
        assert_eq!(s.probability(0), 1.0);
        s.reset_bits(0b101);
        assert_eq!(s.probability(0b101), 1.0);
    }

    /// Every kernel shape vs the retained scan-and-mask oracle, at every
    /// thread count (the threshold is forced to 1 so threading engages even
    /// on these tiny states).
    #[test]
    fn all_kernels_match_oracle_across_thread_counts() {
        let mut poly = PhasePoly::new(5);
        poly.add_constant(0.3);
        poly.add_linear(0, 1.0);
        poly.add_linear(4, -0.8);
        poly.add_quadratic(1, 3, 0.6);
        let poly = Arc::new(poly);
        let mut c = Circuit::new(5);
        c.h(0)
            .h(3)
            .ry(1, 0.7)
            .rx(2, -0.4)
            .rz(0, 1.2)
            .p(4, 0.8)
            .cx(0, 1)
            .cz(1, 2)
            .cp(2, 4, -0.6)
            .ccx(0, 1, 4)
            .mcx(vec![0, 2], 3)
            .mcphase(vec![1, 2, 4], 0.9)
            .xy(1, 4, 0.35)
            .ublock(UBlock::from_u_with_angle(&[1, 0, -1, 1, -1], 0.55))
            .diag(poly, 0.75)
            .push(Gate::Swap(0, 4))
            .push(Gate::Y(2));
        let oracle = ScalarStateVector::run(&c);
        for threads in [1usize, 2, 3, 4] {
            let config = SimConfig {
                threads,
                parallel_threshold: 1,
                ..SimConfig::default()
            };
            let fast = StateVector::run_with(&c, config);
            let f = oracle.fidelity_against(&fast);
            assert!((f - 1.0).abs() < 1e-10, "threads={threads}: fidelity={f}");
        }
    }
}
