//! Gate-plan compilation for the compact engine.
//!
//! A Choco-Q variational loop replays one circuit *shape* — the same gate
//! sequence with different angles — hundreds of times. The sparse engine
//! rediscovers the feasible support from scratch on every replay and pays
//! sorted-map merge churn per gate; but the support trajectory depends
//! only on the circuit's **structure** (masks, patterns, polynomial
//! identities), never on its angles. [`GatePlan::compile`] walks that
//! structure once:
//!
//! 1. a forward pass simulates support growth exactly the way the sparse
//!    engine's kernels would (pair partners are materialized, phases never
//!    grow support), producing the final feasible basis `F` (sorted),
//! 2. every gate is lowered to a [`PlanStep`] of precomputed rank tables
//!    into `F` — scatter/gather pair lists, subspace rank lists, per-rank
//!    diagonal polynomial values.
//!
//! Replay ([`GatePlan::execute`]) then walks the *current* circuit in
//! lockstep with the steps, reading angles/matrices from the gates and
//! ranks from the plan: cache-friendly strided loops over a flat
//! `Vec<Complex64>` of length `|F|`, threaded through
//! [`SimConfig::effective_threads`], with zero map operations and zero
//! allocations. Every arithmetic expression mirrors the sparse engine
//! operand for operand (which in turn mirrors the dense engine), so the
//! three engines stay bit-identical — structurally-supported slots the
//! sparse engine pruned hold exact zeros here and contribute exact IEEE
//! no-ops to every kernel.
//!
//! Compilation *fails over* instead of compiling pathological shapes:
//! once the structural support crosses the same occupancy threshold that
//! trips [`crate::EngineKind::Auto`]'s dense fallback, [`PlanError`] is
//! returned and [`crate::SimWorkspace`] runs the circuit on the per-gate
//! engines instead (dense after the auto-style fallback).

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::kernels::{dispatch, AmpPtr};
use crate::phasepoly::PhasePoly;
use crate::simconfig::SimConfig;
use choco_mathkit::Complex64;
use std::sync::{Arc, Weak};

/// Why a circuit shape could not be compiled into a plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum PlanError {
    /// Structural support crossed the caller's occupancy cap — the shape
    /// is not subspace-confined enough for the compact engine to win.
    TooDense {
        /// Support size when the cap was crossed.
        support: usize,
    },
}

/// One gate of a circuit shape, with everything angle-like erased.
///
/// Two circuits share a plan iff their atom sequences match: same gate
/// kinds on the same qubits/masks, the same `Arc<PhasePoly>` identities
/// for diagonal evolutions, and the same frozen matrices for synthesized
/// controlled-unitaries. Angles are deliberately excluded — they are what
/// the optimizer varies between replays.
#[derive(Clone, Debug)]
enum ShapeAtom {
    /// Any gate fully described by its discriminant and up to three
    /// qubit/mask words (1q gates, CX/CZ/CP/Swap/CCX, MCX, MCPhase,
    /// XY-mixer; UBlock as `(support_mask, v_mask)`).
    Masks(u8, u64, u64, u64),
    /// A diagonal evolution, identified by its polynomial allocation.
    Diag(Weak<PhasePoly>),
    /// A controlled unitary with its matrix frozen into the shape (these
    /// come from synthesis, not from the optimizer).
    CtrlU(u64, u64, [u64; 8]),
}

/// The angle-erased structure of a circuit (see [`ShapeAtom`]).
#[derive(Clone, Debug)]
pub(crate) struct CircuitShape {
    n_qubits: usize,
    atoms: Vec<ShapeAtom>,
}

/// Stable discriminant for [`ShapeAtom::Masks`].
fn gate_tag(gate: &Gate) -> u8 {
    match gate {
        Gate::H(_) => 0,
        Gate::X(_) => 1,
        Gate::Y(_) => 2,
        Gate::Z(_) => 3,
        Gate::S(_) => 4,
        Gate::Sdg(_) => 5,
        Gate::T(_) => 6,
        Gate::Tdg(_) => 7,
        Gate::Rx(..) => 8,
        Gate::Ry(..) => 9,
        Gate::Rz(..) => 10,
        Gate::Phase(..) => 11,
        Gate::Cx(..) => 12,
        Gate::Cz(..) => 13,
        Gate::Cp(..) => 14,
        Gate::Swap(..) => 15,
        Gate::Ccx(..) => 16,
        Gate::Mcx { .. } => 17,
        Gate::McPhase { .. } => 18,
        Gate::ControlledU { .. } => 19,
        Gate::UBlock(_) => 20,
        Gate::XyMix(..) => 21,
        Gate::DiagPhase(..) => 22,
    }
}

fn mask_of(qubits: &[usize]) -> u64 {
    qubits.iter().fold(0u64, |m, &q| m | (1 << q))
}

fn shape_atom(gate: &Gate) -> ShapeAtom {
    let tag = gate_tag(gate);
    match gate {
        Gate::DiagPhase(poly, _) => ShapeAtom::Diag(Arc::downgrade(poly)),
        Gate::ControlledU {
            controls,
            target,
            matrix,
        } => {
            let mut bits = [0u64; 8];
            for (slot, c) in bits.chunks_mut(2).zip(matrix.iter().flatten()) {
                slot[0] = c.re.to_bits();
                slot[1] = c.im.to_bits();
            }
            ShapeAtom::CtrlU(mask_of(controls), 1u64 << target, bits)
        }
        Gate::UBlock(b) => {
            let mut full = 0u64;
            let mut v = 0u64;
            for (k, &q) in b.support.iter().enumerate() {
                full |= 1 << q;
                if (b.pattern >> k) & 1 == 1 {
                    v |= 1 << q;
                }
            }
            ShapeAtom::Masks(tag, full, v, 0)
        }
        Gate::Cx(a, b) | Gate::Cz(a, b) | Gate::Cp(a, b, _) | Gate::Swap(a, b) => {
            ShapeAtom::Masks(tag, 1u64 << a, 1u64 << b, 0)
        }
        Gate::Ccx(c1, c2, t) => ShapeAtom::Masks(tag, (1u64 << c1) | (1u64 << c2), 1u64 << t, 0),
        Gate::Mcx { controls, target } => {
            ShapeAtom::Masks(tag, mask_of(controls), 1u64 << target, 0)
        }
        Gate::McPhase { qubits, .. } => ShapeAtom::Masks(tag, mask_of(qubits), 0, 0),
        Gate::XyMix(a, b, _) => ShapeAtom::Masks(tag, 1u64 << a, 1u64 << b, 0),
        g1q => ShapeAtom::Masks(tag, 1u64 << g1q.qubits()[0], 0, 0),
    }
}

fn atom_matches(atom: &ShapeAtom, gate: &Gate) -> bool {
    match (atom, gate) {
        (ShapeAtom::Diag(weak), Gate::DiagPhase(poly, _)) => {
            weak.upgrade().is_some_and(|live| Arc::ptr_eq(&live, poly))
        }
        (ShapeAtom::Diag(_), _) | (_, Gate::DiagPhase(..)) => false,
        (atom, gate) => match (atom, shape_atom(gate)) {
            (ShapeAtom::Masks(t0, a0, b0, c0), ShapeAtom::Masks(t1, a1, b1, c1)) => {
                (*t0, *a0, *b0, *c0) == (t1, a1, b1, c1)
            }
            (ShapeAtom::CtrlU(c0, t0, m0), ShapeAtom::CtrlU(c1, t1, m1)) => {
                (*c0, *t0, *m0) == (c1, t1, m1)
            }
            _ => false,
        },
    }
}

impl CircuitShape {
    /// The shape of a circuit.
    pub(crate) fn of(circuit: &Circuit) -> CircuitShape {
        CircuitShape {
            n_qubits: circuit.n_qubits(),
            atoms: circuit.iter().map(shape_atom).collect(),
        }
    }

    /// `true` when `circuit` has exactly this structure (angles may
    /// differ). Dead diagonal-polynomial weaks never match, so a plan can
    /// never be replayed against a recycled allocation.
    pub(crate) fn matches(&self, circuit: &Circuit) -> bool {
        self.n_qubits == circuit.n_qubits()
            && self.atoms.len() == circuit.len()
            && self
                .atoms
                .iter()
                .zip(circuit.iter())
                .all(|(atom, gate)| atom_matches(atom, gate))
    }

    /// `true` while every diagonal polynomial this shape references is
    /// still alive (dead shapes can never match again and should be
    /// evicted from caches).
    pub(crate) fn is_live(&self) -> bool {
        self.atoms.iter().all(|a| match a {
            ShapeAtom::Diag(weak) => weak.strong_count() > 0,
            _ => true,
        })
    }
}

/// The structural class a gate compiles to (see [`step_spec`]).
enum StepSpec {
    /// Degenerate gate (target among its own controls, `swap(q, q)`).
    Noop,
    /// Phase multiplication on `index & mask == value` (the phase factor
    /// itself comes from the gate at replay time).
    Phase { mask: u64, value: u64 },
    /// A diagonal 2×2 on `target` under `controls`: two independent
    /// subspace scalings.
    DiagPair { controls: u64, target: u64 },
    /// A pair kernel: `(i, i ^ xor)` for `i & fixed == value`.
    Pairs { fixed: u64, value: u64, xor: u64 },
    /// A diagonal polynomial evolution.
    DiagPoly,
}

/// Maps a gate to its structural class — the same dispatch table as
/// [`crate::SparseStateVector::apply_gate`], but resolved by gate *kind*
/// so the classification is stable under angle changes: `Rz(0)` still
/// compiles as a diagonal, `Rx(0)` still compiles as a general pair
/// (replay applies the identity matrix through the pair expressions,
/// which is an exact IEEE no-op on the amplitudes).
fn step_spec(gate: &Gate) -> StepSpec {
    let pair_1q = |q: usize| StepSpec::Pairs {
        fixed: 1u64 << q,
        value: 0,
        xor: 1u64 << q,
    };
    let diag_1q = |q: usize| StepSpec::DiagPair {
        controls: 0,
        target: 1u64 << q,
    };
    let mcx = |controls: u64, target: usize| {
        let t = 1u64 << target;
        if controls & t != 0 {
            StepSpec::Noop
        } else {
            StepSpec::Pairs {
                fixed: controls | t,
                value: controls,
                xor: t,
            }
        }
    };
    match gate {
        Gate::Cx(c, t) => mcx(1u64 << c, *t),
        Gate::Ccx(c1, c2, t) => mcx((1u64 << c1) | (1u64 << c2), *t),
        Gate::Mcx { controls, target } => mcx(mask_of(controls), *target),
        Gate::Cz(a, b) | Gate::Cp(a, b, _) => {
            let mask = (1u64 << a) | (1u64 << b);
            StepSpec::Phase { mask, value: mask }
        }
        Gate::McPhase { qubits, .. } => {
            let mask = mask_of(qubits);
            StepSpec::Phase { mask, value: mask }
        }
        Gate::Swap(a, b) => {
            if a == b {
                StepSpec::Noop
            } else {
                let (ma, mb) = (1u64 << a, 1u64 << b);
                StepSpec::Pairs {
                    fixed: ma | mb,
                    value: ma,
                    xor: ma | mb,
                }
            }
        }
        Gate::ControlledU {
            controls,
            target,
            matrix,
        } => {
            let mask = mask_of(controls);
            let t = 1u64 << target;
            if mask & t != 0 {
                return StepSpec::Noop;
            }
            // Frozen matrix (part of the shape key): classify by value,
            // exactly like the sparse dispatch.
            if matrix[0][1] == Complex64::ZERO && matrix[1][0] == Complex64::ZERO {
                StepSpec::DiagPair {
                    controls: mask,
                    target: t,
                }
            } else {
                StepSpec::Pairs {
                    fixed: mask | t,
                    value: mask,
                    xor: t,
                }
            }
        }
        Gate::UBlock(b) => {
            let ShapeAtom::Masks(_, full, v, _) = shape_atom(gate) else {
                unreachable!("ublock shapes as masks");
            };
            if b.support.is_empty() {
                // Empty support: a global phase e^{-iθ} on every entry.
                StepSpec::Phase { mask: 0, value: 0 }
            } else {
                StepSpec::Pairs {
                    fixed: full,
                    value: v,
                    xor: full,
                }
            }
        }
        Gate::XyMix(a, b, _) => {
            let full = (1u64 << a) | (1u64 << b);
            StepSpec::Pairs {
                fixed: full,
                value: 1u64 << a,
                xor: full,
            }
        }
        Gate::DiagPhase(..) => StepSpec::DiagPoly,
        // 1q gates, by kind: Z/S/Sdg/T/Tdg/Rz/Phase are diagonal for
        // every angle; H/X/Y/Rx/Ry couple the pair for (almost) every
        // angle and are compiled as pairs unconditionally.
        Gate::Z(q) | Gate::S(q) | Gate::Sdg(q) | Gate::T(q) | Gate::Tdg(q) => diag_1q(*q),
        Gate::Rz(q, _) | Gate::Phase(q, _) => diag_1q(*q),
        Gate::H(q) | Gate::X(q) | Gate::Y(q) => pair_1q(*q),
        Gate::Rx(q, _) | Gate::Ry(q, _) => pair_1q(*q),
    }
}

/// One compiled gate: the precomputed rank tables its replay needs.
#[derive(Debug)]
enum PlanStep {
    /// Degenerate gate: nothing to do.
    Noop,
    /// Multiply `amps[rank]` for every listed rank by a gate-derived
    /// phase factor.
    Phase { ranks: Vec<u32> },
    /// A diagonal 2×2: `ranks0` (target bit 0, controls satisfied) scaled
    /// by `m[0][0]`, `ranks1` (target bit 1) by `m[1][1]`.
    DiagPair { ranks0: Vec<u32>, ranks1: Vec<u32> },
    /// Disjoint rank pairs `(i, j)` for the pair kernels; the 2×2
    /// arithmetic comes from the gate at replay time.
    Pairs { pairs: Vec<[u32; 2]> },
    /// Diagonal polynomial: per-rank non-zero values, baked at compile
    /// time (the polynomial never changes under a stable shape — only the
    /// angle θ does).
    DiagPoly { ranks: Vec<u32>, values: Vec<f64> },
}

/// Interim step representation during compilation: basis-index (`u64`)
/// lists, converted to ranks once the final basis is known.
enum BitsStep {
    Noop,
    Phase(Vec<u64>),
    DiagPair(Vec<u64>, Vec<u64>),
    Pairs(Vec<[u64; 2]>),
    DiagPoly(Vec<u64>, Vec<f64>),
}

/// A compiled circuit shape: the feasible basis and one [`PlanStep`] per
/// gate. Owned (and cached across optimizer iterations) by
/// [`crate::SimWorkspace`].
#[derive(Debug)]
pub(crate) struct GatePlan {
    shape: CircuitShape,
    basis: Arc<Vec<u64>>,
    steps: Vec<PlanStep>,
}

impl GatePlan {
    /// The shape this plan was compiled from.
    pub(crate) fn shape(&self) -> &CircuitShape {
        &self.shape
    }

    /// The sorted feasible basis `F` the plan's ranks index into.
    pub(crate) fn basis(&self) -> &Arc<Vec<u64>> {
        &self.basis
    }

    /// Compiles a circuit's structure into a replayable plan, aborting
    /// with [`PlanError::TooDense`] as soon as the structural support
    /// exceeds `max_support` entries.
    pub(crate) fn compile(circuit: &Circuit, max_support: usize) -> Result<GatePlan, PlanError> {
        // The forward support pass. `support` stays strictly sorted; it
        // only ever grows (phases keep it, pair kernels add partners).
        let mut support: Vec<u64> = vec![0];
        let mut steps: Vec<BitsStep> = Vec::with_capacity(circuit.len());
        for gate in circuit.iter() {
            let step = match step_spec(gate) {
                StepSpec::Noop => BitsStep::Noop,
                StepSpec::Phase { mask, value } => BitsStep::Phase(
                    support
                        .iter()
                        .copied()
                        .filter(|bits| bits & mask == value)
                        .collect(),
                ),
                StepSpec::DiagPair { controls, target } => {
                    let fixed = controls | target;
                    let pick = |want: u64| -> Vec<u64> {
                        support
                            .iter()
                            .copied()
                            .filter(|bits| bits & fixed == want)
                            .collect()
                    };
                    BitsStep::DiagPair(pick(controls), pick(fixed))
                }
                StepSpec::Pairs { fixed, value, xor } => {
                    // Canonicalize exactly like the sparse engine's
                    // pair_map: every touched entry maps to the pair's
                    // `value`-side index; sort+dedup yields each pair once.
                    let mut canon: Vec<u64> = support
                        .iter()
                        .filter_map(|&bits| {
                            let f = bits & fixed;
                            if f == value {
                                Some(bits)
                            } else if f == value ^ xor {
                                Some(bits ^ xor)
                            } else {
                                None
                            }
                        })
                        .collect();
                    canon.sort_unstable();
                    canon.dedup();
                    let pairs: Vec<[u64; 2]> = canon.iter().map(|&i| [i, i ^ xor]).collect();
                    // Support growth: both members of every pair become
                    // structurally occupied.
                    let mut grown: Vec<u64> =
                        pairs.iter().flat_map(|p| p.iter().copied()).collect();
                    grown.sort_unstable();
                    support = merge_sorted(&support, &grown);
                    if support.len() > max_support {
                        return Err(PlanError::TooDense {
                            support: support.len(),
                        });
                    }
                    BitsStep::Pairs(pairs)
                }
                StepSpec::DiagPoly => {
                    let Gate::DiagPhase(poly, _) = gate else {
                        unreachable!("DiagPoly spec only from DiagPhase");
                    };
                    let mut ranks = Vec::new();
                    let mut values = Vec::new();
                    for &bits in &support {
                        let f = poly.eval_bits(bits);
                        if f != 0.0 {
                            ranks.push(bits);
                            values.push(f);
                        }
                    }
                    BitsStep::DiagPoly(ranks, values)
                }
            };
            steps.push(step);
        }

        // Rank conversion against the final basis.
        let basis = Arc::new(support);
        let rank = |bits: u64| -> u32 {
            basis
                .binary_search(&bits)
                .expect("every recorded index is in the final basis") as u32
        };
        let ranks = |bits: Vec<u64>| -> Vec<u32> { bits.into_iter().map(rank).collect() };
        let steps = steps
            .into_iter()
            .map(|s| match s {
                BitsStep::Noop => PlanStep::Noop,
                BitsStep::Phase(bits) => PlanStep::Phase { ranks: ranks(bits) },
                BitsStep::DiagPair(b0, b1) => PlanStep::DiagPair {
                    ranks0: ranks(b0),
                    ranks1: ranks(b1),
                },
                BitsStep::Pairs(pairs) => PlanStep::Pairs {
                    pairs: pairs.into_iter().map(|[i, j]| [rank(i), rank(j)]).collect(),
                },
                BitsStep::DiagPoly(bits, values) => PlanStep::DiagPoly {
                    ranks: ranks(bits),
                    values,
                },
            })
            .collect();
        Ok(GatePlan {
            shape: CircuitShape::of(circuit),
            basis,
            steps,
        })
    }

    /// Replays the plan over `amps` (length `|F|`), reading angles and
    /// matrices from `circuit`'s gates. The caller must have verified
    /// `self.shape().matches(circuit)`.
    ///
    /// # Panics
    ///
    /// Panics if the gate count or amplitude length disagree with the
    /// plan (a shape-match violation).
    pub(crate) fn execute(&self, circuit: &Circuit, amps: &mut [Complex64], config: &SimConfig) {
        assert_eq!(circuit.len(), self.steps.len(), "shape mismatch");
        assert_eq!(amps.len(), self.basis.len(), "basis length mismatch");
        for (gate, step) in circuit.iter().zip(self.steps.iter()) {
            match step {
                PlanStep::Noop => {}
                PlanStep::Phase { ranks } => {
                    let phase = phase_factor(gate);
                    scale_ranks(amps, ranks, phase, config);
                }
                PlanStep::DiagPair { ranks0, ranks1 } => {
                    let m = gate_matrix_1q(gate);
                    for (d, ranks) in [(m[0][0], ranks0), (m[1][1], ranks1)] {
                        if d != Complex64::ONE {
                            scale_ranks(amps, ranks, d, config);
                        }
                    }
                }
                PlanStep::Pairs { pairs } => apply_pairs(amps, pairs, gate, config),
                PlanStep::DiagPoly { ranks, values } => {
                    let Gate::DiagPhase(_, theta) = gate else {
                        panic!("shape mismatch: expected a diagonal evolution, got {gate}");
                    };
                    apply_diag(amps, ranks, values, *theta, config);
                }
            }
        }
    }
}

/// Merges two sorted, deduplicated index lists (the second may contain
/// duplicates of the first).
fn merge_sorted(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out: Vec<u64> = Vec::with_capacity(a.len() + b.len());
    let push = |out: &mut Vec<u64>, x: u64| {
        if out.last() != Some(&x) {
            out.push(x);
        }
    };
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            push(&mut out, a[i]);
            i += 1;
        } else {
            push(&mut out, b[j]);
            j += 1;
        }
    }
    for &x in &a[i..] {
        push(&mut out, x);
    }
    for &x in &b[j..] {
        push(&mut out, x);
    }
    out
}

/// The phase factor of a [`PlanStep::Phase`] gate — the same expressions
/// the sparse engine feeds its `subspace_map`.
fn phase_factor(gate: &Gate) -> Complex64 {
    match gate {
        Gate::Cz(..) => Complex64::cis(std::f64::consts::PI),
        Gate::Cp(_, _, theta) => Complex64::cis(*theta),
        Gate::McPhase { angle, .. } => Complex64::cis(*angle),
        // Empty-support commute block: the global phase e^{-iθ}.
        Gate::UBlock(b) => Complex64::cis(-b.angle),
        other => panic!("gate {other} is not a phase step"),
    }
}

/// The 2×2 matrix a [`PlanStep::DiagPair`] / 1q [`PlanStep::Pairs`] step
/// reads at replay.
fn gate_matrix_1q(gate: &Gate) -> [[Complex64; 2]; 2] {
    match gate {
        Gate::ControlledU { matrix, .. } => *matrix,
        g1q => g1q
            .matrix_1q()
            .unwrap_or_else(|| panic!("gate {g1q} has no 2×2 matrix")),
    }
}

/// Multiplies the listed ranks by `factor`, fanning out across workers
/// above the parallel threshold. Ranks within one list are distinct, so
/// chunked workers write disjoint slots.
fn scale_ranks(amps: &mut [Complex64], ranks: &[u32], factor: Complex64, config: &SimConfig) {
    let ptr = AmpPtr(amps.as_mut_ptr());
    dispatch(config, ranks.len(), |range| {
        let base = ptr.get();
        for &r in &ranks[range] {
            // SAFETY: ranks are in-bounds by construction and distinct
            // within the list; workers own disjoint chunks.
            unsafe {
                let a = base.add(r as usize);
                *a *= factor;
            }
        }
    });
}

/// Applies the diagonal phase `e^{-iθ·f}` per listed rank (the `f != 0`
/// filter already happened at compile time, mirroring the sparse
/// engine's per-entry branch).
fn apply_diag(
    amps: &mut [Complex64],
    ranks: &[u32],
    values: &[f64],
    theta: f64,
    config: &SimConfig,
) {
    debug_assert_eq!(ranks.len(), values.len());
    let ptr = AmpPtr(amps.as_mut_ptr());
    dispatch(config, ranks.len(), |range| {
        let base = ptr.get();
        for (&r, &f) in ranks[range.clone()].iter().zip(values[range].iter()) {
            // SAFETY: in-bounds, distinct ranks, disjoint worker chunks.
            unsafe {
                let a = base.add(r as usize);
                *a *= Complex64::cis(-theta * f);
            }
        }
    });
}

/// Applies a pair step with the gate's 2×2 arithmetic, dispatching on the
/// *values* exactly like the sparse engine (`apply_controlled_1q` /
/// `apply_block_masks`), so degenerate angles reproduce its expressions.
fn apply_pairs(amps: &mut [Complex64], pairs: &[[u32; 2]], gate: &Gate, config: &SimConfig) {
    match gate {
        // Permutations: swap the two slots.
        Gate::Cx(..) | Gate::Ccx(..) | Gate::Mcx { .. } | Gate::Swap(..) => {
            pair_loop(amps, pairs, config, |a, b| (b, a));
        }
        // Commute-block rotation (XY-mixer = doubled angle).
        Gate::UBlock(_) | Gate::XyMix(..) => {
            let theta = match gate {
                Gate::UBlock(b) => b.angle,
                Gate::XyMix(_, _, t) => 2.0 * t,
                _ => unreachable!(),
            };
            let (sin, cos) = theta.sin_cos();
            pair_loop(amps, pairs, config, move |a, b| {
                (
                    Complex64::new(cos * a.re + sin * b.im, cos * a.im - sin * b.re),
                    Complex64::new(cos * b.re + sin * a.im, cos * b.im - sin * a.re),
                )
            });
        }
        // 1q / controlled-1q: shape dispatch on the current matrix.
        g => {
            let m = gate_matrix_1q(g);
            let diagonal = m[0][1] == Complex64::ZERO && m[1][0] == Complex64::ZERO;
            if diagonal {
                // A kind-pair gate momentarily diagonal (e.g. `Rx(0)`):
                // the pair's low slot is the controls-side subspace, the
                // high slot the fixed side — the same two scalings the
                // sparse engine would perform.
                for (d, side) in [(m[0][0], 0usize), (m[1][1], 1usize)] {
                    if d != Complex64::ONE {
                        let ptr = AmpPtr(amps.as_mut_ptr());
                        dispatch(config, pairs.len(), |range| {
                            let base = ptr.get();
                            for p in &pairs[range] {
                                // SAFETY: disjoint pairs, in-bounds ranks.
                                unsafe {
                                    let a = base.add(p[side] as usize);
                                    *a *= d;
                                }
                            }
                        });
                    }
                }
                return;
            }
            let anti_diagonal = m[0][0] == Complex64::ZERO && m[1][1] == Complex64::ZERO;
            if anti_diagonal {
                let (m01, m10) = (m[0][1], m[1][0]);
                pair_loop(amps, pairs, config, move |a, b| (m01 * b, m10 * a));
                return;
            }
            let real = m.iter().flatten().all(|c| c.im == 0.0);
            if real {
                let (r00, r01, r10, r11) = (m[0][0].re, m[0][1].re, m[1][0].re, m[1][1].re);
                pair_loop(amps, pairs, config, move |a, b| {
                    (a.scale(r00) + b.scale(r01), a.scale(r10) + b.scale(r11))
                });
                return;
            }
            pair_loop(amps, pairs, config, move |a, b| {
                (m[0][0] * a + m[0][1] * b, m[1][0] * a + m[1][1] * b)
            });
        }
    }
}

/// Runs `op` over every rank pair, threaded per the configuration. Pairs
/// are disjoint (each rank appears in at most one pair of a step), so
/// chunked workers touch disjoint slots.
fn pair_loop<Op>(amps: &mut [Complex64], pairs: &[[u32; 2]], config: &SimConfig, op: Op)
where
    Op: Fn(Complex64, Complex64) -> (Complex64, Complex64) + Sync,
{
    let ptr = AmpPtr(amps.as_mut_ptr());
    dispatch(config, pairs.len(), |range| {
        let base = ptr.get();
        for p in &pairs[range] {
            // SAFETY: ranks in-bounds; pairs disjoint; worker chunks
            // partition the pair list.
            unsafe {
                let pa = base.add(p[0] as usize);
                let pb = base.add(p[1] as usize);
                let (a, b) = op(*pa, *pb);
                *pa = a;
                *pb = b;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::UBlock;
    use crate::sparse::SparseStateVector;

    fn test_poly() -> Arc<PhasePoly> {
        let mut poly = PhasePoly::new(4);
        poly.add_linear(1, 0.7);
        poly.add_quadratic(0, 3, -0.4);
        Arc::new(poly)
    }

    fn confined_circuit_with(poly: &Arc<PhasePoly>, theta: f64) -> Circuit {
        let mut c = Circuit::new(4);
        c.load_bits(0b0101);
        c.diag(poly.clone(), theta);
        c.ublock(UBlock::from_u_with_angle(&[1, -1, 0, 1], 0.5));
        c.ublock(UBlock::from_u_with_angle(&[0, 1, -1, -1], theta));
        c
    }

    fn confined_circuit(theta: f64) -> Circuit {
        confined_circuit_with(&test_poly(), theta)
    }

    fn run_plan(circuit: &Circuit, plan: &GatePlan) -> Vec<Complex64> {
        let mut amps = vec![Complex64::ZERO; plan.basis().len()];
        amps[0] = Complex64::ONE;
        plan.execute(circuit, &mut amps, &SimConfig::serial());
        amps
    }

    #[test]
    fn plan_replay_is_bit_identical_to_sparse() {
        let circuit = confined_circuit(0.9);
        let plan = GatePlan::compile(&circuit, 1 << 10).unwrap();
        let amps = run_plan(&circuit, &plan);
        let sparse = SparseStateVector::run(&circuit);
        for (rank, &bits) in plan.basis().iter().enumerate() {
            let (a, b) = (amps[rank], sparse.amplitude(bits));
            assert!(a.re == b.re && a.im == b.im, "bits={bits}: {a} vs {b}");
        }
    }

    #[test]
    fn one_plan_replays_many_angle_sets() {
        // The point of the compile-once design: the same plan serves
        // every iteration's angles (the polynomial Arc — part of the
        // shape identity — is shared, as the solver's build closure does).
        let poly = test_poly();
        let plan = GatePlan::compile(&confined_circuit_with(&poly, 0.1), 1 << 10).unwrap();
        for theta in [0.0, 0.3, -1.2, 2.8] {
            let circuit = confined_circuit_with(&poly, theta);
            assert!(plan.shape().matches(&circuit), "theta={theta}");
            let amps = run_plan(&circuit, &plan);
            let sparse = SparseStateVector::run(&circuit);
            for (rank, &bits) in plan.basis().iter().enumerate() {
                let (a, b) = (amps[rank], sparse.amplitude(bits));
                assert!(
                    a.re == b.re && a.im == b.im,
                    "theta={theta} bits={bits}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn shape_mismatch_is_detected() {
        let circuit = confined_circuit(0.4);
        let plan = GatePlan::compile(&circuit, 1 << 10).unwrap();
        // Different structure: one more gate.
        let mut longer = confined_circuit(0.4);
        longer.x(0);
        assert!(!plan.shape().matches(&longer));
        // Different polynomial allocation with identical values.
        let other = confined_circuit(0.4);
        assert!(
            !plan.shape().matches(&other),
            "distinct Arc allocations must not share a plan"
        );
        // Same circuit object still matches.
        assert!(plan.shape().matches(&circuit));
    }

    #[test]
    fn dense_shapes_abort_compilation() {
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q);
        }
        let err = GatePlan::compile(&c, 8).unwrap_err();
        let PlanError::TooDense { support } = err;
        assert!(support > 8, "support {support}");
    }

    #[test]
    fn degenerate_gates_compile_to_noops() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.push(Gate::Cx(0, 0));
        c.push(Gate::Swap(1, 1));
        let plan = GatePlan::compile(&c, 16).unwrap();
        assert!(matches!(plan.steps[1], PlanStep::Noop));
        assert!(matches!(plan.steps[2], PlanStep::Noop));
    }

    #[test]
    fn merge_sorted_handles_overlap() {
        assert_eq!(merge_sorted(&[1, 3, 5], &[2, 3, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(merge_sorted(&[], &[4, 4]), vec![4]);
        assert_eq!(merge_sorted(&[7], &[]), vec![7]);
    }
}
