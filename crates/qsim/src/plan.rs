//! Gate-plan compilation for the compact engine.
//!
//! A Choco-Q variational loop replays one circuit *shape* — the same gate
//! sequence with different angles — hundreds of times. The sparse engine
//! rediscovers the feasible support from scratch on every replay and pays
//! sorted-map merge churn per gate; but the support trajectory depends
//! only on the circuit's **structure** (masks, patterns, polynomial
//! identities), never on its angles. [`GatePlan::compile`] walks that
//! structure once:
//!
//! 1. a forward pass simulates support growth exactly the way the sparse
//!    engine's kernels would (pair partners are materialized, phases never
//!    grow support), producing the final feasible basis `F` (sorted),
//! 2. every gate is lowered to a [`PlanStep`] of precomputed rank tables
//!    into `F` — scatter/gather pair lists, subspace rank lists, per-rank
//!    diagonal polynomial values.
//!
//! Replay ([`GatePlan::execute`]) then walks the *current* circuit in
//! lockstep with the steps, reading angles/matrices from the gates and
//! ranks from the plan: cache-friendly strided loops over a flat
//! `Vec<Complex64>` of length `|F|`, threaded through
//! [`SimConfig::effective_threads`], with zero map operations and zero
//! allocations. Every arithmetic expression mirrors the sparse engine
//! operand for operand (which in turn mirrors the dense engine), so the
//! three engines stay bit-identical — structurally-supported slots the
//! sparse engine pruned hold exact zeros here and contribute exact IEEE
//! no-ops to every kernel.
//!
//! Compilation *fails over* instead of compiling pathological shapes:
//! once the structural support crosses the same occupancy threshold that
//! trips [`crate::EngineKind::Auto`]'s dense fallback, [`PlanError`] is
//! returned and [`crate::SimWorkspace`] runs the circuit on the per-gate
//! engines instead (dense after the auto-style fallback).

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::kernels::{dispatch, AmpPtr};
use crate::phasepoly::PhasePoly;
use crate::simconfig::SimConfig;
use choco_mathkit::Complex64;
use std::collections::HashMap;
use std::sync::{Arc, Weak};

/// Why a circuit shape could not be compiled into a plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum PlanError {
    /// Structural support crossed the caller's occupancy cap — the shape
    /// is not subspace-confined enough for the compact engine to win.
    TooDense {
        /// Support size when the cap was crossed.
        support: usize,
    },
}

/// One gate of a circuit shape, with everything angle-like erased.
///
/// Two circuits share a plan iff their atom sequences match: same gate
/// kinds on the same qubits/masks, the same `Arc<PhasePoly>` identities
/// for diagonal evolutions, and the same frozen matrices for synthesized
/// controlled-unitaries. Angles are deliberately excluded — they are what
/// the optimizer varies between replays.
#[derive(Clone, Debug)]
enum ShapeAtom {
    /// Any gate fully described by its discriminant and up to three
    /// qubit/mask words (1q gates, CX/CZ/CP/Swap/CCX, MCX, MCPhase,
    /// XY-mixer; UBlock as `(support_mask, v_mask)`).
    Masks(u8, u64, u64, u64),
    /// A diagonal evolution, identified by its polynomial allocation.
    Diag(Weak<PhasePoly>),
    /// A controlled unitary with its matrix frozen into the shape (these
    /// come from synthesis, not from the optimizer).
    CtrlU(u64, u64, [u64; 8]),
    /// A generalized commute block: `(support_mask, v_mask)` plus the
    /// frozen register shifts `(register_mask, delta, max_value)` — the
    /// pairing structure depends on all of them (register qubits are
    /// strictly increasing, so the mask determines the value order).
    Shift(u64, u64, Vec<(u64, i64, u64)>),
}

/// The angle-erased structure of a circuit (see [`ShapeAtom`]).
#[derive(Clone, Debug)]
pub(crate) struct CircuitShape {
    n_qubits: usize,
    atoms: Vec<ShapeAtom>,
}

/// Stable discriminant for [`ShapeAtom::Masks`].
fn gate_tag(gate: &Gate) -> u8 {
    match gate {
        Gate::H(_) => 0,
        Gate::X(_) => 1,
        Gate::Y(_) => 2,
        Gate::Z(_) => 3,
        Gate::S(_) => 4,
        Gate::Sdg(_) => 5,
        Gate::T(_) => 6,
        Gate::Tdg(_) => 7,
        Gate::Rx(..) => 8,
        Gate::Ry(..) => 9,
        Gate::Rz(..) => 10,
        Gate::Phase(..) => 11,
        Gate::Cx(..) => 12,
        Gate::Cz(..) => 13,
        Gate::Cp(..) => 14,
        Gate::Swap(..) => 15,
        Gate::Ccx(..) => 16,
        Gate::Mcx { .. } => 17,
        Gate::McPhase { .. } => 18,
        Gate::ControlledU { .. } => 19,
        Gate::UBlock(_) => 20,
        Gate::XyMix(..) => 21,
        Gate::DiagPhase(..) => 22,
        Gate::ShiftBlock(_) => 23,
    }
}

fn mask_of(qubits: &[usize]) -> u64 {
    qubits.iter().fold(0u64, |m, &q| m | (1 << q))
}

fn shape_atom(gate: &Gate) -> ShapeAtom {
    let tag = gate_tag(gate);
    match gate {
        Gate::DiagPhase(poly, _) => ShapeAtom::Diag(Arc::downgrade(poly)),
        Gate::ControlledU {
            controls,
            target,
            matrix,
        } => {
            let mut bits = [0u64; 8];
            for (slot, c) in bits.chunks_mut(2).zip(matrix.iter().flatten()) {
                slot[0] = c.re.to_bits();
                slot[1] = c.im.to_bits();
            }
            ShapeAtom::CtrlU(mask_of(controls), 1u64 << target, bits)
        }
        Gate::UBlock(b) => {
            let mut full = 0u64;
            let mut v = 0u64;
            for (k, &q) in b.support.iter().enumerate() {
                full |= 1 << q;
                if (b.pattern >> k) & 1 == 1 {
                    v |= 1 << q;
                }
            }
            ShapeAtom::Masks(tag, full, v, 0)
        }
        Gate::ShiftBlock(b) => ShapeAtom::Shift(
            b.full_mask(),
            b.pattern_abs(),
            b.shifts
                .iter()
                .map(|s| (s.mask(), s.delta, s.max_value))
                .collect(),
        ),
        Gate::Cx(a, b) | Gate::Cz(a, b) | Gate::Cp(a, b, _) | Gate::Swap(a, b) => {
            ShapeAtom::Masks(tag, 1u64 << a, 1u64 << b, 0)
        }
        Gate::Ccx(c1, c2, t) => ShapeAtom::Masks(tag, (1u64 << c1) | (1u64 << c2), 1u64 << t, 0),
        Gate::Mcx { controls, target } => {
            ShapeAtom::Masks(tag, mask_of(controls), 1u64 << target, 0)
        }
        Gate::McPhase { qubits, .. } => ShapeAtom::Masks(tag, mask_of(qubits), 0, 0),
        Gate::XyMix(a, b, _) => ShapeAtom::Masks(tag, 1u64 << a, 1u64 << b, 0),
        g1q => ShapeAtom::Masks(tag, 1u64 << g1q.qubits()[0], 0, 0),
    }
}

fn atom_matches(atom: &ShapeAtom, gate: &Gate) -> bool {
    match (atom, gate) {
        (ShapeAtom::Diag(weak), Gate::DiagPhase(poly, _)) => {
            weak.upgrade().is_some_and(|live| Arc::ptr_eq(&live, poly))
        }
        (ShapeAtom::Diag(_), _) | (_, Gate::DiagPhase(..)) => false,
        (atom, gate) => match (atom, shape_atom(gate)) {
            (ShapeAtom::Masks(t0, a0, b0, c0), ShapeAtom::Masks(t1, a1, b1, c1)) => {
                (*t0, *a0, *b0, *c0) == (t1, a1, b1, c1)
            }
            (ShapeAtom::CtrlU(c0, t0, m0), ShapeAtom::CtrlU(c1, t1, m1)) => {
                (*c0, *t0, *m0) == (c1, t1, m1)
            }
            (ShapeAtom::Shift(f0, v0, s0), ShapeAtom::Shift(f1, v1, s1)) => {
                (*f0, *v0) == (f1, v1) && *s0 == s1
            }
            _ => false,
        },
    }
}

impl CircuitShape {
    /// The shape of a circuit.
    pub(crate) fn of(circuit: &Circuit) -> CircuitShape {
        CircuitShape {
            n_qubits: circuit.n_qubits(),
            atoms: circuit.iter().map(shape_atom).collect(),
        }
    }

    /// `true` when `circuit` has exactly this structure (angles may
    /// differ). Dead diagonal-polynomial weaks never match, so a plan can
    /// never be replayed against a recycled allocation.
    pub(crate) fn matches(&self, circuit: &Circuit) -> bool {
        self.n_qubits == circuit.n_qubits()
            && self.atoms.len() == circuit.len()
            && self
                .atoms
                .iter()
                .zip(circuit.iter())
                .all(|(atom, gate)| atom_matches(atom, gate))
    }

    /// `true` while every diagonal polynomial this shape references is
    /// still alive (dead shapes can never match again and should be
    /// evicted from caches).
    pub(crate) fn is_live(&self) -> bool {
        self.atoms.iter().all(|a| match a {
            ShapeAtom::Diag(weak) => weak.strong_count() > 0,
            _ => true,
        })
    }
}

/// The structural class a gate compiles to (see [`step_spec`]).
enum StepSpec {
    /// Degenerate gate (target among its own controls, `swap(q, q)`).
    Noop,
    /// Phase multiplication on `index & mask == value` (the phase factor
    /// itself comes from the gate at replay time).
    Phase { mask: u64, value: u64 },
    /// A diagonal 2×2 on `target` under `controls`: two independent
    /// subspace scalings.
    DiagPair { controls: u64, target: u64 },
    /// A pair kernel: `(i, i ^ xor)` for `i & fixed == value`.
    Pairs { fixed: u64, value: u64, xor: u64 },
    /// A register-gated pair kernel (generalized commute block): the
    /// partner map comes from the gate's [`crate::gate::ShiftBlock`] at
    /// compile time.
    GatedPairs,
    /// A diagonal polynomial evolution.
    DiagPoly,
}

/// Maps a gate to its structural class — the same dispatch table as
/// [`crate::SparseStateVector::apply_gate`], but resolved by gate *kind*
/// so the classification is stable under angle changes: `Rz(0)` still
/// compiles as a diagonal, `Rx(0)` still compiles as a general pair
/// (replay applies the identity matrix through the pair expressions,
/// which is an exact IEEE no-op on the amplitudes).
fn step_spec(gate: &Gate) -> StepSpec {
    let pair_1q = |q: usize| StepSpec::Pairs {
        fixed: 1u64 << q,
        value: 0,
        xor: 1u64 << q,
    };
    let diag_1q = |q: usize| StepSpec::DiagPair {
        controls: 0,
        target: 1u64 << q,
    };
    let mcx = |controls: u64, target: usize| {
        let t = 1u64 << target;
        if controls & t != 0 {
            StepSpec::Noop
        } else {
            StepSpec::Pairs {
                fixed: controls | t,
                value: controls,
                xor: t,
            }
        }
    };
    match gate {
        Gate::Cx(c, t) => mcx(1u64 << c, *t),
        Gate::Ccx(c1, c2, t) => mcx((1u64 << c1) | (1u64 << c2), *t),
        Gate::Mcx { controls, target } => mcx(mask_of(controls), *target),
        Gate::Cz(a, b) | Gate::Cp(a, b, _) => {
            let mask = (1u64 << a) | (1u64 << b);
            StepSpec::Phase { mask, value: mask }
        }
        Gate::McPhase { qubits, .. } => {
            let mask = mask_of(qubits);
            StepSpec::Phase { mask, value: mask }
        }
        Gate::Swap(a, b) => {
            if a == b {
                StepSpec::Noop
            } else {
                let (ma, mb) = (1u64 << a, 1u64 << b);
                StepSpec::Pairs {
                    fixed: ma | mb,
                    value: ma,
                    xor: ma | mb,
                }
            }
        }
        Gate::ControlledU {
            controls,
            target,
            matrix,
        } => {
            let mask = mask_of(controls);
            let t = 1u64 << target;
            if mask & t != 0 {
                return StepSpec::Noop;
            }
            // Frozen matrix (part of the shape key): classify by value,
            // exactly like the sparse dispatch.
            if matrix[0][1] == Complex64::ZERO && matrix[1][0] == Complex64::ZERO {
                StepSpec::DiagPair {
                    controls: mask,
                    target: t,
                }
            } else {
                StepSpec::Pairs {
                    fixed: mask | t,
                    value: mask,
                    xor: t,
                }
            }
        }
        Gate::UBlock(b) => {
            let ShapeAtom::Masks(_, full, v, _) = shape_atom(gate) else {
                unreachable!("ublock shapes as masks");
            };
            if b.support.is_empty() {
                // Empty support: a global phase e^{-iθ} on every entry.
                StepSpec::Phase { mask: 0, value: 0 }
            } else {
                StepSpec::Pairs {
                    fixed: full,
                    value: v,
                    xor: full,
                }
            }
        }
        Gate::ShiftBlock(b) => {
            if b.shifts.is_empty() {
                // No registers: exactly the UBlock pair step (or the
                // empty-support global phase).
                if b.support.is_empty() {
                    StepSpec::Phase { mask: 0, value: 0 }
                } else {
                    let full = b.full_mask();
                    StepSpec::Pairs {
                        fixed: full,
                        value: b.pattern_abs(),
                        xor: full,
                    }
                }
            } else {
                StepSpec::GatedPairs
            }
        }
        Gate::XyMix(a, b, _) => {
            let full = (1u64 << a) | (1u64 << b);
            StepSpec::Pairs {
                fixed: full,
                value: 1u64 << a,
                xor: full,
            }
        }
        Gate::DiagPhase(..) => StepSpec::DiagPoly,
        // 1q gates, by kind: Z/S/Sdg/T/Tdg/Rz/Phase are diagonal for
        // every angle; H/X/Y/Rx/Ry couple the pair for (almost) every
        // angle and are compiled as pairs unconditionally.
        Gate::Z(q) | Gate::S(q) | Gate::Sdg(q) | Gate::T(q) | Gate::Tdg(q) => diag_1q(*q),
        Gate::Rz(q, _) | Gate::Phase(q, _) => diag_1q(*q),
        Gate::H(q) | Gate::X(q) | Gate::Y(q) => pair_1q(*q),
        Gate::Rx(q, _) | Gate::Ry(q, _) => pair_1q(*q),
    }
}

/// One compiled gate: the precomputed rank tables its replay needs.
#[derive(Debug)]
enum PlanStep {
    /// Degenerate gate: nothing to do.
    Noop,
    /// Multiply `amps[rank]` for every listed rank by a gate-derived
    /// phase factor.
    Phase { ranks: Vec<u32> },
    /// A diagonal 2×2: `ranks0` (target bit 0, controls satisfied) scaled
    /// by `m[0][0]`, `ranks1` (target bit 1) by `m[1][1]`.
    DiagPair { ranks0: Vec<u32>, ranks1: Vec<u32> },
    /// Disjoint rank pairs `(i, j)` for the pair kernels; the 2×2
    /// arithmetic comes from the gate at replay time.
    Pairs { pairs: Vec<[u32; 2]> },
    /// Diagonal polynomial: per-rank non-zero values, baked at compile
    /// time (the polynomial never changes under a stable shape — only the
    /// angle θ does). `distinct` / `value_idx` are the bit-deduplicated
    /// value table and each rank's index into it: structured cost
    /// polynomials repeat the same sum over many feasible states, so the
    /// batched replay computes `e^{-iθ·f}` once per *distinct* `f` per
    /// lane instead of once per rank — bit-identical, because equal `f`
    /// bits give an equal `-θ·f` product and therefore equal `cis` bits.
    DiagPoly {
        ranks: Vec<u32>,
        values: Vec<f64>,
        distinct: Vec<f64>,
        value_idx: Vec<u32>,
    },
}

/// Interim step representation during compilation: basis-index (`u64`)
/// lists, converted to ranks once the final basis is known.
enum BitsStep {
    Noop,
    Phase(Vec<u64>),
    DiagPair(Vec<u64>, Vec<u64>),
    Pairs(Vec<[u64; 2]>),
    DiagPoly(Vec<u64>, Vec<f64>),
}

/// A compiled circuit shape: the feasible basis and one [`PlanStep`] per
/// gate. Owned (and cached across optimizer iterations) by
/// [`crate::SimWorkspace`].
#[derive(Debug)]
pub(crate) struct GatePlan {
    shape: CircuitShape,
    basis: Arc<Vec<u64>>,
    steps: Vec<PlanStep>,
}

impl GatePlan {
    /// The shape this plan was compiled from.
    pub(crate) fn shape(&self) -> &CircuitShape {
        &self.shape
    }

    /// The sorted feasible basis `F` the plan's ranks index into.
    pub(crate) fn basis(&self) -> &Arc<Vec<u64>> {
        &self.basis
    }

    /// Compiles a circuit's structure into a replayable plan, aborting
    /// with [`PlanError::TooDense`] as soon as the structural support
    /// exceeds `max_support` entries.
    pub(crate) fn compile(circuit: &Circuit, max_support: usize) -> Result<GatePlan, PlanError> {
        // The forward support pass. `support` stays strictly sorted; it
        // only ever grows (phases keep it, pair kernels add partners).
        let mut support: Vec<u64> = vec![0];
        let mut steps: Vec<BitsStep> = Vec::with_capacity(circuit.len());
        for gate in circuit.iter() {
            let step = match step_spec(gate) {
                StepSpec::Noop => BitsStep::Noop,
                StepSpec::Phase { mask, value } => BitsStep::Phase(
                    support
                        .iter()
                        .copied()
                        .filter(|bits| bits & mask == value)
                        .collect(),
                ),
                StepSpec::DiagPair { controls, target } => {
                    let fixed = controls | target;
                    let pick = |want: u64| -> Vec<u64> {
                        support
                            .iter()
                            .copied()
                            .filter(|bits| bits & fixed == want)
                            .collect()
                    };
                    BitsStep::DiagPair(pick(controls), pick(fixed))
                }
                StepSpec::Pairs { fixed, value, xor } => {
                    // Canonicalize exactly like the sparse engine's
                    // pair_map: every touched entry maps to the pair's
                    // `value`-side index; sort+dedup yields each pair once.
                    let mut canon: Vec<u64> = support
                        .iter()
                        .filter_map(|&bits| {
                            let f = bits & fixed;
                            if f == value {
                                Some(bits)
                            } else if f == value ^ xor {
                                Some(bits ^ xor)
                            } else {
                                None
                            }
                        })
                        .collect();
                    canon.sort_unstable();
                    canon.dedup();
                    let pairs: Vec<[u64; 2]> = canon.iter().map(|&i| [i, i ^ xor]).collect();
                    // Support growth: both members of every pair become
                    // structurally occupied.
                    let mut grown: Vec<u64> =
                        pairs.iter().flat_map(|p| p.iter().copied()).collect();
                    grown.sort_unstable();
                    support = merge_sorted(&support, &grown);
                    if support.len() > max_support {
                        return Err(PlanError::TooDense {
                            support: support.len(),
                        });
                    }
                    BitsStep::Pairs(pairs)
                }
                StepSpec::GatedPairs => {
                    let Gate::ShiftBlock(b) = gate else {
                        unreachable!("GatedPairs spec only from ShiftBlock");
                    };
                    assert!(
                        !b.support.is_empty(),
                        "register-gated block needs support bits"
                    );
                    // Same canonicalization as the sparse engine's
                    // apply_shift_block: every eligible touched entry maps
                    // to its pair's source index; sort+dedup yields each
                    // pair once.
                    let mut canon: Vec<u64> = support
                        .iter()
                        .filter_map(|&bits| b.source_of(bits))
                        .collect();
                    canon.sort_unstable();
                    canon.dedup();
                    let pairs: Vec<[u64; 2]> = canon
                        .iter()
                        .map(|&i| [i, b.forward(i).expect("canonical source is eligible")])
                        .collect();
                    let mut grown: Vec<u64> =
                        pairs.iter().flat_map(|p| p.iter().copied()).collect();
                    grown.sort_unstable();
                    support = merge_sorted(&support, &grown);
                    if support.len() > max_support {
                        return Err(PlanError::TooDense {
                            support: support.len(),
                        });
                    }
                    BitsStep::Pairs(pairs)
                }
                StepSpec::DiagPoly => {
                    let Gate::DiagPhase(poly, _) = gate else {
                        unreachable!("DiagPoly spec only from DiagPhase");
                    };
                    let mut ranks = Vec::new();
                    let mut values = Vec::new();
                    for &bits in &support {
                        let f = poly.eval_bits(bits);
                        if f != 0.0 {
                            ranks.push(bits);
                            values.push(f);
                        }
                    }
                    BitsStep::DiagPoly(ranks, values)
                }
            };
            steps.push(step);
        }

        // Rank conversion against the final basis.
        let basis = Arc::new(support);
        let rank = |bits: u64| -> u32 {
            basis
                .binary_search(&bits)
                .expect("every recorded index is in the final basis") as u32
        };
        let ranks = |bits: Vec<u64>| -> Vec<u32> { bits.into_iter().map(rank).collect() };
        let steps = steps
            .into_iter()
            .map(|s| match s {
                BitsStep::Noop => PlanStep::Noop,
                BitsStep::Phase(bits) => PlanStep::Phase { ranks: ranks(bits) },
                BitsStep::DiagPair(b0, b1) => PlanStep::DiagPair {
                    ranks0: ranks(b0),
                    ranks1: ranks(b1),
                },
                BitsStep::Pairs(pairs) => PlanStep::Pairs {
                    pairs: pairs.into_iter().map(|[i, j]| [rank(i), rank(j)]).collect(),
                },
                BitsStep::DiagPoly(bits, values) => {
                    let mut distinct: Vec<f64> = Vec::new();
                    let mut slot_of: HashMap<u64, u32> = HashMap::new();
                    let value_idx: Vec<u32> = values
                        .iter()
                        .map(|&f| {
                            *slot_of.entry(f.to_bits()).or_insert_with(|| {
                                distinct.push(f);
                                (distinct.len() - 1) as u32
                            })
                        })
                        .collect();
                    PlanStep::DiagPoly {
                        ranks: ranks(bits),
                        values,
                        distinct,
                        value_idx,
                    }
                }
            })
            .collect();
        Ok(GatePlan {
            shape: CircuitShape::of(circuit),
            basis,
            steps,
        })
    }

    /// Replays the plan over `amps` (length `|F|`), reading angles and
    /// matrices from `circuit`'s gates. The caller must have verified
    /// `self.shape().matches(circuit)`.
    ///
    /// # Panics
    ///
    /// Panics if the gate count or amplitude length disagree with the
    /// plan (a shape-match violation).
    pub(crate) fn execute(&self, circuit: &Circuit, amps: &mut [Complex64], config: &SimConfig) {
        assert_eq!(circuit.len(), self.steps.len(), "shape mismatch");
        assert_eq!(amps.len(), self.basis.len(), "basis length mismatch");
        for (gate, step) in circuit.iter().zip(self.steps.iter()) {
            match step {
                PlanStep::Noop => {}
                PlanStep::Phase { ranks } => {
                    let phase = phase_factor(gate);
                    scale_ranks(amps, ranks, phase, config);
                }
                PlanStep::DiagPair { ranks0, ranks1 } => {
                    let m = gate_matrix_1q(gate);
                    for (d, ranks) in [(m[0][0], ranks0), (m[1][1], ranks1)] {
                        if d != Complex64::ONE {
                            scale_ranks(amps, ranks, d, config);
                        }
                    }
                }
                PlanStep::Pairs { pairs } => apply_pairs(amps, pairs, gate, config),
                PlanStep::DiagPoly { ranks, values, .. } => {
                    let Gate::DiagPhase(_, theta) = gate else {
                        panic!("shape mismatch: expected a diagonal evolution, got {gate}");
                    };
                    apply_diag(amps, ranks, values, *theta, config);
                }
            }
        }
    }

    /// Replays the plan over `K = circuits.len()` amplitude lanes in a
    /// single pass over the rank tables. `amps` is the rank-major SoA
    /// layout `amps[rank * K + lane]` of length `K·|F|` — all K candidates
    /// for one basis rank are contiguous, so the rank/pair tables are
    /// traversed once while the inner loops run over the K lanes.
    ///
    /// Every lane evaluates *exactly* the arithmetic expression sequence
    /// [`GatePlan::execute`] would apply to it alone — including the
    /// value-based kernel dispatch per lane (an `Rx(0)` lane takes the
    /// diagonal branch while an `Rx(0.5)` lane takes the real-matrix
    /// branch of the same step) — so batched amplitudes are bit-identical
    /// to K sequential replays at any thread count. The caller must have
    /// verified `self.shape().matches(c)` for every circuit.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty, a gate count disagrees with the
    /// plan, or the amplitude length is not `K·|F|`.
    pub(crate) fn execute_batch(
        &self,
        circuits: &[Circuit],
        amps: &mut [Complex64],
        scratch: &mut BatchScratch,
        config: &SimConfig,
    ) {
        let lanes = circuits.len();
        assert!(lanes > 0, "empty batch");
        assert_eq!(
            amps.len(),
            lanes * self.basis.len(),
            "batch amplitude length mismatch"
        );
        for c in circuits {
            assert_eq!(c.len(), self.steps.len(), "shape mismatch");
        }
        for (gi, step) in self.steps.iter().enumerate() {
            let gate_of = |lane: usize| &circuits[lane].gates()[gi];
            match step {
                PlanStep::Noop => {}
                PlanStep::Phase { ranks } => {
                    scratch.factors.clear();
                    scratch
                        .factors
                        .extend((0..lanes).map(|lane| phase_factor(gate_of(lane))));
                    scale_ranks_batch(amps, ranks, &scratch.factors, config);
                }
                PlanStep::DiagPair { ranks0, ranks1 } => {
                    scratch.diag0.clear();
                    scratch.diag1.clear();
                    for lane in 0..lanes {
                        let m = gate_matrix_1q(gate_of(lane));
                        scratch.diag0.push(m[0][0]);
                        scratch.diag1.push(m[1][1]);
                    }
                    for (diag, ranks) in [(&scratch.diag0, ranks0), (&scratch.diag1, ranks1)] {
                        // The serial path skips the scaling when the
                        // diagonal entry is exactly one (a multiply by one
                        // is not an IEEE no-op once `-0.0` is in play);
                        // the skip moves inside the lane loop here.
                        if diag.iter().any(|d| *d != Complex64::ONE) {
                            scale_ranks_batch_skip_one(amps, ranks, diag, config);
                        }
                    }
                }
                PlanStep::Pairs { pairs } => {
                    scratch.kernels.clear();
                    scratch
                        .kernels
                        .extend((0..lanes).map(|lane| LaneKernel::of(gate_of(lane))));
                    // The hot Choco-Q case — every lane a commute-block
                    // rotation — runs on flat sin/cos lane arrays, which
                    // the specialized loop turns into dense per-row
                    // arithmetic instead of per-lane enum dispatch.
                    if scratch
                        .kernels
                        .iter()
                        .all(|k| matches!(k, LaneKernel::Rot { .. }))
                    {
                        scratch.sins.clear();
                        scratch.coss.clear();
                        for k in &scratch.kernels {
                            let LaneKernel::Rot { sin, cos } = *k else {
                                unreachable!("checked all-rotation above");
                            };
                            scratch.sins.push(sin);
                            scratch.coss.push(cos);
                        }
                        apply_pairs_batch_rot(amps, pairs, &scratch.sins, &scratch.coss, config);
                    } else {
                        apply_pairs_batch(amps, pairs, &scratch.kernels, config);
                    }
                }
                PlanStep::DiagPoly {
                    ranks,
                    distinct,
                    value_idx,
                    ..
                } => {
                    scratch.thetas.clear();
                    scratch.thetas.extend((0..lanes).map(|lane| {
                        let Gate::DiagPhase(_, theta) = gate_of(lane) else {
                            panic!("shape mismatch: expected a diagonal evolution");
                        };
                        *theta
                    }));
                    apply_diag_batch(
                        amps,
                        ranks,
                        distinct,
                        value_idx,
                        &scratch.thetas,
                        &mut scratch.factor_table,
                        config,
                    );
                }
            }
        }
    }
}

/// Merges two sorted, deduplicated index lists (the second may contain
/// duplicates of the first).
fn merge_sorted(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out: Vec<u64> = Vec::with_capacity(a.len() + b.len());
    let push = |out: &mut Vec<u64>, x: u64| {
        if out.last() != Some(&x) {
            out.push(x);
        }
    };
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            push(&mut out, a[i]);
            i += 1;
        } else {
            push(&mut out, b[j]);
            j += 1;
        }
    }
    for &x in &a[i..] {
        push(&mut out, x);
    }
    for &x in &b[j..] {
        push(&mut out, x);
    }
    out
}

/// The phase factor of a [`PlanStep::Phase`] gate — the same expressions
/// the sparse engine feeds its `subspace_map`.
fn phase_factor(gate: &Gate) -> Complex64 {
    match gate {
        Gate::Cz(..) => Complex64::cis(std::f64::consts::PI),
        Gate::Cp(_, _, theta) => Complex64::cis(*theta),
        Gate::McPhase { angle, .. } => Complex64::cis(*angle),
        // Empty-support commute block: the global phase e^{-iθ}.
        Gate::UBlock(b) => Complex64::cis(-b.angle),
        Gate::ShiftBlock(b) => Complex64::cis(-b.angle),
        other => panic!("gate {other} is not a phase step"),
    }
}

/// The 2×2 matrix a [`PlanStep::DiagPair`] / 1q [`PlanStep::Pairs`] step
/// reads at replay.
fn gate_matrix_1q(gate: &Gate) -> [[Complex64; 2]; 2] {
    match gate {
        Gate::ControlledU { matrix, .. } => *matrix,
        g1q => g1q
            .matrix_1q()
            .unwrap_or_else(|| panic!("gate {g1q} has no 2×2 matrix")),
    }
}

/// Multiplies the listed ranks by `factor`, fanning out across workers
/// above the parallel threshold. Ranks within one list are distinct, so
/// chunked workers write disjoint slots.
fn scale_ranks(amps: &mut [Complex64], ranks: &[u32], factor: Complex64, config: &SimConfig) {
    let ptr = AmpPtr(amps.as_mut_ptr());
    dispatch(config, ranks.len(), |range| {
        let base = ptr.get();
        for &r in &ranks[range] {
            // SAFETY: ranks are in-bounds by construction and distinct
            // within the list; workers own disjoint chunks.
            unsafe {
                let a = base.add(r as usize);
                *a *= factor;
            }
        }
    });
}

/// Applies the diagonal phase `e^{-iθ·f}` per listed rank (the `f != 0`
/// filter already happened at compile time, mirroring the sparse
/// engine's per-entry branch).
fn apply_diag(
    amps: &mut [Complex64],
    ranks: &[u32],
    values: &[f64],
    theta: f64,
    config: &SimConfig,
) {
    debug_assert_eq!(ranks.len(), values.len());
    let ptr = AmpPtr(amps.as_mut_ptr());
    dispatch(config, ranks.len(), |range| {
        let base = ptr.get();
        for (&r, &f) in ranks[range.clone()].iter().zip(values[range].iter()) {
            // SAFETY: in-bounds, distinct ranks, disjoint worker chunks.
            unsafe {
                let a = base.add(r as usize);
                *a *= Complex64::cis(-theta * f);
            }
        }
    });
}

/// Applies a pair step with the gate's 2×2 arithmetic, dispatching on the
/// *values* exactly like the sparse engine (`apply_controlled_1q` /
/// `apply_block_masks`), so degenerate angles reproduce its expressions.
fn apply_pairs(amps: &mut [Complex64], pairs: &[[u32; 2]], gate: &Gate, config: &SimConfig) {
    match gate {
        // Permutations: swap the two slots.
        Gate::Cx(..) | Gate::Ccx(..) | Gate::Mcx { .. } | Gate::Swap(..) => {
            pair_loop(amps, pairs, config, |a, b| (b, a));
        }
        // Commute-block rotation (XY-mixer = doubled angle).
        Gate::UBlock(_) | Gate::ShiftBlock(_) | Gate::XyMix(..) => {
            let theta = match gate {
                Gate::UBlock(b) => b.angle,
                Gate::ShiftBlock(b) => b.angle,
                Gate::XyMix(_, _, t) => 2.0 * t,
                _ => unreachable!(),
            };
            let (sin, cos) = theta.sin_cos();
            pair_loop(amps, pairs, config, move |a, b| {
                (
                    Complex64::new(cos * a.re + sin * b.im, cos * a.im - sin * b.re),
                    Complex64::new(cos * b.re + sin * a.im, cos * b.im - sin * a.re),
                )
            });
        }
        // 1q / controlled-1q: shape dispatch on the current matrix.
        g => {
            let m = gate_matrix_1q(g);
            let diagonal = m[0][1] == Complex64::ZERO && m[1][0] == Complex64::ZERO;
            if diagonal {
                // A kind-pair gate momentarily diagonal (e.g. `Rx(0)`):
                // the pair's low slot is the controls-side subspace, the
                // high slot the fixed side — the same two scalings the
                // sparse engine would perform.
                for (d, side) in [(m[0][0], 0usize), (m[1][1], 1usize)] {
                    if d != Complex64::ONE {
                        let ptr = AmpPtr(amps.as_mut_ptr());
                        dispatch(config, pairs.len(), |range| {
                            let base = ptr.get();
                            for p in &pairs[range] {
                                // SAFETY: disjoint pairs, in-bounds ranks.
                                unsafe {
                                    let a = base.add(p[side] as usize);
                                    *a *= d;
                                }
                            }
                        });
                    }
                }
                return;
            }
            let anti_diagonal = m[0][0] == Complex64::ZERO && m[1][1] == Complex64::ZERO;
            if anti_diagonal {
                let (m01, m10) = (m[0][1], m[1][0]);
                pair_loop(amps, pairs, config, move |a, b| (m01 * b, m10 * a));
                return;
            }
            let real = m.iter().flatten().all(|c| c.im == 0.0);
            if real {
                let (r00, r01, r10, r11) = (m[0][0].re, m[0][1].re, m[1][0].re, m[1][1].re);
                pair_loop(amps, pairs, config, move |a, b| {
                    (a.scale(r00) + b.scale(r01), a.scale(r10) + b.scale(r11))
                });
                return;
            }
            pair_loop(amps, pairs, config, move |a, b| {
                (m[0][0] * a + m[0][1] * b, m[1][0] * a + m[1][1] * b)
            });
        }
    }
}

/// Runs `op` over every rank pair, threaded per the configuration. Pairs
/// are disjoint (each rank appears in at most one pair of a step), so
/// chunked workers touch disjoint slots.
fn pair_loop<Op>(amps: &mut [Complex64], pairs: &[[u32; 2]], config: &SimConfig, op: Op)
where
    Op: Fn(Complex64, Complex64) -> (Complex64, Complex64) + Sync,
{
    let ptr = AmpPtr(amps.as_mut_ptr());
    dispatch(config, pairs.len(), |range| {
        let base = ptr.get();
        for p in &pairs[range] {
            // SAFETY: ranks in-bounds; pairs disjoint; worker chunks
            // partition the pair list.
            unsafe {
                let pa = base.add(p[0] as usize);
                let pb = base.add(p[1] as usize);
                let (a, b) = op(*pa, *pb);
                *pa = a;
                *pb = b;
            }
        }
    });
}

/// Reusable per-gate lane-parameter buffers for
/// [`GatePlan::execute_batch`]: after the first replay of a shape no
/// batched iteration allocates (mirroring the serial path's
/// zero-allocation contract).
#[derive(Debug, Default)]
pub(crate) struct BatchScratch {
    factors: Vec<Complex64>,
    thetas: Vec<f64>,
    diag0: Vec<Complex64>,
    diag1: Vec<Complex64>,
    kernels: Vec<LaneKernel>,
    /// Flat per-lane rotation parameters for the all-rotation pair loop.
    sins: Vec<f64>,
    coss: Vec<f64>,
    /// The `distinct × lanes` diagonal factor table (`value`-major, lane
    /// contiguous) rebuilt per diagonal step.
    factor_table: Vec<Complex64>,
}

/// The per-lane 2×2 kernel a [`PlanStep::Pairs`] gate resolved to — the
/// same value-based dispatch [`apply_pairs`] performs, frozen per lane so
/// the batched pair loop replays each lane's exact serial branch.
#[derive(Clone, Copy, Debug)]
enum LaneKernel {
    /// Permutation gates: swap the two slots.
    Swap,
    /// Commute-block rotation (XY-mixer = doubled angle).
    Rot { sin: f64, cos: f64 },
    /// Momentarily diagonal kind-pair gate (e.g. `Rx(0)`): two subspace
    /// scalings, each skipped when its entry is exactly one.
    Diag { d0: Complex64, d1: Complex64 },
    /// Momentarily anti-diagonal matrix (e.g. `X`, `Rx(π)` up to phase).
    AntiDiag { m01: Complex64, m10: Complex64 },
    /// All-real matrix (e.g. `H`, `Ry`): four real scalings.
    Real {
        r00: f64,
        r01: f64,
        r10: f64,
        r11: f64,
    },
    /// The general complex 2×2.
    Full { m: [[Complex64; 2]; 2] },
}

impl LaneKernel {
    /// Classifies one lane's gate exactly like [`apply_pairs`].
    fn of(gate: &Gate) -> LaneKernel {
        match gate {
            Gate::Cx(..) | Gate::Ccx(..) | Gate::Mcx { .. } | Gate::Swap(..) => LaneKernel::Swap,
            Gate::UBlock(_) | Gate::ShiftBlock(_) | Gate::XyMix(..) => {
                let theta = match gate {
                    Gate::UBlock(b) => b.angle,
                    Gate::ShiftBlock(b) => b.angle,
                    Gate::XyMix(_, _, t) => 2.0 * t,
                    _ => unreachable!(),
                };
                let (sin, cos) = theta.sin_cos();
                LaneKernel::Rot { sin, cos }
            }
            g => {
                let m = gate_matrix_1q(g);
                if m[0][1] == Complex64::ZERO && m[1][0] == Complex64::ZERO {
                    LaneKernel::Diag {
                        d0: m[0][0],
                        d1: m[1][1],
                    }
                } else if m[0][0] == Complex64::ZERO && m[1][1] == Complex64::ZERO {
                    LaneKernel::AntiDiag {
                        m01: m[0][1],
                        m10: m[1][0],
                    }
                } else if m.iter().flatten().all(|c| c.im == 0.0) {
                    LaneKernel::Real {
                        r00: m[0][0].re,
                        r01: m[0][1].re,
                        r10: m[1][0].re,
                        r11: m[1][1].re,
                    }
                } else {
                    LaneKernel::Full { m }
                }
            }
        }
    }

    /// Applies this lane's kernel to one `(low, high)` slot pair — the
    /// exact expression [`apply_pairs`] would evaluate for this lane.
    #[inline]
    fn apply(self, a: Complex64, b: Complex64) -> (Complex64, Complex64) {
        match self {
            LaneKernel::Swap => (b, a),
            LaneKernel::Rot { sin, cos } => (
                Complex64::new(cos * a.re + sin * b.im, cos * a.im - sin * b.re),
                Complex64::new(cos * b.re + sin * a.im, cos * b.im - sin * a.re),
            ),
            LaneKernel::Diag { d0, d1 } => (
                if d0 != Complex64::ONE { a * d0 } else { a },
                if d1 != Complex64::ONE { b * d1 } else { b },
            ),
            LaneKernel::AntiDiag { m01, m10 } => (m01 * b, m10 * a),
            LaneKernel::Real { r00, r01, r10, r11 } => {
                (a.scale(r00) + b.scale(r01), a.scale(r10) + b.scale(r11))
            }
            LaneKernel::Full { m } => (m[0][0] * a + m[0][1] * b, m[1][0] * a + m[1][1] * b),
        }
    }
}

/// Batched [`scale_ranks`]: multiplies every listed rank's K lanes by the
/// per-lane factors, unconditionally (the phase-step contract). Workers
/// chunk over ranks, so every `rank × lane` slot has exactly one writer.
fn scale_ranks_batch(
    amps: &mut [Complex64],
    ranks: &[u32],
    factors: &[Complex64],
    config: &SimConfig,
) {
    let lanes = factors.len();
    let ptr = AmpPtr(amps.as_mut_ptr());
    dispatch(config, ranks.len(), |range| {
        let base = ptr.get();
        for &r in &ranks[range] {
            // SAFETY: ranks in-bounds and distinct within the list;
            // worker chunks partition the rank list, and each worker owns
            // all K lanes of its ranks.
            unsafe {
                let row = base.add(r as usize * lanes);
                for (lane, &f) in factors.iter().enumerate() {
                    *row.add(lane) *= f;
                }
            }
        }
    });
}

/// Batched diagonal scaling with the serial path's per-gate `d != 1`
/// skip applied per lane (see [`GatePlan::execute`]'s `DiagPair` arm).
fn scale_ranks_batch_skip_one(
    amps: &mut [Complex64],
    ranks: &[u32],
    factors: &[Complex64],
    config: &SimConfig,
) {
    let lanes = factors.len();
    let ptr = AmpPtr(amps.as_mut_ptr());
    dispatch(config, ranks.len(), |range| {
        let base = ptr.get();
        for &r in &ranks[range] {
            // SAFETY: as in `scale_ranks_batch`.
            unsafe {
                let row = base.add(r as usize * lanes);
                for (lane, &f) in factors.iter().enumerate() {
                    if f != Complex64::ONE {
                        *row.add(lane) *= f;
                    }
                }
            }
        }
    });
}

/// Batched [`apply_diag`]: per rank, every lane multiplies by its own
/// `e^{-iθ_lane·f}` — the identical expression the serial replay applies.
///
/// The transcendental work is hoisted out of the rank loop: `e^{-iθ·f}`
/// is computed once per *distinct* polynomial value per lane into
/// `table` (value-major, lanes contiguous), and the rank loop becomes a
/// contiguous row-by-row complex multiply. Structured cost polynomials
/// repeat a handful of sums across the whole feasible set, so this
/// replaces `|F|` sin/cos evaluations per lane with `|distinct|` — the
/// factor bits are unchanged (equal `f` bits ⇒ equal `-θ·f` ⇒ equal
/// `cis`), so every lane stays bit-identical to its serial replay.
fn apply_diag_batch(
    amps: &mut [Complex64],
    ranks: &[u32],
    distinct: &[f64],
    value_idx: &[u32],
    thetas: &[f64],
    table: &mut Vec<Complex64>,
    config: &SimConfig,
) {
    debug_assert_eq!(ranks.len(), value_idx.len());
    let lanes = thetas.len();
    table.clear();
    table.reserve(distinct.len() * lanes);
    for &f in distinct {
        for &theta in thetas {
            table.push(Complex64::cis(-theta * f));
        }
    }
    let table = &*table;
    let ptr = AmpPtr(amps.as_mut_ptr());
    dispatch(config, ranks.len(), |range| {
        let base = ptr.get();
        for (&r, &fi) in ranks[range.clone()].iter().zip(value_idx[range].iter()) {
            let factors = &table[fi as usize * lanes..fi as usize * lanes + lanes];
            // SAFETY: as in `scale_ranks_batch`.
            unsafe {
                let row = base.add(r as usize * lanes);
                for (lane, &factor) in factors.iter().enumerate() {
                    *row.add(lane) *= factor;
                }
            }
        }
    });
}

/// The all-rotation specialization of [`apply_pairs_batch`]: every lane
/// is a commute-block rotation, evaluated with exactly the serial
/// rotation expression. The lane dimension is tiled in blocks of four:
/// a block's eight `sin`/`cos` values stay register-resident across the
/// whole pair-table pass (a lane-minor loop over all K spills them every
/// iteration), while each pass still consumes contiguous quarter-rows of
/// the SoA layout (a fully lane-major loop would stream every cache line
/// K times for one lane's worth of work).
fn apply_pairs_batch_rot(
    amps: &mut [Complex64],
    pairs: &[[u32; 2]],
    sins: &[f64],
    coss: &[f64],
    config: &SimConfig,
) {
    const BLOCK: usize = 4;
    let lanes = sins.len();
    let ptr = AmpPtr(amps.as_mut_ptr());
    dispatch(config, pairs.len(), |range| {
        let base = ptr.get();
        let mut start = 0;
        while start < lanes {
            let width = BLOCK.min(lanes - start);
            if width == BLOCK {
                let s: [f64; BLOCK] = sins[start..start + BLOCK].try_into().expect("block");
                let c: [f64; BLOCK] = coss[start..start + BLOCK].try_into().expect("block");
                for p in &pairs[range.clone()] {
                    // SAFETY: pairs disjoint, ranks in-bounds; worker
                    // chunks partition the pair list and own all K lanes
                    // of their pairs.
                    unsafe {
                        let row_a = base.add(p[0] as usize * lanes + start);
                        let row_b = base.add(p[1] as usize * lanes + start);
                        for lane in 0..BLOCK {
                            rot_one_lane(row_a.add(lane), row_b.add(lane), s[lane], c[lane]);
                        }
                    }
                }
            } else {
                let (s, c) = (&sins[start..start + width], &coss[start..start + width]);
                for p in &pairs[range.clone()] {
                    // SAFETY: as above.
                    unsafe {
                        let row_a = base.add(p[0] as usize * lanes + start);
                        let row_b = base.add(p[1] as usize * lanes + start);
                        for lane in 0..width {
                            rot_one_lane(row_a.add(lane), row_b.add(lane), s[lane], c[lane]);
                        }
                    }
                }
            }
            start += width;
        }
    });
}

/// One lane of the commute-block rotation — the exact expression the
/// serial [`apply_pairs`] rotation closure evaluates.
///
/// # Safety
///
/// `pa` and `pb` must be valid, distinct amplitude slots.
#[inline(always)]
unsafe fn rot_one_lane(pa: *mut Complex64, pb: *mut Complex64, sin: f64, cos: f64) {
    let (a, b) = (*pa, *pb);
    *pa = Complex64::new(cos * a.re + sin * b.im, cos * a.im - sin * b.re);
    *pb = Complex64::new(cos * b.re + sin * a.im, cos * b.im - sin * a.re);
}

/// Batched [`apply_pairs`] for mixed batches: one traversal of the pair
/// table updates all K lanes, each through its own frozen [`LaneKernel`]
/// (all-rotation batches take [`apply_pairs_batch_rot`] instead). Every
/// lane evaluates the same per-lane expression as its serial replay.
fn apply_pairs_batch(
    amps: &mut [Complex64],
    pairs: &[[u32; 2]],
    kernels: &[LaneKernel],
    config: &SimConfig,
) {
    let lanes = kernels.len();
    let ptr = AmpPtr(amps.as_mut_ptr());
    dispatch(config, pairs.len(), |range| {
        let base = ptr.get();
        for p in &pairs[range] {
            // SAFETY: pairs disjoint, ranks in-bounds; worker chunks
            // partition the pair list and own all K lanes of their pairs.
            unsafe {
                let row_a = base.add(p[0] as usize * lanes);
                let row_b = base.add(p[1] as usize * lanes);
                for (lane, k) in kernels.iter().enumerate() {
                    let (pa, pb) = (row_a.add(lane), row_b.add(lane));
                    let (a, b) = k.apply(*pa, *pb);
                    *pa = a;
                    *pb = b;
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::UBlock;
    use crate::sparse::SparseStateVector;

    fn test_poly() -> Arc<PhasePoly> {
        let mut poly = PhasePoly::new(4);
        poly.add_linear(1, 0.7);
        poly.add_quadratic(0, 3, -0.4);
        Arc::new(poly)
    }

    fn confined_circuit_with(poly: &Arc<PhasePoly>, theta: f64) -> Circuit {
        let mut c = Circuit::new(4);
        c.load_bits(0b0101);
        c.diag(poly.clone(), theta);
        c.ublock(UBlock::from_u_with_angle(&[1, -1, 0, 1], 0.5));
        c.ublock(UBlock::from_u_with_angle(&[0, 1, -1, -1], theta));
        c
    }

    fn confined_circuit(theta: f64) -> Circuit {
        confined_circuit_with(&test_poly(), theta)
    }

    fn run_plan(circuit: &Circuit, plan: &GatePlan) -> Vec<Complex64> {
        let mut amps = vec![Complex64::ZERO; plan.basis().len()];
        amps[0] = Complex64::ONE;
        plan.execute(circuit, &mut amps, &SimConfig::serial());
        amps
    }

    #[test]
    fn plan_replay_is_bit_identical_to_sparse() {
        let circuit = confined_circuit(0.9);
        let plan = GatePlan::compile(&circuit, 1 << 10).unwrap();
        let amps = run_plan(&circuit, &plan);
        let sparse = SparseStateVector::run(&circuit);
        for (rank, &bits) in plan.basis().iter().enumerate() {
            let (a, b) = (amps[rank], sparse.amplitude(bits));
            assert!(a.re == b.re && a.im == b.im, "bits={bits}: {a} vs {b}");
        }
    }

    #[test]
    fn one_plan_replays_many_angle_sets() {
        // The point of the compile-once design: the same plan serves
        // every iteration's angles (the polynomial Arc — part of the
        // shape identity — is shared, as the solver's build closure does).
        let poly = test_poly();
        let plan = GatePlan::compile(&confined_circuit_with(&poly, 0.1), 1 << 10).unwrap();
        for theta in [0.0, 0.3, -1.2, 2.8] {
            let circuit = confined_circuit_with(&poly, theta);
            assert!(plan.shape().matches(&circuit), "theta={theta}");
            let amps = run_plan(&circuit, &plan);
            let sparse = SparseStateVector::run(&circuit);
            for (rank, &bits) in plan.basis().iter().enumerate() {
                let (a, b) = (amps[rank], sparse.amplitude(bits));
                assert!(
                    a.re == b.re && a.im == b.im,
                    "theta={theta} bits={bits}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn shape_mismatch_is_detected() {
        let circuit = confined_circuit(0.4);
        let plan = GatePlan::compile(&circuit, 1 << 10).unwrap();
        // Different structure: one more gate.
        let mut longer = confined_circuit(0.4);
        longer.x(0);
        assert!(!plan.shape().matches(&longer));
        // Different polynomial allocation with identical values.
        let other = confined_circuit(0.4);
        assert!(
            !plan.shape().matches(&other),
            "distinct Arc allocations must not share a plan"
        );
        // Same circuit object still matches.
        assert!(plan.shape().matches(&circuit));
    }

    #[test]
    fn dense_shapes_abort_compilation() {
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q);
        }
        let err = GatePlan::compile(&c, 8).unwrap_err();
        let PlanError::TooDense { support } = err;
        assert!(support > 8, "support {support}");
    }

    #[test]
    fn degenerate_gates_compile_to_noops() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.push(Gate::Cx(0, 0));
        c.push(Gate::Swap(1, 1));
        let plan = GatePlan::compile(&c, 16).unwrap();
        assert!(matches!(plan.steps[1], PlanStep::Noop));
        assert!(matches!(plan.steps[2], PlanStep::Noop));
    }

    #[test]
    fn merge_sorted_handles_overlap() {
        assert_eq!(merge_sorted(&[1, 3, 5], &[2, 3, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(merge_sorted(&[], &[4, 4]), vec![4]);
        assert_eq!(merge_sorted(&[7], &[]), vec![7]);
    }

    /// Runs the batch through `execute_batch` and asserts every lane is
    /// bit-identical to its own serial `execute` replay.
    fn assert_batch_matches_serial(circuits: &[Circuit], plan: &GatePlan, config: &SimConfig) {
        let k = circuits.len();
        let f = plan.basis().len();
        let mut batched = vec![Complex64::ZERO; k * f];
        for slot in batched.iter_mut().take(k) {
            *slot = Complex64::ONE; // rank 0, every lane
        }
        let mut scratch = BatchScratch::default();
        plan.execute_batch(circuits, &mut batched, &mut scratch, config);
        for (lane, circuit) in circuits.iter().enumerate() {
            let serial = run_plan(circuit, plan);
            for rank in 0..f {
                let (a, b) = (batched[rank * k + lane], serial[rank]);
                assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "lane={lane} rank={rank}: batched {a} vs serial {b}"
                );
            }
        }
    }

    #[test]
    fn batched_replay_is_bit_identical_per_lane() {
        let poly = test_poly();
        let plan = GatePlan::compile(&confined_circuit_with(&poly, 0.1), 1 << 10).unwrap();
        let circuits: Vec<Circuit> = [0.0, 0.3, -1.2, 2.8, 0.9]
            .iter()
            .map(|&t| confined_circuit_with(&poly, t))
            .collect();
        for threads in [1, 2, 4] {
            let config = SimConfig {
                threads,
                parallel_threshold: 1,
                ..SimConfig::default()
            };
            assert_batch_matches_serial(&circuits, &plan, &config);
        }
    }

    #[test]
    fn mixed_kernel_lanes_take_their_own_serial_branches() {
        // One shape, three angle sets: θ = 0 resolves Rx to the diagonal
        // identity branch, θ = π to the anti-diagonal branch, anything
        // else to the generic complex branch — all inside one batch, next
        // to Ry's real branch, H's fixed real matrix, and phase steps.
        let build = |theta: f64| {
            let mut c = Circuit::new(3);
            c.h(0);
            c.rx(1, theta);
            c.ry(2, theta * 0.5);
            c.rz(0, theta);
            c.cz(0, 1);
            c.cx(1, 2);
            c.p(2, theta);
            c
        };
        let plan = GatePlan::compile(&build(0.7), 1 << 10).unwrap();
        let circuits: Vec<Circuit> = [0.0, std::f64::consts::PI, 0.7]
            .iter()
            .map(|&t| build(t))
            .collect();
        for c in &circuits {
            assert!(plan.shape().matches(c));
        }
        for threads in [1, 2] {
            let config = SimConfig {
                threads,
                parallel_threshold: 1,
                ..SimConfig::default()
            };
            assert_batch_matches_serial(&circuits, &plan, &config);
        }
    }

    #[test]
    fn batch_wider_than_the_basis_is_fine() {
        // K = 17 lanes on a tiny feasible subspace (K > |F|) — the SoA
        // layout is rank-major, so nothing special happens; the loops just
        // run more lanes than ranks.
        let poly = test_poly();
        let plan = GatePlan::compile(&confined_circuit_with(&poly, 0.1), 1 << 10).unwrap();
        let circuits: Vec<Circuit> = (0..17)
            .map(|i| confined_circuit_with(&poly, 0.05 * i as f64 - 0.4))
            .collect();
        assert!(circuits.len() > plan.basis().len());
        assert_batch_matches_serial(&circuits, &plan, &SimConfig::serial());
    }
}
