//! Exact two-level (Givens) unitary synthesis — the *conventional* path.
//!
//! This module implements the textbook exponential-cost decomposition of an
//! arbitrary `2^n × 2^n` unitary into two-level rotations, then into
//! pattern-controlled gates. It exists to be the honest baseline the paper
//! beats in Figure 12: the Trotter flow (`choco-core::trotter`) assembles the
//! dense driver Hamiltonian, exponentiates it, and synthesizes it here —
//! paying `O(4^n)` time/memory and producing circuits ~10⁴× deeper than the
//! Lemma-2 decomposition.
//!
//! The synthesis is *exact*; tests verify both the matrix reconstruction and
//! the emitted-circuit equivalence on small registers.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::state::StateVector;
use choco_mathkit::{CMatrix, Complex64};

/// A two-level unitary: a 2×2 block `m` acting on basis indices `i < j`,
/// identity elsewhere.
#[derive(Clone, Debug, PartialEq)]
pub struct TwoLevelOp {
    /// First basis index (row/col) of the 2×2 block.
    pub i: usize,
    /// Second basis index.
    pub j: usize,
    /// The block, ordered `[i, j]`.
    pub m: [[Complex64; 2]; 2],
}

impl TwoLevelOp {
    /// Conjugate transpose of the block.
    pub fn dagger(&self) -> TwoLevelOp {
        TwoLevelOp {
            i: self.i,
            j: self.j,
            m: [
                [self.m[0][0].conj(), self.m[1][0].conj()],
                [self.m[0][1].conj(), self.m[1][1].conj()],
            ],
        }
    }

    /// Applies the block to rows `(i, j)` of a matrix in place.
    pub fn apply_left(&self, target: &mut CMatrix) {
        let cols = target.cols();
        for c in 0..cols {
            let x = target[(self.i, c)];
            let y = target[(self.j, c)];
            target[(self.i, c)] = self.m[0][0] * x + self.m[0][1] * y;
            target[(self.j, c)] = self.m[1][0] * x + self.m[1][1] * y;
        }
    }
}

/// Result of decomposing a unitary into two-level factors:
/// `T_k ⋯ T_1 · U = D`, i.e. `U = T_1† ⋯ T_k† · D`.
#[derive(Clone, Debug)]
pub struct TwoLevelDecomposition {
    /// Matrix dimension (`2^n`).
    pub dim: usize,
    /// The eliminating rotations, in application order (`T_1` first).
    pub ops: Vec<TwoLevelOp>,
    /// The residual diagonal `D` (unit-modulus entries).
    pub diagonal: Vec<Complex64>,
}

/// Entries below this magnitude are treated as already zero.
const ELIM_TOL: f64 = 1e-12;

/// Decomposes a unitary into two-level Givens rotations.
///
/// # Panics
///
/// Panics if `u` is not square.
pub fn two_level_decompose(u: &CMatrix) -> TwoLevelDecomposition {
    assert!(u.is_square(), "two-level synthesis needs a square matrix");
    let d = u.rows();
    let mut a = u.clone();
    let mut ops = Vec::new();
    for c in 0..d {
        // Zero the column below the diagonal, pairing adjacent rows upward
        // so previously created zeros are preserved.
        for r in (c + 1..d).rev() {
            let b = a[(r, c)];
            if b.abs() <= ELIM_TOL {
                continue;
            }
            let av = a[(r - 1, c)];
            let n = (av.norm_sqr() + b.norm_sqr()).sqrt();
            let op = TwoLevelOp {
                i: r - 1,
                j: r,
                m: [[av.conj() / n, b.conj() / n], [-b / n, av / n]],
            };
            op.apply_left(&mut a);
            ops.push(op);
        }
    }
    let diagonal = (0..d).map(|i| a[(i, i)]).collect();
    TwoLevelDecomposition {
        dim: d,
        ops,
        diagonal,
    }
}

impl TwoLevelDecomposition {
    /// Rebuilds the original unitary `U = T_1† ⋯ T_k† D` (test oracle).
    pub fn reconstruct(&self) -> CMatrix {
        let mut m = CMatrix::zeros(self.dim, self.dim);
        for (i, &dphase) in self.diagonal.iter().enumerate() {
            m[(i, i)] = dphase;
        }
        for op in self.ops.iter().rev() {
            op.dagger().apply_left(&mut m);
        }
        m
    }

    /// Emits a circuit implementing the unitary on `n_qubits` qubits, using
    /// `Mcx` / `ControlledU` / `McPhase` composite gates (simulate directly,
    /// or transpile with ancillas for basic-gate counts).
    ///
    /// # Panics
    ///
    /// Panics if `2^n_qubits != dim`.
    pub fn emit_circuit(&self, n_qubits: usize) -> Circuit {
        assert_eq!(1usize << n_qubits, self.dim, "qubit count mismatch");
        let mut circuit = Circuit::new(n_qubits);
        // D first (it is the rightmost factor).
        for (idx, &dphase) in self.diagonal.iter().enumerate() {
            let phi = dphase.arg();
            if phi.abs() > 1e-14 {
                emit_basis_phase(&mut circuit, idx as u64, phi, n_qubits);
            }
        }
        // Then T_k† … T_1†.
        for op in self.ops.iter().rev() {
            emit_two_level(&mut circuit, &op.dagger(), n_qubits);
        }
        circuit
    }

    /// Estimated basic-gate count and depth after full lowering, using the
    /// clean-ancilla cost formulas (see `SynthCost`). This avoids
    /// materializing the (astronomically deep) circuit for large `n`.
    pub fn cost_estimate(&self, n_qubits: usize) -> SynthCost {
        let mut gates: u128 = 0;
        for op in &self.ops {
            gates += two_level_cost(op.i as u64 ^ op.j as u64, n_qubits);
        }
        for &d in &self.diagonal {
            if d.arg().abs() > 1e-14 {
                // X-conjugated MCPhase on all qubits.
                gates += mcphase_cost(n_qubits) + 2 * n_qubits as u128;
            }
        }
        SynthCost {
            basic_gates: gates,
            // Two-level factors share no structure: depth ≈ gate count.
            depth_estimate: gates,
        }
    }
}

/// Lowered-cost estimate for a synthesized unitary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SynthCost {
    /// Estimated number of basic gates.
    pub basic_gates: u128,
    /// Estimated circuit depth (sequential lower bound).
    pub depth_estimate: u128,
}

/// Basic-gate cost of an `m`-control Toffoli via the clean chain.
fn mcx_cost(m: usize) -> u128 {
    const CCX_COST: u128 = 15;
    match m {
        0 | 1 => 1,
        2 => CCX_COST,
        _ => CCX_COST * (2 * (m as u128 - 2) + 1),
    }
}

/// Basic-gate cost of a full-register multi-controlled phase.
fn mcphase_cost(n_qubits: usize) -> u128 {
    // MCX to ancilla + CP (5 gates) + MCX undo.
    2 * mcx_cost(n_qubits.saturating_sub(1)) + 5
}

/// Basic-gate cost of one two-level op whose indices differ in the bits of
/// `diff` on an `n_qubits` register.
fn two_level_cost(diff: u64, n_qubits: usize) -> u128 {
    let g = diff.count_ones() as u128;
    let m = n_qubits.saturating_sub(1);
    // Pattern-controlled X: polarity X's + MCX.
    let pcx = mcx_cost(m) + 2 * m as u128;
    // Pattern-controlled U: MCX pair to ancilla + ABC (8 gates) + polarity.
    let pcu = 2 * mcx_cost(m) + 8 + 2 * m as u128;
    2 * (g.saturating_sub(1)) * pcx + pcu
}

/// Phase `e^{iφ}` on exactly the basis state `|idx⟩`: X-conjugated MCPhase.
fn emit_basis_phase(circuit: &mut Circuit, idx: u64, phi: f64, n_qubits: usize) {
    let zeros: Vec<usize> = (0..n_qubits).filter(|&q| (idx >> q) & 1 == 0).collect();
    for &q in &zeros {
        circuit.x(q);
    }
    circuit.mcphase((0..n_qubits).collect(), phi);
    for &q in &zeros {
        circuit.x(q);
    }
}

/// Pattern-controlled X: flip `target_bit` on states whose other qubits
/// match `pattern`.
fn emit_pattern_cx(circuit: &mut Circuit, pattern: u64, target_bit: usize, n_qubits: usize) {
    let controls: Vec<usize> = (0..n_qubits).filter(|&q| q != target_bit).collect();
    let zeros: Vec<usize> = controls
        .iter()
        .copied()
        .filter(|&q| (pattern >> q) & 1 == 0)
        .collect();
    for &q in &zeros {
        circuit.x(q);
    }
    circuit.mcx(controls, target_bit);
    for &q in &zeros {
        circuit.x(q);
    }
}

/// One two-level unitary as a Gray-walk + pattern-controlled U.
fn emit_two_level(circuit: &mut Circuit, op: &TwoLevelOp, n_qubits: usize) {
    let i = op.i as u64;
    let j = op.j as u64;
    let diff = i ^ j;
    debug_assert!(diff != 0, "degenerate two-level op");
    let diff_bits: Vec<usize> = (0..n_qubits).filter(|&b| (diff >> b) & 1 == 1).collect();
    let target_bit = diff_bits[0];

    // Gray-walk `j` to `j' = i ^ (1 << target_bit)` by flipping the
    // remaining differing bits one at a time (each flip aligns one bit of
    // the moving state with `i`).
    let mut walk_gates: Vec<(u64, usize)> = Vec::new();
    let mut current = j;
    for &b in &diff_bits[1..] {
        walk_gates.push((current, b));
        current ^= 1 << b;
    }
    debug_assert_eq!(current, i ^ (1 << target_bit));
    for &(pattern, b) in &walk_gates {
        emit_pattern_cx(circuit, pattern, b, n_qubits);
    }

    // Pattern-controlled U on the target bit. The control pattern is the
    // common bits of (i, j') outside the target.
    let controls: Vec<usize> = (0..n_qubits).filter(|&q| q != target_bit).collect();
    let zeros: Vec<usize> = controls
        .iter()
        .copied()
        .filter(|&q| (i >> q) & 1 == 0)
        .collect();
    // Orient the block: row order [i, j] must map onto target-bit |0⟩,|1⟩.
    let m = if (i >> target_bit) & 1 == 0 {
        op.m
    } else {
        [[op.m[1][1], op.m[1][0]], [op.m[0][1], op.m[0][0]]]
    };
    for &q in &zeros {
        circuit.x(q);
    }
    circuit.push(Gate::ControlledU {
        controls,
        target: target_bit,
        matrix: m,
    });
    for &q in &zeros {
        circuit.x(q);
    }

    // Walk back.
    for &(pattern, b) in walk_gates.iter().rev() {
        emit_pattern_cx(circuit, pattern, b, n_qubits);
    }
}

/// Computes the full unitary matrix of a circuit by simulating every basis
/// state (exponential; intended for tests and the Trotter baseline).
pub fn circuit_unitary(circuit: &Circuit) -> CMatrix {
    let n = circuit.n_qubits();
    let d = 1usize << n;
    let mut u = CMatrix::zeros(d, d);
    for col in 0..d {
        let mut s = StateVector::from_bits(n, col as u64);
        s.apply_circuit(circuit);
        for (row, &amp) in s.amplitudes().iter().enumerate() {
            u[(row, col)] = amp;
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_mathkit::c64;

    fn random_unitary(n_qubits: usize, seed: u64) -> CMatrix {
        // Build from a deterministic random circuit: product of unitaries is
        // unitary, and generic enough to exercise every elimination branch.
        let mut rng = choco_mathkit::SplitMix64::new(seed);
        let mut c = Circuit::new(n_qubits);
        for _ in 0..4 * n_qubits {
            let q = rng.gen_range(0, n_qubits as u64) as usize;
            match rng.gen_range(0, 5) {
                0 => {
                    c.h(q);
                }
                1 => {
                    c.rx(q, rng.gen_range_f64(-2.0, 2.0));
                }
                2 => {
                    c.rz(q, rng.gen_range_f64(-2.0, 2.0));
                }
                3 => {
                    c.p(q, rng.gen_range_f64(-2.0, 2.0));
                }
                _ => {
                    if n_qubits > 1 {
                        let mut p = rng.gen_range(0, n_qubits as u64) as usize;
                        if p == q {
                            p = (p + 1) % n_qubits;
                        }
                        c.cx(q, p);
                    } else {
                        c.h(q);
                    }
                }
            }
        }
        circuit_unitary(&c)
    }

    #[test]
    fn decompose_identity_is_trivial() {
        let id = CMatrix::identity(4);
        let d = two_level_decompose(&id);
        assert!(d.ops.is_empty());
        assert!(d
            .diagonal
            .iter()
            .all(|z| z.approx_eq(Complex64::ONE, 1e-12)));
    }

    #[test]
    fn reconstruct_matches_original() {
        for n in 1..=3 {
            let u = random_unitary(n, 42 + n as u64);
            assert!(u.is_unitary(1e-9));
            let d = two_level_decompose(&u);
            let rebuilt = d.reconstruct();
            assert!(
                rebuilt.approx_eq(&u, 1e-8),
                "reconstruction failed for n={n}"
            );
        }
    }

    #[test]
    fn diagonal_has_unit_modulus() {
        let u = random_unitary(2, 7);
        let d = two_level_decompose(&u);
        for z in &d.diagonal {
            assert!((z.abs() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn emitted_circuit_equals_unitary() {
        for n in 1..=3usize {
            let u = random_unitary(n, 100 + n as u64);
            let d = two_level_decompose(&u);
            let circuit = d.emit_circuit(n);
            let rebuilt = circuit_unitary(&circuit);
            // Compare up to global phase: normalize on the largest entry.
            let mut best = (0usize, 0usize);
            let mut mag = 0.0;
            for r in 0..u.rows() {
                for c in 0..u.cols() {
                    if u[(r, c)].abs() > mag {
                        mag = u[(r, c)].abs();
                        best = (r, c);
                    }
                }
            }
            let phase = rebuilt[best] / u[best];
            assert!(
                (phase.abs() - 1.0).abs() < 1e-7,
                "n={n}: non-unit relative phase"
            );
            let adjusted = u.scale(phase);
            assert!(
                rebuilt.approx_eq(&adjusted, 1e-6),
                "n={n}: emitted circuit deviates"
            );
        }
    }

    #[test]
    fn emitted_circuit_two_level_permutation() {
        // A pure X-type two-level op between far-apart indices exercises the
        // Gray walk.
        let mut u = CMatrix::identity(8);
        // swap |000⟩ and |111⟩
        u[(0, 0)] = Complex64::ZERO;
        u[(7, 7)] = Complex64::ZERO;
        u[(0, 7)] = Complex64::ONE;
        u[(7, 0)] = Complex64::ONE;
        let d = two_level_decompose(&u);
        let circuit = d.emit_circuit(3);
        let rebuilt = circuit_unitary(&circuit);
        let phase = rebuilt[(0, 7)] / u[(0, 7)];
        assert!(rebuilt.approx_eq(&u.scale(phase), 1e-7));
    }

    #[test]
    fn circuit_unitary_of_known_gate() {
        let mut c = Circuit::new(1);
        c.h(0);
        let u = circuit_unitary(&c);
        let h = 1.0 / 2.0f64.sqrt();
        assert!(u[(0, 0)].approx_eq(c64(h, 0.0), 1e-12));
        assert!(u[(1, 1)].approx_eq(c64(-h, 0.0), 1e-12));
    }

    #[test]
    fn cost_grows_exponentially_with_qubits() {
        let mut prev = 0u128;
        for n in 1..=4usize {
            let u = random_unitary(n, 7 * n as u64);
            let d = two_level_decompose(&u);
            let cost = d.cost_estimate(n);
            assert!(cost.basic_gates > prev, "n={n}");
            prev = cost.basic_gates;
        }
        // The 4-qubit random unitary must already need thousands of gates —
        // this is the blow-up Choco-Q's Lemma 2 avoids.
        assert!(prev > 1_000);
    }

    #[test]
    fn op_count_bounded_by_d_squared() {
        let u = random_unitary(3, 77);
        let d = two_level_decompose(&u);
        assert!(d.ops.len() <= 8 * 7 / 2);
    }
}
