//! The engine abstraction: one solver-facing state type over the dense
//! strided [`StateVector`], the feasible-subspace [`SparseStateVector`],
//! or the rank-indexed [`CompactStateVector`], selected by
//! [`SimConfig::engine`].
//!
//! Everything above the kernels — [`crate::SimWorkspace`], the solvers'
//! variational loop, the experiment runner, and the CLI — drives a
//! [`SimEngine`] and never names a concrete representation. The engines
//! produce bit-identical amplitudes, expectations, and sampling streams
//! (see [`crate::sparse`] and [`crate::compact`]), so engine selection is
//! purely a performance decision:
//!
//! * [`EngineKind::Dense`] — always the `2^n` buffer.
//! * [`EngineKind::Sparse`] — always the sorted occupied-entry map; the
//!   caller has opted in even for register-filling circuits.
//! * [`EngineKind::Compact`] — the plan-replay engine. Its fast path
//!   lives in [`crate::SimWorkspace::run`] (whole-circuit replay against
//!   a compiled gate plan); in the *incremental* per-gate API here it
//!   starts sparse and densifies at the occupancy threshold exactly like
//!   [`EngineKind::Auto`] — the clean fallback for circuits whose shape
//!   did not compile.
//! * [`EngineKind::Auto`] — starts sparse and **densifies automatically**
//!   once occupancy exceeds `density_threshold · 2^n` (subspace
//!   confinement broken — penalty/HEA mixers, uniform superpositions),
//!   provided the register is small enough to allocate densely.

use crate::circuit::Circuit;
use crate::compact::CompactStateVector;
use crate::counts::Counts;
use crate::gate::Gate;
use crate::phasepoly::PhasePoly;
use crate::simconfig::{EngineKind, SimConfig};
use crate::sparse::SparseStateVector;
use crate::state::StateVector;
use choco_mathkit::Complex64;
use rand::Rng;

/// Largest register the auto-fallback will densify: beyond this the dense
/// buffer itself is the bottleneck (2^26 amplitudes = 1 GiB), so an
/// [`EngineKind::Auto`] run stays sparse even above the threshold.
pub const MAX_DENSIFY_QUBITS: usize = 26;

/// A quantum state behind one of the two amplitude representations.
///
/// # Examples
///
/// ```
/// use choco_qsim::{Circuit, EngineKind, SimConfig, SimEngine, UBlock};
///
/// let config = SimConfig::serial().with_engine(EngineKind::Sparse);
/// let mut engine = SimEngine::new_with(3, config);
/// let mut c = Circuit::new(3);
/// c.load_bits(0b001);
/// c.ublock(UBlock::from_u_with_angle(&[1, -1, -1], 0.8));
/// engine.apply_circuit(&c);
/// assert!(engine.is_sparse());
/// assert_eq!(engine.occupancy(), 2); // |F|-confined, not 2^3
/// ```
#[derive(Clone, Debug)]
pub enum SimEngine {
    /// The dense strided engine.
    Dense(StateVector),
    /// The feasible-subspace sparse engine.
    Sparse(SparseStateVector),
    /// The rank-indexed compact engine (built by
    /// [`crate::SimWorkspace`]'s plan replay; the per-gate API degrades
    /// it to sparse on first mutation).
    Compact(CompactStateVector),
}

impl SimEngine {
    /// The all-zeros state `|0…0⟩`, represented per `config.engine`
    /// ([`EngineKind::Auto`] and [`EngineKind::Compact`] start sparse —
    /// the compact representation only materializes through
    /// [`crate::SimWorkspace`]'s whole-circuit plan replay).
    pub fn new_with(n_qubits: usize, config: SimConfig) -> Self {
        match config.engine {
            EngineKind::Dense => SimEngine::Dense(StateVector::new_with(n_qubits, config)),
            EngineKind::Sparse | EngineKind::Compact | EngineKind::Auto => {
                SimEngine::Sparse(SparseStateVector::new_with(n_qubits, config))
            }
        }
    }

    /// Runs a circuit from `|0…0⟩` under an explicit configuration.
    pub fn run_with(circuit: &Circuit, config: SimConfig) -> Self {
        let mut e = SimEngine::new_with(circuit.n_qubits(), config);
        e.apply_circuit(circuit);
        e
    }

    /// The execution configuration.
    pub fn config(&self) -> &SimConfig {
        match self {
            SimEngine::Dense(s) => s.config(),
            SimEngine::Sparse(s) => s.config(),
            SimEngine::Compact(s) => s.config(),
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        match self {
            SimEngine::Dense(s) => s.n_qubits(),
            SimEngine::Sparse(s) => s.n_qubits(),
            SimEngine::Compact(s) => s.n_qubits(),
        }
    }

    /// `true` while the state is held in the sparse representation.
    pub fn is_sparse(&self) -> bool {
        matches!(self, SimEngine::Sparse(_))
    }

    /// `true` while the state is held in the compact (rank-indexed)
    /// representation.
    pub fn is_compact(&self) -> bool {
        matches!(self, SimEngine::Compact(_))
    }

    /// Short label of the current representation (`"dense"`, `"sparse"`,
    /// `"compact"`) — what [`EngineKind::Auto`] / [`EngineKind::Compact`]
    /// actually resolved to, as opposed to what was configured.
    pub fn representation_label(&self) -> &'static str {
        match self {
            SimEngine::Dense(_) => "dense",
            SimEngine::Sparse(_) => "sparse",
            SimEngine::Compact(_) => "compact",
        }
    }

    /// The dense state, if that is the current representation.
    pub fn as_dense(&self) -> Option<&StateVector> {
        match self {
            SimEngine::Dense(s) => Some(s),
            _ => None,
        }
    }

    /// Mutable dense state, if that is the current representation.
    pub fn as_dense_mut(&mut self) -> Option<&mut StateVector> {
        match self {
            SimEngine::Dense(s) => Some(s),
            _ => None,
        }
    }

    /// Number of occupied (exactly non-zero) basis entries. For the
    /// sparse engine this is the stored entry count; the dense and
    /// compact engines scan their buffers. Engine-invariant: amplitudes
    /// are bit-identical across representations, so the count is too.
    pub fn occupancy(&self) -> usize {
        match self {
            SimEngine::Dense(s) => s.occupancy(),
            SimEngine::Sparse(s) => s.occupancy(),
            SimEngine::Compact(s) => s.occupancy(),
        }
    }

    /// Occupied fraction of the `2^n` register.
    pub fn density(&self) -> f64 {
        self.occupancy() as f64 / (1u64 << self.n_qubits()) as f64
    }

    /// Resets to `|0…0⟩` in place. The representation is **sticky**: an
    /// auto-run that fell back to dense stays dense for subsequent runs —
    /// the workload has shown its support fills the register, and
    /// re-starting sparse would re-pay the occupancy ramp plus a fresh
    /// `2^n` densify allocation on every variational iteration. (A dense
    /// reset reuses the buffer in place, preserving the workspace's
    /// zero-alloc-per-iteration invariant; fresh engines — new width, new
    /// workspace — still start sparse per the configuration.)
    pub fn reset_zero(&mut self) {
        match self {
            SimEngine::Dense(s) => s.reset_zero(),
            SimEngine::Sparse(s) => s.reset_zero(),
            SimEngine::Compact(s) => s.reset_zero(),
        }
    }

    /// Applies a single gate, then (for [`EngineKind::Auto`] /
    /// [`EngineKind::Compact`]) densifies if the occupancy crossed the
    /// configured threshold. A compact state degrades to sparse first:
    /// the rank tables that drove it belong to a whole-circuit plan, not
    /// to incremental mutation.
    pub fn apply_gate(&mut self, gate: &Gate) {
        if self.is_compact() {
            self.sparsify();
        }
        match self {
            SimEngine::Dense(s) => s.apply_gate(gate),
            SimEngine::Sparse(s) => {
                s.apply_gate(gate);
                self.maybe_densify();
            }
            SimEngine::Compact(_) => unreachable!("compact states sparsify before mutation"),
        }
    }

    /// Converts a compact state into the sparse representation in place
    /// (exact: the non-zero entries become the sparse entry list).
    fn sparsify(&mut self) {
        if let SimEngine::Compact(c) = self {
            let sparse =
                SparseStateVector::from_sorted_entries(c.n_qubits(), c.entries(), *c.config());
            *self = SimEngine::Sparse(sparse);
        }
    }

    /// Applies every gate of a circuit in order (with per-gate fallback
    /// checks in auto mode).
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        for g in circuit.iter() {
            self.apply_gate(g);
        }
    }

    /// Converts a sparse state into the dense representation in place
    /// (exact: occupied entries are scattered into a fresh `2^n` buffer).
    ///
    /// # Panics
    ///
    /// Panics above [`MAX_DENSIFY_QUBITS`]: those registers exist
    /// precisely because their dense buffer (4 GiB at 28 qubits) cannot
    /// be allocated, and an explicit panic beats an OOM abort.
    pub fn densify(&mut self) {
        if self.is_compact() {
            self.sparsify();
        }
        if let SimEngine::Sparse(s) = self {
            assert!(
                s.n_qubits() <= MAX_DENSIFY_QUBITS,
                "cannot densify a {}-qubit sparse state (limit {MAX_DENSIFY_QUBITS}: \
                 the dense buffer would not fit in memory)",
                s.n_qubits()
            );
            let dense = StateVector::from_sparse_entries(s.n_qubits(), s.entries(), *s.config());
            *self = SimEngine::Dense(dense);
        }
    }

    /// The auto-mode fallback (shared by [`EngineKind::Compact`]'s
    /// incremental path): densify once occupancy exceeds
    /// `density_threshold · 2^n`, unless the register is too wide to
    /// allocate densely ([`MAX_DENSIFY_QUBITS`]).
    fn maybe_densify(&mut self) {
        let SimEngine::Sparse(s) = self else { return };
        if !matches!(s.config().engine, EngineKind::Auto | EngineKind::Compact)
            || s.n_qubits() > MAX_DENSIFY_QUBITS
        {
            return;
        }
        let dim = (1u64 << s.n_qubits()) as f64;
        if s.occupancy() as f64 > s.config().density_threshold * dim {
            self.densify();
        }
    }

    /// The amplitude of basis state `bits`.
    pub fn amplitude(&self, bits: u64) -> Complex64 {
        match self {
            SimEngine::Dense(s) => s.amplitude(bits),
            SimEngine::Sparse(s) => s.amplitude(bits),
            SimEngine::Compact(s) => s.amplitude(bits),
        }
    }

    /// Probability of measuring the basis state `bits`.
    pub fn probability(&self, bits: u64) -> f64 {
        match self {
            SimEngine::Dense(s) => s.probability(bits),
            SimEngine::Sparse(s) => s.probability(bits),
            SimEngine::Compact(s) => s.probability(bits),
        }
    }

    /// Number of basis states with probability above `eps`.
    pub fn support_size(&self, eps: f64) -> usize {
        match self {
            SimEngine::Dense(s) => s.support_size(eps),
            SimEngine::Sparse(s) => s.support_size(eps),
            SimEngine::Compact(s) => s.support_size(eps),
        }
    }

    /// Total probability (should be 1 up to rounding).
    pub fn norm_sqr(&self) -> f64 {
        match self {
            SimEngine::Dense(s) => s.norm_sqr(),
            SimEngine::Sparse(s) => s.norm_sqr(),
            SimEngine::Compact(s) => s.norm_sqr(),
        }
    }

    /// Fidelity `|⟨self|other⟩|²` against a dense reference state.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn fidelity_against_dense(&self, other: &StateVector) -> f64 {
        assert_eq!(self.n_qubits(), other.n_qubits(), "dimension mismatch");
        let over_entries = |entries: &[(u64, Complex64)]| {
            entries
                .iter()
                .map(|&(bits, a)| a.conj() * other.amplitude(bits))
                .sum::<Complex64>()
                .norm_sqr()
        };
        match self {
            SimEngine::Dense(s) => s.fidelity(other),
            SimEngine::Sparse(s) => over_entries(s.entries()),
            SimEngine::Compact(s) => over_entries(&s.entries()),
        }
    }

    /// Expectation of a diagonal observable given a `2^n` value table.
    ///
    /// # Panics
    ///
    /// Panics on table length mismatch.
    pub fn expectation_diag_values(&self, values: &[f64]) -> f64 {
        match self {
            SimEngine::Dense(s) => s.expectation_diag_values(values),
            SimEngine::Sparse(s) => s.expectation_diag_values(values),
            SimEngine::Compact(s) => s.expectation_diag_values(values),
        }
    }

    /// Expectation of a diagonal observable given as a polynomial — the
    /// table-free path large sparse registers rely on.
    pub fn expectation_diag_poly(&self, poly: &PhasePoly) -> f64 {
        match self {
            SimEngine::Dense(s) => s.expectation_diag_poly(poly),
            SimEngine::Sparse(s) => s.expectation_diag_poly(poly),
            SimEngine::Compact(s) => s.expectation_diag_poly(poly),
        }
    }

    /// Fills `out` with this engine's cumulative probability table
    /// (length `2^n` dense, occupancy sparse, `|F|` compact — pass it
    /// back to [`SimEngine::sample_with_cumulative`] on the *same*
    /// state).
    pub fn fill_cumulative(&self, out: &mut Vec<f64>) {
        match self {
            SimEngine::Dense(s) => s.fill_cumulative(out),
            SimEngine::Sparse(s) => s.fill_cumulative(out),
            SimEngine::Compact(s) => s.fill_cumulative(out),
        }
    }

    /// Samples `shots` outcomes using a table from
    /// [`SimEngine::fill_cumulative`]. Identical histograms across
    /// engines for a shared seed.
    ///
    /// # Panics
    ///
    /// Panics if the table does not match this engine's state.
    pub fn sample_with_cumulative<R: Rng>(
        &self,
        cumulative: &[f64],
        shots: u64,
        rng: &mut R,
    ) -> Counts {
        match self {
            SimEngine::Dense(s) => s.sample_with_cumulative(cumulative, shots, rng),
            SimEngine::Sparse(s) => s.sample_with_cumulative(cumulative, shots, rng),
            SimEngine::Compact(s) => s.sample_with_cumulative(cumulative, shots, rng),
        }
    }

    /// Samples `shots` measurement outcomes in the computational basis.
    pub fn sample<R: Rng>(&self, shots: u64, rng: &mut R) -> Counts {
        match self {
            SimEngine::Dense(s) => s.sample(shots, rng),
            SimEngine::Sparse(s) => s.sample(shots, rng),
            SimEngine::Compact(s) => s.sample(shots, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::UBlock;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sparse_cfg(kind: EngineKind, threshold: f64) -> SimConfig {
        SimConfig {
            density_threshold: threshold,
            ..SimConfig::serial().with_engine(kind)
        }
    }

    #[test]
    fn engine_kind_selects_representation() {
        assert!(!SimEngine::new_with(3, SimConfig::serial()).is_sparse());
        for kind in [EngineKind::Sparse, EngineKind::Auto] {
            assert!(SimEngine::new_with(3, sparse_cfg(kind, 0.5)).is_sparse());
        }
    }

    #[test]
    fn auto_densifies_when_threshold_crossed() {
        // 4 qubits, threshold 0.25: densify once occupancy > 4 entries.
        let mut e = SimEngine::new_with(4, sparse_cfg(EngineKind::Auto, 0.25));
        let mut c = Circuit::new(4);
        c.h(0).h(1);
        e.apply_circuit(&c);
        assert!(e.is_sparse(), "4 entries = threshold, not above");
        e.apply_gate(&Gate::H(2));
        assert!(!e.is_sparse(), "8 entries > 4: fallback must trip");
        // Post-fallback evolution continues on the dense engine.
        e.apply_gate(&Gate::H(3));
        assert!((e.norm_sqr() - 1.0).abs() < 1e-12);
        assert_eq!(e.occupancy(), 16);
    }

    #[test]
    fn forced_sparse_never_densifies() {
        let mut e = SimEngine::new_with(3, sparse_cfg(EngineKind::Sparse, 0.01));
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        e.apply_circuit(&c);
        assert!(e.is_sparse(), "sparse kind is a hard opt-in");
        assert_eq!(e.occupancy(), 8);
    }

    #[test]
    fn densify_is_exact() {
        let mut c = Circuit::new(3);
        c.load_bits(0b010);
        c.ublock(UBlock::from_u_with_angle(&[-1, 1, -1], 0.9));
        let mut e = SimEngine::run_with(&c, sparse_cfg(EngineKind::Sparse, 0.5));
        let reference = StateVector::run(&c);
        e.densify();
        assert!(!e.is_sparse());
        for bits in 0..8u64 {
            let (a, b) = (e.amplitude(bits), reference.amplitude(bits));
            assert!(a.re == b.re && a.im == b.im, "bits={bits}");
        }
    }

    #[test]
    fn reset_after_fallback_stays_dense() {
        // Sticky representation: once a run has shown its support fills
        // the register, later same-width runs reuse the dense buffer in
        // place instead of re-paying the sparse ramp + densify per run.
        let mut e = SimEngine::new_with(3, sparse_cfg(EngineKind::Auto, 0.1));
        let mut c = Circuit::new(3);
        c.h(0).h(1);
        e.apply_circuit(&c);
        assert!(!e.is_sparse(), "fallback tripped");
        e.reset_zero();
        assert!(!e.is_sparse(), "fallback is sticky across resets");
        assert_eq!(e.occupancy(), 1);
        assert_eq!(e.probability(0), 1.0);
    }

    #[test]
    fn densify_refuses_registers_beyond_the_dense_cap() {
        let mut e = SimEngine::new_with(30, sparse_cfg(EngineKind::Sparse, 0.5));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| e.densify()))
            .expect_err("must panic, not OOM");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("cannot densify"), "{msg}");
    }

    #[test]
    fn sample_streams_agree_across_engines() {
        let mut c = Circuit::new(3);
        c.load_bits(0b001);
        c.ublock(UBlock::from_u_with_angle(&[1, -1, 1], 0.7));
        let dense = SimEngine::run_with(&c, SimConfig::serial());
        let sparse = SimEngine::run_with(&c, sparse_cfg(EngineKind::Sparse, 0.5));
        let mut ra = StdRng::seed_from_u64(9);
        let mut rb = StdRng::seed_from_u64(9);
        assert_eq!(dense.sample(3_000, &mut ra), sparse.sample(3_000, &mut rb));
    }

    #[test]
    fn fidelity_against_dense_spans_representations() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(2, 0.4);
        let reference = StateVector::run(&c);
        for kind in [EngineKind::Dense, EngineKind::Sparse] {
            let e = SimEngine::run_with(&c, sparse_cfg(kind, 0.9));
            assert!((e.fidelity_against_dense(&reference) - 1.0).abs() < 1e-12);
        }
    }
}
