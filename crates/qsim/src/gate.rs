//! The gate set.
//!
//! Besides the standard basic gates, the IR carries three *structured*
//! operations that this paper's algorithms are built from:
//!
//! * [`Gate::DiagPhase`] — `e^{-iθ·f(x)}` for a diagonal Hamiltonian given
//!   as a [`PhasePoly`] (objective/penalty evolution),
//! * [`Gate::UBlock`] — `e^{-iθ·Hc(u)}` for one commute Hamiltonian term
//!   `Hc(u) = |v⟩⟨v̄| + |v̄⟩⟨v|` (Eq. (5) of the paper),
//! * [`Gate::XyMix`] — `e^{-iθ(X_aX_b + Y_aY_b)}`, the cyclic-driver pair
//!   term \[47\], which equals `UBlock` on the `{|01⟩, |10⟩}` subspace.
//!
//! The simulator executes structured gates exactly; the transpiler lowers
//! them to basic gates for depth accounting and noisy execution.

use crate::phasepoly::PhasePoly;
use choco_mathkit::{c64, Complex64};
use std::f64::consts::FRAC_1_SQRT_2;
use std::fmt;
use std::sync::Arc;

/// One commute-Hamiltonian block `e^{-iθ·Hc(u)}`.
///
/// `Hc(u)` couples the two basis patterns `|v⟩` and `|v̄⟩` of the support
/// qubits, where `v_i = (1 + u_i)/2` for the non-zero entries of `u`.
#[derive(Clone, Debug, PartialEq)]
pub struct UBlock {
    /// Qubits in the support of `u` (strictly increasing).
    pub support: Vec<usize>,
    /// Pattern bits of `v` packed little-endian over `support`
    /// (`bit k` ↔ `support[k]`).
    pub pattern: u64,
    /// Rotation angle θ.
    pub angle: f64,
}

impl UBlock {
    /// Builds a block from a full-length ternary vector `u` over `n` qubits,
    /// mapped through `qubit_of` (identity for the common case).
    ///
    /// # Panics
    ///
    /// Panics if `u` is all-zero.
    pub fn from_u(u: &[i8]) -> Self {
        let mut support = Vec::new();
        let mut pattern = 0u64;
        for (i, &ui) in u.iter().enumerate() {
            if ui != 0 {
                if ui > 0 {
                    pattern |= 1 << support.len();
                }
                support.push(i);
            }
        }
        assert!(!support.is_empty(), "UBlock requires a non-zero u");
        UBlock {
            support,
            pattern,
            angle: 0.0,
        }
    }

    /// Same as [`UBlock::from_u`] with the rotation angle set.
    pub fn from_u_with_angle(u: &[i8], angle: f64) -> Self {
        let mut b = UBlock::from_u(u);
        b.angle = angle;
        b
    }

    /// Support size (number of qubits the block acts on).
    pub fn arity(&self) -> usize {
        self.support.len()
    }

    /// The eigenstate pattern `v` as bits over the support, and its
    /// complement.
    pub fn pattern_pair(&self) -> (u64, u64) {
        let mask = if self.support.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.support.len()) - 1
        };
        (self.pattern, self.pattern ^ mask)
    }
}

/// A bounded slack-register shift rider on a [`ShiftBlock`].
///
/// The register value is read little-endian over `qubits` (`bit k` ↔
/// `qubits[k]`). Crossing the block's coupling in the forward direction adds
/// `delta` to the value; states whose register reads above `max_value`
/// (binary-padding states) or whose shifted value would leave `[0, max_value]`
/// are not coupled at all.
#[derive(Clone, Debug, PartialEq)]
pub struct RegisterShift {
    /// Register qubits, strictly increasing, little-endian value order.
    pub qubits: Vec<usize>,
    /// Signed value shift applied on the forward coupling.
    pub delta: i64,
    /// Largest admissible register value (inclusive).
    pub max_value: u64,
}

impl RegisterShift {
    /// Bitmask over the register qubits.
    pub fn mask(&self) -> u64 {
        self.qubits.iter().fold(0u64, |m, &q| m | (1u64 << q))
    }

    /// Reads the register value out of a basis-state index.
    pub fn read(&self, bits: u64) -> u64 {
        let mut v = 0u64;
        for (k, &q) in self.qubits.iter().enumerate() {
            v |= ((bits >> q) & 1) << k;
        }
        v
    }

    /// Writes `value` into the register bits of `bits`.
    pub fn write(&self, bits: u64, value: u64) -> u64 {
        let mut out = bits & !self.mask();
        for (k, &q) in self.qubits.iter().enumerate() {
            out |= ((value >> k) & 1) << q;
        }
        out
    }
}

/// A generalized commute-Hamiltonian block: the [`UBlock`] pattern coupling
/// `|v⟩ ↔ |v̄⟩` on `support`, extended with bounded slack-register shifts.
///
/// The coupled pair is `|v, r⟩ ↔ |v̄, r+δ⟩` per attached [`RegisterShift`];
/// states where any register would leave `[0, max_value]` (in either
/// direction) are left untouched, which keeps the evolution confined to the
/// encoded feasible subspace. With `shifts` empty this is exactly a
/// [`UBlock`].
#[derive(Clone, Debug, PartialEq)]
pub struct ShiftBlock {
    /// Qubits in the support of `u` (strictly increasing, non-empty).
    pub support: Vec<usize>,
    /// Pattern bits of `v` packed little-endian over `support`.
    pub pattern: u64,
    /// Slack-register shifts riding on the coupling (register qubits must be
    /// disjoint from `support` and from each other).
    pub shifts: Vec<RegisterShift>,
    /// Rotation angle θ.
    pub angle: f64,
}

impl ShiftBlock {
    /// Bitmask over the support qubits.
    pub fn full_mask(&self) -> u64 {
        self.support.iter().fold(0u64, |m, &q| m | (1u64 << q))
    }

    /// The pattern `v` spread onto absolute qubit positions.
    pub fn pattern_abs(&self) -> u64 {
        let mut v = 0u64;
        for (k, &q) in self.support.iter().enumerate() {
            v |= ((self.pattern >> k) & 1) << q;
        }
        v
    }

    /// Support plus register qubits (the block's full footprint).
    pub fn arity(&self) -> usize {
        self.support.len() + self.shifts.iter().map(|s| s.qubits.len()).sum::<usize>()
    }

    /// Maps a *source* basis index (support bits equal to `v`) to its coupled
    /// partner, or `None` when any register makes the pair ineligible.
    ///
    /// Eligibility requires, per register with current value `r`: `r ≤
    /// max_value` (not a padding state) and `0 ≤ r+δ ≤ max_value` (the partner
    /// is also a valid encoded state).
    pub fn forward(&self, i: u64) -> Option<u64> {
        debug_assert_eq!(i & self.full_mask(), self.pattern_abs());
        let mut j = i ^ self.full_mask();
        for s in &self.shifts {
            let r = s.read(i);
            if r > s.max_value {
                return None;
            }
            let t = r as i64 + s.delta;
            if t < 0 || t as u64 > s.max_value {
                return None;
            }
            j = s.write(j, t as u64);
        }
        Some(j)
    }

    /// Canonicalizes either endpoint of a coupled pair to its source index:
    /// returns `Some(source)` when `bits` participates in an eligible pair
    /// (as source or target), `None` otherwise.
    pub fn source_of(&self, bits: u64) -> Option<u64> {
        let full = self.full_mask();
        let v_abs = self.pattern_abs();
        let f = bits & full;
        if f == v_abs {
            self.forward(bits).map(|_| bits)
        } else if f == v_abs ^ full {
            let mut src = bits ^ full;
            for s in &self.shifts {
                let r = s.read(bits);
                if r > s.max_value {
                    return None;
                }
                let back = r as i64 - s.delta;
                if back < 0 || back as u64 > s.max_value {
                    return None;
                }
                src = s.write(src, back as u64);
            }
            Some(src)
        } else {
            None
        }
    }
}

/// A quantum gate (or structured operation) in the circuit IR.
#[derive(Clone, Debug, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H(usize),
    /// Pauli X.
    X(usize),
    /// Pauli Y.
    Y(usize),
    /// Pauli Z.
    Z(usize),
    /// Phase gate S = diag(1, i).
    S(usize),
    /// S† = diag(1, −i).
    Sdg(usize),
    /// T = diag(1, e^{iπ/4}).
    T(usize),
    /// T† gate.
    Tdg(usize),
    /// X-rotation `e^{-iθX/2}`.
    Rx(usize, f64),
    /// Y-rotation `e^{-iθY/2}`.
    Ry(usize, f64),
    /// Z-rotation `e^{-iθZ/2}`.
    Rz(usize, f64),
    /// Phase gate diag(1, e^{iθ}).
    Phase(usize, f64),
    /// Controlled-X (control, target).
    Cx(usize, usize),
    /// Controlled-Z.
    Cz(usize, usize),
    /// Controlled phase diag(1,1,1,e^{iθ}).
    Cp(usize, usize, f64),
    /// Swap two qubits.
    Swap(usize, usize),
    /// Toffoli (control, control, target).
    Ccx(usize, usize, usize),
    /// Multi-controlled X: flips `target` iff all `controls` are |1⟩.
    Mcx {
        /// Control qubits (all positive polarity).
        controls: Vec<usize>,
        /// Target qubit.
        target: usize,
    },
    /// Multi-controlled phase `P(θ)`: adds `e^{iθ}` on the all-ones state of
    /// `qubits` (Eq. (15) of the paper).
    McPhase {
        /// The qubits whose joint |1…1⟩ state acquires the phase.
        qubits: Vec<usize>,
        /// Phase angle θ.
        angle: f64,
    },
    /// An arbitrary single-qubit unitary controlled on every qubit of
    /// `controls` being |1⟩. Used by the exact two-level synthesis of the
    /// Trotter baseline.
    ControlledU {
        /// Positive-polarity control qubits.
        controls: Vec<usize>,
        /// Target qubit.
        target: usize,
        /// The 2×2 unitary applied to the target.
        matrix: [[Complex64; 2]; 2],
    },
    /// Structured: `e^{-iθ·Hc(u)}` commute-Hamiltonian block.
    UBlock(UBlock),
    /// Structured: generalized commute block with bounded slack-register
    /// shifts, `|v,r⟩ ↔ |v̄,r+δ⟩` (the native-inequality driver term).
    ShiftBlock(ShiftBlock),
    /// Structured: `e^{-iθ(XX+YY)}` on a pair (cyclic driver term).
    XyMix(usize, usize, f64),
    /// Structured: `e^{-iθ·f(x)}` for a diagonal pseudo-Boolean `f`.
    DiagPhase(Arc<PhasePoly>, f64),
}

impl Gate {
    /// The qubits this gate touches, in an unspecified order.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Gate::H(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::Rx(q, _)
            | Gate::Ry(q, _)
            | Gate::Rz(q, _)
            | Gate::Phase(q, _) => vec![*q],
            Gate::Cx(a, b) | Gate::Cz(a, b) | Gate::Cp(a, b, _) | Gate::Swap(a, b) => {
                vec![*a, *b]
            }
            Gate::Ccx(a, b, c) => vec![*a, *b, *c],
            Gate::Mcx { controls, target } => {
                let mut qs = controls.clone();
                qs.push(*target);
                qs
            }
            Gate::McPhase { qubits, .. } => qubits.clone(),
            Gate::ControlledU {
                controls, target, ..
            } => {
                let mut qs = controls.clone();
                qs.push(*target);
                qs
            }
            Gate::UBlock(b) => b.support.clone(),
            Gate::ShiftBlock(b) => {
                let mut qs = b.support.clone();
                for s in &b.shifts {
                    qs.extend_from_slice(&s.qubits);
                }
                qs
            }
            Gate::XyMix(a, b, _) => vec![*a, *b],
            Gate::DiagPhase(poly, _) => poly.support(),
        }
    }

    /// Number of qubits touched.
    pub fn arity(&self) -> usize {
        self.qubits().len()
    }

    /// `true` for gates in the deployable basic set
    /// (1-qubit gates, CX, CZ) — what remains after transpilation.
    pub fn is_basic(&self) -> bool {
        matches!(
            self,
            Gate::H(_)
                | Gate::X(_)
                | Gate::Y(_)
                | Gate::Z(_)
                | Gate::S(_)
                | Gate::Sdg(_)
                | Gate::T(_)
                | Gate::Tdg(_)
                | Gate::Rx(..)
                | Gate::Ry(..)
                | Gate::Rz(..)
                | Gate::Phase(..)
                | Gate::Cx(..)
                | Gate::Cz(..)
        )
    }

    /// `true` for the structured (non-gate-level) operations.
    pub fn is_structured(&self) -> bool {
        matches!(
            self,
            Gate::UBlock(_) | Gate::ShiftBlock(_) | Gate::XyMix(..) | Gate::DiagPhase(..)
        )
    }

    /// The inverse gate.
    pub fn inverse(&self) -> Gate {
        match self {
            Gate::H(q) => Gate::H(*q),
            Gate::X(q) => Gate::X(*q),
            Gate::Y(q) => Gate::Y(*q),
            Gate::Z(q) => Gate::Z(*q),
            Gate::S(q) => Gate::Sdg(*q),
            Gate::Sdg(q) => Gate::S(*q),
            Gate::T(q) => Gate::Tdg(*q),
            Gate::Tdg(q) => Gate::T(*q),
            Gate::Rx(q, t) => Gate::Rx(*q, -t),
            Gate::Ry(q, t) => Gate::Ry(*q, -t),
            Gate::Rz(q, t) => Gate::Rz(*q, -t),
            Gate::Phase(q, t) => Gate::Phase(*q, -t),
            Gate::Cx(a, b) => Gate::Cx(*a, *b),
            Gate::Cz(a, b) => Gate::Cz(*a, *b),
            Gate::Cp(a, b, t) => Gate::Cp(*a, *b, -t),
            Gate::Swap(a, b) => Gate::Swap(*a, *b),
            Gate::Ccx(a, b, c) => Gate::Ccx(*a, *b, *c),
            Gate::Mcx { controls, target } => Gate::Mcx {
                controls: controls.clone(),
                target: *target,
            },
            Gate::McPhase { qubits, angle } => Gate::McPhase {
                qubits: qubits.clone(),
                angle: -angle,
            },
            Gate::ControlledU {
                controls,
                target,
                matrix,
            } => Gate::ControlledU {
                controls: controls.clone(),
                target: *target,
                // dagger of a 2×2
                matrix: [
                    [matrix[0][0].conj(), matrix[1][0].conj()],
                    [matrix[0][1].conj(), matrix[1][1].conj()],
                ],
            },
            Gate::UBlock(b) => Gate::UBlock(UBlock {
                support: b.support.clone(),
                pattern: b.pattern,
                angle: -b.angle,
            }),
            Gate::ShiftBlock(b) => Gate::ShiftBlock(ShiftBlock {
                support: b.support.clone(),
                pattern: b.pattern,
                shifts: b.shifts.clone(),
                angle: -b.angle,
            }),
            Gate::XyMix(a, b, t) => Gate::XyMix(*a, *b, -t),
            Gate::DiagPhase(poly, t) => Gate::DiagPhase(poly.clone(), -t),
        }
    }

    /// Short mnemonic for display and gate-count maps.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::H(_) => "h",
            Gate::X(_) => "x",
            Gate::Y(_) => "y",
            Gate::Z(_) => "z",
            Gate::S(_) => "s",
            Gate::Sdg(_) => "sdg",
            Gate::T(_) => "t",
            Gate::Tdg(_) => "tdg",
            Gate::Rx(..) => "rx",
            Gate::Ry(..) => "ry",
            Gate::Rz(..) => "rz",
            Gate::Phase(..) => "p",
            Gate::Cx(..) => "cx",
            Gate::Cz(..) => "cz",
            Gate::Cp(..) => "cp",
            Gate::Swap(..) => "swap",
            Gate::Ccx(..) => "ccx",
            Gate::Mcx { .. } => "mcx",
            Gate::McPhase { .. } => "mcp",
            Gate::ControlledU { .. } => "cu",
            Gate::UBlock(_) => "ublock",
            Gate::ShiftBlock(_) => "shiftblock",
            Gate::XyMix(..) => "xy",
            Gate::DiagPhase(..) => "diag",
        }
    }

    /// The 2×2 matrix of a single-qubit gate, or `None` for anything else.
    pub fn matrix_1q(&self) -> Option<[[Complex64; 2]; 2]> {
        let m = match self {
            Gate::H(_) => [
                [c64(FRAC_1_SQRT_2, 0.0), c64(FRAC_1_SQRT_2, 0.0)],
                [c64(FRAC_1_SQRT_2, 0.0), c64(-FRAC_1_SQRT_2, 0.0)],
            ],
            Gate::X(_) => [
                [Complex64::ZERO, Complex64::ONE],
                [Complex64::ONE, Complex64::ZERO],
            ],
            Gate::Y(_) => [
                [Complex64::ZERO, c64(0.0, -1.0)],
                [c64(0.0, 1.0), Complex64::ZERO],
            ],
            Gate::Z(_) => [
                [Complex64::ONE, Complex64::ZERO],
                [Complex64::ZERO, c64(-1.0, 0.0)],
            ],
            Gate::S(_) => [
                [Complex64::ONE, Complex64::ZERO],
                [Complex64::ZERO, Complex64::I],
            ],
            Gate::Sdg(_) => [
                [Complex64::ONE, Complex64::ZERO],
                [Complex64::ZERO, c64(0.0, -1.0)],
            ],
            Gate::T(_) => [
                [Complex64::ONE, Complex64::ZERO],
                [Complex64::ZERO, Complex64::cis(std::f64::consts::FRAC_PI_4)],
            ],
            Gate::Tdg(_) => [
                [Complex64::ONE, Complex64::ZERO],
                [
                    Complex64::ZERO,
                    Complex64::cis(-std::f64::consts::FRAC_PI_4),
                ],
            ],
            Gate::Rx(_, t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                [[c64(c, 0.0), c64(0.0, -s)], [c64(0.0, -s), c64(c, 0.0)]]
            }
            Gate::Ry(_, t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                [[c64(c, 0.0), c64(-s, 0.0)], [c64(s, 0.0), c64(c, 0.0)]]
            }
            Gate::Rz(_, t) => [
                [Complex64::cis(-t / 2.0), Complex64::ZERO],
                [Complex64::ZERO, Complex64::cis(t / 2.0)],
            ],
            Gate::Phase(_, t) => [
                [Complex64::ONE, Complex64::ZERO],
                [Complex64::ZERO, Complex64::cis(*t)],
            ],
            _ => return None,
        };
        Some(m)
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Rx(q, t) | Gate::Ry(q, t) | Gate::Rz(q, t) | Gate::Phase(q, t) => {
                write!(f, "{}({:.4}) q{}", self.name(), t, q)
            }
            Gate::Cp(a, b, t) => write!(f, "cp({t:.4}) q{a},q{b}"),
            Gate::Cx(a, b) | Gate::Cz(a, b) | Gate::Swap(a, b) => {
                write!(f, "{} q{},q{}", self.name(), a, b)
            }
            Gate::Ccx(a, b, c) => write!(f, "ccx q{a},q{b},q{c}"),
            Gate::Mcx { controls, target } => write!(f, "mcx {controls:?} -> q{target}"),
            Gate::McPhase { qubits, angle } => write!(f, "mcp({angle:.4}) {qubits:?}"),
            Gate::ControlledU {
                controls, target, ..
            } => write!(f, "cu {controls:?} -> q{target}"),
            Gate::UBlock(b) => write!(
                f,
                "ublock({:.4}) support={:?} v={:#b}",
                b.angle, b.support, b.pattern
            ),
            Gate::ShiftBlock(b) => {
                write!(
                    f,
                    "shiftblock({:.4}) support={:?} v={:#b}",
                    b.angle, b.support, b.pattern
                )?;
                for s in &b.shifts {
                    write!(f, " reg{:?}{:+}<={}", s.qubits, s.delta, s.max_value)?;
                }
                Ok(())
            }
            Gate::XyMix(a, b, t) => write!(f, "xy({t:.4}) q{a},q{b}"),
            Gate::DiagPhase(_, t) => write!(f, "diag({t:.4})"),
            other => write!(f, "{} q{}", other.name(), other.qubits()[0]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_mathkit::CMatrix;

    fn as_cmatrix(m: [[Complex64; 2]; 2]) -> CMatrix {
        CMatrix::from_rows(&[vec![m[0][0], m[0][1]], vec![m[1][0], m[1][1]]])
    }

    #[test]
    fn all_1q_matrices_are_unitary() {
        let gates = [
            Gate::H(0),
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::T(0),
            Gate::Tdg(0),
            Gate::Rx(0, 0.7),
            Gate::Ry(0, -1.2),
            Gate::Rz(0, 2.1),
            Gate::Phase(0, 0.3),
        ];
        for g in gates {
            let m = as_cmatrix(g.matrix_1q().expect("1q"));
            assert!(m.is_unitary(1e-12), "{g} not unitary");
        }
    }

    #[test]
    fn inverse_matrices_are_daggers() {
        let gates = [
            Gate::S(0),
            Gate::T(0),
            Gate::Rx(0, 0.9),
            Gate::Ry(0, -0.4),
            Gate::Rz(0, 1.5),
            Gate::Phase(0, 2.2),
        ];
        for g in gates {
            let m = as_cmatrix(g.matrix_1q().unwrap());
            let mi = as_cmatrix(g.inverse().matrix_1q().unwrap());
            assert!(mi.approx_eq(&m.dagger(), 1e-12), "{g}");
        }
    }

    #[test]
    fn qubits_and_arity() {
        assert_eq!(Gate::H(3).qubits(), vec![3]);
        assert_eq!(Gate::Cx(1, 4).qubits(), vec![1, 4]);
        assert_eq!(
            Gate::Mcx {
                controls: vec![0, 2],
                target: 5
            }
            .arity(),
            3
        );
    }

    #[test]
    fn ublock_from_u_pattern() {
        // u = (-1, 0, +1, -1): support {0, 2, 3}, v = (0, 1, 0) → pattern 0b010.
        let b = UBlock::from_u(&[-1, 0, 1, -1]);
        assert_eq!(b.support, vec![0, 2, 3]);
        assert_eq!(b.pattern, 0b010);
        let (v, vbar) = b.pattern_pair();
        assert_eq!(v, 0b010);
        assert_eq!(vbar, 0b101);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn ublock_rejects_zero_u() {
        let _ = UBlock::from_u(&[0, 0]);
    }

    #[test]
    fn structured_gates_flagged() {
        assert!(Gate::UBlock(UBlock::from_u(&[1, -1])).is_structured());
        assert!(Gate::XyMix(0, 1, 0.5).is_structured());
        assert!(!Gate::Cx(0, 1).is_structured());
        assert!(Gate::Cx(0, 1).is_basic());
        assert!(!Gate::Ccx(0, 1, 2).is_basic());
    }

    #[test]
    fn mcphase_inverse_negates_angle() {
        let g = Gate::McPhase {
            qubits: vec![0, 1, 2],
            angle: 0.8,
        };
        match g.inverse() {
            Gate::McPhase { angle, .. } => assert_eq!(angle, -0.8),
            other => panic!("unexpected inverse {other}"),
        }
    }

    #[test]
    fn shiftblock_forward_and_source_of() {
        // Support {0,1}, pattern v = |11⟩; 2-bit register on {2,3} with
        // delta = +1 and max_value = 2 (values 0..=2 valid, 3 is padding).
        let b = ShiftBlock {
            support: vec![0, 1],
            pattern: 0b11,
            shifts: vec![RegisterShift {
                qubits: vec![2, 3],
                delta: 1,
                max_value: 2,
            }],
            angle: 0.3,
        };
        // Source |v=11, r=0⟩ = 0b0011 couples to |v̄=00, r=1⟩ = 0b0100.
        assert_eq!(b.forward(0b0011), Some(0b0100));
        assert_eq!(b.source_of(0b0011), Some(0b0011));
        assert_eq!(b.source_of(0b0100), Some(0b0011));
        // r = 2 would shift to 3 > max_value: ineligible.
        assert_eq!(b.forward(0b1011), None);
        assert_eq!(b.source_of(0b1011), None);
        // Padding state r = 3: ineligible from either side.
        assert_eq!(b.forward(0b1111), None);
        assert_eq!(b.source_of(0b1100), None);
        // Support bits neither v nor v̄: not part of any pair.
        assert_eq!(b.source_of(0b0001), None);
    }

    #[test]
    fn shiftblock_inverse_negates_angle() {
        let b = ShiftBlock {
            support: vec![0],
            pattern: 0b1,
            shifts: vec![],
            angle: 0.8,
        };
        match Gate::ShiftBlock(b).inverse() {
            Gate::ShiftBlock(inv) => assert_eq!(inv.angle, -0.8),
            other => panic!("unexpected inverse {other}"),
        }
    }

    #[test]
    fn register_shift_read_write_roundtrip() {
        let s = RegisterShift {
            qubits: vec![1, 3, 4],
            delta: -2,
            max_value: 7,
        };
        assert_eq!(s.mask(), 0b11010);
        let bits = s.write(0b00101, 0b110);
        assert_eq!(s.read(bits), 0b110);
        assert_eq!(bits & !s.mask(), 0b00101 & !s.mask());
    }

    #[test]
    fn diagphase_support_comes_from_poly() {
        let mut poly = PhasePoly::new(4);
        poly.add_linear(1, 1.0);
        poly.add_quadratic(0, 3, 2.0);
        let g = Gate::DiagPhase(Arc::new(poly), 0.5);
        assert_eq!(g.qubits(), vec![0, 1, 3]);
    }
}
