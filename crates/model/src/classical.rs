//! Exact classical solvers: the ground truth for every experiment.
//!
//! Two flavours:
//!
//! * [`solve_exact`] — enumerates the feasible set via the constraint DFS and
//!   evaluates the objective on each point. Exact and fast for the paper's
//!   problem scales; this is what "success rate" is measured against.
//! * [`BranchAndBound`] — a depth-first branch-and-bound with residual
//!   feasibility pruning and an optimistic objective bound; the classical
//!   baseline whose exponential worst case motivates the quantum approach in
//!   the first place (§II-A).

use crate::problem::{Problem, Sense};
use std::fmt;

/// The exact optimum of a problem.
#[derive(Clone, Debug, PartialEq)]
pub struct Optimum {
    /// Optimal objective value (in the problem's own sense).
    pub value: f64,
    /// Every optimal assignment (packed bits).
    pub solutions: Vec<u64>,
    /// Number of feasible assignments enumerated.
    pub n_feasible: usize,
}

impl Optimum {
    /// Is the assignment one of the optimal solutions?
    pub fn contains(&self, bits: u64) -> bool {
        self.solutions.contains(&bits)
    }
}

/// Errors from the classical solvers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClassicalError {
    /// No binary assignment satisfies the constraints.
    Infeasible,
    /// The feasible set exceeded the enumeration cap.
    TooLarge {
        /// The cap that was hit.
        cap: usize,
    },
}

impl fmt::Display for ClassicalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassicalError::Infeasible => write!(f, "no feasible assignment exists"),
            ClassicalError::TooLarge { cap } => {
                write!(f, "feasible set exceeds the enumeration cap of {cap}")
            }
        }
    }
}

impl std::error::Error for ClassicalError {}

/// Default cap on feasible-set enumeration (2²² points).
pub const DEFAULT_ENUM_CAP: usize = 1 << 22;

/// Finds the exact optimum by enumerating the feasible set.
///
/// Two objective values within `1e-9` are treated as ties, so `solutions`
/// lists *all* optima — success rate counts a measurement as successful if
/// it hits any of them.
///
/// # Errors
///
/// [`ClassicalError::Infeasible`] when no assignment satisfies the
/// constraints; [`ClassicalError::TooLarge`] when the feasible set exceeds
/// `cap`.
pub fn solve_exact_capped(problem: &Problem, cap: usize) -> Result<Optimum, ClassicalError> {
    let feasible = problem.feasible_solutions(cap);
    if feasible.is_empty() {
        return Err(ClassicalError::Infeasible);
    }
    if feasible.len() >= cap {
        return Err(ClassicalError::TooLarge { cap });
    }
    let better = |a: f64, b: f64| match problem.sense() {
        Sense::Minimize => a < b - 1e-9,
        Sense::Maximize => a > b + 1e-9,
    };
    let mut best = problem.evaluate(feasible[0]);
    let mut solutions = vec![feasible[0]];
    for &bits in &feasible[1..] {
        let v = problem.evaluate(bits);
        if better(v, best) {
            best = v;
            solutions.clear();
            solutions.push(bits);
        } else if (v - best).abs() <= 1e-9 {
            solutions.push(bits);
        }
    }
    Ok(Optimum {
        value: best,
        solutions,
        n_feasible: feasible.len(),
    })
}

/// [`solve_exact_capped`] with the default cap.
pub fn solve_exact(problem: &Problem) -> Result<Optimum, ClassicalError> {
    solve_exact_capped(problem, DEFAULT_ENUM_CAP)
}

/// Statistics from a branch-and-bound run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BnbStats {
    /// Search-tree nodes expanded.
    pub nodes: u64,
    /// Nodes cut by the objective bound.
    pub bound_prunes: u64,
    /// Nodes cut by constraint-residual infeasibility.
    pub feasibility_prunes: u64,
}

/// Depth-first branch-and-bound over the binary variables.
///
/// Pruning: (1) per-equation residual intervals (as in the feasibility DFS),
/// and (2) an optimistic completion bound on the objective — each unassigned
/// linear term contributes its favourable extreme, each quadratic term with
/// any unassigned endpoint likewise.
#[derive(Clone, Debug, Default)]
pub struct BranchAndBound {
    stats: BnbStats,
}

impl BranchAndBound {
    /// Creates a solver.
    pub fn new() -> Self {
        BranchAndBound::default()
    }

    /// Statistics of the last [`BranchAndBound::solve`] call.
    pub fn stats(&self) -> BnbStats {
        self.stats
    }

    /// Finds one optimal assignment and its value.
    ///
    /// # Errors
    ///
    /// [`ClassicalError::Infeasible`] when the constraints admit no binary
    /// assignment.
    pub fn solve(&mut self, problem: &Problem) -> Result<(u64, f64), ClassicalError> {
        self.stats = BnbStats::default();
        let n = problem.n_vars();
        let m = problem.constraints().len();
        let coeff = problem.constraints().dense_matrix();
        let rhs: Vec<i64> = problem.constraints().eqs().iter().map(|e| e.rhs).collect();

        // Residual interval bounds per suffix (as in LinSystem's DFS).
        let mut suf_min = vec![vec![0i64; m]; n + 1];
        let mut suf_max = vec![vec![0i64; m]; n + 1];
        for i in (0..n).rev() {
            for e in 0..m {
                let c = coeff[e][i];
                suf_min[i][e] = suf_min[i + 1][e] + c.min(0);
                suf_max[i][e] = suf_max[i + 1][e] + c.max(0);
            }
        }

        // Optimistic completion bounds for the minimization-form cost:
        // every term whose variables are not all assigned contributes
        // min(0, w).
        let cost = problem.cost_poly();
        let mut opt_linear = vec![0.0f64; n + 1];
        for i in (0..n).rev() {
            opt_linear[i] = opt_linear[i + 1] + cost.linear()[i].min(0.0);
        }
        // Quadratic terms keyed by their *larger* variable: once both ends
        // are assigned the true value is added; before that the optimistic
        // extreme is part of the bound.
        let mut quad_bound_by_hi = vec![0.0f64; n + 1];
        for &(_, j, w) in cost.quadratic() {
            quad_bound_by_hi[j] += w.min(0.0);
        }
        let mut opt_quad = vec![0.0f64; n + 1];
        for i in (0..n).rev() {
            opt_quad[i] = opt_quad[i + 1] + quad_bound_by_hi[i];
        }

        struct Ctx<'a> {
            n: usize,
            m: usize,
            coeff: &'a [Vec<i64>],
            suf_min: &'a [Vec<i64>],
            suf_max: &'a [Vec<i64>],
            cost: &'a choco_qsim::PhasePoly,
            opt_linear: &'a [f64],
            opt_quad: &'a [f64],
            best_cost: f64,
            best_bits: Option<u64>,
            stats: BnbStats,
        }

        fn dfs(ctx: &mut Ctx<'_>, i: usize, bits: u64, partial_cost: f64, residual: &mut [i64]) {
            ctx.stats.nodes += 1;
            if i == ctx.n {
                if residual.iter().all(|&r| r == 0) && partial_cost < ctx.best_cost - 1e-12 {
                    ctx.best_cost = partial_cost;
                    ctx.best_bits = Some(bits);
                }
                return;
            }
            for (e, &res) in residual.iter().enumerate().take(ctx.m) {
                if res < ctx.suf_min[i][e] || res > ctx.suf_max[i][e] {
                    ctx.stats.feasibility_prunes += 1;
                    return;
                }
            }
            let bound = partial_cost + ctx.opt_linear[i] + ctx.opt_quad[i];
            if bound >= ctx.best_cost - 1e-12 {
                ctx.stats.bound_prunes += 1;
                return;
            }
            for val in [0u64, 1] {
                let mut delta = 0.0;
                if val == 1 {
                    delta += ctx.cost.linear()[i];
                    for &(a, b, w) in ctx.cost.quadratic() {
                        if b == i && (bits >> a) & 1 == 1 {
                            delta += w;
                        }
                    }
                    for (e, res) in residual.iter_mut().enumerate().take(ctx.m) {
                        *res -= ctx.coeff[e][i];
                    }
                }
                dfs(
                    ctx,
                    i + 1,
                    bits | (val << i),
                    partial_cost + delta,
                    residual,
                );
                if val == 1 {
                    for (e, res) in residual.iter_mut().enumerate().take(ctx.m) {
                        *res += ctx.coeff[e][i];
                    }
                }
            }
        }

        let mut residual = rhs;
        let mut ctx = Ctx {
            n,
            m,
            coeff: &coeff,
            suf_min: &suf_min,
            suf_max: &suf_max,
            cost: &cost,
            opt_linear: &opt_linear,
            opt_quad: &opt_quad,
            best_cost: f64::INFINITY,
            best_bits: None,
            stats: BnbStats::default(),
        };
        dfs(&mut ctx, 0, 0, cost.constant(), &mut residual);
        self.stats = ctx.stats;
        match ctx.best_bits {
            Some(bits) => Ok((bits, problem.evaluate(bits))),
            None => Err(ClassicalError::Infeasible),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    fn paper_problem() -> Problem {
        Problem::builder(4)
            .maximize()
            .linear(0, 1.0)
            .linear(1, 2.0)
            .linear(2, 3.0)
            .linear(3, 1.0)
            .equality([(0, 1), (2, -1)], 0)
            .equality([(0, 1), (1, 1), (3, 1)], 1)
            .build()
            .unwrap()
    }

    #[test]
    fn exact_optimum_of_paper_example() {
        let opt = solve_exact(&paper_problem()).expect("solvable");
        // The paper: optimum is x = {1,0,1,0} with value 4.
        assert_eq!(opt.value, 4.0);
        assert_eq!(opt.solutions, vec![0b0101]);
        assert!(opt.contains(0b0101));
    }

    #[test]
    fn exact_detects_infeasible() {
        let p = Problem::builder(2)
            .equality([(0, 1), (1, 1)], 5)
            .build()
            .unwrap();
        assert_eq!(solve_exact(&p).unwrap_err(), ClassicalError::Infeasible);
    }

    #[test]
    fn exact_respects_cap() {
        let p = Problem::builder(10).linear(0, 1.0).build().unwrap();
        let err = solve_exact_capped(&p, 100).unwrap_err();
        assert_eq!(err, ClassicalError::TooLarge { cap: 100 });
    }

    #[test]
    fn exact_collects_ties() {
        // min x0 + x1 s.t. x0 + x1 = 1: two optimal solutions of value 1.
        let p = Problem::builder(2)
            .linear(0, 1.0)
            .linear(1, 1.0)
            .equality([(0, 1), (1, 1)], 1)
            .build()
            .unwrap();
        let opt = solve_exact(&p).unwrap();
        assert_eq!(opt.value, 1.0);
        assert_eq!(opt.solutions.len(), 2);
    }

    #[test]
    fn bnb_matches_exhaustive_linear() {
        let p = paper_problem();
        let mut bnb = BranchAndBound::new();
        let (bits, value) = bnb.solve(&p).unwrap();
        assert_eq!(value, 4.0);
        assert_eq!(bits, 0b0101);
        assert!(bnb.stats().nodes > 0);
    }

    #[test]
    fn bnb_matches_exhaustive_quadratic() {
        // min 3x0 − 2x0x1 − x1x2 + x2 s.t. x0 + x1 + x2 = 2
        let p = Problem::builder(3)
            .linear(0, 3.0)
            .quadratic(0, 1, -2.0)
            .quadratic(1, 2, -1.0)
            .linear(2, 1.0)
            .equality([(0, 1), (1, 1), (2, 1)], 2)
            .build()
            .unwrap();
        let exact = solve_exact(&p).unwrap();
        let (bits, value) = BranchAndBound::new().solve(&p).unwrap();
        assert!((value - exact.value).abs() < 1e-9);
        assert!(exact.contains(bits));
    }

    #[test]
    fn bnb_infeasible() {
        let p = Problem::builder(2).equality([(0, 1)], 3).build().unwrap();
        assert_eq!(
            BranchAndBound::new().solve(&p).unwrap_err(),
            ClassicalError::Infeasible
        );
    }

    #[test]
    fn bnb_prunes_something_on_structured_instance() {
        // A wider instance where bounding matters.
        let mut b = Problem::builder(12).minimize();
        for i in 0..12 {
            b = b.linear(i, (i as f64) - 6.0);
        }
        let p = b
            .equality([(0, 1), (1, 1), (2, 1), (3, 1)], 2)
            .equality([(4, 1), (5, 1), (6, 1), (7, 1)], 2)
            .build()
            .unwrap();
        let exact = solve_exact(&p).unwrap();
        let mut bnb = BranchAndBound::new();
        let (_, value) = bnb.solve(&p).unwrap();
        assert!((value - exact.value).abs() < 1e-9);
        assert!(bnb.stats().bound_prunes + bnb.stats().feasibility_prunes > 0);
    }

    #[test]
    fn bnb_random_instances_agree_with_exhaustive() {
        let mut rng = choco_mathkit::SplitMix64::new(2024);
        for trial in 0..20 {
            let n = 6 + (trial % 3);
            let mut b = Problem::builder(n);
            if trial % 2 == 0 {
                b = b.maximize();
            }
            for i in 0..n {
                b = b.linear(i, rng.gen_range_f64(-5.0, 5.0));
            }
            for _ in 0..n / 2 {
                let i = rng.gen_range(0, n as u64) as usize;
                let j = rng.gen_range(0, n as u64) as usize;
                if i != j {
                    b = b.quadratic(i, j, rng.gen_range_f64(-3.0, 3.0));
                }
            }
            let k = rng.gen_range(1, n as u64 - 1) as i64;
            let p = b.equality((0..n).map(|i| (i, 1i64)), k).build().unwrap();
            let exact = solve_exact(&p).unwrap();
            let (bits, value) = BranchAndBound::new().solve(&p).unwrap();
            assert!(
                (value - exact.value).abs() < 1e-6,
                "trial {trial}: bnb {value} vs exact {}",
                exact.value
            );
            assert!(p.is_feasible(bits));
        }
    }
}
