//! The common solver interface implemented by every QAOA variant
//! (penalty-based, cyclic, HEA, and Choco-Q itself).

use crate::classical::{solve_exact, ClassicalError, Optimum};
use crate::metrics::Metrics;
use crate::problem::Problem;
use choco_qsim::Counts;
use std::fmt;
use std::time::Duration;

/// Structural statistics of the circuit a solver executed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CircuitStats {
    /// Total qubits used (variables + ancillas).
    pub qubits: usize,
    /// Depth of the logical (structured) circuit.
    pub logical_depth: usize,
    /// Depth after transpilation to basic gates, when computed.
    pub transpiled_depth: Option<usize>,
    /// Gate count after transpilation, when computed.
    pub transpiled_gates: Option<usize>,
    /// Two-qubit gate count after transpilation, when computed.
    pub two_qubit_gates: Option<usize>,
}

/// Wall-clock breakdown of a solve, mirroring the paper's latency split
/// (Fig. 11b): compilation, quantum execution, classical parameter updates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimingBreakdown {
    /// Hamiltonian construction + decomposition + transpilation.
    pub compile: Duration,
    /// Circuit simulation / execution across all iterations.
    pub execute: Duration,
    /// Classical optimizer time.
    pub classical: Duration,
}

impl TimingBreakdown {
    /// Total end-to-end time.
    pub fn total(&self) -> Duration {
        self.compile + self.execute + self.classical
    }
}

/// Everything a solver run produces.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// Final measurement histogram over the problem's variable bits.
    pub counts: Counts,
    /// Best cost (minimization convention) per optimizer iteration.
    pub cost_history: Vec<f64>,
    /// Optimizer iterations executed.
    pub iterations: usize,
    /// Circuit structure statistics.
    pub circuit: CircuitStats,
    /// Wall-clock breakdown.
    pub timing: TimingBreakdown,
}

impl SolveOutcome {
    /// Computes the paper's metrics against the exact optimum (which is
    /// solved classically on the fly).
    ///
    /// # Errors
    ///
    /// Propagates [`ClassicalError`] when the instance cannot be solved
    /// exactly (infeasible or oversized).
    pub fn metrics(&self, problem: &Problem) -> Result<Metrics, ClassicalError> {
        let optimum = solve_exact(problem)?;
        Ok(Metrics::from_counts(problem, &self.counts, &optimum))
    }

    /// Metrics against a pre-computed optimum (avoids repeated exact
    /// solving in benchmark sweeps).
    pub fn metrics_with(&self, problem: &Problem, optimum: &Optimum) -> Metrics {
        Metrics::from_counts(problem, &self.counts, optimum)
    }
}

/// Errors common to all quantum solvers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolverError {
    /// The constraint system admits no binary assignment (no initial state).
    Infeasible,
    /// The instance needs more qubits than the simulator supports.
    TooLarge {
        /// Qubits required.
        required: usize,
        /// Simulator limit.
        limit: usize,
    },
    /// The solver cannot encode this problem (e.g. cyclic Hamiltonian with
    /// no summation-format constraint).
    Unsupported(String),
    /// Lowering to basic gates failed.
    Transpile(String),
    /// Driver construction failed (e.g. no ternary kernel basis).
    Encoding(String),
    /// The solve's cooperative wall-clock deadline expired mid-loop.
    Timeout,
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::Infeasible => write!(f, "problem has no feasible assignment"),
            SolverError::TooLarge { required, limit } => {
                write!(f, "{required} qubits required but the limit is {limit}")
            }
            SolverError::Unsupported(msg) => write!(f, "unsupported problem: {msg}"),
            SolverError::Transpile(msg) => write!(f, "transpilation failed: {msg}"),
            SolverError::Encoding(msg) => write!(f, "encoding failed: {msg}"),
            SolverError::Timeout => write!(f, "solve deadline exceeded"),
        }
    }
}

impl std::error::Error for SolverError {}

impl From<ClassicalError> for SolverError {
    fn from(err: ClassicalError) -> Self {
        match err {
            ClassicalError::Infeasible => SolverError::Infeasible,
            ClassicalError::TooLarge { cap } => SolverError::TooLarge {
                required: cap,
                limit: cap,
            },
        }
    }
}

/// A quantum solver for constrained binary optimization.
pub trait Solver {
    /// Short identifier used in benchmark tables (e.g. `"choco-q"`).
    fn name(&self) -> &str;

    /// Runs the full variational loop on `problem` and returns the final
    /// sampled outcome.
    ///
    /// # Errors
    ///
    /// Implementations return [`SolverError`] for infeasible, oversized, or
    /// unencodable instances.
    fn solve(&self, problem: &Problem) -> Result<SolveOutcome, SolverError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_total_sums_parts() {
        let t = TimingBreakdown {
            compile: Duration::from_millis(10),
            execute: Duration::from_millis(200),
            classical: Duration::from_millis(30),
        };
        assert_eq!(t.total(), Duration::from_millis(240));
    }

    #[test]
    fn solver_error_display() {
        let e = SolverError::TooLarge {
            required: 30,
            limit: 24,
        };
        assert!(format!("{e}").contains("30"));
        let e = SolverError::Unsupported("no summation constraint".into());
        assert!(format!("{e}").contains("summation"));
    }

    #[test]
    fn classical_error_converts() {
        let e: SolverError = ClassicalError::Infeasible.into();
        assert_eq!(e, SolverError::Infeasible);
    }

    #[test]
    fn outcome_metrics_roundtrip() {
        let p = Problem::builder(2)
            .minimize()
            .linear(0, 1.0)
            .linear(1, 2.0)
            .equality([(0, 1), (1, 1)], 1)
            .build()
            .unwrap();
        let mut counts = Counts::new();
        counts.record_n(0b01, 90); // optimal: x0=1 (f=1)
        counts.record_n(0b10, 10); // feasible: x1=1 (f=2)
        let outcome = SolveOutcome {
            counts,
            cost_history: vec![2.0, 1.5, 1.1],
            iterations: 3,
            circuit: CircuitStats::default(),
            timing: TimingBreakdown::default(),
        };
        let m = outcome.metrics(&p).unwrap();
        assert!((m.success_rate - 0.9).abs() < 1e-12);
        assert_eq!(m.in_constraints_rate, 1.0);
    }
}
