//! The paper's evaluation metrics (§V-A).
//!
//! * **Success rate** — probability that a measured bitstring is one of the
//!   optimal solutions.
//! * **In-constraints rate** — probability that a measured bitstring
//!   satisfies every constraint (always ≥ success rate).
//! * **Approximation ratio gap (ARG)** — Eq. (17):
//!   `| E[f(x) + λ‖Cx − c‖] / f(x_opt) − 1 |` with `λ = 10`.

use crate::classical::Optimum;
use crate::problem::Problem;
use choco_qsim::Counts;
use std::collections::HashSet;
use std::fmt;

/// The penalty weight λ in the ARG definition (set to 10 in the paper).
pub const ARG_LAMBDA: f64 = 10.0;

/// Algorithmic quality metrics for one solver run.
#[derive(Clone, Debug, PartialEq)]
pub struct Metrics {
    /// Probability of measuring an optimal solution.
    pub success_rate: f64,
    /// Probability of measuring a feasible solution.
    pub in_constraints_rate: f64,
    /// Approximation ratio gap (Eq. (17), λ = 10).
    pub arg: f64,
    /// Expected objective value over all outcomes.
    pub expected_objective: f64,
    /// Best feasible outcome observed, with its objective value.
    pub best_found: Option<(u64, f64)>,
}

impl Metrics {
    /// Computes all metrics for `counts` measured on `problem`, given the
    /// exact [`Optimum`].
    ///
    /// The ARG denominator uses `|f(x_opt)|`, falling back to 1 when the
    /// optimum is (numerically) zero so the gap stays finite.
    pub fn from_counts(problem: &Problem, counts: &Counts, optimum: &Optimum) -> Metrics {
        let optimal_set: HashSet<u64> = optimum.solutions.iter().copied().collect();
        let success_rate = counts.mass_where(|bits| optimal_set.contains(&bits));
        let in_constraints_rate = counts.mass_where(|bits| problem.is_feasible(bits));
        let expected_objective = counts.expectation(|bits| problem.evaluate(bits));
        let expected_penalized = counts.expectation(|bits| {
            problem.evaluate(bits) + ARG_LAMBDA * problem.violation_sq(bits).sqrt()
        });
        let denom = if optimum.value.abs() > 1e-9 {
            optimum.value.abs()
        } else {
            1.0
        };
        let arg =
            (expected_penalized / denom * if optimum.value < 0.0 { -1.0 } else { 1.0 } - 1.0).abs();

        let mut best_found: Option<(u64, f64)> = None;
        for (bits, _) in counts.iter() {
            if !problem.is_feasible(bits) {
                continue;
            }
            let v = problem.evaluate(bits);
            let better = match (problem.sense(), best_found) {
                (_, None) => true,
                (crate::problem::Sense::Minimize, Some((_, b))) => v < b,
                (crate::problem::Sense::Maximize, Some((_, b))) => v > b,
            };
            if better {
                best_found = Some((bits, v));
            }
        }

        Metrics {
            success_rate,
            in_constraints_rate,
            arg,
            expected_objective,
            best_found,
        }
    }

    /// `true` when the optimal solution appeared at least once.
    pub fn found_optimal(&self) -> bool {
        self.success_rate > 0.0
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "success={:.2}% in-constraints={:.2}% ARG={:.3} E[f]={:.3}",
            self.success_rate * 100.0,
            self.in_constraints_rate * 100.0,
            self.arg,
            self.expected_objective
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical::solve_exact;

    fn paper_problem() -> Problem {
        Problem::builder(4)
            .maximize()
            .linear(0, 1.0)
            .linear(1, 2.0)
            .linear(2, 3.0)
            .linear(3, 1.0)
            .equality([(0, 1), (2, -1)], 0)
            .equality([(0, 1), (1, 1), (3, 1)], 1)
            .build()
            .unwrap()
    }

    #[test]
    fn perfect_sampler_gets_full_scores() {
        let p = paper_problem();
        let opt = solve_exact(&p).unwrap();
        let mut counts = Counts::new();
        counts.record_n(0b0101, 1000); // the unique optimum
        let m = Metrics::from_counts(&p, &counts, &opt);
        assert_eq!(m.success_rate, 1.0);
        assert_eq!(m.in_constraints_rate, 1.0);
        assert!(m.arg < 1e-9, "ARG should vanish at the optimum: {}", m.arg);
        assert_eq!(m.best_found, Some((0b0101, 4.0)));
        assert!(m.found_optimal());
    }

    #[test]
    fn feasible_but_suboptimal_counts() {
        let p = paper_problem();
        let opt = solve_exact(&p).unwrap();
        let mut counts = Counts::new();
        counts.record_n(0b0101, 500); // optimal (f = 4)
        counts.record_n(0b0010, 500); // feasible: x1 = 1 only (f = 2)
        assert!(p.is_feasible(0b0010));
        let m = Metrics::from_counts(&p, &counts, &opt);
        assert!((m.success_rate - 0.5).abs() < 1e-12);
        assert_eq!(m.in_constraints_rate, 1.0);
        assert!((m.expected_objective - 3.0).abs() < 1e-12);
        // ARG = |3/4 - 1| = 0.25 (no violations)
        assert!((m.arg - 0.25).abs() < 1e-12);
    }

    #[test]
    fn violations_blow_up_arg() {
        let p = paper_problem();
        let opt = solve_exact(&p).unwrap();
        let mut counts = Counts::new();
        counts.record_n(0b1111, 100); // infeasible
        let m = Metrics::from_counts(&p, &counts, &opt);
        assert_eq!(m.success_rate, 0.0);
        assert_eq!(m.in_constraints_rate, 0.0);
        assert!(m.best_found.is_none());
        // f(1111) = 7, ‖C x − c‖ = sqrt(0² + 2²) = 2 → (7 + 20)/4 − 1 = 5.75
        assert!((m.arg - 5.75).abs() < 1e-9, "arg = {}", m.arg);
    }

    #[test]
    fn success_rate_counts_any_optimum() {
        let p = Problem::builder(2)
            .minimize()
            .linear(0, 1.0)
            .linear(1, 1.0)
            .equality([(0, 1), (1, 1)], 1)
            .build()
            .unwrap();
        let opt = solve_exact(&p).unwrap();
        assert_eq!(opt.solutions.len(), 2);
        let mut counts = Counts::new();
        counts.record_n(0b01, 300);
        counts.record_n(0b10, 700);
        let m = Metrics::from_counts(&p, &counts, &opt);
        assert_eq!(m.success_rate, 1.0);
    }

    #[test]
    fn empty_counts_give_zero_metrics() {
        let p = paper_problem();
        let opt = solve_exact(&p).unwrap();
        let m = Metrics::from_counts(&p, &Counts::new(), &opt);
        assert_eq!(m.success_rate, 0.0);
        assert_eq!(m.in_constraints_rate, 0.0);
        assert!(m.best_found.is_none());
    }
}
