//! A small LP-style text format for constrained binary optimization.
//!
//! The paper's artifact ships problems as Python data; for a Rust library
//! a plain-text interchange format is the equivalent convenience. Example:
//!
//! ```text
//! # the paper's running example
//! maximize x0 + 2 x1 + 3 x2 + x3
//! s.t. x0 - x2 = 0
//! s.t. x0 + x1 + x3 = 1
//! ```
//!
//! Grammar (line-oriented, `#` comments):
//!
//! * objective line: `minimize <expr>` or `maximize <expr>`
//! * constraint lines: `s.t. <int-expr> = <int>` (also `st` / `subject to`);
//!   `<=` and `>=` rows are accepted too and become first-class inequality
//!   rows ([`crate::Problem::has_inequalities`])
//! * `<expr>` is `±[coef] x<i>`, `±[coef] x<i>*x<j>` and constants,
//!   joined by `+` / `-`; coefficients may be floats in the objective but
//!   must be integers in constraints.

use crate::problem::{Problem, ProblemError};
use std::fmt;

/// Errors from [`parse_problem`].
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    /// No `minimize` / `maximize` line found.
    MissingObjective,
    /// More than one objective line.
    DuplicateObjective {
        /// 1-based line number of the second objective.
        line: usize,
    },
    /// A line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The assembled problem failed validation.
    Problem(ProblemError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingObjective => write!(f, "no minimize/maximize line"),
            ParseError::DuplicateObjective { line } => {
                write!(f, "line {line}: duplicate objective")
            }
            ParseError::Malformed { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Problem(e) => write!(f, "invalid problem: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ProblemError> for ParseError {
    fn from(e: ProblemError) -> Self {
        ParseError::Problem(e)
    }
}

/// One additive term of an expression.
#[derive(Clone, Debug, PartialEq)]
enum Term {
    Constant(f64),
    Linear(usize, f64),
    Quadratic(usize, usize, f64),
}

/// Relation of a constraint row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Relation {
    Eq,
    Le,
    Ge,
}

/// Tokenizes an expression like `x0 + 2 x1 - 3 x2*x3 + 4` into terms.
fn parse_expr(s: &str, line: usize) -> Result<Vec<Term>, ParseError> {
    let err = |message: String| ParseError::Malformed { line, message };
    // Normalize: make sure +/- separate tokens.
    let normalized = s.replace('+', " + ").replace('-', " - ");
    let tokens: Vec<&str> = normalized.split_whitespace().collect();
    let mut terms = Vec::new();
    let mut sign = 1.0f64;
    let mut pending_coef: Option<f64> = None;
    let mut expect_operand = true;

    let mut i = 0;
    while i < tokens.len() {
        let tok = tokens[i];
        match tok {
            "+" => {
                if pending_coef.is_some() {
                    return Err(err("dangling coefficient before '+'".into()));
                }
                sign = 1.0;
                expect_operand = true;
            }
            "-" => {
                if pending_coef.is_some() {
                    return Err(err("dangling coefficient before '-'".into()));
                }
                sign = -sign;
                expect_operand = true;
            }
            _ if tok.starts_with('x') => {
                if !expect_operand && pending_coef.is_none() {
                    return Err(err(format!("missing operator before `{tok}`")));
                }
                let coef = sign * pending_coef.take().unwrap_or(1.0);
                // x3 or x3*x5
                if let Some((a, b)) = tok.split_once('*') {
                    let i1 = parse_var(a).ok_or_else(|| err(format!("bad variable `{a}`")))?;
                    let i2 = parse_var(b).ok_or_else(|| err(format!("bad variable `{b}`")))?;
                    terms.push(Term::Quadratic(i1, i2, coef));
                } else {
                    let v = parse_var(tok).ok_or_else(|| err(format!("bad variable `{tok}`")))?;
                    terms.push(Term::Linear(v, coef));
                }
                sign = 1.0;
                expect_operand = false;
            }
            _ => {
                let value: f64 = tok
                    .parse()
                    .map_err(|_| err(format!("unrecognized token `{tok}`")))?;
                if pending_coef.is_some() {
                    return Err(err(format!("two consecutive numbers near `{tok}`")));
                }
                // A number may be a standalone constant or a coefficient of
                // the next variable token.
                if i + 1 < tokens.len() && tokens[i + 1].starts_with('x') {
                    pending_coef = Some(value);
                } else {
                    terms.push(Term::Constant(sign * value));
                    sign = 1.0;
                    expect_operand = false;
                }
            }
        }
        i += 1;
    }
    if pending_coef.is_some() {
        return Err(err("dangling coefficient at end of expression".into()));
    }
    Ok(terms)
}

fn parse_var(s: &str) -> Option<usize> {
    s.strip_prefix('x')?.parse().ok()
}

/// Parses the text format into a [`Problem`].
///
/// The variable count is inferred as `max index + 1`.
///
/// # Errors
///
/// Returns [`ParseError`] describing the offending line.
///
/// # Examples
///
/// ```
/// use choco_model::parse_problem;
///
/// let p = parse_problem(
///     "maximize x0 + 2 x1 + 3 x2 + x3\n\
///      s.t. x0 - x2 = 0\n\
///      s.t. x0 + x1 + x3 = 1",
/// )?;
/// assert_eq!(p.n_vars(), 4);
/// assert_eq!(p.evaluate(0b0101), 4.0);
/// # Ok::<(), choco_model::ParseError>(())
/// ```
pub fn parse_problem(text: &str) -> Result<Problem, ParseError> {
    let mut objective: Option<(bool, Vec<Term>)> = None; // (maximize, terms)
    let mut constraints: Vec<(Vec<Term>, i64, Relation, usize)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lower = line.to_ascii_lowercase();
        if let Some(rest) = lower
            .strip_prefix("maximize")
            .or_else(|| lower.strip_prefix("max "))
        {
            if objective.is_some() {
                return Err(ParseError::DuplicateObjective { line: line_no });
            }
            objective = Some((true, parse_expr(rest, line_no)?));
        } else if let Some(rest) = lower
            .strip_prefix("minimize")
            .or_else(|| lower.strip_prefix("min "))
        {
            if objective.is_some() {
                return Err(ParseError::DuplicateObjective { line: line_no });
            }
            objective = Some((false, parse_expr(rest, line_no)?));
        } else if let Some(rest) = lower
            .strip_prefix("subject to")
            .or_else(|| lower.strip_prefix("s.t."))
            .or_else(|| lower.strip_prefix("st "))
        {
            // Check the two-character relations before bare `=` so that
            // `x0 <= 2` does not split at the `=` inside `<=`.
            let (lhs, rhs, relation) = if let Some((l, r)) = rest.split_once("<=") {
                (l, r, Relation::Le)
            } else if let Some((l, r)) = rest.split_once(">=") {
                (l, r, Relation::Ge)
            } else if let Some((l, r)) = rest.split_once('=') {
                (l, r, Relation::Eq)
            } else {
                return Err(ParseError::Malformed {
                    line: line_no,
                    message: "constraint needs `= <int>`, `<= <int>` or `>= <int>`".into(),
                });
            };
            let rhs: i64 = rhs.trim().parse().map_err(|_| ParseError::Malformed {
                line: line_no,
                message: format!("right-hand side `{}` is not an integer", rhs.trim()),
            })?;
            let terms = parse_expr(lhs, line_no)?;
            constraints.push((terms, rhs, relation, line_no));
        } else {
            return Err(ParseError::Malformed {
                line: line_no,
                message: format!("unrecognized line `{line}`"),
            });
        }
    }

    let Some((maximize, obj_terms)) = objective else {
        return Err(ParseError::MissingObjective);
    };

    // Infer the variable count.
    let mut n_vars = 0usize;
    let scan = |terms: &[Term], n: &mut usize| {
        for t in terms {
            match *t {
                Term::Linear(v, _) => *n = (*n).max(v + 1),
                Term::Quadratic(a, b, _) => *n = (*n).max(a.max(b) + 1),
                Term::Constant(_) => {}
            }
        }
    };
    scan(&obj_terms, &mut n_vars);
    for (terms, _, _, _) in &constraints {
        scan(terms, &mut n_vars);
    }

    let mut b = Problem::builder(n_vars);
    b = if maximize { b.maximize() } else { b.minimize() };
    for t in obj_terms {
        b = match t {
            Term::Constant(w) => b.constant(w),
            Term::Linear(v, w) => b.linear(v, w),
            Term::Quadratic(i, j, w) => b.quadratic(i, j, w),
        };
    }
    for (terms, rhs, relation, line_no) in constraints {
        let mut lin: Vec<(usize, i64)> = Vec::new();
        let mut shift = 0i64;
        for t in terms {
            match t {
                Term::Linear(v, w) => {
                    if w.fract() != 0.0 {
                        return Err(ParseError::Malformed {
                            line: line_no,
                            message: format!("constraint coefficient {w} is not an integer"),
                        });
                    }
                    lin.push((v, w as i64));
                }
                Term::Constant(w) => {
                    if w.fract() != 0.0 {
                        return Err(ParseError::Malformed {
                            line: line_no,
                            message: format!("constraint constant {w} is not an integer"),
                        });
                    }
                    shift += w as i64;
                }
                Term::Quadratic(..) => {
                    return Err(ParseError::Malformed {
                        line: line_no,
                        message: "constraints must be linear".into(),
                    });
                }
            }
        }
        b = match relation {
            Relation::Eq => b.equality(lin, rhs - shift),
            Relation::Le => b.less_equal(lin, rhs - shift),
            Relation::Ge => b.greater_equal(lin, rhs - shift),
        };
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical::solve_exact;

    #[test]
    fn parses_paper_example() {
        let p = parse_problem(
            "# running example\n\
             maximize x0 + 2 x1 + 3 x2 + x3\n\
             s.t. x0 - x2 = 0\n\
             s.t. x0 + x1 + x3 = 1",
        )
        .expect("parse");
        assert_eq!(p.n_vars(), 4);
        assert_eq!(p.constraints().len(), 2);
        let opt = solve_exact(&p).unwrap();
        assert_eq!(opt.value, 4.0);
        assert_eq!(opt.solutions, vec![0b0101]);
    }

    #[test]
    fn parses_quadratic_objective_and_constants() {
        let p = parse_problem(
            "minimize 2.5 - x0*x1 + 0.5 x2\n\
             s.t. x0 + x1 + x2 = 2",
        )
        .expect("parse");
        assert_eq!(p.evaluate(0b011), 2.5 - 1.0);
        assert_eq!(p.evaluate(0b110), 2.5 + 0.5);
    }

    #[test]
    fn constraint_constants_fold_into_rhs() {
        let p = parse_problem("min x0\ns.t. x0 + x1 - 1 = 0").expect("parse");
        assert!(p.is_feasible(0b01));
        assert!(p.is_feasible(0b10));
        assert!(!p.is_feasible(0b11));
    }

    #[test]
    fn parses_inequality_rows() {
        let p = parse_problem(
            "maximize x0 + x1 + x2\n\
             s.t. 2 x0 + x1 + 3 x2 <= 3\n\
             s.t. x0 + x1 >= 1",
        )
        .expect("parse");
        assert!(p.has_inequalities());
        assert_eq!(p.constraints().len(), 0);
        assert_eq!(p.constraints().ineqs().len(), 2);
        assert!(p.is_feasible(0b011)); // lhs 3 ≤ 3, x0+x1 = 2 ≥ 1
        assert!(!p.is_feasible(0b101)); // lhs 5 > 3
        assert!(!p.is_feasible(0b100)); // x0+x1 = 0 < 1
    }

    #[test]
    fn inequality_constants_fold_into_rhs() {
        let p = parse_problem("min x0\ns.t. x0 + x1 + 1 <= 2").expect("parse");
        assert!(p.is_feasible(0b01));
        assert!(!p.is_feasible(0b11)); // 2 + 1 > 2
    }

    #[test]
    fn rejects_missing_objective() {
        assert_eq!(
            parse_problem("s.t. x0 = 1").unwrap_err(),
            ParseError::MissingObjective
        );
    }

    #[test]
    fn rejects_duplicate_objective() {
        let err = parse_problem("min x0\nmax x1").unwrap_err();
        assert_eq!(err, ParseError::DuplicateObjective { line: 2 });
    }

    #[test]
    fn rejects_quadratic_constraint() {
        let err = parse_problem("min x0\ns.t. x0*x1 = 1").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 2, .. }));
    }

    #[test]
    fn rejects_fractional_constraint_coefficient() {
        let err = parse_problem("min x0\ns.t. 0.5 x0 = 1").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 2, .. }));
    }

    #[test]
    fn rejects_garbage_lines() {
        let err = parse_problem("min x0\nhello world").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 2, .. }));
    }

    #[test]
    fn negative_coefficients_and_signs() {
        let p = parse_problem("min -x0 - 2 x1 + 3\ns.t. x0 - x1 = 0").expect("parse");
        assert_eq!(p.evaluate(0b11), -3.0 + 3.0);
        assert_eq!(p.evaluate(0b00), 3.0);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = parse_problem("\n# c\nmin x0 # trailing\n\ns.t. x0 = 1\n").expect("parse");
        assert_eq!(p.n_vars(), 1);
    }
}
