//! The constrained binary optimization model (Eq. (1) of the paper):
//!
//! ```text
//! min / max  f(x),   x ∈ {0,1}^n
//! s.t.       C x = c
//! ```
//!
//! `f` is an arbitrary quadratic pseudo-Boolean (QUBO) function; the
//! constraints are integer linear equalities plus first-class `≤`/`≥`
//! rows ([`ProblemBuilder::less_equal`] / [`ProblemBuilder::greater_equal`]).
//! Inequality rows are carried through to the solver layer, which either
//! synthesizes bounded slack registers natively (Choco-Q's generalized
//! driver) or rejects the encoding; problems may also still model
//! inequalities manually with binary slack variables (the FLP/GCP
//! encodings in `choco-problems` do exactly this).

use choco_mathkit::{LinEq, LinSystem};
use choco_qsim::PhasePoly;
use std::fmt;

/// Whether the objective is minimized or maximized.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Sense {
    /// Find the assignment with the smallest objective.
    #[default]
    Minimize,
    /// Find the assignment with the largest objective.
    Maximize,
}

/// Errors from [`ProblemBuilder::build`] and problem-level validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProblemError {
    /// A term referenced a variable index `>= n_vars`.
    VariableOutOfRange {
        /// The offending index.
        var: usize,
        /// Number of declared variables.
        n_vars: usize,
    },
    /// More than 63 variables (bitstrings are packed in `u64`).
    TooManyVariables(usize),
    /// The constraint system admits no binary solution.
    Infeasible,
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::VariableOutOfRange { var, n_vars } => {
                write!(f, "variable x{var} out of range (n_vars = {n_vars})")
            }
            ProblemError::TooManyVariables(n) => {
                write!(f, "{n} variables exceed the 63-variable limit")
            }
            ProblemError::Infeasible => write!(f, "constraint system has no binary solution"),
        }
    }
}

impl std::error::Error for ProblemError {}

/// A constrained binary optimization problem.
///
/// # Examples
///
/// ```
/// use choco_model::Problem;
///
/// // The paper's running example (Fig. 2a, 0-indexed):
/// //   max  x0 + 2 x1 + 3 x2 + x3
/// //   s.t. x0 − x2 = 0 ;  x0 + x1 + x3 = 1
/// let p = Problem::builder(4)
///     .maximize()
///     .linear(0, 1.0)
///     .linear(1, 2.0)
///     .linear(2, 3.0)
///     .linear(3, 1.0)
///     .equality([(0, 1), (2, -1)], 0)
///     .equality([(0, 1), (1, 1), (3, 1)], 1)
///     .build()?;
/// assert!(p.is_feasible(0b0101));
/// assert_eq!(p.evaluate(0b0101), 4.0); // x = {1,0,1,0}
/// # Ok::<(), choco_model::ProblemError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Problem {
    n_vars: usize,
    sense: Sense,
    objective: PhasePoly,
    constraints: LinSystem,
    name: String,
}

impl Problem {
    /// Starts building a problem over `n_vars` binary variables.
    pub fn builder(n_vars: usize) -> ProblemBuilder {
        ProblemBuilder {
            n_vars,
            sense: Sense::Minimize,
            objective: PhasePoly::new(n_vars.min(63)),
            equalities: Vec::new(),
            inequalities: Vec::new(),
            name: String::new(),
            error: None,
        }
    }

    /// Number of binary variables.
    #[inline]
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Optimization direction.
    #[inline]
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// The objective as a quadratic pseudo-Boolean function.
    #[inline]
    pub fn objective(&self) -> &PhasePoly {
        &self.objective
    }

    /// The constraint system: equality rows `C x = c` plus any `≤` rows.
    #[inline]
    pub fn constraints(&self) -> &LinSystem {
        &self.constraints
    }

    /// `true` when the problem carries at least one first-class inequality
    /// row (solvers without native inequality support must reject these).
    #[inline]
    pub fn has_inequalities(&self) -> bool {
        self.constraints.has_inequalities()
    }

    /// Human-readable instance name (e.g. `"FLP 2F-1D seed=7"`).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Objective value of a packed assignment.
    pub fn evaluate(&self, bits: u64) -> f64 {
        self.objective.eval_bits(bits)
    }

    /// Does the assignment satisfy every constraint?
    pub fn is_feasible(&self, bits: u64) -> bool {
        self.constraints.is_satisfied_bits(bits)
    }

    /// Squared constraint violation `‖Cx − c‖²`.
    pub fn violation_sq(&self, bits: u64) -> f64 {
        self.constraints.penalty_bits(bits) as f64
    }

    /// Objective in *minimization convention*: negated for `Maximize`
    /// problems so every solver can uniformly minimize.
    pub fn cost(&self, bits: u64) -> f64 {
        match self.sense {
            Sense::Minimize => self.evaluate(bits),
            Sense::Maximize => -self.evaluate(bits),
        }
    }

    /// The minimization-convention objective as a diagonal Hamiltonian.
    pub fn cost_poly(&self) -> PhasePoly {
        let mut poly = PhasePoly::new(self.n_vars);
        let scale = match self.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        poly.add_scaled(&self.objective, scale);
        poly
    }

    /// The penalty-method Hamiltonian
    /// `cost(x) + λ·Σ_j (C_j x − c_j)²` expanded to QUBO form (the soft
    /// constraint encoding of penalty-based QAOA \[44\]).
    ///
    /// Only *equality* rows are expanded — a quadratic penalty for a `≤` row
    /// would need its own slack variables, which this soft encoding does not
    /// introduce. Penalty-family solvers reject problems where
    /// [`Problem::has_inequalities`] is `true`.
    pub fn penalty_poly(&self, lambda: f64) -> PhasePoly {
        let mut poly = self.cost_poly();
        for eq in self.constraints.eqs() {
            // (Σ c_i x_i − c)² = Σ c_i²x_i + 2Σ_{i<j} c_i c_j x_i x_j
            //                    − 2c Σ c_i x_i + c²   (x² = x)
            let c = eq.rhs as f64;
            poly.add_constant(lambda * c * c);
            for (a, &(i, ci)) in eq.terms.iter().enumerate() {
                let ci = ci as f64;
                poly.add_linear(i, lambda * (ci * ci - 2.0 * c * ci));
                for &(j, cj) in eq.terms.iter().skip(a + 1) {
                    poly.add_quadratic(i, j, lambda * 2.0 * ci * cj as f64);
                }
            }
        }
        poly
    }

    /// Up to `cap` feasible assignments.
    pub fn feasible_solutions(&self, cap: usize) -> Vec<u64> {
        if self.constraints.is_empty() && !self.constraints.has_inequalities() {
            let total = 1u64 << self.n_vars;
            return (0..total.min(cap as u64)).collect();
        }
        self.constraints.enumerate_binary_solutions(cap)
    }

    /// One feasible assignment (the Choco-Q initial state), if any exists.
    pub fn first_feasible(&self) -> Option<u64> {
        if self.constraints.is_empty() && !self.constraints.has_inequalities() {
            Some(0)
        } else {
            self.constraints.first_binary_solution()
        }
    }

    /// The per-basis-state cost table (minimization convention), used by the
    /// simulator for fast repeated diagonal evolution.
    pub fn cost_table(&self) -> Vec<f64> {
        self.cost_poly().values_table(1 << self.n_vars)
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{} vars, {} constraints, {:?}]",
            if self.name.is_empty() {
                "problem"
            } else {
                &self.name
            },
            self.n_vars,
            self.constraints.len() + self.constraints.ineqs().len(),
            self.sense
        )?;
        writeln!(f, "  objective: {}", self.objective)?;
        for eq in self.constraints.eqs() {
            writeln!(f, "  s.t. {eq}")?;
        }
        for le in self.constraints.ineqs() {
            writeln!(f, "  s.t. {} <= {}", le.lhs_display(), le.rhs)?;
        }
        Ok(())
    }
}

/// Incremental builder for [`Problem`]. See [`Problem::builder`].
#[derive(Clone, Debug)]
pub struct ProblemBuilder {
    n_vars: usize,
    sense: Sense,
    objective: PhasePoly,
    equalities: Vec<(Vec<(usize, i64)>, i64)>,
    inequalities: Vec<(Vec<(usize, i64)>, i64)>,
    name: String,
    error: Option<ProblemError>,
}

impl ProblemBuilder {
    /// Switches to maximization.
    pub fn maximize(mut self) -> Self {
        self.sense = Sense::Maximize;
        self
    }

    /// Switches to minimization (the default).
    pub fn minimize(mut self) -> Self {
        self.sense = Sense::Minimize;
        self
    }

    /// Adds a constant to the objective.
    pub fn constant(mut self, w: f64) -> Self {
        self.objective.add_constant(w);
        self
    }

    /// Adds `w · x_i` to the objective.
    pub fn linear(mut self, i: usize, w: f64) -> Self {
        if i < self.n_vars {
            self.objective.add_linear(i, w);
        } else if self.error.is_none() {
            self.error = Some(ProblemError::VariableOutOfRange {
                var: i,
                n_vars: self.n_vars,
            });
        }
        self
    }

    /// Adds `w · x_i · x_j` to the objective.
    pub fn quadratic(mut self, i: usize, j: usize, w: f64) -> Self {
        if i < self.n_vars && j < self.n_vars {
            self.objective.add_quadratic(i, j, w);
        } else if self.error.is_none() {
            let var = if i >= self.n_vars { i } else { j };
            self.error = Some(ProblemError::VariableOutOfRange {
                var,
                n_vars: self.n_vars,
            });
        }
        self
    }

    /// Adds an equality constraint `Σ coeff·x_var = rhs`.
    pub fn equality(mut self, terms: impl IntoIterator<Item = (usize, i64)>, rhs: i64) -> Self {
        self.equalities.push((terms.into_iter().collect(), rhs));
        self
    }

    /// Adds a first-class inequality constraint `Σ coeff·x_var ≤ rhs`.
    ///
    /// Unlike a manual binary-slack encoding, the row is kept in `≤` form all
    /// the way to the solver layer, where Choco-Q's generalized driver
    /// synthesizes a bounded slack register for it natively.
    pub fn less_equal(mut self, terms: impl IntoIterator<Item = (usize, i64)>, rhs: i64) -> Self {
        self.inequalities.push((terms.into_iter().collect(), rhs));
        self
    }

    /// Adds `Σ coeff·x_var ≥ rhs`, stored as the equivalent `≤` row with
    /// negated coefficients and right-hand side.
    pub fn greater_equal(
        mut self,
        terms: impl IntoIterator<Item = (usize, i64)>,
        rhs: i64,
    ) -> Self {
        let negated: Vec<(usize, i64)> = terms.into_iter().map(|(v, c)| (v, -c)).collect();
        self.inequalities.push((negated, -rhs));
        self
    }

    /// Sets the instance name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Finalizes the problem.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError`] for out-of-range variables or more than 63
    /// variables. (Feasibility is *not* checked here; solvers report
    /// [`ProblemError::Infeasible`] when relevant.)
    pub fn build(self) -> Result<Problem, ProblemError> {
        if self.n_vars > 63 {
            return Err(ProblemError::TooManyVariables(self.n_vars));
        }
        if let Some(err) = self.error {
            return Err(err);
        }
        let mut constraints = LinSystem::new(self.n_vars);
        for (terms, rhs) in self.equalities {
            for &(var, _) in &terms {
                if var >= self.n_vars {
                    return Err(ProblemError::VariableOutOfRange {
                        var,
                        n_vars: self.n_vars,
                    });
                }
            }
            constraints.push(LinEq::new(terms, rhs));
        }
        for (terms, rhs) in self.inequalities {
            for &(var, _) in &terms {
                if var >= self.n_vars {
                    return Err(ProblemError::VariableOutOfRange {
                        var,
                        n_vars: self.n_vars,
                    });
                }
            }
            constraints.push_le(LinEq::new(terms, rhs));
        }
        Ok(Problem {
            n_vars: self.n_vars,
            sense: self.sense,
            objective: self.objective,
            constraints,
            name: self.name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_problem() -> Problem {
        Problem::builder(4)
            .maximize()
            .linear(0, 1.0)
            .linear(1, 2.0)
            .linear(2, 3.0)
            .linear(3, 1.0)
            .equality([(0, 1), (2, -1)], 0)
            .equality([(0, 1), (1, 1), (3, 1)], 1)
            .name("paper example")
            .build()
            .expect("valid")
    }

    #[test]
    fn evaluate_and_feasibility() {
        let p = paper_problem();
        assert!(p.is_feasible(0b0101)); // {1,0,1,0}
        assert!(!p.is_feasible(0b0001)); // x0=1 but x2=0 violates x0-x2=0
        assert_eq!(p.evaluate(0b0101), 4.0);
        assert_eq!(p.cost(0b0101), -4.0); // maximization → negated
    }

    #[test]
    fn feasible_enumeration_matches_brute_force() {
        let p = paper_problem();
        let dfs: std::collections::BTreeSet<u64> = p.feasible_solutions(100).into_iter().collect();
        let brute: std::collections::BTreeSet<u64> =
            (0..16u64).filter(|&b| p.is_feasible(b)).collect();
        assert_eq!(dfs, brute);
        assert!(p.first_feasible().is_some());
    }

    #[test]
    fn penalty_poly_matches_direct_computation() {
        let p = paper_problem();
        let lambda = 10.0;
        let poly = p.penalty_poly(lambda);
        for bits in 0..16u64 {
            let direct = p.cost(bits) + lambda * p.violation_sq(bits);
            let via_poly = poly.eval_bits(bits);
            assert!(
                (direct - via_poly).abs() < 1e-9,
                "bits={bits:04b}: {direct} vs {via_poly}"
            );
        }
    }

    #[test]
    fn penalty_vanishes_on_feasible_points() {
        let p = paper_problem();
        let lam0 = p.penalty_poly(0.0);
        let lam9 = p.penalty_poly(9.0);
        for &bits in &p.feasible_solutions(100) {
            assert!(
                (lam0.eval_bits(bits) - lam9.eval_bits(bits)).abs() < 1e-9,
                "penalty must not shift feasible point {bits:b}"
            );
        }
    }

    #[test]
    fn cost_table_matches_cost() {
        let p = paper_problem();
        let table = p.cost_table();
        for bits in 0..16u64 {
            assert_eq!(table[bits as usize], p.cost(bits));
        }
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let err = Problem::builder(2).linear(5, 1.0).build().unwrap_err();
        assert_eq!(err, ProblemError::VariableOutOfRange { var: 5, n_vars: 2 });
        let err = Problem::builder(2)
            .equality([(3, 1)], 0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ProblemError::VariableOutOfRange { var: 3, .. }
        ));
    }

    #[test]
    fn builder_rejects_too_many_vars() {
        let err = Problem::builder(64).build().unwrap_err();
        assert_eq!(err, ProblemError::TooManyVariables(64));
    }

    #[test]
    fn unconstrained_problem_feasible_everywhere() {
        let p = Problem::builder(3).linear(0, 1.0).build().unwrap();
        assert_eq!(p.feasible_solutions(100).len(), 8);
        assert_eq!(p.first_feasible(), Some(0));
        assert!(p.is_feasible(0b111));
    }

    #[test]
    fn less_equal_rows_are_first_class() {
        // max x0 + x1 + x2  s.t.  2*x0 + x1 + 3*x2 ≤ 3
        let p = Problem::builder(3)
            .maximize()
            .linear(0, 1.0)
            .linear(1, 1.0)
            .linear(2, 1.0)
            .less_equal([(0, 2), (1, 1), (2, 3)], 3)
            .build()
            .unwrap();
        assert!(p.has_inequalities());
        assert!(p.is_feasible(0b011)); // 2+1 = 3 ≤ 3
        assert!(!p.is_feasible(0b101)); // 2+3 = 5 > 3
        let feas: std::collections::BTreeSet<u64> = p.feasible_solutions(100).into_iter().collect();
        let brute: std::collections::BTreeSet<u64> =
            (0..8u64).filter(|&b| p.is_feasible(b)).collect();
        assert_eq!(feas, brute);
        assert!(brute.contains(&p.first_feasible().unwrap()));
    }

    #[test]
    fn greater_equal_negates_row() {
        // x0 + x1 ≥ 1  ⟺  -x0 - x1 ≤ -1
        let p = Problem::builder(2)
            .greater_equal([(0, 1), (1, 1)], 1)
            .build()
            .unwrap();
        assert!(p.has_inequalities());
        assert!(!p.is_feasible(0b00));
        assert!(p.is_feasible(0b01));
        assert!(p.is_feasible(0b11));
        let row = &p.constraints().ineqs()[0];
        assert_eq!(row.terms, vec![(0, -1), (1, -1)]);
        assert_eq!(row.rhs, -1);
    }

    #[test]
    fn inequality_only_problem_does_not_claim_full_cube() {
        // x0 + x1 ≤ 0 admits only the all-zeros assignment.
        let p = Problem::builder(2)
            .less_equal([(0, 1), (1, 1)], 0)
            .build()
            .unwrap();
        assert_eq!(p.feasible_solutions(100), vec![0]);
        assert_eq!(p.first_feasible(), Some(0));
    }

    #[test]
    fn builder_rejects_out_of_range_inequality_var() {
        let err = Problem::builder(2)
            .less_equal([(4, 1)], 1)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ProblemError::VariableOutOfRange { var: 4, .. }
        ));
    }

    #[test]
    fn display_prints_inequality_rows() {
        let p = Problem::builder(3)
            .equality([(0, 1), (1, 1)], 1)
            .less_equal([(1, 2), (2, 1)], 2)
            .build()
            .unwrap();
        let s = format!("{p}");
        assert!(s.contains("2 constraints"), "display: {s}");
        assert!(s.contains("s.t. x0 + x1 = 1"), "display: {s}");
        assert!(s.contains("s.t. 2*x1 + x2 <= 2"), "display: {s}");
    }

    #[test]
    fn display_includes_name_and_constraints() {
        let p = paper_problem();
        let s = format!("{p}");
        assert!(s.contains("paper example"));
        assert!(s.contains("s.t."));
    }
}
