//! # choco-model
//!
//! The constrained binary optimization model (Eq. (1) of the Choco-Q paper),
//! plus everything needed to evaluate solvers on it:
//!
//! * [`Problem`] / [`ProblemBuilder`] — QUBO objective + integer linear
//!   equality constraints, penalty expansion, feasibility enumeration.
//! * [`solve_exact`] / [`BranchAndBound`] — exact classical solvers that
//!   provide the ground truth for success-rate measurements.
//! * [`Metrics`] — the paper's §V-A metrics: success rate, in-constraints
//!   rate, and the approximation ratio gap (Eq. (17)).
//! * [`Solver`] / [`SolveOutcome`] — the interface every QAOA variant in
//!   this workspace implements.
//!
//! ```
//! use choco_model::{solve_exact, Problem};
//!
//! let p = Problem::builder(4)
//!     .maximize()
//!     .linear(0, 1.0)
//!     .linear(1, 2.0)
//!     .linear(2, 3.0)
//!     .linear(3, 1.0)
//!     .equality([(0, 1), (2, -1)], 0)
//!     .equality([(0, 1), (1, 1), (3, 1)], 1)
//!     .build()?;
//! let opt = solve_exact(&p).expect("solvable");
//! assert_eq!(opt.value, 4.0); // x = {1,0,1,0}
//! # Ok::<(), choco_model::ProblemError>(())
//! ```

#![warn(missing_docs)]

mod classical;
mod metrics;
mod parser;
mod problem;
mod solver;

pub use classical::{
    solve_exact, solve_exact_capped, BnbStats, BranchAndBound, ClassicalError, Optimum,
    DEFAULT_ENUM_CAP,
};
pub use metrics::{Metrics, ARG_LAMBDA};
pub use parser::{parse_problem, ParseError};
pub use problem::{Problem, ProblemBuilder, ProblemError, Sense};
pub use solver::{CircuitStats, SolveOutcome, Solver, SolverError, TimingBreakdown};
