//! Variable elimination (§IV-C of the paper).
//!
//! The depth of the serialized commute driver is proportional to the total
//! number of non-zero entries across Δ. Eliminating the variable with the
//! most non-zeros shrinks every affected term: each assignment of the
//! eliminated variables yields a *smaller* sub-problem whose constraints
//! are `Σ_{i≠j} c_i x_i = c − c_j·x_j` — so lifted outcomes still satisfy
//! the original constraints exactly (the paper's §IV-C argument; enforced
//! by tests here).
//!
//! The cost is measurement overhead: `2^k` sub-circuits for `k` eliminated
//! variables.

use crate::driver::{CommuteDriver, DriverError};
use choco_mathkit::{LinEq, LinSystem};
use choco_model::{Problem, Sense};

/// One branch of the elimination: a fixed assignment of the eliminated
/// variables and the induced reduced problem.
#[derive(Clone, Debug)]
pub struct EliminationBranch {
    /// Assignment bits: bit `k` is the value of `plan.eliminated[k]`.
    pub assignment: u64,
    /// The reduced problem over the remaining variables.
    pub problem: Problem,
}

/// The full elimination plan.
#[derive(Clone, Debug)]
pub struct EliminationPlan {
    /// Eliminated variable indices (original numbering, elimination order).
    pub eliminated: Vec<usize>,
    /// Remaining variables: `kept[r]` is the original index of reduced
    /// variable `r`.
    pub kept: Vec<usize>,
    /// One branch per assignment of the eliminated variables.
    pub branches: Vec<EliminationBranch>,
}

impl EliminationPlan {
    /// Lifts a reduced-problem bitstring and a branch assignment back to
    /// the original variable space.
    pub fn lift(&self, branch_assignment: u64, reduced_bits: u64) -> u64 {
        let mut bits = 0u64;
        for (r, &orig) in self.kept.iter().enumerate() {
            if (reduced_bits >> r) & 1 == 1 {
                bits |= 1 << orig;
            }
        }
        for (k, &orig) in self.eliminated.iter().enumerate() {
            if (branch_assignment >> k) & 1 == 1 {
                bits |= 1 << orig;
            }
        }
        bits
    }
}

/// Builds an elimination plan removing `k` variables.
///
/// The variable choice is iterative, as in the paper: at each step the
/// driver Δ of the *current* (already reduced) constraint matrix is
/// computed and the variable with the most non-zero entries across Δ is
/// dropped. Since Δ depends only on `C` (not on the right-hand side), a
/// single choice sequence serves all `2^k` branches.
///
/// # Errors
///
/// Propagates [`DriverError`] when a reduced system has no ternary kernel
/// basis, and rejects `k > 0` on systems with first-class inequality rows
/// ([`DriverError::EliminationWithInequalities`]) — branch reduction only
/// rewrites equality rows, so eliminating through an inequality would
/// silently drop it.
pub fn plan_elimination(problem: &Problem, k: usize) -> Result<EliminationPlan, DriverError> {
    if k > 0 && problem.constraints().has_inequalities() {
        return Err(DriverError::EliminationWithInequalities {
            rows: problem.constraints().ineqs().len(),
        });
    }
    let n = problem.n_vars();
    let mut kept: Vec<usize> = (0..n).collect();
    let mut eliminated: Vec<usize> = Vec::with_capacity(k);
    // Current system over `kept` (original rhs; rhs offsets are
    // branch-specific and handled later).
    let mut current = problem.constraints().clone();

    for _ in 0..k.min(n.saturating_sub(1)) {
        let driver = CommuteDriver::build(&current)?;
        let counts = driver.nonzero_counts();
        let Some((local_idx, &best)) = counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
        else {
            break;
        };
        if best == 0 {
            break; // nothing left to gain
        }
        eliminated.push(kept.remove(local_idx));
        current = drop_variable(&current, local_idx);
    }

    let mut branches = Vec::with_capacity(1 << eliminated.len());
    for assignment in 0..(1u64 << eliminated.len()) {
        if let Some(problem) = reduce_problem(problem, &kept, &eliminated, assignment) {
            branches.push(EliminationBranch {
                assignment,
                problem,
            });
        }
    }
    Ok(EliminationPlan {
        eliminated,
        kept,
        branches,
    })
}

/// Removes column `idx` from a system (variables above shift down).
fn drop_variable(sys: &LinSystem, idx: usize) -> LinSystem {
    let mut out = LinSystem::new(sys.n_vars() - 1);
    for eq in sys.eqs() {
        let terms: Vec<(usize, i64)> = eq
            .terms
            .iter()
            .filter(|&&(v, _)| v != idx)
            .map(|&(v, c)| (if v > idx { v - 1 } else { v }, c))
            .collect();
        out.push(LinEq::new(terms, eq.rhs));
    }
    out
}

/// Builds the reduced problem for one assignment of the eliminated
/// variables; `None` when the branch is syntactically infeasible
/// (a constraint with no remaining variables and non-zero residual).
fn reduce_problem(
    problem: &Problem,
    kept: &[usize],
    eliminated: &[usize],
    assignment: u64,
) -> Option<Problem> {
    let value_of = |orig: usize| -> Option<u64> {
        eliminated
            .iter()
            .position(|&e| e == orig)
            .map(|k| (assignment >> k) & 1)
    };
    let reduced_of = |orig: usize| -> Option<usize> { kept.iter().position(|&v| v == orig) };

    let mut b = Problem::builder(kept.len()).name(format!(
        "{} | eliminated {:?} = {:0width$b}",
        problem.name(),
        eliminated,
        assignment,
        width = eliminated.len().max(1)
    ));
    b = match problem.sense() {
        Sense::Minimize => b.minimize(),
        Sense::Maximize => b.maximize(),
    };

    // Objective substitution.
    let obj = problem.objective();
    b = b.constant(obj.constant());
    for (orig, &w) in obj.linear().iter().enumerate() {
        if w == 0.0 {
            continue;
        }
        match (reduced_of(orig), value_of(orig)) {
            (Some(r), _) => b = b.linear(r, w),
            (None, Some(val)) => {
                if val == 1 {
                    b = b.constant(w);
                }
            }
            (None, None) => unreachable!("variable neither kept nor eliminated"),
        }
    }
    for &(i, j, w) in obj.quadratic() {
        if w == 0.0 {
            continue;
        }
        match (reduced_of(i), reduced_of(j)) {
            (Some(ri), Some(rj)) => b = b.quadratic(ri, rj, w),
            (Some(ri), None) => {
                if value_of(j) == Some(1) {
                    b = b.linear(ri, w);
                }
            }
            (None, Some(rj)) => {
                if value_of(i) == Some(1) {
                    b = b.linear(rj, w);
                }
            }
            (None, None) => {
                if value_of(i) == Some(1) && value_of(j) == Some(1) {
                    b = b.constant(w);
                }
            }
        }
    }

    // Constraint substitution: Σ_{i kept} c_i x_i = c − Σ_{j elim} c_j·val_j.
    for eq in problem.constraints().eqs() {
        let mut terms: Vec<(usize, i64)> = Vec::new();
        let mut rhs = eq.rhs;
        for &(orig, c) in &eq.terms {
            match (reduced_of(orig), value_of(orig)) {
                (Some(r), _) => terms.push((r, c)),
                (None, Some(val)) => rhs -= c * val as i64,
                (None, None) => unreachable!(),
            }
        }
        if terms.is_empty() {
            if rhs != 0 {
                return None; // contradictory branch
            }
            continue;
        }
        b = b.equality(terms, rhs);
    }

    // First-class inequality rows survive the reduction with the same
    // substitution (today only the identity k = 0 path reaches this —
    // `plan_elimination` rejects k > 0 with inequality rows present).
    for le in problem.constraints().ineqs() {
        let mut terms: Vec<(usize, i64)> = Vec::new();
        let mut rhs = le.rhs;
        for &(orig, c) in &le.terms {
            match (reduced_of(orig), value_of(orig)) {
                (Some(r), _) => terms.push((r, c)),
                (None, Some(val)) => rhs -= c * val as i64,
                (None, None) => unreachable!(),
            }
        }
        if terms.is_empty() {
            if rhs < 0 {
                return None; // contradictory branch
            }
            continue;
        }
        b = b.less_equal(terms, rhs);
    }

    b.build().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_problem() -> Problem {
        Problem::builder(4)
            .maximize()
            .linear(0, 1.0)
            .linear(1, 2.0)
            .linear(2, 3.0)
            .linear(3, 1.0)
            .equality([(0, 1), (2, -1)], 0)
            .equality([(0, 1), (1, 1), (3, 1)], 1)
            .build()
            .unwrap()
    }

    #[test]
    fn eliminates_the_most_shared_variable() {
        // Fig. 6: x1 (0-indexed) has the most non-zeros across Δ.
        let plan = plan_elimination(&paper_problem(), 1).unwrap();
        assert_eq!(plan.eliminated, vec![1]);
        assert_eq!(plan.kept, vec![0, 2, 3]);
        assert_eq!(plan.branches.len(), 2);
    }

    #[test]
    fn elimination_reduces_driver_nonzeros() {
        // Paper: non-zeros drop from 5 (3+2) to 3 after dropping x1.
        let p = paper_problem();
        let before = CommuteDriver::build(p.constraints())
            .unwrap()
            .total_nonzeros();
        let plan = plan_elimination(&p, 1).unwrap();
        let after = CommuteDriver::build(plan.branches[0].problem.constraints())
            .unwrap()
            .total_nonzeros();
        assert_eq!(before, 5);
        assert_eq!(after, 3);
    }

    #[test]
    fn lifted_solutions_satisfy_original_constraints() {
        let p = paper_problem();
        let plan = plan_elimination(&p, 2).unwrap();
        assert_eq!(plan.eliminated.len(), 2);
        for branch in &plan.branches {
            for reduced_bits in branch.problem.feasible_solutions(1000) {
                let full = plan.lift(branch.assignment, reduced_bits);
                assert!(
                    p.is_feasible(full),
                    "lifted {full:04b} violates the original constraints"
                );
            }
        }
    }

    #[test]
    fn union_of_branches_covers_the_full_feasible_set() {
        let p = paper_problem();
        let plan = plan_elimination(&p, 1).unwrap();
        let mut lifted: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for branch in &plan.branches {
            for reduced_bits in branch.problem.feasible_solutions(1000) {
                lifted.insert(plan.lift(branch.assignment, reduced_bits));
            }
        }
        let full: std::collections::BTreeSet<u64> =
            p.feasible_solutions(1000).into_iter().collect();
        assert_eq!(lifted, full);
    }

    #[test]
    fn objective_values_preserved_under_lifting() {
        let p = paper_problem();
        let plan = plan_elimination(&p, 1).unwrap();
        for branch in &plan.branches {
            for reduced_bits in branch.problem.feasible_solutions(1000) {
                let full = plan.lift(branch.assignment, reduced_bits);
                assert!(
                    (branch.problem.evaluate(reduced_bits) - p.evaluate(full)).abs() < 1e-9,
                    "objective mismatch on branch {:b}",
                    branch.assignment
                );
            }
        }
    }

    #[test]
    fn quadratic_objectives_substitute_correctly() {
        let p = Problem::builder(3)
            .minimize()
            .quadratic(0, 1, 2.0)
            .quadratic(1, 2, -3.0)
            .linear(1, 1.0)
            .equality([(0, 1), (1, 1), (2, 1)], 2)
            .build()
            .unwrap();
        let plan = plan_elimination(&p, 1).unwrap();
        for branch in &plan.branches {
            for reduced_bits in branch.problem.feasible_solutions(100) {
                let full = plan.lift(branch.assignment, reduced_bits);
                assert!((branch.problem.evaluate(reduced_bits) - p.evaluate(full)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn full_rank_constraints_leave_nothing_to_eliminate() {
        // x0 = 0 and x0 + x1 = 1 pin the unique point (0,1): the driver is
        // empty, so elimination has no variable worth dropping and stops.
        let p = Problem::builder(2)
            .equality([(0, 1)], 0)
            .equality([(0, 1), (1, 1)], 1)
            .build()
            .unwrap();
        let plan = plan_elimination(&p, 2).unwrap();
        assert!(plan.eliminated.is_empty());
        assert_eq!(plan.branches.len(), 1);
    }

    #[test]
    fn infeasible_branches_carry_no_feasible_points() {
        // x0 + x1 = 0 forces both to 0. Eliminating one variable leaves
        // the x=1 branch enumerably infeasible; the solver allocates it no
        // shots. The feasible union must still be exactly {00}.
        let p = Problem::builder(2)
            .equality([(0, 1), (1, 1)], 0)
            .build()
            .unwrap();
        let plan = plan_elimination(&p, 1).unwrap();
        assert_eq!(plan.eliminated.len(), 1);
        let mut lifted = Vec::new();
        for branch in &plan.branches {
            for bits in branch.problem.feasible_solutions(10) {
                lifted.push(plan.lift(branch.assignment, bits));
            }
        }
        assert_eq!(lifted, vec![0b00]);
    }

    #[test]
    fn zero_eliminations_is_identity_plan() {
        let p = paper_problem();
        let plan = plan_elimination(&p, 0).unwrap();
        assert!(plan.eliminated.is_empty());
        assert_eq!(plan.branches.len(), 1);
        assert_eq!(plan.kept, vec![0, 1, 2, 3]);
    }
}
