//! The Trotter-decomposition baseline (Figure 12 of the paper).
//!
//! The conventional route to implementing `e^{-iβH_d}`:
//!
//! 1. assemble the dense `2^n × 2^n` driver Hamiltonian (Eq. (5) by brute
//!    tensor accumulation — `O(4^n)` memory),
//! 2. exponentiate one Trotter slice `e^{-iβH_d/N}` (`O(8^n)` time),
//! 3. synthesize the slice into basic gates with exact two-level
//!    decomposition (`O(4^n)` two-level factors), and
//! 4. repeat the slice `N` times (error `O(1/N²)`).
//!
//! Every step is real, executable code (validated against the structured
//! simulator for small `n`); the point of the experiment is that its cost
//! explodes exactly as the paper's Figure 12 shows, while Choco-Q's
//! Lemma-2 path stays linear.

use crate::driver::CommuteDriver;
use choco_mathkit::{expm, CMatrix, Complex64};
use choco_qsim::{two_level_decompose, Circuit};
use std::time::{Duration, Instant};

/// Configuration for the Trotter baseline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrotterConfig {
    /// Number of Trotter slices `N` (the paper quotes `N > 100` for
    /// acceptable error; the default matches).
    pub slices: usize,
    /// Abort the decomposition when this much wall time has elapsed
    /// (checked between phases), reproducing the paper's "time out" rows.
    pub timeout: Duration,
}

impl Default for TrotterConfig {
    fn default() -> Self {
        TrotterConfig {
            slices: 128,
            timeout: Duration::from_secs(60),
        }
    }
}

/// What the Trotter decomposition cost.
#[derive(Clone, Debug)]
pub struct TrotterReport {
    /// Register size.
    pub n_qubits: usize,
    /// Time to assemble the dense Hamiltonian.
    pub build_time: Duration,
    /// Time to exponentiate one slice.
    pub expm_time: Duration,
    /// Time for the two-level synthesis of one slice.
    pub synth_time: Duration,
    /// Peak dense-matrix memory (bytes) across the three phases.
    pub memory_bytes: usize,
    /// Estimated basic gates for the full `N`-slice circuit.
    pub basic_gates: u128,
    /// Estimated depth for the full `N`-slice circuit.
    pub depth: u128,
    /// `true` if the timeout fired before completion (later fields are
    /// partial, mirroring the paper's "time out" entries).
    pub timed_out: bool,
}

impl TrotterReport {
    /// Total decomposition time across completed phases.
    pub fn total_time(&self) -> Duration {
        self.build_time + self.expm_time + self.synth_time
    }
}

/// Runs the Trotter + two-level-synthesis baseline for a driver over
/// `n_qubits` qubits and angle β.
pub fn trotter_decompose(
    driver: &CommuteDriver,
    beta: f64,
    config: &TrotterConfig,
) -> TrotterReport {
    let n = driver.n_vars();
    let dim = 1usize << n;
    let start = Instant::now();
    let mut report = TrotterReport {
        n_qubits: n,
        build_time: Duration::ZERO,
        expm_time: Duration::ZERO,
        synth_time: Duration::ZERO,
        memory_bytes: 0,
        basic_gates: 0,
        depth: 0,
        timed_out: false,
    };

    // Phase 1: dense H_d.
    let h = driver.hamiltonian_matrix();
    report.build_time = start.elapsed();
    report.memory_bytes = h.storage_bytes();
    if start.elapsed() > config.timeout {
        report.timed_out = true;
        return report;
    }

    // Phase 2: one slice e^{-i (β/N) H}.
    let t0 = Instant::now();
    let angle = beta / config.slices as f64;
    let slice = expm(&h.scale(Complex64::new(0.0, -angle)));
    report.expm_time = t0.elapsed();
    // H + slice + expm workspace ≈ 3 dense matrices live at peak.
    report.memory_bytes = 3 * dim * dim * std::mem::size_of::<Complex64>();
    if start.elapsed() > config.timeout {
        report.timed_out = true;
        return report;
    }

    // Phase 3: exact synthesis of the slice, then ×N repetition.
    let t0 = Instant::now();
    let decomposition = two_level_decompose(&slice);
    let cost = decomposition.cost_estimate(n);
    report.synth_time = t0.elapsed();
    report.basic_gates = cost.basic_gates * config.slices as u128;
    report.depth = cost.depth_estimate * config.slices as u128;
    report.timed_out = start.elapsed() > config.timeout;
    report
}

/// Builds the *exact* dense unitary `e^{-iβH_d}` (no Trotter error) — the
/// oracle the equivalence tests compare Choco-Q's serialized circuit
/// against.
pub fn exact_driver_unitary(driver: &CommuteDriver, beta: f64) -> CMatrix {
    let h = driver.hamiltonian_matrix();
    expm(&h.scale(Complex64::new(0.0, -beta)))
}

/// Emits one synthesized Trotter slice as a circuit (small `n` only; used
/// by tests to validate the whole pipeline end-to-end).
pub fn trotter_slice_circuit(driver: &CommuteDriver, beta: f64, slices: usize) -> Circuit {
    let h = driver.hamiltonian_matrix();
    let angle = beta / slices as f64;
    let slice = expm(&h.scale(Complex64::new(0.0, -angle)));
    two_level_decompose(&slice).emit_circuit(driver.n_vars())
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_mathkit::{LinEq, LinSystem};
    use choco_qsim::{circuit_unitary, StateVector, UBlock};

    fn small_driver() -> CommuteDriver {
        // x0 + x1 = 1 on 2 qubits → Δ = {(1,-1)}.
        let mut sys = LinSystem::new(2);
        sys.push(LinEq::new([(0, 1), (1, 1)], 1));
        CommuteDriver::build(&sys).unwrap()
    }

    #[test]
    fn exact_unitary_is_unitary_and_constrained() {
        let driver = small_driver();
        let u = exact_driver_unitary(&driver, 0.8);
        assert!(u.is_unitary(1e-9));
        // |00⟩ and |11⟩ are outside every Hc(u) block: untouched.
        assert!(u[(0, 0)].approx_eq(Complex64::ONE, 1e-9));
        assert!(u[(3, 3)].approx_eq(Complex64::ONE, 1e-9));
    }

    #[test]
    fn serialized_ublock_matches_exact_unitary_single_term() {
        // With |Δ| = 1 the serialization is exact (not just
        // constraint-preserving): e^{-iβHc(u)} directly.
        let driver = small_driver();
        let beta = 0.6;
        let u_exact = exact_driver_unitary(&driver, beta);
        let mut c = Circuit::new(2);
        c.ublock(UBlock::from_u_with_angle(&driver.terms()[0].u, beta));
        let u_circ = circuit_unitary(&c);
        assert!(u_circ.approx_eq(&u_exact, 1e-9));
    }

    #[test]
    fn trotter_slice_circuit_approximates_evolution() {
        // Apply the synthesized slice N times to the initial state and
        // compare with the exact evolution.
        let driver = small_driver();
        let beta = 0.5;
        let slices = 64;
        let slice_circuit = trotter_slice_circuit(&driver, beta, slices);
        let mut state = StateVector::from_bits(2, 0b01);
        for _ in 0..slices {
            state.apply_circuit(&slice_circuit);
        }
        let exact_u = exact_driver_unitary(&driver, beta);
        let col: Vec<Complex64> = (0..4).map(|r| exact_u[(r, 0b01)]).collect();
        let exact_state = StateVector::from_amplitudes(col);
        let fid = state.fidelity(&exact_state);
        assert!((fid - 1.0).abs() < 1e-6, "fidelity = {fid}");
    }

    #[test]
    fn report_costs_grow_with_qubits() {
        let mut prev_gates = 0u128;
        for n in 2..=4usize {
            // One summation constraint over n vars.
            let mut sys = LinSystem::new(n);
            sys.push(LinEq::new((0..n).map(|i| (i, 1i64)), 1));
            let driver = CommuteDriver::build(&sys).unwrap();
            let report = trotter_decompose(&driver, 0.7, &TrotterConfig::default());
            assert!(!report.timed_out);
            assert!(report.basic_gates > prev_gates, "n={n}");
            assert!(report.memory_bytes >= 3 * (1 << n) * (1 << n) * 16);
            prev_gates = report.basic_gates;
        }
    }

    #[test]
    fn timeout_fires_on_tiny_budget() {
        let mut sys = LinSystem::new(6);
        sys.push(LinEq::new((0..6).map(|i| (i, 1i64)), 2));
        let driver = CommuteDriver::build(&sys).unwrap();
        let report = trotter_decompose(
            &driver,
            0.7,
            &TrotterConfig {
                slices: 128,
                timeout: Duration::from_nanos(1),
            },
        );
        assert!(report.timed_out);
    }

    #[test]
    fn slices_multiply_gate_estimate() {
        let driver = small_driver();
        let r1 = trotter_decompose(
            &driver,
            0.7,
            &TrotterConfig {
                slices: 1,
                ..TrotterConfig::default()
            },
        );
        let r4 = trotter_decompose(
            &driver,
            0.7,
            &TrotterConfig {
                slices: 4,
                ..TrotterConfig::default()
            },
        );
        assert_eq!(r4.basic_gates, 4 * r1.basic_gates);
    }
}
