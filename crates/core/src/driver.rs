//! The commute driver Hamiltonian (Eq. (5) of the paper), generalized to
//! arbitrary integer linear constraint systems.
//!
//! For equality rows `C x = c`, the driver is `H_d = Σ_{u∈Δ} Hc(u)` with
//! `Hc(u) = σ^{u_1}⊗…⊗σ^{u_n} + h.c.` over solutions `u` of `C u = 0`.
//! Each term couples the basis patterns `|v⟩ ↔ |v̄⟩` on the support of `u`
//! (`v_i = (1+u_i)/2`), so it commutes with every constraint operator
//! `Ĉ = Σ_i c_i σ_z^i` — the Heisenberg argument of §III that keeps the
//! evolution inside the feasible subspace.
//!
//! First-class inequality rows `a_k·x ≤ b_k` are handled *inside* the
//! driver layer: each binding row gets a bounded [`SlackRegister`] holding
//! `s_k = b_k − a_k·x ∈ [0, b_k − min(a_k·x)]`, turning the row into the
//! extended equality `a_k·x + s_k = b_k`. Because every slack variable
//! appears in exactly one extended row, the extended kernel is
//! `{(u, −A_≤·u) : u ∈ ker(C_eq)}`: synthesis still reduces to the kernel
//! basis of the *equality* rows, with each term carrying the register
//! deltas `δ_k = a_k·u` ([`DriverTerm::deltas`], forward-coupling
//! convention). Terms with all-zero
//! deltas lower to plain [`UBlock`]s (byte-identical to the
//! equality-only pipeline); terms that move a register lower to gated
//! [`ShiftBlock`]s whose ineligible endpoints are left untouched.
//!
//! Δ is computed exactly in `choco-mathkit`: Gaussian/greedy ternary
//! extraction first (matching the paper's Fig. 3 example), with a
//! lattice-reduction fallback for systems whose kernel has no obvious
//! ternary basis ([`choco_mathkit::integer_kernel_basis`]).

use choco_mathkit::{integer_kernel_basis, CMatrix, KernelBasisMethod, LinEq, LinSystem};
use choco_qsim::{Gate, RegisterShift, ShiftBlock, UBlock};
use std::fmt;

/// A bounded slack register synthesized for one binding inequality row.
#[derive(Clone, Debug, PartialEq)]
pub struct SlackRegister {
    /// The `≤` row this register encodes (`row.lhs ≤ row.rhs`).
    pub row: LinEq,
    /// Index of the row among the system's inequality rows.
    pub index: usize,
    /// First qubit of the register (≥ the decision-variable count).
    pub offset: usize,
    /// Register width in qubits (`0` when the slack is pinned to zero).
    pub bits: usize,
    /// Largest admissible slack value (inclusive): `row.rhs − min(lhs)`.
    pub max_value: u64,
}

impl SlackRegister {
    /// The register's qubit indices (strictly increasing, little-endian).
    pub fn qubits(&self) -> Vec<usize> {
        (self.offset..self.offset + self.bits).collect()
    }

    /// The slack value this register holds for decision assignment `x`
    /// (`b − a·x`; negative iff `x` violates the row).
    pub fn slack_of(&self, x: u64) -> i64 {
        self.row.rhs - self.row.lhs_bits(x)
    }
}

/// One generalized driver term: a ternary pattern over the decision
/// variables plus the register delta it imparts on each slack register.
#[derive(Clone, Debug, PartialEq)]
pub struct DriverTerm {
    /// The ternary kernel vector `u` over the decision variables.
    pub u: Vec<i8>,
    /// Per-register value shift on the *forward* coupling `|v⟩ → |v̄⟩`
    /// (empty iff no registers). Crossing forward changes the decision
    /// bits by `−u` on the support, so preserving `a_k·x + s_k` needs
    /// `δ_k = +a_k·u`.
    pub deltas: Vec<i64>,
}

impl DriverTerm {
    /// Number of non-zero entries of `u`.
    pub fn support_size(&self) -> usize {
        self.u.iter().filter(|&&x| x != 0).count()
    }

    /// `true` when the term moves no register (lowers to a plain
    /// [`UBlock`]).
    pub fn is_plain(&self) -> bool {
        self.deltas.iter().all(|&d| d == 0)
    }
}

/// The commute driver: generalized terms plus the slack-register layout.
#[derive(Clone, Debug, PartialEq)]
pub struct CommuteDriver {
    n_vars: usize,
    registers: Vec<SlackRegister>,
    terms: Vec<DriverTerm>,
    method: KernelBasisMethod,
}

/// Errors from driver construction. Each message names the offending
/// constraint row and suggests concrete remedies, mirroring the admission
/// rejections of `choco-cli serve`.
#[derive(Clone, Debug, PartialEq)]
pub enum DriverError {
    /// The equality kernel has no `{-1,0,1}` basis, even after the
    /// lattice-reduction fallback shortened the vectors.
    NotTernary {
        /// The suspect equality row (largest coefficient magnitude).
        row: String,
        /// The shortest non-ternary basis vector the reduction produced.
        vector: Vec<i64>,
    },
    /// An inequality row is unsatisfiable over binary variables.
    InfeasibleInequality {
        /// The offending `≤` row.
        row: String,
        /// Minimum achievable left-hand side.
        min_lhs: i64,
    },
    /// The slack registers push the encoding past the 63-qubit packing.
    EncodingTooWide {
        /// The row whose register crossed the limit.
        row: String,
        /// Total encoded qubits required.
        needed: usize,
    },
    /// Variable elimination was requested on a system with first-class
    /// inequality rows.
    EliminationWithInequalities {
        /// Number of inequality rows in the system.
        rows: usize,
    },
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::NotTernary { row, vector } => write!(
                f,
                "constraint row `{row}` admits no ternary commute basis \
                 (shortest reduced kernel vector {vector:?}); remedies: \
                 rescale or split the row's large coefficients, eliminate a \
                 variable (eliminate >= 1), or fall back to a penalty-based \
                 solver for this instance"
            ),
            DriverError::InfeasibleInequality { row, min_lhs } => write!(
                f,
                "inequality row `{row}` can never be satisfied over binary \
                 variables (minimum left-hand side {min_lhs} already exceeds \
                 the bound); remedies: correct the right-hand side or drop \
                 the row"
            ),
            DriverError::EncodingTooWide { row, needed } => write!(
                f,
                "slack register for inequality row `{row}` pushes the \
                 encoding to {needed} qubits, past the 63-qubit packing \
                 limit; remedies: tighten the row's bound, or model the row \
                 with explicit binary slack variables sized to the instance"
            ),
            DriverError::EliminationWithInequalities { rows } => write!(
                f,
                "variable elimination is not supported on systems with \
                 first-class inequality rows ({rows} present); remedies: \
                 set eliminate = 0, or model the rows with explicit binary \
                 slack variables and equality constraints"
            ),
        }
    }
}

impl std::error::Error for DriverError {}

/// Plans the slack-register layout for a constraint system: one bounded
/// register per *binding* inequality row (rows satisfied by every binary
/// assignment need no slack and are skipped).
///
/// # Errors
///
/// [`DriverError::InfeasibleInequality`] for a row no assignment satisfies;
/// [`DriverError::EncodingTooWide`] when the registers cross 63 qubits.
pub fn slack_registers(constraints: &LinSystem) -> Result<Vec<SlackRegister>, DriverError> {
    let mut registers = Vec::new();
    let mut offset = constraints.n_vars();
    for (index, row) in constraints.ineqs().iter().enumerate() {
        let min_lhs = row.min_lhs();
        if min_lhs > row.rhs {
            return Err(DriverError::InfeasibleInequality {
                row: format!("{} <= {}", row.lhs_display(), row.rhs),
                min_lhs,
            });
        }
        if row.max_lhs() <= row.rhs {
            continue; // vacuous row: every assignment satisfies it
        }
        let max_value = (row.rhs - min_lhs) as u64;
        let bits = if max_value == 0 {
            0
        } else {
            (64 - max_value.leading_zeros()) as usize
        };
        if offset + bits > 63 {
            return Err(DriverError::EncodingTooWide {
                row: format!("{} <= {}", row.lhs_display(), row.rhs),
                needed: offset + bits,
            });
        }
        registers.push(SlackRegister {
            row: row.clone(),
            index,
            offset,
            bits,
            max_value,
        });
        offset += bits;
    }
    Ok(registers)
}

/// Total encoded qubits a Choco-Q circuit for `constraints` needs:
/// decision variables plus every slack register. This is the width the
/// size-admission checks must use for native-inequality instances.
pub fn encoded_qubits_for(constraints: &LinSystem) -> Result<usize, DriverError> {
    let registers = slack_registers(constraints)?;
    Ok(constraints.n_vars() + registers.iter().map(|r| r.bits).sum::<usize>())
}

impl CommuteDriver {
    /// Builds the driver for a constraint system from a kernel *basis*
    /// (the minimal Δ) of the equality rows, with register deltas for
    /// every binding inequality row.
    ///
    /// # Errors
    ///
    /// [`DriverError::NotTernary`] when the equality kernel cannot be
    /// spanned by `{-1,0,1}` vectors even after lattice reduction;
    /// [`DriverError::InfeasibleInequality`] /
    /// [`DriverError::EncodingTooWide`] from the register layout.
    pub fn build(constraints: &LinSystem) -> Result<Self, DriverError> {
        let registers = slack_registers(constraints)?;
        let basis = integer_kernel_basis(constraints);
        let mut terms = Vec::with_capacity(basis.vectors.len());
        for v in &basis.vectors {
            let Some(u) = ternary_of(v) else {
                return Err(not_ternary_error(constraints, &basis.vectors));
            };
            if let Some(term) = make_term(u, &registers) {
                terms.push(term);
            }
        }
        Ok(CommuteDriver {
            n_vars: constraints.n_vars(),
            registers,
            terms,
            method: basis.method,
        })
    }

    /// Builds an *extended* driver: the kernel basis plus every further
    /// canonical ternary kernel vector with support ≤ `max_support`, up to
    /// `cap` terms total, ordered by support size.
    ///
    /// The paper's Eq. (5) sums over *all* solutions of `C u = 0`; the
    /// extra terms are redundant for spanning the feasible graph but give
    /// the serialized single pass many more transfer paths, which makes
    /// the optimization landscape dramatically easier (and grows circuit
    /// depth, matching the paper's depth figures).
    ///
    /// # Errors
    ///
    /// As in [`CommuteDriver::build`].
    pub fn build_extended(
        constraints: &LinSystem,
        max_support: usize,
        cap: usize,
    ) -> Result<Self, DriverError> {
        let mut driver = Self::build(constraints)?;
        // Keep the term count proportional to the kernel dimension: every
        // term adds a variational parameter, and a derivative-free
        // optimizer over ≫3·dim parameters stalls. (The absolute `cap`
        // still bounds pathological cases.)
        let cap = cap.min(3 * driver.terms.len().max(1));
        if driver.terms.is_empty() || driver.terms.len() >= cap {
            return Ok(driver);
        }
        let mut extra: Vec<Vec<i8>> = constraints
            .enumerate_ternary_kernel(50_000)
            .into_iter()
            .filter(|u| {
                let support = u.iter().filter(|&&x| x != 0).count();
                support <= max_support && !driver.terms.iter().any(|t| &t.u == u)
            })
            .collect();
        extra.sort_by_key(|u| u.iter().filter(|&&x| x != 0).count());
        for u in extra {
            if driver.terms.len() >= cap {
                break;
            }
            if let Some(term) = make_term(u, &driver.registers) {
                driver.terms.push(term);
            }
        }
        Ok(driver)
    }

    /// Number of decision variables (excluding slack registers).
    #[inline]
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Total circuit width: decision variables plus slack registers.
    #[inline]
    pub fn encoded_qubits(&self) -> usize {
        self.n_vars + self.registers.iter().map(|r| r.bits).sum::<usize>()
    }

    /// The slack registers, one per binding inequality row.
    #[inline]
    pub fn registers(&self) -> &[SlackRegister] {
        &self.registers
    }

    /// `true` when the driver carries at least one slack register.
    #[inline]
    pub fn has_registers(&self) -> bool {
        !self.registers.is_empty()
    }

    /// The generalized driver terms (canonical sign).
    #[inline]
    pub fn terms(&self) -> &[DriverTerm] {
        &self.terms
    }

    /// How the basis was obtained.
    #[inline]
    pub fn method(&self) -> KernelBasisMethod {
        self.method
    }

    /// Number of driver terms `|Δ|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when the constraints pin down a unique point (empty driver).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Lifts a feasible decision assignment into the encoded space by
    /// loading every slack register with `s_k = b_k − a_k·x`.
    ///
    /// # Panics
    ///
    /// Debug-panics when `x` violates a register's row (the slack would
    /// leave `[0, max_value]`).
    pub fn encode_state(&self, x: u64) -> u64 {
        let mut bits = x;
        for r in &self.registers {
            let s = r.slack_of(x);
            debug_assert!(
                s >= 0 && s as u64 <= r.max_value,
                "assignment {x:b} violates row {}",
                r.row
            );
            bits |= (s as u64) << r.offset;
        }
        bits
    }

    /// Truncation mask selecting the decision variables out of an encoded
    /// basis index (drop the slack registers from sampled bitstrings).
    pub fn decision_mask(&self) -> u64 {
        if self.n_vars >= 64 {
            u64::MAX
        } else {
            (1u64 << self.n_vars) - 1
        }
    }

    /// The gated coupling of one term as a [`ShiftBlock`] (empty `shifts`
    /// for plain terms — byte-identical to the corresponding [`UBlock`]).
    pub fn shift_block_of(&self, term: &DriverTerm, angle: f64) -> ShiftBlock {
        let ub = UBlock::from_u(&term.u);
        let shifts = self
            .registers
            .iter()
            .zip(&term.deltas)
            .filter(|&(_, &d)| d != 0)
            .map(|(r, &d)| RegisterShift {
                qubits: r.qubits(),
                delta: d,
                max_value: r.max_value,
            })
            .collect();
        ShiftBlock {
            support: ub.support,
            pattern: ub.pattern,
            shifts,
            angle,
        }
    }

    /// One gate per term, all with angle β: a plain [`UBlock`] for terms
    /// that move no register, a gated [`ShiftBlock`] otherwise. (Lemma 1
    /// justifies the serialization.)
    pub fn gates(&self, beta: f64) -> Vec<Gate> {
        self.terms.iter().map(|t| self.gate_of(t, beta)).collect()
    }

    /// The gate of a single term (see [`CommuteDriver::gates`]).
    pub fn gate_of(&self, term: &DriverTerm, beta: f64) -> Gate {
        if term.is_plain() {
            Gate::UBlock(UBlock::from_u_with_angle(&term.u, beta))
        } else {
            Gate::ShiftBlock(self.shift_block_of(term, beta))
        }
    }

    /// Per-variable count of non-zero entries across Δ — the quantity that
    /// drives circuit depth (§IV-C) and guides variable elimination.
    pub fn nonzero_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_vars];
        for t in &self.terms {
            for (i, &ui) in t.u.iter().enumerate() {
                if ui != 0 {
                    counts[i] += 1;
                }
            }
        }
        counts
    }

    /// Total non-zeros over all terms (the depth proxy of Fig. 6).
    pub fn total_nonzeros(&self) -> usize {
        self.nonzero_counts().iter().sum()
    }

    /// The serialized driver as one `UBlock` per term, all with angle β.
    ///
    /// # Panics
    ///
    /// Panics when the driver carries slack registers — those terms need
    /// gated couplings; use [`CommuteDriver::gates`] instead.
    pub fn ublocks(&self, beta: f64) -> Vec<UBlock> {
        assert!(
            self.registers.is_empty(),
            "ublocks() requires an equality-only driver; use gates()"
        );
        self.terms
            .iter()
            .map(|t| UBlock::from_u_with_angle(&t.u, beta))
            .collect()
    }

    /// Reorders Δ so that a *single* serialized pass starting from the
    /// encoded basis state `initial` spreads amplitude as far as possible.
    ///
    /// Each block only acts on states whose support bits match `v` or `v̄`
    /// *and* whose registers stay in range; a block scheduled before any
    /// amplitude reaches its subspace is inert. This greedy schedule
    /// repeatedly picks a term that connects the currently-reachable set
    /// to new feasible states — the single-pass analogue of breadth-first
    /// search over the feasible graph. Terms that never connect anything
    /// are appended at the end (they still matter for layers ≥ 2).
    pub fn ordered_terms(&self, initial: u64) -> Vec<DriverTerm> {
        use std::collections::HashSet;
        let mut reachable: HashSet<u64> = HashSet::from([initial]);
        let mut remaining: Vec<DriverTerm> = self.terms.clone();
        let mut ordered: Vec<DriverTerm> = Vec::with_capacity(self.terms.len());
        let partner = |block: &ShiftBlock, x: u64| -> Option<u64> {
            let src = block.source_of(x)?;
            if src == x {
                block.forward(x)
            } else {
                Some(src)
            }
        };
        while !remaining.is_empty() {
            let mut picked = None;
            'search: for (idx, t) in remaining.iter().enumerate() {
                let block = self.shift_block_of(t, 0.0);
                for &x in &reachable {
                    if let Some(j) = partner(&block, x) {
                        if !reachable.contains(&j) {
                            picked = Some(idx);
                            break 'search;
                        }
                    }
                }
            }
            let Some(idx) = picked else {
                // Nothing connects: append the rest in original order.
                ordered.append(&mut remaining);
                break;
            };
            let t = remaining.remove(idx);
            let block = self.shift_block_of(&t, 0.0);
            // Applying the block once maps every matching reachable state.
            let additions: Vec<u64> = reachable
                .iter()
                .filter_map(|&x| partner(&block, x))
                .collect();
            reachable.extend(additions);
            ordered.push(t);
        }
        ordered
    }

    /// [`CommuteDriver::gates`] in the reachability order of
    /// [`CommuteDriver::ordered_terms`].
    pub fn gates_ordered(&self, beta: f64, initial: u64) -> Vec<Gate> {
        self.ordered_terms(initial)
            .iter()
            .map(|t| self.gate_of(t, beta))
            .collect()
    }

    /// [`CommuteDriver::ublocks`] in the reachability order of
    /// [`CommuteDriver::ordered_terms`] (equality-only drivers).
    pub fn ublocks_ordered(&self, beta: f64, initial: u64) -> Vec<UBlock> {
        assert!(
            self.registers.is_empty(),
            "ublocks_ordered() requires an equality-only driver; use gates_ordered()"
        );
        self.ordered_terms(initial)
            .iter()
            .map(|t| UBlock::from_u_with_angle(&t.u, beta))
            .collect()
    }

    /// Dense matrix of one plain term `Hc(u)` over `n_vars` qubits
    /// (test/baseline use; exponential).
    pub fn term_matrix(u: &[i8]) -> CMatrix {
        let n = u.len();
        let dim = 1usize << n;
        let mut v_mask = 0u64;
        let mut full_mask = 0u64;
        for (i, &ui) in u.iter().enumerate() {
            if ui != 0 {
                full_mask |= 1 << i;
                if ui > 0 {
                    v_mask |= 1 << i;
                }
            }
        }
        let mut m = CMatrix::zeros(dim, dim);
        for row in 0..dim as u64 {
            if row & full_mask == v_mask {
                let col = row ^ full_mask;
                m[(row as usize, col as usize)] = choco_mathkit::Complex64::ONE;
                m[(col as usize, row as usize)] = choco_mathkit::Complex64::ONE;
            }
        }
        m
    }

    /// Dense matrix of one generalized term over the *encoded* space
    /// (decision variables + registers): `|src⟩⟨tgt| + h.c.` for every
    /// eligible pair, zero rows elsewhere (test use; exponential).
    pub fn term_matrix_encoded(&self, term: &DriverTerm) -> CMatrix {
        let block = self.shift_block_of(term, 0.0);
        let dim = 1usize << self.encoded_qubits();
        let v_abs = block.pattern_abs();
        let full = block.full_mask();
        let mut m = CMatrix::zeros(dim, dim);
        for i in 0..dim as u64 {
            if i & full == v_abs {
                if let Some(j) = block.forward(i) {
                    m[(i as usize, j as usize)] = choco_mathkit::Complex64::ONE;
                    m[(j as usize, i as usize)] = choco_mathkit::Complex64::ONE;
                }
            }
        }
        m
    }

    /// Dense `H_d = Σ_u Hc(u)` over the decision variables (equality-only
    /// drivers; test/baseline use; exponential in `n_vars`).
    pub fn hamiltonian_matrix(&self) -> CMatrix {
        assert!(
            self.registers.is_empty(),
            "hamiltonian_matrix() requires an equality-only driver"
        );
        let dim = 1usize << self.n_vars;
        let mut h = CMatrix::zeros(dim, dim);
        for t in &self.terms {
            h = &h + &Self::term_matrix(&t.u);
        }
        h
    }
}

/// Converts an integer kernel vector to ternary, or `None` if any entry
/// falls outside `{-1, 0, 1}`.
fn ternary_of(v: &[i64]) -> Option<Vec<i8>> {
    v.iter()
        .map(|&x| match x {
            -1..=1 => Some(x as i8),
            _ => None,
        })
        .collect()
}

/// Builds the [`DriverError::NotTernary`] diagnosis: the suspect equality
/// row (largest coefficient magnitude — outsized coefficients are what
/// breaks ternary spanning) and the shortest non-ternary basis vector.
fn not_ternary_error(constraints: &LinSystem, vectors: &[Vec<i64>]) -> DriverError {
    let row = constraints
        .eqs()
        .iter()
        .max_by_key(|eq| eq.terms.iter().map(|&(_, c)| c.abs()).max().unwrap_or(0))
        .map(|eq| eq.to_string())
        .unwrap_or_else(|| "<empty system>".to_string());
    let vector = vectors
        .iter()
        .filter(|v| ternary_of(v).is_none())
        .min_by_key(|v| v.iter().map(|&x| x * x).sum::<i64>())
        .cloned()
        .unwrap_or_default();
    DriverError::NotTernary { row, vector }
}

/// Attaches register deltas to a ternary kernel vector; `None` when some
/// delta exceeds its register's full range (the term could never couple
/// any encoded state — keeping it would only burn a variational
/// parameter on an identity gate).
fn make_term(u: Vec<i8>, registers: &[SlackRegister]) -> Option<DriverTerm> {
    let deltas: Vec<i64> = registers
        .iter()
        .map(|r| {
            r.row
                .terms
                .iter()
                .map(|&(v, c)| c * u[v] as i64)
                .sum::<i64>()
        })
        .collect();
    if deltas
        .iter()
        .zip(registers)
        .any(|(&d, r)| d.unsigned_abs() > r.max_value)
    {
        return None;
    }
    Some(DriverTerm { u, deltas })
}

/// Dense matrix of the constraint operator `Ĉ = Σ_i c_i σ_z^i` of one
/// equation (Eq. (3)); diagonal, used by the commutation tests.
pub fn constraint_operator_matrix(coeffs: &[(usize, i64)], n_vars: usize) -> CMatrix {
    let dim = 1usize << n_vars;
    let mut m = CMatrix::zeros(dim, dim);
    for idx in 0..dim as u64 {
        // σ_z |0⟩ = +|0⟩, σ_z |1⟩ = −|1⟩.
        let mut val = 0.0;
        for &(var, c) in coeffs {
            let bit = (idx >> var) & 1;
            val += c as f64 * if bit == 0 { 1.0 } else { -1.0 };
        }
        m[(idx as usize, idx as usize)] = choco_mathkit::c64(val, 0.0);
    }
    m
}

/// Dense diagonal operator of an *extended* inequality row over the
/// encoded space: `D|x,s⟩ = (a·x + s)|x,s⟩` for the register of `reg` —
/// the operator every generalized term must commute with (test use).
pub fn extended_row_operator_matrix(reg: &SlackRegister, encoded_qubits: usize) -> CMatrix {
    let dim = 1usize << encoded_qubits;
    let mut m = CMatrix::zeros(dim, dim);
    for idx in 0..dim as u64 {
        let x = idx; // decision bits read in place; register bits masked below
        let mut lhs = reg.row.lhs_bits(x) as f64;
        for (k, q) in reg.qubits().into_iter().enumerate() {
            lhs += (((idx >> q) & 1) << k) as f64;
        }
        m[(idx as usize, idx as usize)] = choco_mathkit::c64(lhs, 0.0);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_system() -> LinSystem {
        let mut sys = LinSystem::new(4);
        sys.push(LinEq::new([(0, 1), (2, -1)], 0));
        sys.push(LinEq::new([(0, 1), (1, 1), (3, 1)], 1));
        sys
    }

    #[test]
    fn driver_matches_paper_delta() {
        let driver = CommuteDriver::build(&paper_system()).unwrap();
        assert_eq!(driver.len(), 2);
        assert_eq!(driver.terms()[0].u, vec![1, -1, 1, 0]);
        assert_eq!(driver.terms()[1].u, vec![0, 1, 0, -1]);
        assert!(driver.terms().iter().all(DriverTerm::is_plain));
        assert_eq!(driver.method(), KernelBasisMethod::Gaussian);
        assert!(!driver.has_registers());
        assert_eq!(driver.encoded_qubits(), 4);
    }

    #[test]
    fn every_term_commutes_with_every_constraint_operator() {
        // The foundation of the whole paper: [Hc(u), Ĉ] = 0.
        let sys = paper_system();
        let driver = CommuteDriver::build(&sys).unwrap();
        for t in driver.terms() {
            let hc = CommuteDriver::term_matrix(&t.u);
            for eq in sys.eqs() {
                let c_op = constraint_operator_matrix(&eq.terms, 4);
                let comm = hc.commutator(&c_op);
                assert!(
                    comm.frobenius_norm() < 1e-12,
                    "term {:?} does not commute with {eq}",
                    t.u
                );
            }
        }
    }

    #[test]
    fn full_driver_commutes_too() {
        let sys = paper_system();
        let driver = CommuteDriver::build(&sys).unwrap();
        let hd = driver.hamiltonian_matrix();
        assert!(hd.is_hermitian(1e-12));
        for eq in sys.eqs() {
            let c_op = constraint_operator_matrix(&eq.terms, 4);
            assert!(hd.commutator(&c_op).frobenius_norm() < 1e-12);
        }
    }

    #[test]
    fn a_noncommuting_operator_is_detected() {
        // Sanity check of the test oracle itself: a single σ⁺-like flip on
        // one qubit does NOT commute with x0's constraint operator.
        let not_in_kernel = CommuteDriver::term_matrix(&[1, 0, 0, 0]);
        let c_op = constraint_operator_matrix(&[(0, 1), (2, -1)], 4);
        assert!(not_in_kernel.commutator(&c_op).frobenius_norm() > 0.1);
    }

    #[test]
    fn nonzero_counts_match_paper_example() {
        // u1 = (1,-1,1,0), u2 = (0,1,0,-1): x1 appears in both (count 2) —
        // the variable Fig. 6 eliminates.
        let driver = CommuteDriver::build(&paper_system()).unwrap();
        assert_eq!(driver.nonzero_counts(), vec![1, 2, 1, 1]);
        assert_eq!(driver.total_nonzeros(), 5);
    }

    #[test]
    fn ublocks_carry_angle_and_pattern() {
        let driver = CommuteDriver::build(&paper_system()).unwrap();
        let blocks = driver.ublocks(0.7);
        assert_eq!(blocks.len(), 2);
        assert!(blocks.iter().all(|b| b.angle == 0.7));
        assert_eq!(blocks[0].support, vec![0, 1, 2]);
    }

    #[test]
    fn empty_driver_for_full_rank_constraints() {
        let mut sys = LinSystem::new(2);
        sys.push(LinEq::new([(0, 1)], 1));
        sys.push(LinEq::new([(1, 1)], 0));
        let driver = CommuteDriver::build(&sys).unwrap();
        assert!(driver.is_empty());
        assert_eq!(driver.total_nonzeros(), 0);
    }

    #[test]
    fn unconstrained_driver_is_all_single_flips() {
        let sys = LinSystem::new(3);
        let driver = CommuteDriver::build(&sys).unwrap();
        assert_eq!(driver.len(), 3);
        // Hc(e_i) = X_i: the driver degenerates to the transverse field.
        for (i, t) in driver.terms().iter().enumerate() {
            assert_eq!(t.support_size(), 1);
            assert_eq!(t.u[i], 1);
        }
    }
}

#[cfg(test)]
mod inequality_tests {
    use super::*;

    /// One knapsack-style row: x0 + 2 x1 + x2 ≤ 2 over 3 vars.
    fn knapsack_row_system() -> LinSystem {
        let mut sys = LinSystem::new(3);
        sys.push_le(LinEq::new([(0, 1), (1, 2), (2, 1)], 2));
        sys
    }

    #[test]
    fn slack_register_layout_matches_row_range() {
        let sys = knapsack_row_system();
        let regs = slack_registers(&sys).unwrap();
        assert_eq!(regs.len(), 1);
        let r = &regs[0];
        assert_eq!(r.offset, 3);
        assert_eq!(r.max_value, 2); // s ∈ [0, 2 − 0]
        assert_eq!(r.bits, 2);
        assert_eq!(encoded_qubits_for(&sys).unwrap(), 5);
    }

    #[test]
    fn vacuous_rows_get_no_register() {
        let mut sys = LinSystem::new(2);
        sys.push_le(LinEq::new([(0, 1), (1, 1)], 5)); // max lhs 2 ≤ 5
        assert!(slack_registers(&sys).unwrap().is_empty());
        assert_eq!(encoded_qubits_for(&sys).unwrap(), 2);
    }

    #[test]
    fn infeasible_row_is_rejected_with_named_row() {
        let mut sys = LinSystem::new(2);
        sys.push_le(LinEq::new([(0, 1), (1, 1)], -1));
        let err = slack_registers(&sys).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("x0 + x1 <= -1"), "message: {msg}");
        assert!(msg.contains("remedies"), "message: {msg}");
    }

    #[test]
    fn driver_terms_carry_register_deltas() {
        // No equality rows: Δ = unit vectors e_i; forward drops x_i
        // (1 → 0), so the slack grows back by a_i: δ = +a_i.
        let sys = knapsack_row_system();
        let driver = CommuteDriver::build(&sys).unwrap();
        assert!(driver.has_registers());
        assert_eq!(driver.len(), 3);
        assert_eq!(driver.terms()[0].deltas, vec![1]);
        assert_eq!(driver.terms()[1].deltas, vec![2]);
        assert_eq!(driver.terms()[2].deltas, vec![1]);
        assert!(driver.terms().iter().all(|t| !t.is_plain()));
    }

    #[test]
    fn oversized_deltas_drop_the_term() {
        // x0 + 5 x1 ≤ 1: slack range [0,1], x1's δ = −5 can never fit.
        let mut sys = LinSystem::new(2);
        sys.push_le(LinEq::new([(0, 1), (1, 5)], 1));
        let driver = CommuteDriver::build(&sys).unwrap();
        assert_eq!(driver.len(), 1, "x1's term must be dropped");
        assert_eq!(driver.terms()[0].u, vec![1, 0]);
    }

    #[test]
    fn encode_state_loads_slack() {
        let sys = knapsack_row_system();
        let driver = CommuteDriver::build(&sys).unwrap();
        // x = 000 → s = 2 → encoded 10_000.
        assert_eq!(driver.encode_state(0b000), 0b10_000);
        // x = 101 (x0, x2) → lhs 2 → s = 0 → encoded 00_101.
        assert_eq!(driver.encode_state(0b101), 0b00_101);
        // x = 010 (x1) → lhs 2 → s = 0.
        assert_eq!(driver.encode_state(0b010), 0b00_010);
        assert_eq!(driver.decision_mask(), 0b111);
    }

    #[test]
    fn mixed_system_kernel_comes_from_equalities_only() {
        // x0 + x1 + x2 = 2 (equality) and 2 x0 + x1 ≤ 2 (inequality):
        // Δ = ternary kernel of the equality row, deltas from the ≤ row.
        let mut sys = LinSystem::new(3);
        sys.push(LinEq::new([(0, 1), (1, 1), (2, 1)], 2));
        sys.push_le(LinEq::new([(0, 2), (1, 1)], 2));
        let driver = CommuteDriver::build(&sys).unwrap();
        assert!(driver.len() >= 2);
        for t in driver.terms() {
            // In the equality kernel…
            let dot: i64 = [1i64, 1, 1]
                .iter()
                .zip(&t.u)
                .map(|(&c, &u)| c * u as i64)
                .sum();
            assert_eq!(dot, 0, "{:?} not in the equality kernel", t.u);
            // …and the delta tracks a·u of the ≤ row.
            let a_dot: i64 = 2 * t.u[0] as i64 + t.u[1] as i64;
            assert_eq!(t.deltas, vec![a_dot]);
        }
    }

    #[test]
    fn generalized_terms_commute_with_extended_row_operator() {
        // Heisenberg check in the encoded space: every gated coupling
        // preserves a·x + s, so it commutes with the extended diagonal.
        let sys = knapsack_row_system();
        let driver = CommuteDriver::build(&sys).unwrap();
        let enc = driver.encoded_qubits();
        for t in driver.terms() {
            let hc = driver.term_matrix_encoded(t);
            for reg in driver.registers() {
                let d_op = extended_row_operator_matrix(reg, enc);
                assert!(
                    hc.commutator(&d_op).frobenius_norm() < 1e-12,
                    "term {:?} moves a·x + s",
                    t.u
                );
            }
        }
    }

    #[test]
    fn ordered_terms_respects_register_gating() {
        // From encoded initial (x=000, s=2), every unit-flip term is
        // applicable; the BFS must connect the whole feasible set
        // {x : x0 + 2 x1 + x2 ≤ 2} and only that set.
        let sys = knapsack_row_system();
        let driver = CommuteDriver::build(&sys).unwrap();
        let initial = driver.encode_state(0);
        let ordered = driver.ordered_terms(initial);
        assert_eq!(ordered.len(), driver.len());
        // Replay the closure.
        let mut reach = std::collections::HashSet::from([initial]);
        for _pass in 0..driver.len() {
            for t in &ordered {
                let block = driver.shift_block_of(t, 0.0);
                let adds: Vec<u64> = reach
                    .iter()
                    .filter_map(|&x| {
                        let src = block.source_of(x)?;
                        if src == x {
                            block.forward(x)
                        } else {
                            Some(src)
                        }
                    })
                    .collect();
                reach.extend(adds);
            }
        }
        let feasible: std::collections::HashSet<u64> = sys
            .enumerate_binary_solutions(100)
            .into_iter()
            .map(|x| driver.encode_state(x))
            .collect();
        assert_eq!(
            reach, feasible,
            "closure must be exactly the encoded feasible set"
        );
    }

    #[test]
    fn plain_terms_emit_ublocks_and_shifted_terms_emit_shiftblocks() {
        let mut sys = LinSystem::new(3);
        sys.push(LinEq::new([(0, 1), (1, -1)], 0)); // x0 = x1
        sys.push_le(LinEq::new([(2, 1)], 0)); // x2 ≤ 0 (slack pinned to 0)
        let driver = CommuteDriver::build(&sys).unwrap();
        // x2 ≤ 0 has max_value 0 → zero-width register; the (x0,x1) swap
        // term has δ = 0 and stays a plain UBlock.
        for g in driver.gates(0.4) {
            match g {
                Gate::UBlock(b) => assert_eq!(b.angle, 0.4),
                other => panic!("expected UBlock, got {other}"),
            }
        }
    }
}
