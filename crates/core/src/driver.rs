//! The commute driver Hamiltonian (Eq. (5) of the paper).
//!
//! For the constraint system `C x = c`, the driver is
//! `H_d = Σ_{u∈Δ} Hc(u)` with `Hc(u) = σ^{u_1}⊗…⊗σ^{u_n} + h.c.` over the
//! ternary solutions `u` of `C u = 0`. Each term couples the basis patterns
//! `|v⟩ ↔ |v̄⟩` on the support of `u` (`v_i = (1+u_i)/2`), so it commutes
//! with every constraint operator `Ĉ = Σ_i c_i σ_z^i` — the Heisenberg
//! argument of §III that keeps the evolution inside the feasible subspace.
//!
//! Δ is a `{-1,0,1}` *basis* of the kernel of `C` (computed exactly in
//! `choco-mathkit`), matching the paper's Fig. 3 example.

use choco_mathkit::{ternary_kernel_basis, CMatrix, KernelBasisMethod, LinSystem};
use choco_qsim::UBlock;
use std::fmt;

/// The commute driver: one ternary vector per term.
#[derive(Clone, Debug, PartialEq)]
pub struct CommuteDriver {
    n_vars: usize,
    terms: Vec<Vec<i8>>,
    method: KernelBasisMethod,
}

/// Errors from driver construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DriverError {
    /// No `{-1,0,1}` spanning set of the constraint kernel exists.
    NoTernaryBasis(String),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::NoTernaryBasis(msg) => {
                write!(f, "no ternary kernel basis: {msg}")
            }
        }
    }
}

impl std::error::Error for DriverError {}

impl CommuteDriver {
    /// Builds the driver for a constraint system from a kernel *basis*
    /// (the minimal Δ).
    ///
    /// # Errors
    ///
    /// [`DriverError::NoTernaryBasis`] when the kernel cannot be spanned by
    /// `{-1,0,1}` vectors (large-coefficient constraint matrices).
    pub fn build(constraints: &LinSystem) -> Result<Self, DriverError> {
        let basis = ternary_kernel_basis(constraints)
            .map_err(|e| DriverError::NoTernaryBasis(e.to_string()))?;
        Ok(CommuteDriver {
            n_vars: constraints.n_vars(),
            terms: basis.vectors,
            method: basis.method,
        })
    }

    /// Builds an *extended* driver: the kernel basis plus every further
    /// canonical ternary kernel vector with support ≤ `max_support`, up to
    /// `cap` terms total, ordered by support size.
    ///
    /// The paper's Eq. (5) sums over *all* solutions of `C u = 0`; the
    /// extra terms are redundant for spanning the feasible graph but give
    /// the serialized single pass many more transfer paths, which makes
    /// the optimization landscape dramatically easier (and grows circuit
    /// depth, matching the paper's depth figures).
    ///
    /// # Errors
    ///
    /// [`DriverError::NoTernaryBasis`] as in [`CommuteDriver::build`].
    pub fn build_extended(
        constraints: &LinSystem,
        max_support: usize,
        cap: usize,
    ) -> Result<Self, DriverError> {
        let mut driver = Self::build(constraints)?;
        // Keep the term count proportional to the kernel dimension: every
        // term adds a variational parameter, and a derivative-free
        // optimizer over ≫3·dim parameters stalls. (The absolute `cap`
        // still bounds pathological cases.)
        let cap = cap.min(3 * driver.terms.len().max(1));
        if driver.terms.is_empty() || driver.terms.len() >= cap {
            return Ok(driver);
        }
        let mut extra: Vec<Vec<i8>> = constraints
            .enumerate_ternary_kernel(50_000)
            .into_iter()
            .filter(|u| {
                let support = u.iter().filter(|&&x| x != 0).count();
                support <= max_support && !driver.terms.contains(u)
            })
            .collect();
        extra.sort_by_key(|u| u.iter().filter(|&&x| x != 0).count());
        for u in extra {
            if driver.terms.len() >= cap {
                break;
            }
            driver.terms.push(u);
        }
        Ok(driver)
    }

    /// Number of problem variables.
    #[inline]
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// The ternary vectors `u ∈ Δ` (canonical sign).
    #[inline]
    pub fn terms(&self) -> &[Vec<i8>] {
        &self.terms
    }

    /// How the basis was obtained.
    #[inline]
    pub fn method(&self) -> KernelBasisMethod {
        self.method
    }

    /// Number of driver terms `|Δ|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when the constraints pin down a unique point (empty driver).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Per-variable count of non-zero entries across Δ — the quantity that
    /// drives circuit depth (§IV-C) and guides variable elimination.
    pub fn nonzero_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_vars];
        for u in &self.terms {
            for (i, &ui) in u.iter().enumerate() {
                if ui != 0 {
                    counts[i] += 1;
                }
            }
        }
        counts
    }

    /// Total non-zeros over all terms (the depth proxy of Fig. 6).
    pub fn total_nonzeros(&self) -> usize {
        self.nonzero_counts().iter().sum()
    }

    /// The serialized driver as one `UBlock` per term, all with angle β
    /// (Lemma 1 justifies the serialization).
    pub fn ublocks(&self, beta: f64) -> Vec<UBlock> {
        self.terms
            .iter()
            .map(|u| UBlock::from_u_with_angle(u, beta))
            .collect()
    }

    /// Reorders Δ so that a *single* serialized pass starting from the
    /// basis state `initial` spreads amplitude as far as possible.
    ///
    /// Each block `e^{-iβHc(u)}` only acts on states whose support bits
    /// match `v` or `v̄`; a block scheduled before any amplitude reaches its
    /// subspace is inert. This greedy schedule repeatedly picks a term that
    /// connects the currently-reachable set to new feasible states — the
    /// single-pass analogue of breadth-first search over the feasible
    /// graph. Terms that never connect anything are appended at the end
    /// (they still matter for layers ≥ 2).
    pub fn ordered_terms(&self, initial: u64) -> Vec<Vec<i8>> {
        use std::collections::HashSet;
        let mut reachable: HashSet<u64> = HashSet::from([initial]);
        let mut remaining: Vec<Vec<i8>> = self.terms.clone();
        let mut ordered: Vec<Vec<i8>> = Vec::with_capacity(self.terms.len());
        let masks = |u: &[i8]| {
            let mut full = 0u64;
            let mut v = 0u64;
            for (i, &ui) in u.iter().enumerate() {
                if ui != 0 {
                    full |= 1 << i;
                    if ui > 0 {
                        v |= 1 << i;
                    }
                }
            }
            (full, v)
        };
        while !remaining.is_empty() {
            let mut picked = None;
            'search: for (idx, u) in remaining.iter().enumerate() {
                let (full, v) = masks(u);
                for &x in &reachable {
                    let s = x & full;
                    if (s == v || s == full ^ v) && !reachable.contains(&(x ^ full)) {
                        picked = Some(idx);
                        break 'search;
                    }
                }
            }
            let Some(idx) = picked else {
                // Nothing connects: append the rest in original order.
                ordered.append(&mut remaining);
                break;
            };
            let u = remaining.remove(idx);
            let (full, v) = masks(&u);
            // Applying the block once maps every matching reachable state.
            let additions: Vec<u64> = reachable
                .iter()
                .filter(|&&x| {
                    let s = x & full;
                    s == v || s == full ^ v
                })
                .map(|&x| x ^ full)
                .collect();
            reachable.extend(additions);
            ordered.push(u);
        }
        ordered
    }

    /// [`CommuteDriver::ublocks`] in the reachability order of
    /// [`CommuteDriver::ordered_terms`].
    pub fn ublocks_ordered(&self, beta: f64, initial: u64) -> Vec<UBlock> {
        self.ordered_terms(initial)
            .iter()
            .map(|u| UBlock::from_u_with_angle(u, beta))
            .collect()
    }

    /// Dense matrix of one term `Hc(u)` over `n_vars` qubits
    /// (test/baseline use; exponential).
    pub fn term_matrix(u: &[i8]) -> CMatrix {
        let n = u.len();
        let dim = 1usize << n;
        let mut v_mask = 0u64;
        let mut full_mask = 0u64;
        for (i, &ui) in u.iter().enumerate() {
            if ui != 0 {
                full_mask |= 1 << i;
                if ui > 0 {
                    v_mask |= 1 << i;
                }
            }
        }
        let mut m = CMatrix::zeros(dim, dim);
        for row in 0..dim as u64 {
            if row & full_mask == v_mask {
                let col = row ^ full_mask;
                m[(row as usize, col as usize)] = choco_mathkit::Complex64::ONE;
                m[(col as usize, row as usize)] = choco_mathkit::Complex64::ONE;
            }
        }
        m
    }

    /// Dense `H_d = Σ_u Hc(u)` (test/baseline use; exponential in
    /// `n_vars`).
    pub fn hamiltonian_matrix(&self) -> CMatrix {
        let dim = 1usize << self.n_vars;
        let mut h = CMatrix::zeros(dim, dim);
        for u in &self.terms {
            h = &h + &Self::term_matrix(u);
        }
        h
    }
}

/// Dense matrix of the constraint operator `Ĉ = Σ_i c_i σ_z^i` of one
/// equation (Eq. (3)); diagonal, used by the commutation tests.
pub fn constraint_operator_matrix(coeffs: &[(usize, i64)], n_vars: usize) -> CMatrix {
    let dim = 1usize << n_vars;
    let mut m = CMatrix::zeros(dim, dim);
    for idx in 0..dim as u64 {
        // σ_z |0⟩ = +|0⟩, σ_z |1⟩ = −|1⟩.
        let mut val = 0.0;
        for &(var, c) in coeffs {
            let bit = (idx >> var) & 1;
            val += c as f64 * if bit == 0 { 1.0 } else { -1.0 };
        }
        m[(idx as usize, idx as usize)] = choco_mathkit::c64(val, 0.0);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_mathkit::LinEq;

    fn paper_system() -> LinSystem {
        let mut sys = LinSystem::new(4);
        sys.push(LinEq::new([(0, 1), (2, -1)], 0));
        sys.push(LinEq::new([(0, 1), (1, 1), (3, 1)], 1));
        sys
    }

    #[test]
    fn driver_matches_paper_delta() {
        let driver = CommuteDriver::build(&paper_system()).unwrap();
        assert_eq!(driver.len(), 2);
        assert_eq!(driver.terms()[0], vec![1, -1, 1, 0]);
        assert_eq!(driver.terms()[1], vec![0, 1, 0, -1]);
        assert_eq!(driver.method(), KernelBasisMethod::Gaussian);
    }

    #[test]
    fn every_term_commutes_with_every_constraint_operator() {
        // The foundation of the whole paper: [Hc(u), Ĉ] = 0.
        let sys = paper_system();
        let driver = CommuteDriver::build(&sys).unwrap();
        for u in driver.terms() {
            let hc = CommuteDriver::term_matrix(u);
            for eq in sys.eqs() {
                let c_op = constraint_operator_matrix(&eq.terms, 4);
                let comm = hc.commutator(&c_op);
                assert!(
                    comm.frobenius_norm() < 1e-12,
                    "term {u:?} does not commute with {eq}"
                );
            }
        }
    }

    #[test]
    fn full_driver_commutes_too() {
        let sys = paper_system();
        let driver = CommuteDriver::build(&sys).unwrap();
        let hd = driver.hamiltonian_matrix();
        assert!(hd.is_hermitian(1e-12));
        for eq in sys.eqs() {
            let c_op = constraint_operator_matrix(&eq.terms, 4);
            assert!(hd.commutator(&c_op).frobenius_norm() < 1e-12);
        }
    }

    #[test]
    fn a_noncommuting_operator_is_detected() {
        // Sanity check of the test oracle itself: a single σ⁺-like flip on
        // one qubit does NOT commute with x0's constraint operator.
        let not_in_kernel = CommuteDriver::term_matrix(&[1, 0, 0, 0]);
        let c_op = constraint_operator_matrix(&[(0, 1), (2, -1)], 4);
        assert!(not_in_kernel.commutator(&c_op).frobenius_norm() > 0.1);
    }

    #[test]
    fn nonzero_counts_match_paper_example() {
        // u1 = (1,-1,1,0), u2 = (0,1,0,-1): x1 appears in both (count 2) —
        // the variable Fig. 6 eliminates.
        let driver = CommuteDriver::build(&paper_system()).unwrap();
        assert_eq!(driver.nonzero_counts(), vec![1, 2, 1, 1]);
        assert_eq!(driver.total_nonzeros(), 5);
    }

    #[test]
    fn ublocks_carry_angle_and_pattern() {
        let driver = CommuteDriver::build(&paper_system()).unwrap();
        let blocks = driver.ublocks(0.7);
        assert_eq!(blocks.len(), 2);
        assert!(blocks.iter().all(|b| b.angle == 0.7));
        assert_eq!(blocks[0].support, vec![0, 1, 2]);
    }

    #[test]
    fn empty_driver_for_full_rank_constraints() {
        let mut sys = LinSystem::new(2);
        sys.push(LinEq::new([(0, 1)], 1));
        sys.push(LinEq::new([(1, 1)], 0));
        let driver = CommuteDriver::build(&sys).unwrap();
        assert!(driver.is_empty());
        assert_eq!(driver.total_nonzeros(), 0);
    }

    #[test]
    fn unconstrained_driver_is_all_single_flips() {
        let sys = LinSystem::new(3);
        let driver = CommuteDriver::build(&sys).unwrap();
        assert_eq!(driver.len(), 3);
        // Hc(e_i) = X_i: the driver degenerates to the transverse field.
        for (i, u) in driver.terms().iter().enumerate() {
            assert_eq!(u.iter().filter(|&&x| x != 0).count(), 1);
            assert_eq!(u[i], 1);
        }
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;
    use choco_mathkit::LinEq;

    fn paper_system() -> LinSystem {
        let mut sys = LinSystem::new(4);
        sys.push(LinEq::new([(0, 1), (2, -1)], 0));
        sys.push(LinEq::new([(0, 1), (1, 1), (3, 1)], 1));
        sys
    }

    #[test]
    fn extended_contains_basis_plus_more() {
        let sys = paper_system();
        let basis = CommuteDriver::build(&sys).unwrap();
        let ext = CommuteDriver::build_extended(&sys, 6, 48).unwrap();
        assert!(ext.len() > basis.len());
        for u in basis.terms() {
            assert!(ext.terms().contains(u), "basis term {u:?} missing");
        }
        // The paper example has exactly 3 canonical ternary kernel vectors.
        assert_eq!(ext.len(), 3);
    }

    #[test]
    fn extended_cap_is_dimension_relative() {
        // One summation constraint over 6 vars: kernel dim 5, many ternary
        // kernel vectors; the cap keeps ≤ 3×dim terms.
        let mut sys = LinSystem::new(6);
        sys.push(LinEq::new((0..6).map(|i| (i, 1i64)), 2));
        let basis = CommuteDriver::build(&sys).unwrap();
        let ext = CommuteDriver::build_extended(&sys, 6, 1000).unwrap();
        assert!(ext.len() <= 3 * basis.len());
        assert!(ext.len() > basis.len());
    }

    #[test]
    fn extended_terms_all_in_kernel() {
        let sys = paper_system();
        let ext = CommuteDriver::build_extended(&sys, 6, 48).unwrap();
        for u in ext.terms() {
            for eq in sys.eqs() {
                let dot: i64 = eq.terms.iter().map(|&(v, c)| c * u[v] as i64).sum();
                assert_eq!(dot, 0, "{u:?} not in kernel");
            }
        }
    }

    #[test]
    fn ordered_terms_puts_connecting_blocks_first() {
        // From initial 0b1000 (x3=1), u2 = (0,1,0,-1) is the only block
        // whose subspace is populated: it must come first.
        let sys = paper_system();
        let driver = CommuteDriver::build(&sys).unwrap();
        let ordered = driver.ordered_terms(0b1000);
        assert_eq!(ordered[0], vec![0, 1, 0, -1]);
        assert_eq!(ordered.len(), driver.len());
    }

    #[test]
    fn ordered_terms_is_a_permutation() {
        let sys = paper_system();
        let driver = CommuteDriver::build_extended(&sys, 6, 48).unwrap();
        for initial in [0b1000u64, 0b0010, 0b0101] {
            let ordered = driver.ordered_terms(initial);
            assert_eq!(ordered.len(), driver.len());
            for u in driver.terms() {
                assert!(ordered.contains(u));
            }
        }
    }

    #[test]
    fn single_pass_closure_covers_feasible_set_on_paper_example() {
        // With the extended Δ and BFS ordering, one serialized pass reaches
        // every feasible point of the running example.
        let sys = paper_system();
        let driver = CommuteDriver::build_extended(&sys, 6, 48).unwrap();
        let initial = sys.first_binary_solution().unwrap();
        let ordered = driver.ordered_terms(initial);
        let mut reach: std::collections::HashSet<u64> = std::collections::HashSet::from([initial]);
        for u in &ordered {
            let (mut full, mut v) = (0u64, 0u64);
            for (i, &ui) in u.iter().enumerate() {
                if ui != 0 {
                    full |= 1 << i;
                    if ui > 0 {
                        v |= 1 << i;
                    }
                }
            }
            let adds: Vec<u64> = reach
                .iter()
                .filter(|&&x| {
                    let s = x & full;
                    s == v || s == full ^ v
                })
                .map(|&x| x ^ full)
                .collect();
            reach.extend(adds);
        }
        for x in sys.enumerate_binary_solutions(100) {
            assert!(
                reach.contains(&x),
                "feasible {x:04b} unreachable in one pass"
            );
        }
    }
}
