//! Circuit-level analyses used by the evaluation section.

use crate::driver::CommuteDriver;
use choco_qsim::{transpile, Circuit, SimConfig, SimEngine, TranspileOptions};
use std::time::{Duration, Instant};

/// The number of basis states with probability above `eps` after each gate
/// of the circuit — the paper's Figure 9(b) "parallelism" metric
/// (#measured states through the circuit) — on the dense engine.
///
/// Index 0 is the initial state (always 1 for a basis-state start).
pub fn support_profile(circuit: &Circuit, eps: f64) -> Vec<usize> {
    support_profile_with(circuit, eps, SimConfig::serial())
}

/// [`support_profile`] on an explicit engine configuration. With a sparse
/// engine the per-gate count reads the occupied-entry list instead of
/// scanning (or even allocating) the `2^n` register — this is how the
/// fig09b harness profiles Choco-Q circuits at widths the dense engine
/// cannot hold. All engines report identical counts where they can run
/// (their amplitudes are bit-identical).
pub fn support_profile_with(circuit: &Circuit, eps: f64, config: SimConfig) -> Vec<usize> {
    let mut engine = SimEngine::new_with(circuit.n_qubits(), config);
    let mut profile = Vec::with_capacity(circuit.len() + 1);
    profile.push(engine.support_size(eps));
    for gate in circuit.iter() {
        engine.apply_gate(gate);
        profile.push(engine.support_size(eps));
    }
    profile
}

/// Cost of lowering the full serialized driver via Lemma 2 — the Choco-Q
/// side of Figure 12.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lemma2Stats {
    /// Wall time of the lowering.
    pub time: Duration,
    /// Basic gates emitted.
    pub gates: usize,
    /// Transpiled circuit depth.
    pub depth: usize,
    /// Approximate working memory: the gate list itself (the lowering
    /// never materializes a matrix).
    pub memory_bytes: usize,
}

/// Lowers `Π_u e^{-iβHc(u)}` to basic gates with the paper's two clean
/// ancillas and reports cost.
///
/// # Panics
///
/// Panics if the lowering fails (cannot happen with two clean ancillas).
pub fn lemma2_stats(driver: &CommuteDriver, beta: f64) -> Lemma2Stats {
    let n = driver.n_vars();
    let t0 = Instant::now();
    let mut circuit = Circuit::new(n + 2);
    for block in driver.ublocks(beta) {
        circuit.ublock(block);
    }
    let lowered = transpile(&circuit, &TranspileOptions::with_ancillas(vec![n, n + 1]))
        .expect("two clean ancillas always suffice for Lemma 2");
    let time = t0.elapsed();
    Lemma2Stats {
        time,
        gates: lowered.len(),
        depth: lowered.depth(),
        memory_bytes: lowered.len() * std::mem::size_of::<choco_qsim::Gate>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_mathkit::{LinEq, LinSystem};

    fn ring_driver(n: usize) -> CommuteDriver {
        let mut sys = LinSystem::new(n);
        sys.push(LinEq::new((0..n).map(|i| (i, 1i64)), 1));
        CommuteDriver::build(&sys).unwrap()
    }

    #[test]
    fn support_profile_tracks_spreading() {
        // H then CX: support 1 → 2 → 2.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        assert_eq!(support_profile(&c, 1e-9), vec![1, 2, 2]);
    }

    #[test]
    fn support_profile_identical_across_engines() {
        use choco_qsim::EngineKind;
        let driver = ring_driver(5);
        let mut c = Circuit::new(5);
        c.load_bits(0b00001);
        for block in driver.ublocks(0.6) {
            c.ublock(block);
        }
        let dense = support_profile(&c, 1e-9);
        for kind in [EngineKind::Sparse, EngineKind::Compact, EngineKind::Auto] {
            let config = SimConfig::serial().with_engine(kind);
            assert_eq!(support_profile_with(&c, 1e-9, config), dense, "{kind}");
        }
    }

    #[test]
    fn choco_circuit_parallelism_grows_from_special_initial_state() {
        // Fig. 9(b): even though Choco-Q starts from one feasible basis
        // state, the serialized driver spreads amplitude exponentially.
        let driver = ring_driver(4);
        let mut c = Circuit::new(4);
        c.load_bits(0b0001);
        for block in driver.ublocks(0.7) {
            c.ublock(block);
        }
        let profile = support_profile(&c, 1e-9);
        assert_eq!(profile[0], 1);
        assert!(*profile.last().unwrap() > 1);
        // monotone non-decreasing for this circuit
        for w in profile.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn lemma2_is_fast_and_linear() {
        let s4 = lemma2_stats(&ring_driver(4), 0.5);
        let s8 = lemma2_stats(&ring_driver(8), 0.5);
        assert!(s4.gates > 0 && s8.gates > s4.gates);
        // Linear-ish growth: doubling qubits must not square the gates.
        assert!(
            (s8.gates as f64) < (s4.gates as f64) * 8.0,
            "s4={} s8={}",
            s4.gates,
            s8.gates
        );
        assert!(s8.time < Duration::from_secs(1));
    }
}
