//! # choco-core
//!
//! The Choco-Q algorithm — commute Hamiltonian-based QAOA for constrained
//! binary optimization (HPCA 2025) — and its three optimization passes:
//!
//! * [`CommuteDriver`] — Δ construction from `C u = 0` (Eq. (5)) with the
//!   commutation property `[Hc(u), Ĉ] = 0` verified in tests;
//! * **serialization** (Lemma 1) — the driver is executed as
//!   `Π_u e^{-iβHc(u)}`, one shallow block per term;
//! * **equivalent decomposition** (Lemma 2) — each block lowers to
//!   `G† P(β) X₁ P(−β) X₁ G` in linear time/depth (implemented in
//!   `choco-qsim`, measured by [`lemma2_stats`]);
//! * **variable elimination** (§IV-C) — [`plan_elimination`] drops the
//!   most-shared variables and enumerates sub-circuits.
//!
//! [`ChocoQSolver`] glues these into a `choco_model::Solver`; the
//! [`trotter`] module is the conventional exponential-cost baseline of
//! Figure 12.

#![warn(missing_docs)]

mod analysis;
mod driver;
mod elimination;
mod solver;
pub mod trotter;

pub use analysis::{lemma2_stats, support_profile, support_profile_with, Lemma2Stats};
pub use driver::{
    constraint_operator_matrix, encoded_qubits_for, extended_row_operator_matrix, slack_registers,
    CommuteDriver, DriverError, DriverTerm, SlackRegister,
};
pub use elimination::{plan_elimination, EliminationBranch, EliminationPlan};
pub use solver::{restart_loop_seed, ChocoQConfig, ChocoQSolver};
pub use trotter::{
    exact_driver_unitary, trotter_decompose, trotter_slice_circuit, TrotterConfig, TrotterReport,
};
