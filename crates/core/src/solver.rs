//! The Choco-Q solver (§III–IV of the paper).
//!
//! Pipeline per solve:
//!
//! 1. **Variable elimination** (optional, §IV-C): drop the `k` most-shared
//!    variables; one sub-circuit per assignment.
//! 2. **Driver construction** (Eq. (5)): Δ = ternary kernel basis of `C`.
//! 3. **Circuit**: load one feasible solution, then `L` layers of
//!    `e^{-iγ_l H_o}` followed by the serialized driver
//!    `Π_{u∈Δ} e^{-iβ_l Hc(u)}` (Lemma 1).
//! 4. **Optimization**: minimize `E[cost]` (COBYLA by default, the
//!    paper's optimizer) — no penalty term; the constraints hold *by
//!    construction*, which is where the 100% in-constraints rate of
//!    Table II comes from. The multistart layer is a deterministic
//!    parallel scheduler: every `(branch × restart)` loop's initial
//!    state, angle jitter, and sampling seed are pre-derived from the
//!    restart's own coordinates ([`restart_loop_seed`]), the loops fan
//!    out over [`ChocoQConfig::restart_workers`] scoped workers (each
//!    owning a [`SimWorkspace`] that shares the caller's compiled-plan
//!    cache), and winners reduce by lowest CVaR with ties broken by
//!    restart coordinate — so results are byte-identical at any worker
//!    count.
//! 5. **Sampling**: merge branch histograms, lifting reduced bitstrings
//!    back to the full variable space.

use crate::driver::{encoded_qubits_for, CommuteDriver, DriverTerm};
use crate::elimination::{plan_elimination, EliminationPlan};
use choco_mathkit::SplitMix64;
use choco_model::{Problem, SolveOutcome, Solver, SolverError, TimingBreakdown};
use choco_optim::OptimizerKind;
use choco_qsim::{Circuit, Counts, PhasePoly, SimConfig, SimWorkspace};
use choco_solvers::shared::{
    check_size_for, circuit_stats, variational_loop, CostSpec, QaoaConfig, MAX_SIM_QUBITS,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Configuration for [`ChocoQSolver`].
#[derive(Clone, Debug)]
pub struct ChocoQConfig {
    /// Repeated layers `L`. The paper uses **1** in Table II (the
    /// serialized driver already covers every search direction; Fig. 7
    /// shows small gains from 2).
    pub layers: usize,
    /// Measurement shots (split across elimination branches).
    pub shots: u64,
    /// Classical optimizer iteration budget.
    pub max_iters: usize,
    /// Classical optimizer.
    pub optimizer: OptimizerKind,
    /// Sampling seed.
    pub seed: u64,
    /// Number of variables to eliminate (0–3 in the paper's Fig. 13).
    pub eliminate: usize,
    /// Record transpiled-circuit statistics (adds the paper's two clean
    /// ancillas and lowers via Lemma 2).
    pub transpiled_stats: bool,
    /// Multistart count: additional optimizer runs from random feasible
    /// initial states with jittered angles; the run with the lowest
    /// achieved expectation wins. Mitigates local minima of the
    /// non-convex landscape (most visible on GCP instances).
    pub restarts: usize,
    /// Worker threads for the multistart scheduler. Every
    /// `(branch × restart)` variational loop is pre-seeded from its own
    /// coordinates, so the loops are independent; with more than one
    /// worker they fan out over a `std::thread::scope` pool where each
    /// worker owns a [`SimWorkspace`] sharing the caller workspace's
    /// compiled-plan cache. `1` (the default) runs the restarts serially
    /// on the caller's workspace; `0` uses one worker per host core.
    /// Solve results are byte-identical at any setting.
    pub restart_workers: usize,
    /// When set, final sampling runs the Lemma-2 transpiled circuit under
    /// this noise model (hardware experiments, Fig. 10/13b/14).
    pub noise: Option<choco_qsim::NoiseModel>,
    /// Monte-Carlo error trajectories for noisy sampling.
    pub noise_trajectories: u32,
    /// Δ policy: include every canonical kernel vector with support up to
    /// this bound (the paper's Eq. (5) sums over *all* solutions of
    /// `C u = 0`). Set to 0 to use only the kernel basis.
    pub delta_max_support: usize,
    /// Hard cap on the number of driver terms.
    pub delta_cap: usize,
    /// State-vector engine configuration (worker threads, parallel
    /// threshold); plumbed into the solver's [`SimWorkspace`].
    pub sim: SimConfig,
    /// Cooperative wall-clock deadline, forwarded to every restart's
    /// variational loop (see [`QaoaConfig::deadline`]). When any loop
    /// trips it, the whole solve returns [`SolverError::Timeout`] — a
    /// partially-budgeted multistart would otherwise silently report a
    /// worse-than-configured solve. `None` (the default) never expires.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag, forwarded to every restart's
    /// variational loop (see [`QaoaConfig::cancel`]). Setting it from
    /// another thread makes the solve drain and return
    /// [`SolverError::Timeout`]. `None` (the default) never cancels.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl Default for ChocoQConfig {
    fn default() -> Self {
        ChocoQConfig {
            layers: 1,
            shots: 10_000,
            max_iters: 60,
            optimizer: OptimizerKind::default(),
            seed: 42,
            eliminate: 0,
            transpiled_stats: true,
            restarts: 3,
            restart_workers: 1,
            noise: None,
            noise_trajectories: 30,
            delta_max_support: 6,
            delta_cap: 48,
            sim: SimConfig::default(),
            deadline: None,
            cancel: None,
        }
    }
}

impl ChocoQConfig {
    /// Cheap configuration for unit tests.
    pub fn fast_test() -> Self {
        ChocoQConfig {
            shots: 2_000,
            max_iters: 30,
            transpiled_stats: false,
            ..ChocoQConfig::default()
        }
    }
}

/// The Choco-Q solver.
///
/// # Examples
///
/// ```
/// use choco_core::{ChocoQConfig, ChocoQSolver};
/// use choco_model::{Problem, Solver};
///
/// let p = Problem::builder(3)
///     .maximize()
///     .linear(0, 1.0)
///     .linear(1, 2.0)
///     .linear(2, 3.0)
///     .equality([(0, 1), (1, 1), (2, 1)], 2)
///     .build()
///     .unwrap();
/// let outcome = ChocoQSolver::new(ChocoQConfig::fast_test()).solve(&p).unwrap();
/// let m = outcome.metrics(&p).unwrap();
/// assert!((m.in_constraints_rate - 1.0).abs() < 1e-9); // hard constraints
/// ```
#[derive(Clone, Debug, Default)]
pub struct ChocoQSolver {
    config: ChocoQConfig,
}

impl ChocoQSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: ChocoQConfig) -> Self {
        ChocoQSolver { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ChocoQConfig {
        &self.config
    }

    /// Number of variational parameters: per layer, one γ plus one β per
    /// driver term.
    ///
    /// The paper's Eq. (7) writes a shared β per layer; with the
    /// *serialized* driver (Lemma 1) each block `e^{-iβ_u Hc(u)}` is its
    /// own unitary, so the natural parameterization gives every block its
    /// own angle. This is what makes a single layer expressive enough to
    /// reach the paper's reported success rates: the optimizer can chain
    /// full 2-level transfers along the feasible graph.
    pub fn n_params(layers: usize, n_terms: usize) -> usize {
        layers * (1 + n_terms)
    }

    /// Builds the structured Choco-Q circuit for one (sub-)problem:
    /// `|x*,s*⟩ → Π_l [ e^{-iγ_l H_o} Π_u e^{-iβ_{l,u} Hc(u)} ]` with the
    /// parameter layout `[γ_1, β_{1,1} … β_{1,|Δ|}, γ_2, …]`.
    /// `ordered_terms` should come from [`CommuteDriver::ordered_terms`]
    /// for the same *encoded* `initial` (see
    /// [`CommuteDriver::encode_state`]); the circuit spans the driver's
    /// encoded width (decision variables plus slack registers). The cost
    /// polynomial only reads the decision variables, so it applies
    /// unchanged on the wider register.
    pub fn build_circuit(
        driver: &CommuteDriver,
        cost_poly: &Arc<PhasePoly>,
        ordered_terms: &[DriverTerm],
        initial: u64,
        layers: usize,
        params: &[f64],
    ) -> Circuit {
        debug_assert_eq!(params.len(), Self::n_params(layers, ordered_terms.len()));
        let stride = 1 + ordered_terms.len();
        let mut c = Circuit::new(driver.encoded_qubits().max(1));
        c.load_bits(initial);
        for l in 0..layers {
            let gamma = params[l * stride];
            c.diag(cost_poly.clone(), gamma);
            for (t, term) in ordered_terms.iter().enumerate() {
                let beta = params[l * stride + 1 + t];
                c.push(driver.gate_of(term, beta));
            }
        }
        c
    }

    /// Initial parameters: a small γ ramp and a moderate uniform β.
    pub fn initial_params(layers: usize, n_terms: usize) -> Vec<f64> {
        let mut x0 = Vec::with_capacity(Self::n_params(layers, n_terms));
        for l in 0..layers {
            x0.push(0.1 + 0.2 * (l as f64 + 1.0) / layers as f64); // γ
            x0.extend(std::iter::repeat_n(0.5, n_terms)); // β
        }
        x0
    }
}

/// The surviving pieces of one multistart run.
struct LoopRun {
    counts: Counts,
    cost_history: Vec<f64>,
    final_circuit: Circuit,
}

/// Conditional value at risk: the mean cost of the best `alpha` fraction
/// of sampled shots. The restart-selection criterion — unlike the plain
/// expectation, it rewards distributions that put *some* mass on very good
/// solutions (CVaR-QAOA style), and it only uses measured quantities.
fn cvar(counts: &Counts, cost: &CostSpec<'_>, alpha: f64) -> f64 {
    if counts.is_empty() {
        return f64::INFINITY;
    }
    let mut samples: Vec<(f64, u64)> = counts
        .iter()
        .map(|(bits, c)| (cost.value(bits), c))
        .collect();
    // `total_cmp`, not `partial_cmp().expect()`: a NaN cost (degenerate
    // polynomial, diverged parameters) must yield a NaN CVaR that the
    // winner reduction ranks last — not a panic that kills the solve.
    samples.sort_by(|a, b| a.0.total_cmp(&b.0));
    let take = ((counts.shots() as f64 * alpha).ceil() as u64).max(1);
    let mut remaining = take;
    let mut acc = 0.0;
    for (value, count) in samples {
        let used = count.min(remaining);
        acc += value * used as f64;
        remaining -= used;
        if remaining == 0 {
            break;
        }
    }
    acc / take as f64
}

/// One stateless SplitMix64 scramble.
fn mix(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

/// Mixes a master seed and the `(branch, restart)` coordinates into one
/// well-spread word. Each coordinate passes through its own full scramble
/// round, so `(b+1, r)` and `(b, r + restarts)` never alias the way the
/// old `seed + b·restarts + r` arithmetic did when a branch ran more
/// restarts than `restarts` (extra Δ policies) — adjacent branches then
/// reused loop seeds and their "independent" restarts sampled identical
/// shot streams.
fn mix_coordinates(master: u64, salt: u64, b_idx: usize, r: usize) -> u64 {
    let s = mix(master ^ salt);
    let s = mix(s ^ (b_idx as u64).wrapping_add(0x9E37_79B9_7F4A_7C15));
    mix(s ^ (r as u64).wrapping_add(0xBF58_476D_1CE4_E5B9))
}

/// The variational-loop (sampling) seed of restart `(b_idx, r)` of a
/// solve with master seed `seed`.
///
/// Derived only from the solve seed and the restart's own coordinates —
/// never from execution order, a serially-consumed generator, or a worker
/// id — so any restart is reproducible in isolation, the parallel
/// scheduler can run restarts in any order, and seeds are collision-free
/// across the whole restart grid (hash-mixed, not offset arithmetic).
pub fn restart_loop_seed(seed: u64, b_idx: usize, r: usize) -> u64 {
    mix_coordinates(seed, 0xC0C0_0A5E_ED00_0001, b_idx, r)
}

/// The per-restart SplitMix64 stream that draws a non-fresh restart's
/// random feasible initial state and then its jittered initial angles.
/// Separately salted from [`restart_loop_seed`] so the loop seed and the
/// jitter draws stay independent.
fn restart_stream(seed: u64, b_idx: usize, r: usize) -> SplitMix64 {
    SplitMix64::new(mix_coordinates(seed, 0xC0C0_0A5E_ED00_0002, b_idx, r))
}

/// Restart-selection ordering: does `candidate`'s CVaR displace the
/// incumbent's? Finite scores compare by value; a finite score always
/// beats a non-finite one; and a non-finite candidate never wins — so a
/// NaN CVaR from a diverged restart can neither win a tie (NaN `<` is
/// always false, but so was the old incumbent-displacement test when the
/// *incumbent* was NaN — an undisplaceable poisoned winner) nor block a
/// finite later restart. Ties keep the incumbent, i.e. the lowest restart
/// coordinate, matching the serial scheduler.
fn strictly_better(candidate: f64, incumbent: f64) -> bool {
    match (candidate.is_finite(), incumbent.is_finite()) {
        (true, true) => candidate < incumbent,
        (true, false) => true,
        (false, _) => false,
    }
}

/// The effective multistart worker count for `n_tasks` restarts.
fn effective_restart_workers(requested: usize, n_tasks: usize) -> usize {
    let requested = if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    };
    requested.clamp(1, n_tasks.max(1))
}

impl Solver for ChocoQSolver {
    fn name(&self) -> &str {
        "choco-q"
    }

    fn solve(&self, problem: &Problem) -> Result<SolveOutcome, SolverError> {
        let mut workspace = SimWorkspace::new(self.config.sim);
        self.solve_with_workspace(problem, &mut workspace)
    }
}

impl ChocoQSolver {
    /// [`Solver::solve`] with a caller-owned [`SimWorkspace`]: the
    /// amplitude buffer, cached diagonals, sampling table, and (under
    /// [`choco_qsim::EngineKind::Compact`]) compiled gate plans live in
    /// `workspace` and are reused across optimizer iterations, multistart
    /// restarts, and elimination branches (and across repeated solves when
    /// the caller keeps the workspace around) — with the compact engine,
    /// the feasible subspace is enumerated once per circuit shape and
    /// every iteration replays the precomputed plan.
    pub fn solve_with_workspace(
        &self,
        problem: &Problem,
        workspace: &mut SimWorkspace,
    ) -> Result<SolveOutcome, SolverError> {
        // Size gate follows the workspace's engine: the sparse engines
        // accept feasible-subspace instances the dense buffer cannot hold.
        // Native-inequality instances are admitted by their *encoded*
        // width — decision variables plus the slack registers the driver
        // layer will synthesize (identical to `n_vars` otherwise).
        let encoded_width = encoded_qubits_for(problem.constraints())
            .map_err(|e| SolverError::Encoding(e.to_string()))?;
        check_size_for(encoded_width, workspace.config().engine)?;
        if problem.has_inequalities() && self.config.eliminate > 0 {
            return Err(SolverError::Encoding(
                "variable elimination is not supported for native-inequality \
                 instances; set eliminate = 0"
                    .into(),
            ));
        }
        let compile_start = Instant::now();

        let plan: EliminationPlan = plan_elimination(problem, self.config.eliminate)
            .map_err(|e| SolverError::Encoding(e.to_string()))?;
        if plan.branches.is_empty() {
            return Err(SolverError::Infeasible);
        }

        // Prepare per-branch drivers, initial-state pools, and cost tables.
        // Two Δ policies are kept: the minimal kernel *basis* and the
        // *extended* set (Eq. (5) sums over all solutions of C u = 0).
        // Which one yields the easier optimization landscape is
        // instance-dependent, so the multistart alternates between them.
        struct Branch {
            assignment: u64,
            /// Encoded circuit width: decision variables + slack registers.
            encoded: usize,
            /// Mask selecting the decision variables out of a sampled
            /// encoded bitstring (identity for equality-only branches).
            decision_mask: u64,
            drivers: Vec<CommuteDriver>,
            feasible: Vec<u64>,
            cost_poly: Arc<PhasePoly>,
            /// Materialized `2^n` cost table — only for registers the
            /// dense engine could also hold, so the table keeps engine
            /// results bit-identical. Wider (sparse-only) branches use
            /// the polynomial directly.
            cost_values: Option<Vec<f64>>,
        }
        impl Branch {
            fn cost_spec(&self) -> CostSpec<'_> {
                match &self.cost_values {
                    Some(values) => CostSpec::Table(values),
                    None => CostSpec::Poly(&self.cost_poly),
                }
            }
        }
        let mut branches = Vec::new();
        for b in &plan.branches {
            // A small pool of feasible points serves as restart seeds.
            let feasible = b.problem.feasible_solutions(256);
            if feasible.is_empty() {
                continue; // infeasible branch: no shots allocated
            }
            let basis = CommuteDriver::build(b.problem.constraints())
                .map_err(|e| SolverError::Encoding(e.to_string()))?;
            let mut drivers = vec![];
            if self.config.delta_max_support > 0 {
                let extended = CommuteDriver::build_extended(
                    b.problem.constraints(),
                    self.config.delta_max_support,
                    self.config.delta_cap,
                )
                .map_err(|e| SolverError::Encoding(e.to_string()))?;
                if extended.len() > basis.len() {
                    drivers.push(extended);
                }
            }
            // Intern through the workspace's plan cache: equal-content
            // polynomials across solves share one `Arc`, so compact
            // plans compiled for this shape survive into later solves
            // (and, under `choco-serve`, later requests).
            let cost_poly = workspace.intern_poly(b.problem.cost_poly());
            let encoded = basis.encoded_qubits();
            let decision_mask = basis.decision_mask();
            drivers.push(basis);
            // The cost table spans the *encoded* register (the polynomial
            // ignores the slack bits, so the table just tiles); sampled
            // encoded bitstrings index it directly.
            let cost_values =
                (encoded <= MAX_SIM_QUBITS).then(|| cost_poly.values_table(1 << encoded));
            branches.push(Branch {
                assignment: b.assignment,
                encoded,
                decision_mask,
                drivers,
                feasible,
                cost_poly,
                cost_values,
            });
        }
        if branches.is_empty() {
            return Err(SolverError::Infeasible);
        }
        let compile = compile_start.elapsed();

        let layers = self.config.layers;
        let restarts = self.config.restarts.max(1);
        let shots_each = (self.config.shots / branches.len() as u64).max(1);
        let mut merged = Counts::new();
        let mut cost_history: Vec<f64> = Vec::new();
        let mut iterations = 0usize;
        let mut timing = TimingBreakdown {
            compile,
            ..TimingBreakdown::default()
        };
        let mut first_final_circuit: Option<(Circuit, usize)> = None;

        // ---- Pre-derivation ----------------------------------------
        // Multistart: the first restarts pair each Δ policy with the
        // lexicographically-first feasible point and nominal angles;
        // later restarts pick random feasible initial states and
        // jittered angles. Every restart's initial state, jitter stream,
        // and loop seed derive from its `(branch, restart)` coordinates
        // alone (per-coordinate SplitMix64 streams), so the loops are
        // fully independent and can execute in any order on any worker —
        // the foundation of the deterministic parallel scheduler below.
        struct Task {
            b_idx: usize,
            fresh: bool,
            driver_idx: usize,
            initial: u64,
            jitter: SplitMix64,
            loop_seed: u64,
        }
        let mut tasks: Vec<Task> = Vec::new();
        for (b_idx, branch) in branches.iter().enumerate() {
            let n_policies = branch.drivers.len();
            for r in 0..restarts.max(n_policies) {
                let mut stream = restart_stream(self.config.seed, b_idx, r);
                let fresh = r < n_policies;
                let initial = if fresh {
                    branch.feasible[0]
                } else {
                    *stream.choose(&branch.feasible).expect("non-empty")
                };
                tasks.push(Task {
                    b_idx,
                    fresh,
                    driver_idx: r % n_policies,
                    initial,
                    jitter: stream,
                    loop_seed: restart_loop_seed(self.config.seed, b_idx, r),
                });
            }
        }

        struct TaskResult {
            /// CVaR of the sampled shots (the restart-selection score).
            achieved: f64,
            run: LoopRun,
            iterations: usize,
            execute: std::time::Duration,
            classical: std::time::Duration,
            /// The restart's loop tripped [`ChocoQConfig::deadline`].
            deadline_exceeded: bool,
        }
        let run_task = |task: &Task, workspace: &mut SimWorkspace| -> TaskResult {
            let branch = &branches[task.b_idx];
            let driver = &branch.drivers[task.driver_idx];
            // Lift the feasible decision point into the encoded space
            // (loads every slack register; identity without registers).
            let initial = driver.encode_state(task.initial);
            let ordered_terms = driver.ordered_terms(initial);
            let mut x0 = Self::initial_params(layers, ordered_terms.len());
            if !task.fresh {
                let mut jitter = task.jitter.clone();
                for x in x0.iter_mut() {
                    *x = jitter.gen_range_f64(0.05, 1.6);
                }
            }
            let loop_config = QaoaConfig {
                layers,
                shots: shots_each,
                max_iters: self.config.max_iters,
                optimizer: self.config.optimizer,
                penalty: 0.0, // constraints are hard: no penalty needed
                seed: task.loop_seed,
                transpiled_stats: false,
                noise: self.config.noise,
                noise_trajectories: self.config.noise_trajectories,
                // Follow the caller-owned workspace, not self.config:
                // every other kernel of this solve runs under the
                // workspace's engine config.
                sim: *workspace.config(),
                deadline: self.config.deadline,
                cancel: self.config.cancel.clone(),
            };
            let build = |params: &[f64]| {
                Self::build_circuit(
                    driver,
                    &branch.cost_poly,
                    &ordered_terms,
                    initial,
                    layers,
                    params,
                )
            };
            let result = variational_loop(
                branch.encoded.max(1),
                build,
                &branch.cost_spec(),
                &x0,
                &loop_config,
                &mut *workspace,
            );
            let achieved = cvar(&result.counts, &branch.cost_spec(), 0.05);
            TaskResult {
                achieved,
                iterations: result.iterations,
                execute: result.timing.execute,
                classical: result.timing.classical,
                deadline_exceeded: result.deadline_exceeded,
                run: LoopRun {
                    counts: result.counts,
                    cost_history: result.cost_history,
                    final_circuit: result.final_circuit,
                },
            }
        };

        // ---- Execution ----------------------------------------------
        // One worker: the caller's workspace serves every restart (the
        // zero-allocation serial path). More: a scoped pool where each
        // worker owns a long-lived workspace sharing the caller's
        // compiled-plan cache, so a circuit shape is still compiled once
        // across all restarts × workers. Results land in a slot vector
        // indexed by task position — execution order never leaks. (Same
        // scatter-into-slots scheme as the runner's cell scheduler in
        // crates/runner/src/run.rs — a fix to one likely applies to the
        // other.)
        let n_workers = effective_restart_workers(self.config.restart_workers, tasks.len());
        let mut results: Vec<Option<TaskResult>> = if n_workers <= 1 {
            tasks
                .iter()
                .map(|task| Some(run_task(task, &mut *workspace)))
                .collect()
        } else {
            let slots: Mutex<Vec<Option<TaskResult>>> =
                Mutex::new((0..tasks.len()).map(|_| None).collect());
            let next = AtomicUsize::new(0);
            let sim = *workspace.config();
            let plan_cache = workspace.plan_cache();
            std::thread::scope(|scope| {
                for _ in 0..n_workers {
                    let (run_task, tasks, slots, next) = (&run_task, &tasks, &slots, &next);
                    let plan_cache = plan_cache.clone();
                    scope.spawn(move || {
                        let mut worker_ws = SimWorkspace::with_plan_cache(sim, plan_cache);
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(task) = tasks.get(i) else { break };
                            let result = run_task(task, &mut worker_ws);
                            slots.lock().expect("slot lock")[i] = Some(result);
                        }
                    });
                }
            });
            slots.into_inner().expect("slot lock")
        };

        // A tripped deadline in any restart fails the whole solve: the
        // remaining loops may also be truncated, and reporting a
        // partially-budgeted multistart as a normal outcome would
        // silently degrade quality (the runner turns this into a
        // structured `timeout` cell error).
        if results.iter().flatten().any(|r| r.deadline_exceeded) {
            return Err(SolverError::Timeout);
        }

        // ---- Deterministic reduce -----------------------------------
        // Winner per branch: lowest CVaR (non-finite scores rank last,
        // see [`strictly_better`]), ties broken by the lowest restart
        // coordinate (tasks are visited in `(b_idx, r)` order and only a
        // strictly better score displaces the incumbent) — the same
        // selection the serial loop makes, at any worker count.
        let mut winners: Vec<Option<usize>> = vec![None; branches.len()];
        for (i, result) in results.iter().enumerate() {
            let result = result.as_ref().expect("every restart ran");
            timing.execute += result.execute;
            timing.classical += result.classical;
            iterations += result.iterations;
            let b = tasks[i].b_idx;
            let better = match winners[b] {
                None => true,
                Some(w) => strictly_better(
                    result.achieved,
                    results[w].as_ref().expect("winner present").achieved,
                ),
            };
            if better {
                winners[b] = Some(i);
            }
        }
        for (b_idx, branch) in branches.iter().enumerate() {
            let w = winners[b_idx].expect("at least one restart per branch");
            let run = results[w].take().expect("winner ran").run;
            if b_idx == 0 {
                cost_history = run.cost_history;
            }
            // Drop the slack-register bits before lifting: callers see
            // decision-variable bitstrings only (identity when the branch
            // has no registers, so equality-only reports are unchanged).
            let lifted = run
                .counts
                .map_bits(|bits| plan.lift(branch.assignment, bits & branch.decision_mask));
            merged.merge(&lifted);
            if first_final_circuit.is_none() {
                first_final_circuit = Some((run.final_circuit, branch.encoded));
            }
        }

        // Circuit statistics on the first branch's final circuit, rebuilt
        // with the paper's two clean ancillas for Lemma-2 transpilation.
        let (final_circuit, n_reduced) = first_final_circuit.expect("at least one branch ran");

        // Workspace end-state contract: leave the *caller's* workspace
        // holding the first branch winner's final state. Callers that
        // inspect `workspace.state()` after a solve — the experiment
        // runner reports the resolved engine and final-state occupancy —
        // then see the same values at every `restart_workers` setting
        // (with >1 worker the loops ran on worker-owned workspaces and
        // the caller's engine would otherwise be stale or empty).
        workspace.run(&final_circuit);
        let circuit = if self.config.transpiled_stats && n_reduced > 0 {
            let mut wide = Circuit::new(n_reduced + 2);
            for g in final_circuit.gates() {
                wide.push(g.clone());
            }
            circuit_stats(&wide, vec![n_reduced, n_reduced + 1], true)?
        } else {
            circuit_stats(&final_circuit, vec![], false)?
        };

        Ok(SolveOutcome {
            counts: merged,
            cost_history,
            iterations,
            circuit,
            timing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_problem() -> Problem {
        Problem::builder(4)
            .maximize()
            .linear(0, 1.0)
            .linear(1, 2.0)
            .linear(2, 3.0)
            .linear(3, 1.0)
            .equality([(0, 1), (2, -1)], 0)
            .equality([(0, 1), (1, 1), (3, 1)], 1)
            .build()
            .unwrap()
    }

    #[test]
    fn in_constraints_rate_is_always_one() {
        // The paper's central claim (Table II): commute-driver evolution
        // never leaves the feasible subspace.
        let outcome = ChocoQSolver::new(ChocoQConfig::fast_test())
            .solve(&paper_problem())
            .unwrap();
        let m = outcome.metrics(&paper_problem()).unwrap();
        assert!(
            (m.in_constraints_rate - 1.0).abs() < 1e-12,
            "in-constraints = {}",
            m.in_constraints_rate
        );
    }

    #[test]
    fn success_rate_is_high_on_the_paper_example() {
        let outcome = ChocoQSolver::new(ChocoQConfig::fast_test())
            .solve(&paper_problem())
            .unwrap();
        let m = outcome.metrics(&paper_problem()).unwrap();
        assert!(m.success_rate > 0.3, "success = {}", m.success_rate);
        assert!(m.arg < 0.7, "ARG = {}", m.arg);
    }

    #[test]
    fn cost_history_converges_downward() {
        let outcome = ChocoQSolver::new(ChocoQConfig::fast_test())
            .solve(&paper_problem())
            .unwrap();
        let first = outcome.cost_history.first().unwrap();
        let last = outcome.cost_history.last().unwrap();
        assert!(last <= first);
        assert!(outcome.iterations > 0);
    }

    #[test]
    fn variable_elimination_preserves_hard_constraints() {
        for eliminate in [1usize, 2] {
            let config = ChocoQConfig {
                eliminate,
                ..ChocoQConfig::fast_test()
            };
            let outcome = ChocoQSolver::new(config).solve(&paper_problem()).unwrap();
            let m = outcome.metrics(&paper_problem()).unwrap();
            assert!(
                (m.in_constraints_rate - 1.0).abs() < 1e-12,
                "eliminate={eliminate}: in-constraints = {}",
                m.in_constraints_rate
            );
            assert!(
                m.success_rate > 0.2,
                "eliminate={eliminate}: success = {}",
                m.success_rate
            );
        }
    }

    #[test]
    fn elimination_reduces_transpiled_depth() {
        // Fig. 13(a): dropping the most-shared variable shrinks the
        // deployable circuit.
        let base = ChocoQSolver::new(ChocoQConfig {
            transpiled_stats: true,
            ..ChocoQConfig::fast_test()
        })
        .solve(&paper_problem())
        .unwrap();
        let elim = ChocoQSolver::new(ChocoQConfig {
            transpiled_stats: true,
            eliminate: 1,
            ..ChocoQConfig::fast_test()
        })
        .solve(&paper_problem())
        .unwrap();
        assert!(
            elim.circuit.transpiled_depth.unwrap() < base.circuit.transpiled_depth.unwrap(),
            "elimination did not reduce depth: {:?} vs {:?}",
            elim.circuit.transpiled_depth,
            base.circuit.transpiled_depth
        );
    }

    #[test]
    fn infeasible_problem_is_rejected() {
        let p = Problem::builder(2)
            .equality([(0, 1), (1, 1)], 3)
            .build()
            .unwrap();
        let err = ChocoQSolver::default().solve(&p).unwrap_err();
        assert_eq!(err, SolverError::Infeasible);
    }

    #[test]
    fn unique_feasible_point_collapses_to_it() {
        // Full-rank constraints: Δ empty, the circuit just loads |x*⟩.
        let p = Problem::builder(2)
            .minimize()
            .linear(0, 1.0)
            .equality([(0, 1)], 1)
            .equality([(1, 1)], 0)
            .build()
            .unwrap();
        let outcome = ChocoQSolver::new(ChocoQConfig::fast_test())
            .solve(&p)
            .unwrap();
        assert!((outcome.counts.probability(0b01) - 1.0).abs() < 1e-12);
        let m = outcome.metrics(&p).unwrap();
        assert_eq!(m.success_rate, 1.0);
    }

    #[test]
    fn more_layers_do_not_hurt() {
        // Fig. 7: layer 2 brings a modest gain; deeper layers plateau.
        let one = ChocoQSolver::new(ChocoQConfig::fast_test())
            .solve(&paper_problem())
            .unwrap()
            .metrics(&paper_problem())
            .unwrap();
        let two = ChocoQSolver::new(ChocoQConfig {
            layers: 2,
            ..ChocoQConfig::fast_test()
        })
        .solve(&paper_problem())
        .unwrap()
        .metrics(&paper_problem())
        .unwrap();
        assert!(two.success_rate > one.success_rate * 0.5);
        assert!((two.in_constraints_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_performs_zero_amplitude_allocations_after_warmup() {
        // The acceptance criterion of the fast-path rework: one amplitude
        // buffer serves every optimizer iteration, every multistart
        // restart, and the final sampling pass. The workspace counts
        // buffer (re)allocations; exactly one warmup allocation is
        // allowed per register width.
        let problem = paper_problem();
        let solver = ChocoQSolver::new(ChocoQConfig::fast_test());
        let mut workspace = SimWorkspace::new(SimConfig::serial());
        solver
            .solve_with_workspace(&problem, &mut workspace)
            .unwrap();
        assert_eq!(
            workspace.reallocations(),
            1,
            "iterations/restarts must reuse the warmup buffer"
        );
        // A second solve of the same width is fully allocation-free.
        solver
            .solve_with_workspace(&problem, &mut workspace)
            .unwrap();
        assert_eq!(workspace.reallocations(), 1, "second solve reuses warmup");
        // The shared cost polynomial was expanded into a diagonal once per
        // Δ policy, not once per iteration.
        assert!(workspace.cached_diagonals() <= 2);
    }

    #[test]
    fn compact_engine_solve_is_byte_identical_and_compiles_once() {
        use choco_qsim::EngineKind;
        let problem = paper_problem();
        let solver = ChocoQSolver::new(ChocoQConfig::fast_test());
        let mut dense_ws = SimWorkspace::new(SimConfig::serial());
        let dense = solver
            .solve_with_workspace(&problem, &mut dense_ws)
            .unwrap();
        let mut compact_ws =
            SimWorkspace::new(SimConfig::serial().with_engine(EngineKind::Compact));
        let compact = solver
            .solve_with_workspace(&problem, &mut compact_ws)
            .unwrap();
        // Engine selection is a performance decision: identical histogram,
        // identical history, identical iteration count.
        assert_eq!(dense.counts, compact.counts);
        assert_eq!(dense.cost_history, compact.cost_history);
        assert_eq!(dense.iterations, compact.iterations);
        // The whole solve — every restart × iteration — compiled each
        // distinct circuit shape exactly once and reused one amplitude
        // array (zero per-iteration allocations).
        assert_eq!(compact_ws.reallocations(), 1, "one warmup allocation");
        assert_eq!(
            compact_ws.plan_compilations(),
            compact_ws.cached_plans() as u64,
            "every shape compiled exactly once"
        );
        assert!(
            compact_ws.cached_plans() <= 4,
            "Δ policies × initial states bound the shape count, got {}",
            compact_ws.cached_plans()
        );
        // A second solve rebuilds an equal-content cost polynomial from
        // scratch; interning it through the workspace's plan cache maps
        // it onto the same `Arc`, so the cached plans are *replayed*,
        // not recompiled — the invariant `choco-serve` relies on to
        // amortize compilation across requests.
        let shapes_per_solve = compact_ws.plan_compilations();
        solver
            .solve_with_workspace(&problem, &mut compact_ws)
            .unwrap();
        assert_eq!(
            compact_ws.plan_compilations(),
            shapes_per_solve,
            "second solve replays cached plans, zero new compilations"
        );
        assert!(compact_ws.cached_plans() as u64 <= shapes_per_solve);
        assert_eq!(compact_ws.reallocations(), 1, "second solve reuses warmup");
    }

    #[test]
    fn batched_solve_is_byte_identical_and_stays_zero_alloc() {
        use choco_qsim::EngineKind;
        let problem = paper_problem();
        let solver = ChocoQSolver::new(ChocoQConfig::fast_test());
        let compact = SimConfig::serial().with_engine(EngineKind::Compact);
        let mut serial_ws = SimWorkspace::new(compact);
        let serial = solver
            .solve_with_workspace(&problem, &mut serial_ws)
            .unwrap();
        for k in [4usize, 8] {
            let mut batched_ws = SimWorkspace::new(compact.with_batch(k));
            let batched = solver
                .solve_with_workspace(&problem, &mut batched_ws)
                .unwrap();
            // The batch size is a pure performance knob: identical
            // histogram, history, and iteration count at every K.
            assert_eq!(serial.counts, batched.counts, "batch {k}");
            assert_eq!(serial.cost_history, batched.cost_history, "batch {k}");
            assert_eq!(serial.iterations, batched.iterations, "batch {k}");
            // Batching must not cost extra compilations, and the SoA
            // buffer warms up once per (shape, width) like the serial
            // amplitude array.
            assert_eq!(
                batched_ws.plan_compilations(),
                serial_ws.plan_compilations(),
                "batch {k}"
            );
            assert_eq!(batched_ws.reallocations(), 1, "batch {k}: serial warmup");
            assert!(
                batched_ws.batch_reallocations() <= batched_ws.plan_compilations(),
                "batch {k}: at most one SoA warmup per shape, got {}",
                batched_ws.batch_reallocations()
            );
        }
    }

    #[test]
    fn restart_loop_seeds_are_distinct_across_branches_and_restarts() {
        // Regression for the old `seed + (b_idx · restarts + r)`
        // arithmetic: whenever a branch ran more loops than `restarts`
        // (extra Δ policies), adjacent branches reused loop seeds — e.g.
        // with restarts = 1 and two policies, (b=0, r=1) and (b=1, r=0)
        // collided. The coordinate-hashed derivation must be
        // collision-free across any realistic restart grid.
        let mut seen = std::collections::HashSet::new();
        for seed in [0u64, 42, 0xDEAD_BEEF] {
            seen.clear();
            for b_idx in 0..16 {
                for r in 0..64 {
                    assert!(
                        seen.insert(restart_loop_seed(seed, b_idx, r)),
                        "seed={seed} collides at (b={b_idx}, r={r})"
                    );
                }
            }
        }
        // The exact collision pair of the old formula.
        assert_ne!(restart_loop_seed(42, 0, 1), restart_loop_seed(42, 1, 0));
        // And the derivation depends on the master seed.
        assert_ne!(restart_loop_seed(1, 0, 0), restart_loop_seed(2, 0, 0));
    }

    #[test]
    fn every_loop_seed_of_a_multi_branch_solve_is_distinct() {
        // The in-situ version of the regression: enumerate the loop seeds
        // a 2-branch (eliminate = 1) multi-policy solve actually derives
        // and assert pairwise distinctness.
        let problem = paper_problem();
        let config = ChocoQConfig {
            eliminate: 1,
            restarts: 1, // fewer than the Δ-policy count → old collision
            ..ChocoQConfig::fast_test()
        };
        let plan = plan_elimination(&problem, config.eliminate).unwrap();
        assert!(plan.branches.len() > 1, "need a multi-branch solve");
        let mut seen = std::collections::HashSet::new();
        for (b_idx, branch) in plan.branches.iter().enumerate() {
            let n_policies = 2; // extended + basis, as the solver builds
            for r in 0..config.restarts.max(n_policies) {
                assert!(
                    seen.insert(restart_loop_seed(config.seed, b_idx, r)),
                    "collision at (b={b_idx}, r={r})"
                );
            }
            let _ = branch;
        }
    }

    #[test]
    fn parallel_restart_workers_reproduce_the_serial_solve() {
        // The scheduler's determinism contract: restart pre-seeding plus
        // the slot-indexed reduce make the solve byte-identical at any
        // worker count — including 0 (auto) and counts above the task
        // count — on a multi-branch, multi-restart configuration.
        let problem = paper_problem();
        let base = ChocoQConfig {
            restarts: 4,
            eliminate: 1,
            ..ChocoQConfig::fast_test()
        };
        let serial = ChocoQSolver::new(base.clone()).solve(&problem).unwrap();
        for workers in [2usize, 4, 64, 0] {
            let parallel = ChocoQSolver::new(ChocoQConfig {
                restart_workers: workers,
                ..base.clone()
            })
            .solve(&problem)
            .unwrap();
            assert_eq!(serial.counts, parallel.counts, "workers={workers}");
            assert_eq!(
                serial.cost_history, parallel.cost_history,
                "workers={workers}"
            );
            assert_eq!(serial.iterations, parallel.iterations, "workers={workers}");
            assert_eq!(serial.circuit, parallel.circuit, "workers={workers}");
        }
    }

    #[test]
    fn parallel_compact_solve_compiles_each_shape_once_across_workers() {
        use choco_qsim::EngineKind;
        let problem = paper_problem();
        let config = ChocoQConfig {
            restarts: 6,
            restart_workers: 4,
            ..ChocoQConfig::fast_test()
        };
        let mut ws = SimWorkspace::new(SimConfig::serial().with_engine(EngineKind::Compact));
        let parallel = ChocoQSolver::new(config.clone())
            .solve_with_workspace(&problem, &mut ws)
            .unwrap();
        // Worker workspaces share the caller's plan cache: every distinct
        // circuit shape across all restarts × workers compiled exactly
        // once.
        assert_eq!(
            ws.plan_compilations(),
            ws.cached_plans() as u64,
            "every shape compiled exactly once across the worker pool"
        );
        // And the parallel compact solve matches the serial dense solve.
        let serial = ChocoQSolver::new(ChocoQConfig {
            restart_workers: 1,
            ..config
        })
        .solve(&problem)
        .unwrap();
        assert_eq!(serial.counts, parallel.counts);
        assert_eq!(serial.cost_history, parallel.cost_history);
        // The caller workspace ends holding the winner's final state
        // (the runner reads engine/occupancy from it).
        assert!(ws.state().is_some(), "workspace holds the winner's state");
        // Batching on top of the worker pool changes neither the results
        // nor the compile count: every shape across restarts × workers ×
        // batches still compiles exactly once.
        let mut batched_ws = SimWorkspace::new(
            SimConfig::serial()
                .with_engine(EngineKind::Compact)
                .with_batch(8),
        );
        let batched = ChocoQSolver::new(ChocoQConfig {
            restarts: 6,
            restart_workers: 4,
            ..ChocoQConfig::fast_test()
        })
        .solve_with_workspace(&problem, &mut batched_ws)
        .unwrap();
        assert_eq!(serial.counts, batched.counts);
        assert_eq!(serial.cost_history, batched.cost_history);
        assert_eq!(
            batched_ws.plan_compilations(),
            ws.plan_compilations(),
            "batching must not add compilations across the worker pool"
        );
    }

    #[test]
    fn non_finite_cvar_never_wins_the_restart_reduce() {
        // Regression: the old `candidate < incumbent` test made a NaN
        // *incumbent* (first restart) undisplaceable — every comparison
        // against NaN is false — poisoning the whole solve. The explicit
        // ordering ranks non-finite scores last in every combination.
        assert!(strictly_better(0.5, 1.0), "lower finite wins");
        assert!(!strictly_better(1.0, 0.5), "higher finite loses");
        assert!(!strictly_better(1.0, 1.0), "ties keep the incumbent");
        assert!(strictly_better(1.0, f64::NAN), "finite displaces NaN");
        assert!(strictly_better(1.0, f64::INFINITY), "finite displaces inf");
        assert!(!strictly_better(f64::NAN, 1.0), "NaN never wins");
        assert!(!strictly_better(f64::INFINITY, 1.0), "inf never wins");
        assert!(
            !strictly_better(f64::NAN, f64::NAN),
            "NaN tie keeps incumbent"
        );
        assert!(
            !strictly_better(f64::NEG_INFINITY, 1.0),
            "-inf is unordered too"
        );
    }

    #[test]
    fn cvar_tolerates_nan_costs() {
        // A NaN cost must flow through as a NaN score (ranked last by the
        // reduce), not panic the sort.
        let mut counts = Counts::new();
        counts.record_n(0, 10);
        counts.record_n(1, 10);
        let values = vec![f64::NAN, 1.0];
        let score = cvar(&counts, &CostSpec::Table(&values), 0.5);
        assert!(score.is_nan() || score.is_finite(), "no panic");
        // All-finite costs stay exact.
        let finite = vec![2.0, 1.0];
        let score = cvar(&counts, &CostSpec::Table(&finite), 0.5);
        assert!((score - 1.0).abs() < 1e-12, "best half is all cost 1");
    }

    #[test]
    fn expired_deadline_fails_the_solve_with_timeout() {
        let config = ChocoQConfig {
            deadline: Some(Instant::now()),
            ..ChocoQConfig::fast_test()
        };
        let err = ChocoQSolver::new(config)
            .solve(&paper_problem())
            .unwrap_err();
        assert_eq!(err, SolverError::Timeout);
        // Without a deadline the same solve succeeds.
        assert!(ChocoQSolver::new(ChocoQConfig::fast_test())
            .solve(&paper_problem())
            .is_ok());
    }

    /// Bounded knapsack with a *native* capacity row — no hand-rolled
    /// slack register in the problem definition.
    fn knapsack_problem() -> Problem {
        Problem::builder(3)
            .maximize()
            .linear(0, 2.0)
            .linear(1, 3.0)
            .linear(2, 4.0)
            .less_equal([(0, 1), (1, 2), (2, 2)], 3)
            .build()
            .unwrap()
    }

    #[test]
    fn native_inequality_solve_stays_in_constraints() {
        // The tentpole acceptance: a ≤-constrained instance solves through
        // natively synthesized gated drivers and never leaves the feasible
        // subspace — the decision-variable histogram satisfies the row for
        // every sampled shot.
        let p = knapsack_problem();
        let outcome = ChocoQSolver::new(ChocoQConfig::fast_test())
            .solve(&p)
            .unwrap();
        let m = outcome.metrics(&p).unwrap();
        assert!(
            (m.in_constraints_rate - 1.0).abs() < 1e-12,
            "in-constraints = {}",
            m.in_constraints_rate
        );
        assert!(m.success_rate > 0.2, "success = {}", m.success_rate);
        // Sampled bitstrings are pure decision assignments: the slack
        // register bits were truncated before reporting.
        for (bits, _) in outcome.counts.iter() {
            assert!(bits < 1 << p.n_vars(), "slack bits leaked: {bits:b}");
        }
    }

    #[test]
    fn native_inequality_occupancy_is_confined_to_encoded_feasible_set() {
        // Stronger than the histogram check: the *final state* in the
        // caller's workspace puts measurable amplitude only on encoded
        // feasible states (x feasible, s = b − a·x), so its occupancy is
        // bounded by |F|.
        let p = knapsack_problem();
        let solver = ChocoQSolver::new(ChocoQConfig::fast_test());
        let mut ws = SimWorkspace::new(SimConfig::serial());
        solver.solve_with_workspace(&p, &mut ws).unwrap();
        let driver = CommuteDriver::build(p.constraints()).unwrap();
        let feasible: std::collections::HashSet<u64> = p
            .feasible_solutions(1 << p.n_vars())
            .into_iter()
            .map(|x| driver.encode_state(x))
            .collect();
        let state = ws.state().expect("workspace holds the final state");
        let mut occupied = 0usize;
        for bits in 0..(1u64 << driver.encoded_qubits()) {
            if state.probability(bits) > 1e-12 {
                occupied += 1;
                assert!(
                    feasible.contains(&bits),
                    "amplitude on non-feasible encoded state {bits:b}"
                );
            }
        }
        assert!(occupied <= feasible.len(), "occupancy exceeds |F|");
        assert!(occupied > 1, "driver must actually spread amplitude");
    }

    #[test]
    fn native_inequality_solve_is_engine_and_worker_invariant() {
        use choco_qsim::EngineKind;
        let p = knapsack_problem();
        let config = ChocoQConfig::fast_test();
        let dense = ChocoQSolver::new(config.clone()).solve(&p).unwrap();
        for kind in [EngineKind::Sparse, EngineKind::Compact] {
            let mut ws = SimWorkspace::new(SimConfig::serial().with_engine(kind));
            let other = ChocoQSolver::new(config.clone())
                .solve_with_workspace(&p, &mut ws)
                .unwrap();
            assert_eq!(dense.counts, other.counts, "{kind:?}");
            assert_eq!(dense.cost_history, other.cost_history, "{kind:?}");
            assert_eq!(dense.iterations, other.iterations, "{kind:?}");
        }
        for workers in [2usize, 4] {
            let parallel = ChocoQSolver::new(ChocoQConfig {
                restart_workers: workers,
                ..config.clone()
            })
            .solve(&p)
            .unwrap();
            assert_eq!(dense.counts, parallel.counts, "workers={workers}");
            assert_eq!(dense.cost_history, parallel.cost_history);
        }
    }

    #[test]
    fn native_inequality_rejects_elimination() {
        let config = ChocoQConfig {
            eliminate: 1,
            ..ChocoQConfig::fast_test()
        };
        let err = ChocoQSolver::new(config)
            .solve(&knapsack_problem())
            .unwrap_err();
        match err {
            SolverError::Encoding(msg) => {
                assert!(msg.contains("eliminate"), "message: {msg}")
            }
            other => panic!("expected Encoding, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_inequality_is_rejected_with_named_row() {
        let p = Problem::builder(2)
            .less_equal([(0, 1), (1, 1)], -1)
            .build()
            .unwrap();
        let err = ChocoQSolver::default().solve(&p).unwrap_err();
        match err {
            SolverError::Encoding(msg) => {
                assert!(msg.contains("x0 + x1 <= -1"), "message: {msg}");
                assert!(msg.contains("remedies"), "message: {msg}");
            }
            other => panic!("expected Encoding, got {other:?}"),
        }
    }

    #[test]
    fn shots_are_preserved_across_branches() {
        let config = ChocoQConfig {
            eliminate: 1,
            shots: 1000,
            ..ChocoQConfig::fast_test()
        };
        let outcome = ChocoQSolver::new(config).solve(&paper_problem()).unwrap();
        // Two branches × 500 shots each.
        assert_eq!(outcome.counts.shots(), 1000);
    }
}
