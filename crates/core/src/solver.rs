//! The Choco-Q solver (§III–IV of the paper).
//!
//! Pipeline per solve:
//!
//! 1. **Variable elimination** (optional, §IV-C): drop the `k` most-shared
//!    variables; one sub-circuit per assignment.
//! 2. **Driver construction** (Eq. (5)): Δ = ternary kernel basis of `C`.
//! 3. **Circuit**: load one feasible solution, then `L` layers of
//!    `e^{-iγ_l H_o}` followed by the serialized driver
//!    `Π_{u∈Δ} e^{-iβ_l Hc(u)}` (Lemma 1).
//! 4. **Optimization**: minimize `E[cost]` — no penalty term; the
//!    constraints hold *by construction*, which is where the 100%
//!    in-constraints rate of Table II comes from.
//! 5. **Sampling**: merge branch histograms, lifting reduced bitstrings
//!    back to the full variable space.

use crate::driver::CommuteDriver;
use crate::elimination::{plan_elimination, EliminationPlan};
use choco_model::{Problem, SolveOutcome, Solver, SolverError, TimingBreakdown};
use choco_optim::OptimizerKind;
use choco_qsim::{Circuit, Counts, PhasePoly, SimConfig, SimWorkspace};
use choco_solvers::shared::{
    check_size_for, circuit_stats, variational_loop, CostSpec, QaoaConfig, MAX_SIM_QUBITS,
};
use std::sync::Arc;
use std::time::Instant;

/// Configuration for [`ChocoQSolver`].
#[derive(Clone, Debug)]
pub struct ChocoQConfig {
    /// Repeated layers `L`. The paper uses **1** in Table II (the
    /// serialized driver already covers every search direction; Fig. 7
    /// shows small gains from 2).
    pub layers: usize,
    /// Measurement shots (split across elimination branches).
    pub shots: u64,
    /// Classical optimizer iteration budget.
    pub max_iters: usize,
    /// Classical optimizer.
    pub optimizer: OptimizerKind,
    /// Sampling seed.
    pub seed: u64,
    /// Number of variables to eliminate (0–3 in the paper's Fig. 13).
    pub eliminate: usize,
    /// Record transpiled-circuit statistics (adds the paper's two clean
    /// ancillas and lowers via Lemma 2).
    pub transpiled_stats: bool,
    /// Multistart count: additional optimizer runs from random feasible
    /// initial states with jittered angles; the run with the lowest
    /// achieved expectation wins. Mitigates local minima of the
    /// non-convex landscape (most visible on GCP instances).
    pub restarts: usize,
    /// When set, final sampling runs the Lemma-2 transpiled circuit under
    /// this noise model (hardware experiments, Fig. 10/13b/14).
    pub noise: Option<choco_qsim::NoiseModel>,
    /// Monte-Carlo error trajectories for noisy sampling.
    pub noise_trajectories: u32,
    /// Δ policy: include every canonical kernel vector with support up to
    /// this bound (the paper's Eq. (5) sums over *all* solutions of
    /// `C u = 0`). Set to 0 to use only the kernel basis.
    pub delta_max_support: usize,
    /// Hard cap on the number of driver terms.
    pub delta_cap: usize,
    /// State-vector engine configuration (worker threads, parallel
    /// threshold); plumbed into the solver's [`SimWorkspace`].
    pub sim: SimConfig,
}

impl Default for ChocoQConfig {
    fn default() -> Self {
        ChocoQConfig {
            layers: 1,
            shots: 10_000,
            max_iters: 60,
            optimizer: OptimizerKind::NelderMead,
            seed: 42,
            eliminate: 0,
            transpiled_stats: true,
            restarts: 3,
            noise: None,
            noise_trajectories: 30,
            delta_max_support: 6,
            delta_cap: 48,
            sim: SimConfig::default(),
        }
    }
}

impl ChocoQConfig {
    /// Cheap configuration for unit tests.
    pub fn fast_test() -> Self {
        ChocoQConfig {
            shots: 2_000,
            max_iters: 30,
            transpiled_stats: false,
            ..ChocoQConfig::default()
        }
    }
}

/// The Choco-Q solver.
///
/// # Examples
///
/// ```
/// use choco_core::{ChocoQConfig, ChocoQSolver};
/// use choco_model::{Problem, Solver};
///
/// let p = Problem::builder(3)
///     .maximize()
///     .linear(0, 1.0)
///     .linear(1, 2.0)
///     .linear(2, 3.0)
///     .equality([(0, 1), (1, 1), (2, 1)], 2)
///     .build()
///     .unwrap();
/// let outcome = ChocoQSolver::new(ChocoQConfig::fast_test()).solve(&p).unwrap();
/// let m = outcome.metrics(&p).unwrap();
/// assert!((m.in_constraints_rate - 1.0).abs() < 1e-9); // hard constraints
/// ```
#[derive(Clone, Debug, Default)]
pub struct ChocoQSolver {
    config: ChocoQConfig,
}

impl ChocoQSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: ChocoQConfig) -> Self {
        ChocoQSolver { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ChocoQConfig {
        &self.config
    }

    /// Number of variational parameters: per layer, one γ plus one β per
    /// driver term.
    ///
    /// The paper's Eq. (7) writes a shared β per layer; with the
    /// *serialized* driver (Lemma 1) each block `e^{-iβ_u Hc(u)}` is its
    /// own unitary, so the natural parameterization gives every block its
    /// own angle. This is what makes a single layer expressive enough to
    /// reach the paper's reported success rates: the optimizer can chain
    /// full 2-level transfers along the feasible graph.
    pub fn n_params(layers: usize, n_terms: usize) -> usize {
        layers * (1 + n_terms)
    }

    /// Builds the structured Choco-Q circuit for one (sub-)problem:
    /// `|x*⟩ → Π_l [ e^{-iγ_l H_o} Π_u e^{-iβ_{l,u} Hc(u)} ]` with the
    /// parameter layout `[γ_1, β_{1,1} … β_{1,|Δ|}, γ_2, …]`.
    /// `ordered_terms` should come from [`CommuteDriver::ordered_terms`]
    /// for the same `initial`.
    pub fn build_circuit(
        problem_n_vars: usize,
        cost_poly: &Arc<PhasePoly>,
        ordered_terms: &[Vec<i8>],
        initial: u64,
        layers: usize,
        params: &[f64],
    ) -> Circuit {
        debug_assert_eq!(params.len(), Self::n_params(layers, ordered_terms.len()));
        let stride = 1 + ordered_terms.len();
        let mut c = Circuit::new(problem_n_vars.max(1));
        c.load_bits(initial);
        for l in 0..layers {
            let gamma = params[l * stride];
            c.diag(cost_poly.clone(), gamma);
            for (t, u) in ordered_terms.iter().enumerate() {
                let beta = params[l * stride + 1 + t];
                c.ublock(choco_qsim::UBlock::from_u_with_angle(u, beta));
            }
        }
        c
    }

    /// Initial parameters: a small γ ramp and a moderate uniform β.
    pub fn initial_params(layers: usize, n_terms: usize) -> Vec<f64> {
        let mut x0 = Vec::with_capacity(Self::n_params(layers, n_terms));
        for l in 0..layers {
            x0.push(0.1 + 0.2 * (l as f64 + 1.0) / layers as f64); // γ
            x0.extend(std::iter::repeat_n(0.5, n_terms)); // β
        }
        x0
    }
}

/// The surviving pieces of one multistart run.
struct LoopRun {
    counts: Counts,
    cost_history: Vec<f64>,
    final_circuit: Circuit,
}

/// Conditional value at risk: the mean cost of the best `alpha` fraction
/// of sampled shots. The restart-selection criterion — unlike the plain
/// expectation, it rewards distributions that put *some* mass on very good
/// solutions (CVaR-QAOA style), and it only uses measured quantities.
fn cvar(counts: &Counts, cost: &CostSpec<'_>, alpha: f64) -> f64 {
    if counts.is_empty() {
        return f64::INFINITY;
    }
    let mut samples: Vec<(f64, u64)> = counts
        .iter()
        .map(|(bits, c)| (cost.value(bits), c))
        .collect();
    samples.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN cost"));
    let take = ((counts.shots() as f64 * alpha).ceil() as u64).max(1);
    let mut remaining = take;
    let mut acc = 0.0;
    for (value, count) in samples {
        let used = count.min(remaining);
        acc += value * used as f64;
        remaining -= used;
        if remaining == 0 {
            break;
        }
    }
    acc / take as f64
}

impl Solver for ChocoQSolver {
    fn name(&self) -> &str {
        "choco-q"
    }

    fn solve(&self, problem: &Problem) -> Result<SolveOutcome, SolverError> {
        let mut workspace = SimWorkspace::new(self.config.sim);
        self.solve_with_workspace(problem, &mut workspace)
    }
}

impl ChocoQSolver {
    /// [`Solver::solve`] with a caller-owned [`SimWorkspace`]: the
    /// amplitude buffer, cached diagonals, sampling table, and (under
    /// [`choco_qsim::EngineKind::Compact`]) compiled gate plans live in
    /// `workspace` and are reused across optimizer iterations, multistart
    /// restarts, and elimination branches (and across repeated solves when
    /// the caller keeps the workspace around) — with the compact engine,
    /// the feasible subspace is enumerated once per circuit shape and
    /// every iteration replays the precomputed plan.
    pub fn solve_with_workspace(
        &self,
        problem: &Problem,
        workspace: &mut SimWorkspace,
    ) -> Result<SolveOutcome, SolverError> {
        // Size gate follows the workspace's engine: the sparse engines
        // accept feasible-subspace instances the dense buffer cannot hold.
        check_size_for(problem.n_vars(), workspace.config().engine)?;
        let compile_start = Instant::now();

        let plan: EliminationPlan = plan_elimination(problem, self.config.eliminate)
            .map_err(|e| SolverError::Encoding(e.to_string()))?;
        if plan.branches.is_empty() {
            return Err(SolverError::Infeasible);
        }

        // Prepare per-branch drivers, initial-state pools, and cost tables.
        // Two Δ policies are kept: the minimal kernel *basis* and the
        // *extended* set (Eq. (5) sums over all solutions of C u = 0).
        // Which one yields the easier optimization landscape is
        // instance-dependent, so the multistart alternates between them.
        struct Branch {
            assignment: u64,
            n_vars: usize,
            drivers: Vec<CommuteDriver>,
            feasible: Vec<u64>,
            cost_poly: Arc<PhasePoly>,
            /// Materialized `2^n` cost table — only for registers the
            /// dense engine could also hold, so the table keeps engine
            /// results bit-identical. Wider (sparse-only) branches use
            /// the polynomial directly.
            cost_values: Option<Vec<f64>>,
        }
        impl Branch {
            fn cost_spec(&self) -> CostSpec<'_> {
                match &self.cost_values {
                    Some(values) => CostSpec::Table(values),
                    None => CostSpec::Poly(&self.cost_poly),
                }
            }
        }
        let mut branches = Vec::new();
        for b in &plan.branches {
            // A small pool of feasible points serves as restart seeds.
            let feasible = b.problem.feasible_solutions(256);
            if feasible.is_empty() {
                continue; // infeasible branch: no shots allocated
            }
            let basis = CommuteDriver::build(b.problem.constraints())
                .map_err(|e| SolverError::Encoding(e.to_string()))?;
            let mut drivers = vec![];
            if self.config.delta_max_support > 0 {
                let extended = CommuteDriver::build_extended(
                    b.problem.constraints(),
                    self.config.delta_max_support,
                    self.config.delta_cap,
                )
                .map_err(|e| SolverError::Encoding(e.to_string()))?;
                if extended.len() > basis.len() {
                    drivers.push(extended);
                }
            }
            drivers.push(basis);
            let cost_poly = Arc::new(b.problem.cost_poly());
            let n = b.problem.n_vars();
            let cost_values = (n <= MAX_SIM_QUBITS).then(|| cost_poly.values_table(1 << n));
            branches.push(Branch {
                assignment: b.assignment,
                n_vars: n,
                drivers,
                feasible,
                cost_poly,
                cost_values,
            });
        }
        if branches.is_empty() {
            return Err(SolverError::Infeasible);
        }
        let compile = compile_start.elapsed();

        let layers = self.config.layers;
        let restarts = self.config.restarts.max(1);
        let shots_each = (self.config.shots / branches.len() as u64).max(1);
        let mut merged = Counts::new();
        let mut cost_history: Vec<f64> = Vec::new();
        let mut iterations = 0usize;
        let mut timing = TimingBreakdown {
            compile,
            ..TimingBreakdown::default()
        };
        let mut first_final_circuit: Option<(Circuit, usize)> = None;

        let mut restart_rng = choco_mathkit::SplitMix64::new(self.config.seed ^ 0xC0C0A);
        for (b_idx, branch) in branches.iter().enumerate() {
            // Multistart: the first restarts pair each Δ policy with the
            // lexicographically-first feasible point and nominal angles;
            // later restarts pick random feasible initial states and
            // jittered angles. The run with the lowest achieved
            // expectation wins (all measurable quantities — no classical
            // peeking at the optimum).
            let n_policies = branch.drivers.len();
            let mut best: Option<(f64, crate::solver::LoopRun)> = None;
            for r in 0..restarts.max(n_policies) {
                let driver = &branch.drivers[r % n_policies];
                let fresh = r < n_policies;
                let initial = if fresh {
                    branch.feasible[0]
                } else {
                    *restart_rng.choose(&branch.feasible).expect("non-empty")
                };
                let ordered_terms = driver.ordered_terms(initial);
                let mut x0 = Self::initial_params(layers, ordered_terms.len());
                if !fresh {
                    for x in x0.iter_mut() {
                        *x = restart_rng.gen_range_f64(0.05, 1.6);
                    }
                }
                let loop_config = QaoaConfig {
                    layers,
                    shots: shots_each,
                    max_iters: self.config.max_iters,
                    optimizer: self.config.optimizer,
                    penalty: 0.0, // constraints are hard: no penalty needed
                    seed: self.config.seed.wrapping_add((b_idx * restarts + r) as u64),
                    transpiled_stats: false,
                    noise: self.config.noise,
                    noise_trajectories: self.config.noise_trajectories,
                    // Follow the caller-owned workspace, not self.config:
                    // every other kernel of this solve runs under the
                    // workspace's engine config.
                    sim: *workspace.config(),
                };
                let build = |params: &[f64]| {
                    Self::build_circuit(
                        branch.n_vars,
                        &branch.cost_poly,
                        &ordered_terms,
                        initial,
                        layers,
                        params,
                    )
                };
                let result = variational_loop(
                    branch.n_vars.max(1),
                    build,
                    &branch.cost_spec(),
                    &x0,
                    &loop_config,
                    &mut *workspace,
                );
                timing.execute += result.timing.execute;
                timing.classical += result.timing.classical;
                iterations += result.iterations;
                let achieved = cvar(&result.counts, &branch.cost_spec(), 0.05);
                let run = LoopRun {
                    counts: result.counts,
                    cost_history: result.cost_history,
                    final_circuit: result.final_circuit,
                };
                if best.as_ref().is_none_or(|(b, _)| achieved < *b) {
                    best = Some((achieved, run));
                }
            }
            let (_, run) = best.expect("at least one restart ran");
            if b_idx == 0 {
                cost_history = run.cost_history;
            }
            let lifted = run
                .counts
                .map_bits(|bits| plan.lift(branch.assignment, bits));
            merged.merge(&lifted);
            if first_final_circuit.is_none() {
                first_final_circuit = Some((run.final_circuit, branch.n_vars));
            }
        }

        // Circuit statistics on the first branch's final circuit, rebuilt
        // with the paper's two clean ancillas for Lemma-2 transpilation.
        let (final_circuit, n_reduced) = first_final_circuit.expect("at least one branch ran");
        let circuit = if self.config.transpiled_stats && n_reduced > 0 {
            let mut wide = Circuit::new(n_reduced + 2);
            for g in final_circuit.gates() {
                wide.push(g.clone());
            }
            circuit_stats(&wide, vec![n_reduced, n_reduced + 1], true)?
        } else {
            circuit_stats(&final_circuit, vec![], false)?
        };

        Ok(SolveOutcome {
            counts: merged,
            cost_history,
            iterations,
            circuit,
            timing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_problem() -> Problem {
        Problem::builder(4)
            .maximize()
            .linear(0, 1.0)
            .linear(1, 2.0)
            .linear(2, 3.0)
            .linear(3, 1.0)
            .equality([(0, 1), (2, -1)], 0)
            .equality([(0, 1), (1, 1), (3, 1)], 1)
            .build()
            .unwrap()
    }

    #[test]
    fn in_constraints_rate_is_always_one() {
        // The paper's central claim (Table II): commute-driver evolution
        // never leaves the feasible subspace.
        let outcome = ChocoQSolver::new(ChocoQConfig::fast_test())
            .solve(&paper_problem())
            .unwrap();
        let m = outcome.metrics(&paper_problem()).unwrap();
        assert!(
            (m.in_constraints_rate - 1.0).abs() < 1e-12,
            "in-constraints = {}",
            m.in_constraints_rate
        );
    }

    #[test]
    fn success_rate_is_high_on_the_paper_example() {
        let outcome = ChocoQSolver::new(ChocoQConfig::fast_test())
            .solve(&paper_problem())
            .unwrap();
        let m = outcome.metrics(&paper_problem()).unwrap();
        assert!(m.success_rate > 0.3, "success = {}", m.success_rate);
        assert!(m.arg < 0.7, "ARG = {}", m.arg);
    }

    #[test]
    fn cost_history_converges_downward() {
        let outcome = ChocoQSolver::new(ChocoQConfig::fast_test())
            .solve(&paper_problem())
            .unwrap();
        let first = outcome.cost_history.first().unwrap();
        let last = outcome.cost_history.last().unwrap();
        assert!(last <= first);
        assert!(outcome.iterations > 0);
    }

    #[test]
    fn variable_elimination_preserves_hard_constraints() {
        for eliminate in [1usize, 2] {
            let config = ChocoQConfig {
                eliminate,
                ..ChocoQConfig::fast_test()
            };
            let outcome = ChocoQSolver::new(config).solve(&paper_problem()).unwrap();
            let m = outcome.metrics(&paper_problem()).unwrap();
            assert!(
                (m.in_constraints_rate - 1.0).abs() < 1e-12,
                "eliminate={eliminate}: in-constraints = {}",
                m.in_constraints_rate
            );
            assert!(
                m.success_rate > 0.2,
                "eliminate={eliminate}: success = {}",
                m.success_rate
            );
        }
    }

    #[test]
    fn elimination_reduces_transpiled_depth() {
        // Fig. 13(a): dropping the most-shared variable shrinks the
        // deployable circuit.
        let base = ChocoQSolver::new(ChocoQConfig {
            transpiled_stats: true,
            ..ChocoQConfig::fast_test()
        })
        .solve(&paper_problem())
        .unwrap();
        let elim = ChocoQSolver::new(ChocoQConfig {
            transpiled_stats: true,
            eliminate: 1,
            ..ChocoQConfig::fast_test()
        })
        .solve(&paper_problem())
        .unwrap();
        assert!(
            elim.circuit.transpiled_depth.unwrap() < base.circuit.transpiled_depth.unwrap(),
            "elimination did not reduce depth: {:?} vs {:?}",
            elim.circuit.transpiled_depth,
            base.circuit.transpiled_depth
        );
    }

    #[test]
    fn infeasible_problem_is_rejected() {
        let p = Problem::builder(2)
            .equality([(0, 1), (1, 1)], 3)
            .build()
            .unwrap();
        let err = ChocoQSolver::default().solve(&p).unwrap_err();
        assert_eq!(err, SolverError::Infeasible);
    }

    #[test]
    fn unique_feasible_point_collapses_to_it() {
        // Full-rank constraints: Δ empty, the circuit just loads |x*⟩.
        let p = Problem::builder(2)
            .minimize()
            .linear(0, 1.0)
            .equality([(0, 1)], 1)
            .equality([(1, 1)], 0)
            .build()
            .unwrap();
        let outcome = ChocoQSolver::new(ChocoQConfig::fast_test())
            .solve(&p)
            .unwrap();
        assert!((outcome.counts.probability(0b01) - 1.0).abs() < 1e-12);
        let m = outcome.metrics(&p).unwrap();
        assert_eq!(m.success_rate, 1.0);
    }

    #[test]
    fn more_layers_do_not_hurt() {
        // Fig. 7: layer 2 brings a modest gain; deeper layers plateau.
        let one = ChocoQSolver::new(ChocoQConfig::fast_test())
            .solve(&paper_problem())
            .unwrap()
            .metrics(&paper_problem())
            .unwrap();
        let two = ChocoQSolver::new(ChocoQConfig {
            layers: 2,
            ..ChocoQConfig::fast_test()
        })
        .solve(&paper_problem())
        .unwrap()
        .metrics(&paper_problem())
        .unwrap();
        assert!(two.success_rate > one.success_rate * 0.5);
        assert!((two.in_constraints_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_performs_zero_amplitude_allocations_after_warmup() {
        // The acceptance criterion of the fast-path rework: one amplitude
        // buffer serves every optimizer iteration, every multistart
        // restart, and the final sampling pass. The workspace counts
        // buffer (re)allocations; exactly one warmup allocation is
        // allowed per register width.
        let problem = paper_problem();
        let solver = ChocoQSolver::new(ChocoQConfig::fast_test());
        let mut workspace = SimWorkspace::new(SimConfig::serial());
        solver
            .solve_with_workspace(&problem, &mut workspace)
            .unwrap();
        assert_eq!(
            workspace.reallocations(),
            1,
            "iterations/restarts must reuse the warmup buffer"
        );
        // A second solve of the same width is fully allocation-free.
        solver
            .solve_with_workspace(&problem, &mut workspace)
            .unwrap();
        assert_eq!(workspace.reallocations(), 1, "second solve reuses warmup");
        // The shared cost polynomial was expanded into a diagonal once per
        // Δ policy, not once per iteration.
        assert!(workspace.cached_diagonals() <= 2);
    }

    #[test]
    fn compact_engine_solve_is_byte_identical_and_compiles_once() {
        use choco_qsim::EngineKind;
        let problem = paper_problem();
        let solver = ChocoQSolver::new(ChocoQConfig::fast_test());
        let mut dense_ws = SimWorkspace::new(SimConfig::serial());
        let dense = solver
            .solve_with_workspace(&problem, &mut dense_ws)
            .unwrap();
        let mut compact_ws =
            SimWorkspace::new(SimConfig::serial().with_engine(EngineKind::Compact));
        let compact = solver
            .solve_with_workspace(&problem, &mut compact_ws)
            .unwrap();
        // Engine selection is a performance decision: identical histogram,
        // identical history, identical iteration count.
        assert_eq!(dense.counts, compact.counts);
        assert_eq!(dense.cost_history, compact.cost_history);
        assert_eq!(dense.iterations, compact.iterations);
        // The whole solve — every restart × iteration — compiled each
        // distinct circuit shape exactly once and reused one amplitude
        // array (zero per-iteration allocations).
        assert_eq!(compact_ws.reallocations(), 1, "one warmup allocation");
        assert_eq!(
            compact_ws.plan_compilations(),
            compact_ws.cached_plans() as u64,
            "every shape compiled exactly once"
        );
        assert!(
            compact_ws.cached_plans() <= 4,
            "Δ policies × initial states bound the shape count, got {}",
            compact_ws.cached_plans()
        );
        // A second solve builds a fresh cost polynomial (a new `Arc`), so
        // its shapes compile anew — but it still reuses the warmup
        // amplitude allocation, and dead shapes from the first solve are
        // evicted rather than accumulated.
        let shapes_per_solve = compact_ws.plan_compilations();
        solver
            .solve_with_workspace(&problem, &mut compact_ws)
            .unwrap();
        assert_eq!(compact_ws.plan_compilations(), 2 * shapes_per_solve);
        assert!(compact_ws.cached_plans() as u64 <= shapes_per_solve);
        assert_eq!(compact_ws.reallocations(), 1, "second solve reuses warmup");
    }

    #[test]
    fn shots_are_preserved_across_branches() {
        let config = ChocoQConfig {
            eliminate: 1,
            shots: 1000,
            ..ChocoQConfig::fast_test()
        };
        let outcome = ChocoQSolver::new(config).solve(&paper_problem()).unwrap();
        // Two branches × 500 shots each.
        assert_eq!(outcome.counts.shots(), 1000);
    }
}
