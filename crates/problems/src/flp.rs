//! Facility location problem (FLP) \[37\].
//!
//! Uncapacitated facility location with `F` candidate facilities and `D`
//! demand points:
//!
//! ```text
//! min  Σ_i open_i·y_i + Σ_ij serve_ij·x_ij
//! s.t. Σ_i x_ij = 1            ∀ demand j      (each demand served once)
//!      x_ij ≤ y_i              ∀ i, j          (only open facilities serve)
//! ```
//!
//! The inequality is converted to the paper's equality form with one binary
//! slack per `(i, j)`: `y_i − x_ij − s_ij = 0`. The paper's scale labels
//! map directly: **F1 = 2F-1D** has `2 + 2·2·1 = 6` variables and
//! `1 + 2 = 3` constraints — exactly the counts quoted in §V-C.

use choco_mathkit::SplitMix64;
use choco_model::{Problem, ProblemError};

/// Variable layout of a generated FLP instance.
///
/// * `y_i` at index `i` for `i < n_facilities`
/// * `x_ij` at `n_facilities + i·n_demands + j`
/// * `s_ij` at `n_facilities·(1 + n_demands) + i·n_demands + j`
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlpLayout {
    /// Number of candidate facilities `F`.
    pub n_facilities: usize,
    /// Number of demand points `D`.
    pub n_demands: usize,
}

impl FlpLayout {
    /// Index of the facility-open variable `y_i`.
    pub fn y(&self, i: usize) -> usize {
        debug_assert!(i < self.n_facilities);
        i
    }

    /// Index of the assignment variable `x_ij`.
    pub fn x(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.n_facilities && j < self.n_demands);
        self.n_facilities + i * self.n_demands + j
    }

    /// Index of the slack variable `s_ij` for `x_ij ≤ y_i`.
    pub fn s(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.n_facilities && j < self.n_demands);
        self.n_facilities * (1 + self.n_demands) + i * self.n_demands + j
    }

    /// Total number of binary variables.
    pub fn n_vars(&self) -> usize {
        self.n_facilities * (1 + 2 * self.n_demands)
    }
}

/// Generates a seeded FLP instance.
///
/// Opening costs are drawn uniformly from `[3, 10)`, service costs from
/// `[1, 6)`; the same seed always produces the same instance.
///
/// # Errors
///
/// Propagates [`ProblemError`] if the instance would exceed the variable
/// limit.
pub fn flp(n_facilities: usize, n_demands: usize, seed: u64) -> Result<Problem, ProblemError> {
    assert!(n_facilities >= 1 && n_demands >= 1, "degenerate FLP shape");
    let layout = FlpLayout {
        n_facilities,
        n_demands,
    };
    let mut rng = SplitMix64::new(seed ^ 0xF1AC_1117);
    let mut b = Problem::builder(layout.n_vars())
        .minimize()
        .name(format!("FLP {n_facilities}F-{n_demands}D seed={seed}"));

    for i in 0..n_facilities {
        b = b.linear(layout.y(i), rng.gen_range_f64(3.0, 10.0).round());
        for j in 0..n_demands {
            b = b.linear(layout.x(i, j), rng.gen_range_f64(1.0, 6.0).round());
        }
    }
    // Each demand is served exactly once (summation format).
    for j in 0..n_demands {
        b = b.equality((0..n_facilities).map(|i| (layout.x(i, j), 1i64)), 1);
    }
    // x_ij ≤ y_i via slack: y_i − x_ij − s_ij = 0.
    for i in 0..n_facilities {
        for j in 0..n_demands {
            b = b.equality(
                [
                    (layout.y(i), 1i64),
                    (layout.x(i, j), -1),
                    (layout.s(i, j), -1),
                ],
                0,
            );
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_model::solve_exact;

    #[test]
    fn f1_matches_paper_shape() {
        // F1 = 2F-1D: 6 variables, 3 constraints (§V-C of the paper).
        let p = flp(2, 1, 7).unwrap();
        assert_eq!(p.n_vars(), 6);
        assert_eq!(p.constraints().len(), 3);
    }

    #[test]
    fn layout_indices_are_disjoint_and_dense() {
        let layout = FlpLayout {
            n_facilities: 3,
            n_demands: 2,
        };
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..3 {
            seen.insert(layout.y(i));
            for j in 0..2 {
                seen.insert(layout.x(i, j));
                seen.insert(layout.s(i, j));
            }
        }
        assert_eq!(seen.len(), layout.n_vars());
        assert_eq!(*seen.iter().max().unwrap(), layout.n_vars() - 1);
    }

    #[test]
    fn feasible_solutions_respect_open_facility_rule() {
        let p = flp(2, 2, 3).unwrap();
        let layout = FlpLayout {
            n_facilities: 2,
            n_demands: 2,
        };
        for bits in p.feasible_solutions(10_000) {
            for i in 0..2 {
                for j in 0..2 {
                    let x = (bits >> layout.x(i, j)) & 1;
                    let y = (bits >> layout.y(i)) & 1;
                    assert!(x <= y, "demand served by a closed facility");
                }
            }
            for j in 0..2 {
                let served: u64 = (0..2).map(|i| (bits >> layout.x(i, j)) & 1).sum();
                assert_eq!(served, 1, "each demand must be served exactly once");
            }
        }
    }

    #[test]
    fn optimum_opens_at_least_one_facility() {
        let p = flp(2, 1, 42).unwrap();
        let opt = solve_exact(&p).unwrap();
        let layout = FlpLayout {
            n_facilities: 2,
            n_demands: 1,
        };
        for &sol in &opt.solutions {
            let open: u64 = (0..2).map(|i| (sol >> layout.y(i)) & 1).sum();
            assert!(open >= 1);
        }
        assert!(opt.value > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = flp(3, 2, 9).unwrap();
        let b = flp(3, 2, 9).unwrap();
        let c = flp(3, 2, 10).unwrap();
        assert_eq!(format!("{a}"), format!("{b}"));
        assert_ne!(format!("{a}"), format!("{c}"));
    }

    #[test]
    fn scales_match_design_doc() {
        for (f, d, vars, cons) in [(2, 1, 6, 3), (2, 2, 10, 6), (3, 2, 15, 8), (3, 3, 21, 12)] {
            let p = flp(f, d, 1).unwrap();
            assert_eq!(p.n_vars(), vars, "{f}F-{d}D");
            assert_eq!(p.constraints().len(), cons, "{f}F-{d}D");
        }
    }
}
