//! Multi-dimensional knapsack (MDKNAP), native-inequality encoding.
//!
//! Select items maximizing value subject to *several* simultaneous
//! capacity budgets — one per resource dimension:
//!
//! ```text
//! max  Σ_i value_i · x_i
//! s.t. Σ_i weight_{d,i} · x_i ≤ W_d     ∀ dimension d
//! ```
//!
//! Every capacity row stays a first-class `≤` constraint over the item
//! variables only; no slack variable appears in the problem. The
//! commute-driver layer synthesizes one bounded slack register *per
//! dimension* internally and keeps the evolution on the intersection of
//! all budget manifolds — the first workload in the suite whose driver
//! couples several slack registers at once, so a single driver term can
//! shift two registers by different amounts.

use choco_mathkit::SplitMix64;
use choco_model::{Problem, ProblemError};

/// Variable layout of a generated multi-dimensional knapsack instance:
/// one binary variable per item, `x_i` at index `i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MdKnapLayout {
    /// `weights[d][i]` is item `i`'s weight in dimension `d`.
    pub weights: Vec<Vec<u64>>,
    /// Per-dimension capacity `W_d`.
    pub capacities: Vec<u64>,
}

impl MdKnapLayout {
    /// Number of items (binary variables).
    pub fn n_items(&self) -> usize {
        self.weights[0].len()
    }

    /// Number of resource dimensions (capacity rows).
    pub fn n_dims(&self) -> usize {
        self.weights.len()
    }

    /// Total selected weight in dimension `d` under `bits` (test oracle).
    pub fn weight_of(&self, bits: u64, d: usize) -> u64 {
        self.weights[d]
            .iter()
            .enumerate()
            .filter(|&(i, _)| (bits >> i) & 1 == 1)
            .map(|(_, &w)| w)
            .sum()
    }

    /// `true` when `bits` respects every budget (test oracle).
    pub fn fits(&self, bits: u64) -> bool {
        (0..self.n_dims()).all(|d| self.weight_of(bits, d) <= self.capacities[d])
    }
}

/// Generates a multi-dimensional knapsack instance from explicit data.
///
/// # Errors
///
/// Propagates [`ProblemError`] on oversized instances.
///
/// # Panics
///
/// Panics on empty items/dimensions, zero weights or capacities, or
/// ragged weight rows.
pub fn mdknap(
    weights: &[Vec<u64>],
    values: &[f64],
    capacities: &[u64],
    seed: u64,
) -> Result<Problem, ProblemError> {
    assert!(!weights.is_empty(), "no dimensions");
    assert_eq!(
        weights.len(),
        capacities.len(),
        "weights/capacities mismatch"
    );
    let n_items = values.len();
    assert!(n_items > 0, "no items");
    for row in weights {
        assert_eq!(row.len(), n_items, "ragged weight row");
        assert!(row.iter().all(|&w| w > 0), "zero-weight item");
    }
    assert!(capacities.iter().all(|&c| c > 0), "zero capacity");
    let caps = capacities
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join("/");
    let mut b = Problem::builder(n_items)
        .maximize()
        .name(format!("MDKNAP {n_items}I-{caps}W seed={seed}"));
    for (i, &v) in values.iter().enumerate() {
        b = b.linear(i, v);
    }
    for (row, &cap) in weights.iter().zip(capacities) {
        b = b.less_equal(
            row.iter().enumerate().map(|(i, &w)| (i, w as i64)),
            cap as i64,
        );
    }
    b.build()
}

/// Generates a random feasible multi-dimensional knapsack instance.
///
/// Weights are drawn uniformly from `[1, 6)` per item and dimension;
/// values follow the single-dimension generator's shape (dimension-0
/// weight plus uniform noise, rounded). Each capacity is set to roughly
/// half the dimension's total weight (at least the dimension's heaviest
/// item), so the empty selection is always feasible and the budget binds.
///
/// # Errors
///
/// Propagates [`ProblemError`] on oversized instances.
///
/// # Panics
///
/// Panics when `n_items == 0` or `n_dims == 0`.
pub fn mdknap_random(n_items: usize, n_dims: usize, seed: u64) -> Result<Problem, ProblemError> {
    assert!(n_items >= 1 && n_dims >= 1, "degenerate mdknap shape");
    let mut rng = SplitMix64::new(seed ^ 0x3D_71_A9);
    let weights: Vec<Vec<u64>> = (0..n_dims)
        .map(|_| (0..n_items).map(|_| rng.gen_range(1, 6)).collect())
        .collect();
    let values: Vec<f64> = weights[0]
        .iter()
        .map(|&w| (w as f64 + rng.gen_range_f64(1.0, 6.0)).round())
        .collect();
    let capacities: Vec<u64> = weights
        .iter()
        .map(|row| {
            let total: u64 = row.iter().sum();
            let heaviest = *row.iter().max().expect("non-empty row");
            (total / 2).max(heaviest)
        })
        .collect();
    mdknap(&weights, &values, &capacities, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_model::solve_exact;

    fn regen_layout(n_items: usize, n_dims: usize, seed: u64) -> MdKnapLayout {
        let mut rng = SplitMix64::new(seed ^ 0x3D_71_A9);
        let weights: Vec<Vec<u64>> = (0..n_dims)
            .map(|_| (0..n_items).map(|_| rng.gen_range(1, 6)).collect())
            .collect();
        let capacities = weights
            .iter()
            .map(|row| {
                let total: u64 = row.iter().sum();
                (total / 2).max(*row.iter().max().unwrap())
            })
            .collect();
        MdKnapLayout {
            weights,
            capacities,
        }
    }

    #[test]
    fn explicit_instance_matches_shape() {
        let p = mdknap(
            &[vec![2, 3, 4], vec![1, 4, 2]],
            &[3.0, 5.0, 7.0],
            &[6, 5],
            1,
        )
        .unwrap();
        assert_eq!(p.n_vars(), 3);
        assert!(p.constraints().eqs().is_empty());
        assert_eq!(p.constraints().ineqs().len(), 2);
        // {x0, x2}: dim0 weight 6 ≤ 6, dim1 weight 3 ≤ 5 → feasible, value 10.
        // {x1, x2}: dim0 weight 7 > 6 → infeasible.
        let opt = solve_exact(&p).unwrap();
        assert_eq!(opt.value, 10.0);
        assert_eq!(opt.solutions, vec![0b101]);
    }

    #[test]
    fn exact_optimum_respects_every_budget() {
        for seed in 0..6 {
            let p = mdknap_random(5, 2, seed).unwrap();
            let l = regen_layout(5, 2, seed);
            let opt = solve_exact(&p).unwrap();
            for &sol in &opt.solutions {
                assert!(l.fits(sol), "seed {seed} sol {sol:b}");
            }
            // A second budget can only shrink the feasible set.
            let single = knapsack_equivalent(&l, seed);
            let opt1 = solve_exact(&single).unwrap();
            assert!(opt.value <= opt1.value, "seed {seed}");
        }
    }

    /// The same items constrained by dimension 0 only.
    fn knapsack_equivalent(l: &MdKnapLayout, seed: u64) -> Problem {
        let values: Vec<f64> = {
            let mut rng = SplitMix64::new(seed ^ 0x3D_71_A9);
            for _ in 0..l.n_dims() * l.n_items() {
                rng.gen_range(1, 6);
            }
            l.weights[0]
                .iter()
                .map(|&w| (w as f64 + rng.gen_range_f64(1.0, 6.0)).round())
                .collect()
        };
        mdknap(&[l.weights[0].clone()], &values, &[l.capacities[0]], seed).unwrap()
    }

    #[test]
    fn empty_selection_is_always_feasible() {
        for seed in 0..12 {
            let p = mdknap_random(6, 2, seed).unwrap();
            assert!(p.is_feasible(0), "seed {seed}");
            assert!(p.first_feasible().is_some(), "seed {seed}");
        }
    }

    #[test]
    fn feasibility_oracle_agrees_with_layout() {
        let p = mdknap_random(5, 2, 7).unwrap();
        let l = regen_layout(5, 2, 7);
        for bits in 0u64..(1 << 5) {
            assert_eq!(p.is_feasible(bits), l.fits(bits), "bits {bits:b}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = mdknap_random(5, 2, 4).unwrap();
        let b = mdknap_random(5, 2, 4).unwrap();
        let c = mdknap_random(5, 2, 5).unwrap();
        assert_eq!(format!("{a}"), format!("{b}"));
        assert_ne!(format!("{a}"), format!("{c}"));
    }
}
